//! Facade crate re-exporting the Mantra workspace.
//!
//! Downstream users depend on `mantra` and reach each subsystem through a
//! short alias: [`core`] is the monitoring tool itself, [`sim`] the
//! multicast internetwork it monitors, [`snmp`] the alternative collection
//! path the paper rejected, and so on.

pub use mantra_core as core;
pub use mantra_net as net;
pub use mantra_protocols as protocols;
pub use mantra_router_cli as router_cli;
pub use mantra_sim as sim;
pub use mantra_snmp as snmp;
pub use mantra_tools as tools;
pub use mantra_topology as topology;
