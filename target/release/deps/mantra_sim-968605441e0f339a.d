/root/repo/target/release/deps/mantra_sim-968605441e0f339a.d: crates/sim/src/lib.rs crates/sim/src/applayer.rs crates/sim/src/event.rs crates/sim/src/network.rs crates/sim/src/rng.rs crates/sim/src/scenario.rs crates/sim/src/session.rs crates/sim/src/trees.rs crates/sim/src/workload.rs

/root/repo/target/release/deps/libmantra_sim-968605441e0f339a.rlib: crates/sim/src/lib.rs crates/sim/src/applayer.rs crates/sim/src/event.rs crates/sim/src/network.rs crates/sim/src/rng.rs crates/sim/src/scenario.rs crates/sim/src/session.rs crates/sim/src/trees.rs crates/sim/src/workload.rs

/root/repo/target/release/deps/libmantra_sim-968605441e0f339a.rmeta: crates/sim/src/lib.rs crates/sim/src/applayer.rs crates/sim/src/event.rs crates/sim/src/network.rs crates/sim/src/rng.rs crates/sim/src/scenario.rs crates/sim/src/session.rs crates/sim/src/trees.rs crates/sim/src/workload.rs

crates/sim/src/lib.rs:
crates/sim/src/applayer.rs:
crates/sim/src/event.rs:
crates/sim/src/network.rs:
crates/sim/src/rng.rs:
crates/sim/src/scenario.rs:
crates/sim/src/session.rs:
crates/sim/src/trees.rs:
crates/sim/src/workload.rs:
