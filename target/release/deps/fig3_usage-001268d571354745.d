/root/repo/target/release/deps/fig3_usage-001268d571354745.d: crates/bench/src/bin/fig3_usage.rs

/root/repo/target/release/deps/fig3_usage-001268d571354745: crates/bench/src/bin/fig3_usage.rs

crates/bench/src/bin/fig3_usage.rs:
