/root/repo/target/release/deps/mantra_router_cli-ec79118bf9e8ab24.d: crates/router-cli/src/lib.rs crates/router-cli/src/ios.rs crates/router-cli/src/mrouted.rs

/root/repo/target/release/deps/libmantra_router_cli-ec79118bf9e8ab24.rlib: crates/router-cli/src/lib.rs crates/router-cli/src/ios.rs crates/router-cli/src/mrouted.rs

/root/repo/target/release/deps/libmantra_router_cli-ec79118bf9e8ab24.rmeta: crates/router-cli/src/lib.rs crates/router-cli/src/ios.rs crates/router-cli/src/mrouted.rs

crates/router-cli/src/lib.rs:
crates/router-cli/src/ios.rs:
crates/router-cli/src/mrouted.rs:
