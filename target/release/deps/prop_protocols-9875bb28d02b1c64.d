/root/repo/target/release/deps/prop_protocols-9875bb28d02b1c64.d: tests/prop_protocols.rs

/root/repo/target/release/deps/prop_protocols-9875bb28d02b1c64: tests/prop_protocols.rs

tests/prop_protocols.rs:
