/root/repo/target/release/deps/determinism-41be074940b07dfb.d: tests/determinism.rs

/root/repo/target/release/deps/determinism-41be074940b07dfb: tests/determinism.rs

tests/determinism.rs:
