/root/repo/target/release/deps/tools_integration-461f0f51c3b088f8.d: tests/tools_integration.rs

/root/repo/target/release/deps/tools_integration-461f0f51c3b088f8: tests/tools_integration.rs

tests/tools_integration.rs:
