/root/repo/target/release/deps/sap_names-fca1257957b161e4.d: tests/sap_names.rs

/root/repo/target/release/deps/sap_names-fca1257957b161e4: tests/sap_names.rs

tests/sap_names.rs:
