/root/repo/target/release/deps/figure_shapes-d7b8844aaa1deac9.d: tests/figure_shapes.rs

/root/repo/target/release/deps/figure_shapes-d7b8844aaa1deac9: tests/figure_shapes.rs

tests/figure_shapes.rs:
