/root/repo/target/release/deps/snmp_vs_cli-7c7a975e8966386c.d: tests/snmp_vs_cli.rs

/root/repo/target/release/deps/snmp_vs_cli-7c7a975e8966386c: tests/snmp_vs_cli.rs

tests/snmp_vs_cli.rs:
