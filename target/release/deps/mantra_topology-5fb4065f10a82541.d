/root/repo/target/release/deps/mantra_topology-5fb4065f10a82541.d: crates/topology/src/lib.rs crates/topology/src/domain.rs crates/topology/src/graph.rs crates/topology/src/link.rs crates/topology/src/reference.rs crates/topology/src/router.rs

/root/repo/target/release/deps/libmantra_topology-5fb4065f10a82541.rlib: crates/topology/src/lib.rs crates/topology/src/domain.rs crates/topology/src/graph.rs crates/topology/src/link.rs crates/topology/src/reference.rs crates/topology/src/router.rs

/root/repo/target/release/deps/libmantra_topology-5fb4065f10a82541.rmeta: crates/topology/src/lib.rs crates/topology/src/domain.rs crates/topology/src/graph.rs crates/topology/src/link.rs crates/topology/src/reference.rs crates/topology/src/router.rs

crates/topology/src/lib.rs:
crates/topology/src/domain.rs:
crates/topology/src/graph.rs:
crates/topology/src/link.rs:
crates/topology/src/reference.rs:
crates/topology/src/router.rs:
