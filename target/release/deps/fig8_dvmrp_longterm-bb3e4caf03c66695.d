/root/repo/target/release/deps/fig8_dvmrp_longterm-bb3e4caf03c66695.d: crates/bench/src/bin/fig8_dvmrp_longterm.rs

/root/repo/target/release/deps/fig8_dvmrp_longterm-bb3e4caf03c66695: crates/bench/src/bin/fig8_dvmrp_longterm.rs

crates/bench/src/bin/fig8_dvmrp_longterm.rs:
