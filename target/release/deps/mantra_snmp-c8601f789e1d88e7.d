/root/repo/target/release/deps/mantra_snmp-c8601f789e1d88e7.d: crates/snmp/src/lib.rs crates/snmp/src/agent.rs crates/snmp/src/manager.rs crates/snmp/src/mib.rs crates/snmp/src/oid.rs crates/snmp/src/types.rs

/root/repo/target/release/deps/libmantra_snmp-c8601f789e1d88e7.rlib: crates/snmp/src/lib.rs crates/snmp/src/agent.rs crates/snmp/src/manager.rs crates/snmp/src/mib.rs crates/snmp/src/oid.rs crates/snmp/src/types.rs

/root/repo/target/release/deps/libmantra_snmp-c8601f789e1d88e7.rmeta: crates/snmp/src/lib.rs crates/snmp/src/agent.rs crates/snmp/src/manager.rs crates/snmp/src/mib.rs crates/snmp/src/oid.rs crates/snmp/src/types.rs

crates/snmp/src/lib.rs:
crates/snmp/src/agent.rs:
crates/snmp/src/manager.rs:
crates/snmp/src/mib.rs:
crates/snmp/src/oid.rs:
crates/snmp/src/types.rs:
