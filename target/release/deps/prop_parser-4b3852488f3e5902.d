/root/repo/target/release/deps/prop_parser-4b3852488f3e5902.d: tests/prop_parser.rs

/root/repo/target/release/deps/prop_parser-4b3852488f3e5902: tests/prop_parser.rs

tests/prop_parser.rs:
