/root/repo/target/release/deps/mantra_protocols-201ea9c744de7fff.d: crates/protocols/src/lib.rs crates/protocols/src/dvmrp.rs crates/protocols/src/igmp.rs crates/protocols/src/mbgp.rs crates/protocols/src/mfib.rs crates/protocols/src/msdp.rs crates/protocols/src/pim.rs

/root/repo/target/release/deps/libmantra_protocols-201ea9c744de7fff.rlib: crates/protocols/src/lib.rs crates/protocols/src/dvmrp.rs crates/protocols/src/igmp.rs crates/protocols/src/mbgp.rs crates/protocols/src/mfib.rs crates/protocols/src/msdp.rs crates/protocols/src/pim.rs

/root/repo/target/release/deps/libmantra_protocols-201ea9c744de7fff.rmeta: crates/protocols/src/lib.rs crates/protocols/src/dvmrp.rs crates/protocols/src/igmp.rs crates/protocols/src/mbgp.rs crates/protocols/src/mfib.rs crates/protocols/src/msdp.rs crates/protocols/src/pim.rs

crates/protocols/src/lib.rs:
crates/protocols/src/dvmrp.rs:
crates/protocols/src/igmp.rs:
crates/protocols/src/mbgp.rs:
crates/protocols/src/mfib.rs:
crates/protocols/src/msdp.rs:
crates/protocols/src/pim.rs:
