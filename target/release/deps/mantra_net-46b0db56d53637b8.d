/root/repo/target/release/deps/mantra_net-46b0db56d53637b8.d: crates/net/src/lib.rs crates/net/src/addr.rs crates/net/src/id.rs crates/net/src/prefix.rs crates/net/src/rate.rs crates/net/src/time.rs crates/net/src/trie.rs

/root/repo/target/release/deps/libmantra_net-46b0db56d53637b8.rlib: crates/net/src/lib.rs crates/net/src/addr.rs crates/net/src/id.rs crates/net/src/prefix.rs crates/net/src/rate.rs crates/net/src/time.rs crates/net/src/trie.rs

/root/repo/target/release/deps/libmantra_net-46b0db56d53637b8.rmeta: crates/net/src/lib.rs crates/net/src/addr.rs crates/net/src/id.rs crates/net/src/prefix.rs crates/net/src/rate.rs crates/net/src/time.rs crates/net/src/trie.rs

crates/net/src/lib.rs:
crates/net/src/addr.rs:
crates/net/src/id.rs:
crates/net/src/prefix.rs:
crates/net/src/rate.rs:
crates/net/src/time.rs:
crates/net/src/trie.rs:
