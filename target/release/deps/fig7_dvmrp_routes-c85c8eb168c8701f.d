/root/repo/target/release/deps/fig7_dvmrp_routes-c85c8eb168c8701f.d: crates/bench/src/bin/fig7_dvmrp_routes.rs

/root/repo/target/release/deps/fig7_dvmrp_routes-c85c8eb168c8701f: crates/bench/src/bin/fig7_dvmrp_routes.rs

crates/bench/src/bin/fig7_dvmrp_routes.rs:
