/root/repo/target/release/deps/mantra_bench-8fc8ba37a6c0f15f.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libmantra_bench-8fc8ba37a6c0f15f.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libmantra_bench-8fc8ba37a6c0f15f.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
