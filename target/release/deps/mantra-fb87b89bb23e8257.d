/root/repo/target/release/deps/mantra-fb87b89bb23e8257.d: src/lib.rs

/root/repo/target/release/deps/mantra-fb87b89bb23e8257: src/lib.rs

src/lib.rs:
