/root/repo/target/release/deps/fig5_bandwidth-4b803b72f0d4564b.d: crates/bench/src/bin/fig5_bandwidth.rs

/root/repo/target/release/deps/fig5_bandwidth-4b803b72f0d4564b: crates/bench/src/bin/fig5_bandwidth.rs

crates/bench/src/bin/fig5_bandwidth.rs:
