/root/repo/target/release/deps/fig4_density-f4bc03932fa112c5.d: crates/bench/src/bin/fig4_density.rs

/root/repo/target/release/deps/fig4_density-f4bc03932fa112c5: crates/bench/src/bin/fig4_density.rs

crates/bench/src/bin/fig4_density.rs:
