/root/repo/target/release/deps/fig9_route_injection-a5651a210f5fdf34.d: crates/bench/src/bin/fig9_route_injection.rs

/root/repo/target/release/deps/fig9_route_injection-a5651a210f5fdf34: crates/bench/src/bin/fig9_route_injection.rs

crates/bench/src/bin/fig9_route_injection.rs:
