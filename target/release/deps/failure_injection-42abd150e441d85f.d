/root/repo/target/release/deps/failure_injection-42abd150e441d85f.d: tests/failure_injection.rs

/root/repo/target/release/deps/failure_injection-42abd150e441d85f: tests/failure_injection.rs

tests/failure_injection.rs:
