/root/repo/target/release/deps/mantra-c0da27df378e584e.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/cmd.rs

/root/repo/target/release/deps/mantra-c0da27df378e584e: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/cmd.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/cmd.rs:
