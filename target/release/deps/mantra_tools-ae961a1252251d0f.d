/root/repo/target/release/deps/mantra_tools-ae961a1252251d0f.d: crates/tools/src/lib.rs crates/tools/src/mrinfo.rs crates/tools/src/mrtree.rs crates/tools/src/mtrace.rs crates/tools/src/mwatch.rs

/root/repo/target/release/deps/libmantra_tools-ae961a1252251d0f.rlib: crates/tools/src/lib.rs crates/tools/src/mrinfo.rs crates/tools/src/mrtree.rs crates/tools/src/mtrace.rs crates/tools/src/mwatch.rs

/root/repo/target/release/deps/libmantra_tools-ae961a1252251d0f.rmeta: crates/tools/src/lib.rs crates/tools/src/mrinfo.rs crates/tools/src/mrtree.rs crates/tools/src/mtrace.rs crates/tools/src/mwatch.rs

crates/tools/src/lib.rs:
crates/tools/src/mrinfo.rs:
crates/tools/src/mrtree.rs:
crates/tools/src/mtrace.rs:
crates/tools/src/mwatch.rs:
