/root/repo/target/release/deps/mantra-da97648e1894fc31.d: src/lib.rs

/root/repo/target/release/deps/libmantra-da97648e1894fc31.rlib: src/lib.rs

/root/repo/target/release/deps/libmantra-da97648e1894fc31.rmeta: src/lib.rs

src/lib.rs:
