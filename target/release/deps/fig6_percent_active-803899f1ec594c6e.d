/root/repo/target/release/deps/fig6_percent_active-803899f1ec594c6e.d: crates/bench/src/bin/fig6_percent_active.rs

/root/repo/target/release/deps/fig6_percent_active-803899f1ec594c6e: crates/bench/src/bin/fig6_percent_active.rs

crates/bench/src/bin/fig6_percent_active.rs:
