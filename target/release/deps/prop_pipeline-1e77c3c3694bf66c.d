/root/repo/target/release/deps/prop_pipeline-1e77c3c3694bf66c.d: tests/prop_pipeline.rs

/root/repo/target/release/deps/prop_pipeline-1e77c3c3694bf66c: tests/prop_pipeline.rs

tests/prop_pipeline.rs:
