/root/repo/target/release/deps/pipeline_end_to_end-71c4c0991bda4197.d: tests/pipeline_end_to_end.rs

/root/repo/target/release/deps/pipeline_end_to_end-71c4c0991bda4197: tests/pipeline_end_to_end.rs

tests/pipeline_end_to_end.rs:
