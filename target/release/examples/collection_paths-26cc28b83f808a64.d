/root/repo/target/release/examples/collection_paths-26cc28b83f808a64.d: examples/collection_paths.rs

/root/repo/target/release/examples/collection_paths-26cc28b83f808a64: examples/collection_paths.rs

examples/collection_paths.rs:
