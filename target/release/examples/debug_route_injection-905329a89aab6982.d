/root/repo/target/release/examples/debug_route_injection-905329a89aab6982.d: examples/debug_route_injection.rs

/root/repo/target/release/examples/debug_route_injection-905329a89aab6982: examples/debug_route_injection.rs

examples/debug_route_injection.rs:
