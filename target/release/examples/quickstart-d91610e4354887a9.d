/root/repo/target/release/examples/quickstart-d91610e4354887a9.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-d91610e4354887a9: examples/quickstart.rs

examples/quickstart.rs:
