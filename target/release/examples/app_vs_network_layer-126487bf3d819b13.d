/root/repo/target/release/examples/app_vs_network_layer-126487bf3d819b13.d: examples/app_vs_network_layer.rs

/root/repo/target/release/examples/app_vs_network_layer-126487bf3d819b13: examples/app_vs_network_layer.rs

examples/app_vs_network_layer.rs:
