/root/repo/target/release/examples/transition_study-3873a36dba14f09c.d: examples/transition_study.rs

/root/repo/target/release/examples/transition_study-3873a36dba14f09c: examples/transition_study.rs

examples/transition_study.rs:
