/root/repo/target/release/examples/multi_router_aggregation-3a466d9b06bb1edb.d: examples/multi_router_aggregation.rs

/root/repo/target/release/examples/multi_router_aggregation-3a466d9b06bb1edb: examples/multi_router_aggregation.rs

examples/multi_router_aggregation.rs:
