/root/repo/target/release/examples/diagnostic_toolbox-947d120cc9774e4d.d: examples/diagnostic_toolbox.rs

/root/repo/target/release/examples/diagnostic_toolbox-947d120cc9774e4d: examples/diagnostic_toolbox.rs

examples/diagnostic_toolbox.rs:
