/root/repo/target/release/examples/resilient_collection-8b19116e4774b260.d: examples/resilient_collection.rs

/root/repo/target/release/examples/resilient_collection-8b19116e4774b260: examples/resilient_collection.rs

examples/resilient_collection.rs:
