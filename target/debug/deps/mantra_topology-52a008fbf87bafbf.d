/root/repo/target/debug/deps/mantra_topology-52a008fbf87bafbf.d: crates/topology/src/lib.rs crates/topology/src/domain.rs crates/topology/src/graph.rs crates/topology/src/link.rs crates/topology/src/reference.rs crates/topology/src/router.rs

/root/repo/target/debug/deps/mantra_topology-52a008fbf87bafbf: crates/topology/src/lib.rs crates/topology/src/domain.rs crates/topology/src/graph.rs crates/topology/src/link.rs crates/topology/src/reference.rs crates/topology/src/router.rs

crates/topology/src/lib.rs:
crates/topology/src/domain.rs:
crates/topology/src/graph.rs:
crates/topology/src/link.rs:
crates/topology/src/reference.rs:
crates/topology/src/router.rs:
