/root/repo/target/debug/deps/determinism-734d97988a44e197.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-734d97988a44e197: tests/determinism.rs

tests/determinism.rs:
