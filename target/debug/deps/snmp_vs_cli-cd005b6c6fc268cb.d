/root/repo/target/debug/deps/snmp_vs_cli-cd005b6c6fc268cb.d: tests/snmp_vs_cli.rs Cargo.toml

/root/repo/target/debug/deps/libsnmp_vs_cli-cd005b6c6fc268cb.rmeta: tests/snmp_vs_cli.rs Cargo.toml

tests/snmp_vs_cli.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
