/root/repo/target/debug/deps/mantra-da55850c613b20fa.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmantra-da55850c613b20fa.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
