/root/repo/target/debug/deps/prop_net-371849aaaa511f5b.d: crates/net/tests/prop_net.rs Cargo.toml

/root/repo/target/debug/deps/libprop_net-371849aaaa511f5b.rmeta: crates/net/tests/prop_net.rs Cargo.toml

crates/net/tests/prop_net.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
