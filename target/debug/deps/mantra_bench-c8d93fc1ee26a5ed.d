/root/repo/target/debug/deps/mantra_bench-c8d93fc1ee26a5ed.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/mantra_bench-c8d93fc1ee26a5ed: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
