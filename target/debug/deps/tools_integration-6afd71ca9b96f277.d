/root/repo/target/debug/deps/tools_integration-6afd71ca9b96f277.d: tests/tools_integration.rs Cargo.toml

/root/repo/target/debug/deps/libtools_integration-6afd71ca9b96f277.rmeta: tests/tools_integration.rs Cargo.toml

tests/tools_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
