/root/repo/target/debug/deps/fig4_density-ce735db2603bb5df.d: crates/bench/src/bin/fig4_density.rs

/root/repo/target/debug/deps/fig4_density-ce735db2603bb5df: crates/bench/src/bin/fig4_density.rs

crates/bench/src/bin/fig4_density.rs:
