/root/repo/target/debug/deps/criterion-7899f4e643749e7f.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/criterion-7899f4e643749e7f: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
