/root/repo/target/debug/deps/fig5_bandwidth-71e5e1b2a567653c.d: crates/bench/src/bin/fig5_bandwidth.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_bandwidth-71e5e1b2a567653c.rmeta: crates/bench/src/bin/fig5_bandwidth.rs Cargo.toml

crates/bench/src/bin/fig5_bandwidth.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
