/root/repo/target/debug/deps/sap_names-316822edcf0b3028.d: tests/sap_names.rs Cargo.toml

/root/repo/target/debug/deps/libsap_names-316822edcf0b3028.rmeta: tests/sap_names.rs Cargo.toml

tests/sap_names.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
