/root/repo/target/debug/deps/crossbeam-1966a0e20820985f.d: vendor/crossbeam/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcrossbeam-1966a0e20820985f.rmeta: vendor/crossbeam/src/lib.rs Cargo.toml

vendor/crossbeam/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
