/root/repo/target/debug/deps/criterion-8955e629599e1d7a.d: vendor/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-8955e629599e1d7a.rmeta: vendor/criterion/src/lib.rs Cargo.toml

vendor/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
