/root/repo/target/debug/deps/fig8_dvmrp_longterm-cceb344193964439.d: crates/bench/src/bin/fig8_dvmrp_longterm.rs

/root/repo/target/debug/deps/fig8_dvmrp_longterm-cceb344193964439: crates/bench/src/bin/fig8_dvmrp_longterm.rs

crates/bench/src/bin/fig8_dvmrp_longterm.rs:
