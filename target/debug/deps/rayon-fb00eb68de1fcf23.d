/root/repo/target/debug/deps/rayon-fb00eb68de1fcf23.d: vendor/rayon/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librayon-fb00eb68de1fcf23.rmeta: vendor/rayon/src/lib.rs Cargo.toml

vendor/rayon/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
