/root/repo/target/debug/deps/fig5_bandwidth-e84b6ba505ba4629.d: crates/bench/src/bin/fig5_bandwidth.rs

/root/repo/target/debug/deps/fig5_bandwidth-e84b6ba505ba4629: crates/bench/src/bin/fig5_bandwidth.rs

crates/bench/src/bin/fig5_bandwidth.rs:
