/root/repo/target/debug/deps/mantra_protocols-c366a481845346e6.d: crates/protocols/src/lib.rs crates/protocols/src/dvmrp.rs crates/protocols/src/igmp.rs crates/protocols/src/mbgp.rs crates/protocols/src/mfib.rs crates/protocols/src/msdp.rs crates/protocols/src/pim.rs Cargo.toml

/root/repo/target/debug/deps/libmantra_protocols-c366a481845346e6.rmeta: crates/protocols/src/lib.rs crates/protocols/src/dvmrp.rs crates/protocols/src/igmp.rs crates/protocols/src/mbgp.rs crates/protocols/src/mfib.rs crates/protocols/src/msdp.rs crates/protocols/src/pim.rs Cargo.toml

crates/protocols/src/lib.rs:
crates/protocols/src/dvmrp.rs:
crates/protocols/src/igmp.rs:
crates/protocols/src/mbgp.rs:
crates/protocols/src/mfib.rs:
crates/protocols/src/msdp.rs:
crates/protocols/src/pim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
