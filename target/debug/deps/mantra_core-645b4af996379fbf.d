/root/repo/target/debug/deps/mantra_core-645b4af996379fbf.d: crates/core/src/lib.rs crates/core/src/aggregate.rs crates/core/src/anomaly.rs crates/core/src/collector.rs crates/core/src/logger.rs crates/core/src/longterm.rs crates/core/src/monitor.rs crates/core/src/output.rs crates/core/src/processor.rs crates/core/src/stats.rs crates/core/src/tables.rs crates/core/src/web.rs Cargo.toml

/root/repo/target/debug/deps/libmantra_core-645b4af996379fbf.rmeta: crates/core/src/lib.rs crates/core/src/aggregate.rs crates/core/src/anomaly.rs crates/core/src/collector.rs crates/core/src/logger.rs crates/core/src/longterm.rs crates/core/src/monitor.rs crates/core/src/output.rs crates/core/src/processor.rs crates/core/src/stats.rs crates/core/src/tables.rs crates/core/src/web.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/aggregate.rs:
crates/core/src/anomaly.rs:
crates/core/src/collector.rs:
crates/core/src/logger.rs:
crates/core/src/longterm.rs:
crates/core/src/monitor.rs:
crates/core/src/output.rs:
crates/core/src/processor.rs:
crates/core/src/stats.rs:
crates/core/src/tables.rs:
crates/core/src/web.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
