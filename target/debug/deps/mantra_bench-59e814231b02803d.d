/root/repo/target/debug/deps/mantra_bench-59e814231b02803d.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmantra_bench-59e814231b02803d.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
