/root/repo/target/debug/deps/mantra-ef50a77ae2226e2a.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/cmd.rs Cargo.toml

/root/repo/target/debug/deps/libmantra-ef50a77ae2226e2a.rmeta: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/cmd.rs Cargo.toml

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/cmd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
