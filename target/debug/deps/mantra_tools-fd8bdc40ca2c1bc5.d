/root/repo/target/debug/deps/mantra_tools-fd8bdc40ca2c1bc5.d: crates/tools/src/lib.rs crates/tools/src/mrinfo.rs crates/tools/src/mrtree.rs crates/tools/src/mtrace.rs crates/tools/src/mwatch.rs

/root/repo/target/debug/deps/mantra_tools-fd8bdc40ca2c1bc5: crates/tools/src/lib.rs crates/tools/src/mrinfo.rs crates/tools/src/mrtree.rs crates/tools/src/mtrace.rs crates/tools/src/mwatch.rs

crates/tools/src/lib.rs:
crates/tools/src/mrinfo.rs:
crates/tools/src/mrtree.rs:
crates/tools/src/mtrace.rs:
crates/tools/src/mwatch.rs:
