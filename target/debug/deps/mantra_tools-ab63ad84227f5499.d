/root/repo/target/debug/deps/mantra_tools-ab63ad84227f5499.d: crates/tools/src/lib.rs crates/tools/src/mrinfo.rs crates/tools/src/mrtree.rs crates/tools/src/mtrace.rs crates/tools/src/mwatch.rs Cargo.toml

/root/repo/target/debug/deps/libmantra_tools-ab63ad84227f5499.rmeta: crates/tools/src/lib.rs crates/tools/src/mrinfo.rs crates/tools/src/mrtree.rs crates/tools/src/mtrace.rs crates/tools/src/mwatch.rs Cargo.toml

crates/tools/src/lib.rs:
crates/tools/src/mrinfo.rs:
crates/tools/src/mrtree.rs:
crates/tools/src/mtrace.rs:
crates/tools/src/mwatch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
