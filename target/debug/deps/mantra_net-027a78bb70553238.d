/root/repo/target/debug/deps/mantra_net-027a78bb70553238.d: crates/net/src/lib.rs crates/net/src/addr.rs crates/net/src/id.rs crates/net/src/prefix.rs crates/net/src/rate.rs crates/net/src/time.rs crates/net/src/trie.rs

/root/repo/target/debug/deps/mantra_net-027a78bb70553238: crates/net/src/lib.rs crates/net/src/addr.rs crates/net/src/id.rs crates/net/src/prefix.rs crates/net/src/rate.rs crates/net/src/time.rs crates/net/src/trie.rs

crates/net/src/lib.rs:
crates/net/src/addr.rs:
crates/net/src/id.rs:
crates/net/src/prefix.rs:
crates/net/src/rate.rs:
crates/net/src/time.rs:
crates/net/src/trie.rs:
