/root/repo/target/debug/deps/mantra-684678fd8ff79955.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/cmd.rs

/root/repo/target/debug/deps/mantra-684678fd8ff79955: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/cmd.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/cmd.rs:
