/root/repo/target/debug/deps/mantra_protocols-23c06b59f06435de.d: crates/protocols/src/lib.rs crates/protocols/src/dvmrp.rs crates/protocols/src/igmp.rs crates/protocols/src/mbgp.rs crates/protocols/src/mfib.rs crates/protocols/src/msdp.rs crates/protocols/src/pim.rs

/root/repo/target/debug/deps/libmantra_protocols-23c06b59f06435de.rlib: crates/protocols/src/lib.rs crates/protocols/src/dvmrp.rs crates/protocols/src/igmp.rs crates/protocols/src/mbgp.rs crates/protocols/src/mfib.rs crates/protocols/src/msdp.rs crates/protocols/src/pim.rs

/root/repo/target/debug/deps/libmantra_protocols-23c06b59f06435de.rmeta: crates/protocols/src/lib.rs crates/protocols/src/dvmrp.rs crates/protocols/src/igmp.rs crates/protocols/src/mbgp.rs crates/protocols/src/mfib.rs crates/protocols/src/msdp.rs crates/protocols/src/pim.rs

crates/protocols/src/lib.rs:
crates/protocols/src/dvmrp.rs:
crates/protocols/src/igmp.rs:
crates/protocols/src/mbgp.rs:
crates/protocols/src/mfib.rs:
crates/protocols/src/msdp.rs:
crates/protocols/src/pim.rs:
