/root/repo/target/debug/deps/mantra_snmp-7f176c8ad0555802.d: crates/snmp/src/lib.rs crates/snmp/src/agent.rs crates/snmp/src/manager.rs crates/snmp/src/mib.rs crates/snmp/src/oid.rs crates/snmp/src/types.rs

/root/repo/target/debug/deps/mantra_snmp-7f176c8ad0555802: crates/snmp/src/lib.rs crates/snmp/src/agent.rs crates/snmp/src/manager.rs crates/snmp/src/mib.rs crates/snmp/src/oid.rs crates/snmp/src/types.rs

crates/snmp/src/lib.rs:
crates/snmp/src/agent.rs:
crates/snmp/src/manager.rs:
crates/snmp/src/mib.rs:
crates/snmp/src/oid.rs:
crates/snmp/src/types.rs:
