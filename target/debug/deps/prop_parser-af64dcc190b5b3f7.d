/root/repo/target/debug/deps/prop_parser-af64dcc190b5b3f7.d: tests/prop_parser.rs Cargo.toml

/root/repo/target/debug/deps/libprop_parser-af64dcc190b5b3f7.rmeta: tests/prop_parser.rs Cargo.toml

tests/prop_parser.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
