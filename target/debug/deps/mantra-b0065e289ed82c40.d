/root/repo/target/debug/deps/mantra-b0065e289ed82c40.d: src/lib.rs

/root/repo/target/debug/deps/mantra-b0065e289ed82c40: src/lib.rs

src/lib.rs:
