/root/repo/target/debug/deps/figure_shapes-4e6d97368618bed0.d: tests/figure_shapes.rs

/root/repo/target/debug/deps/figure_shapes-4e6d97368618bed0: tests/figure_shapes.rs

tests/figure_shapes.rs:
