/root/repo/target/debug/deps/snmp_vs_cli-f1de9361a86e3e65.d: tests/snmp_vs_cli.rs

/root/repo/target/debug/deps/snmp_vs_cli-f1de9361a86e3e65: tests/snmp_vs_cli.rs

tests/snmp_vs_cli.rs:
