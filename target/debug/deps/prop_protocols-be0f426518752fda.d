/root/repo/target/debug/deps/prop_protocols-be0f426518752fda.d: tests/prop_protocols.rs

/root/repo/target/debug/deps/prop_protocols-be0f426518752fda: tests/prop_protocols.rs

tests/prop_protocols.rs:
