/root/repo/target/debug/deps/mantra_snmp-344c07fce4339e4c.d: crates/snmp/src/lib.rs crates/snmp/src/agent.rs crates/snmp/src/manager.rs crates/snmp/src/mib.rs crates/snmp/src/oid.rs crates/snmp/src/types.rs Cargo.toml

/root/repo/target/debug/deps/libmantra_snmp-344c07fce4339e4c.rmeta: crates/snmp/src/lib.rs crates/snmp/src/agent.rs crates/snmp/src/manager.rs crates/snmp/src/mib.rs crates/snmp/src/oid.rs crates/snmp/src/types.rs Cargo.toml

crates/snmp/src/lib.rs:
crates/snmp/src/agent.rs:
crates/snmp/src/manager.rs:
crates/snmp/src/mib.rs:
crates/snmp/src/oid.rs:
crates/snmp/src/types.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
