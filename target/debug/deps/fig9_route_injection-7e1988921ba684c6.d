/root/repo/target/debug/deps/fig9_route_injection-7e1988921ba684c6.d: crates/bench/src/bin/fig9_route_injection.rs Cargo.toml

/root/repo/target/debug/deps/libfig9_route_injection-7e1988921ba684c6.rmeta: crates/bench/src/bin/fig9_route_injection.rs Cargo.toml

crates/bench/src/bin/fig9_route_injection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
