/root/repo/target/debug/deps/mantra_router_cli-fafdb2b4fe8aebd0.d: crates/router-cli/src/lib.rs crates/router-cli/src/ios.rs crates/router-cli/src/mrouted.rs

/root/repo/target/debug/deps/libmantra_router_cli-fafdb2b4fe8aebd0.rlib: crates/router-cli/src/lib.rs crates/router-cli/src/ios.rs crates/router-cli/src/mrouted.rs

/root/repo/target/debug/deps/libmantra_router_cli-fafdb2b4fe8aebd0.rmeta: crates/router-cli/src/lib.rs crates/router-cli/src/ios.rs crates/router-cli/src/mrouted.rs

crates/router-cli/src/lib.rs:
crates/router-cli/src/ios.rs:
crates/router-cli/src/mrouted.rs:
