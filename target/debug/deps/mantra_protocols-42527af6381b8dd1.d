/root/repo/target/debug/deps/mantra_protocols-42527af6381b8dd1.d: crates/protocols/src/lib.rs crates/protocols/src/dvmrp.rs crates/protocols/src/igmp.rs crates/protocols/src/mbgp.rs crates/protocols/src/mfib.rs crates/protocols/src/msdp.rs crates/protocols/src/pim.rs

/root/repo/target/debug/deps/mantra_protocols-42527af6381b8dd1: crates/protocols/src/lib.rs crates/protocols/src/dvmrp.rs crates/protocols/src/igmp.rs crates/protocols/src/mbgp.rs crates/protocols/src/mfib.rs crates/protocols/src/msdp.rs crates/protocols/src/pim.rs

crates/protocols/src/lib.rs:
crates/protocols/src/dvmrp.rs:
crates/protocols/src/igmp.rs:
crates/protocols/src/mbgp.rs:
crates/protocols/src/mfib.rs:
crates/protocols/src/msdp.rs:
crates/protocols/src/pim.rs:
