/root/repo/target/debug/deps/mantra_sim-74a6d80fc942f90c.d: crates/sim/src/lib.rs crates/sim/src/applayer.rs crates/sim/src/event.rs crates/sim/src/network.rs crates/sim/src/rng.rs crates/sim/src/scenario.rs crates/sim/src/session.rs crates/sim/src/trees.rs crates/sim/src/workload.rs Cargo.toml

/root/repo/target/debug/deps/libmantra_sim-74a6d80fc942f90c.rmeta: crates/sim/src/lib.rs crates/sim/src/applayer.rs crates/sim/src/event.rs crates/sim/src/network.rs crates/sim/src/rng.rs crates/sim/src/scenario.rs crates/sim/src/session.rs crates/sim/src/trees.rs crates/sim/src/workload.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/applayer.rs:
crates/sim/src/event.rs:
crates/sim/src/network.rs:
crates/sim/src/rng.rs:
crates/sim/src/scenario.rs:
crates/sim/src/session.rs:
crates/sim/src/trees.rs:
crates/sim/src/workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
