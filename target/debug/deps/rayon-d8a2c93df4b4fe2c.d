/root/repo/target/debug/deps/rayon-d8a2c93df4b4fe2c.d: vendor/rayon/src/lib.rs

/root/repo/target/debug/deps/rayon-d8a2c93df4b4fe2c: vendor/rayon/src/lib.rs

vendor/rayon/src/lib.rs:
