/root/repo/target/debug/deps/mantra_router_cli-7fbe77f58abe17c0.d: crates/router-cli/src/lib.rs crates/router-cli/src/ios.rs crates/router-cli/src/mrouted.rs Cargo.toml

/root/repo/target/debug/deps/libmantra_router_cli-7fbe77f58abe17c0.rmeta: crates/router-cli/src/lib.rs crates/router-cli/src/ios.rs crates/router-cli/src/mrouted.rs Cargo.toml

crates/router-cli/src/lib.rs:
crates/router-cli/src/ios.rs:
crates/router-cli/src/mrouted.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
