/root/repo/target/debug/deps/mantra_net-7da3638b9948b7c1.d: crates/net/src/lib.rs crates/net/src/addr.rs crates/net/src/id.rs crates/net/src/prefix.rs crates/net/src/rate.rs crates/net/src/time.rs crates/net/src/trie.rs Cargo.toml

/root/repo/target/debug/deps/libmantra_net-7da3638b9948b7c1.rmeta: crates/net/src/lib.rs crates/net/src/addr.rs crates/net/src/id.rs crates/net/src/prefix.rs crates/net/src/rate.rs crates/net/src/time.rs crates/net/src/trie.rs Cargo.toml

crates/net/src/lib.rs:
crates/net/src/addr.rs:
crates/net/src/id.rs:
crates/net/src/prefix.rs:
crates/net/src/rate.rs:
crates/net/src/time.rs:
crates/net/src/trie.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
