/root/repo/target/debug/deps/fig4_density-525e531ccaefc44a.d: crates/bench/src/bin/fig4_density.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_density-525e531ccaefc44a.rmeta: crates/bench/src/bin/fig4_density.rs Cargo.toml

crates/bench/src/bin/fig4_density.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
