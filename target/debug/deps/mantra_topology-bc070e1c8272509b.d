/root/repo/target/debug/deps/mantra_topology-bc070e1c8272509b.d: crates/topology/src/lib.rs crates/topology/src/domain.rs crates/topology/src/graph.rs crates/topology/src/link.rs crates/topology/src/reference.rs crates/topology/src/router.rs

/root/repo/target/debug/deps/libmantra_topology-bc070e1c8272509b.rlib: crates/topology/src/lib.rs crates/topology/src/domain.rs crates/topology/src/graph.rs crates/topology/src/link.rs crates/topology/src/reference.rs crates/topology/src/router.rs

/root/repo/target/debug/deps/libmantra_topology-bc070e1c8272509b.rmeta: crates/topology/src/lib.rs crates/topology/src/domain.rs crates/topology/src/graph.rs crates/topology/src/link.rs crates/topology/src/reference.rs crates/topology/src/router.rs

crates/topology/src/lib.rs:
crates/topology/src/domain.rs:
crates/topology/src/graph.rs:
crates/topology/src/link.rs:
crates/topology/src/reference.rs:
crates/topology/src/router.rs:
