/root/repo/target/debug/deps/failure_injection-e876f0233d668767.d: tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-e876f0233d668767: tests/failure_injection.rs

tests/failure_injection.rs:
