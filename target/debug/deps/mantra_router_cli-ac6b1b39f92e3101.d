/root/repo/target/debug/deps/mantra_router_cli-ac6b1b39f92e3101.d: crates/router-cli/src/lib.rs crates/router-cli/src/ios.rs crates/router-cli/src/mrouted.rs Cargo.toml

/root/repo/target/debug/deps/libmantra_router_cli-ac6b1b39f92e3101.rmeta: crates/router-cli/src/lib.rs crates/router-cli/src/ios.rs crates/router-cli/src/mrouted.rs Cargo.toml

crates/router-cli/src/lib.rs:
crates/router-cli/src/ios.rs:
crates/router-cli/src/mrouted.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
