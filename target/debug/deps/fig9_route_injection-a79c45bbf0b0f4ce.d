/root/repo/target/debug/deps/fig9_route_injection-a79c45bbf0b0f4ce.d: crates/bench/src/bin/fig9_route_injection.rs

/root/repo/target/debug/deps/fig9_route_injection-a79c45bbf0b0f4ce: crates/bench/src/bin/fig9_route_injection.rs

crates/bench/src/bin/fig9_route_injection.rs:
