/root/repo/target/debug/deps/mantra_core-b313675041af4726.d: crates/core/src/lib.rs crates/core/src/aggregate.rs crates/core/src/anomaly.rs crates/core/src/collector.rs crates/core/src/logger.rs crates/core/src/longterm.rs crates/core/src/monitor.rs crates/core/src/output.rs crates/core/src/processor.rs crates/core/src/stats.rs crates/core/src/tables.rs crates/core/src/web.rs

/root/repo/target/debug/deps/libmantra_core-b313675041af4726.rlib: crates/core/src/lib.rs crates/core/src/aggregate.rs crates/core/src/anomaly.rs crates/core/src/collector.rs crates/core/src/logger.rs crates/core/src/longterm.rs crates/core/src/monitor.rs crates/core/src/output.rs crates/core/src/processor.rs crates/core/src/stats.rs crates/core/src/tables.rs crates/core/src/web.rs

/root/repo/target/debug/deps/libmantra_core-b313675041af4726.rmeta: crates/core/src/lib.rs crates/core/src/aggregate.rs crates/core/src/anomaly.rs crates/core/src/collector.rs crates/core/src/logger.rs crates/core/src/longterm.rs crates/core/src/monitor.rs crates/core/src/output.rs crates/core/src/processor.rs crates/core/src/stats.rs crates/core/src/tables.rs crates/core/src/web.rs

crates/core/src/lib.rs:
crates/core/src/aggregate.rs:
crates/core/src/anomaly.rs:
crates/core/src/collector.rs:
crates/core/src/logger.rs:
crates/core/src/longterm.rs:
crates/core/src/monitor.rs:
crates/core/src/output.rs:
crates/core/src/processor.rs:
crates/core/src/stats.rs:
crates/core/src/tables.rs:
crates/core/src/web.rs:
