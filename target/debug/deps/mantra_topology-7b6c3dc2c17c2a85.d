/root/repo/target/debug/deps/mantra_topology-7b6c3dc2c17c2a85.d: crates/topology/src/lib.rs crates/topology/src/domain.rs crates/topology/src/graph.rs crates/topology/src/link.rs crates/topology/src/reference.rs crates/topology/src/router.rs Cargo.toml

/root/repo/target/debug/deps/libmantra_topology-7b6c3dc2c17c2a85.rmeta: crates/topology/src/lib.rs crates/topology/src/domain.rs crates/topology/src/graph.rs crates/topology/src/link.rs crates/topology/src/reference.rs crates/topology/src/router.rs Cargo.toml

crates/topology/src/lib.rs:
crates/topology/src/domain.rs:
crates/topology/src/graph.rs:
crates/topology/src/link.rs:
crates/topology/src/reference.rs:
crates/topology/src/router.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
