/root/repo/target/debug/deps/mantra_net-54ac788210f93cc8.d: crates/net/src/lib.rs crates/net/src/addr.rs crates/net/src/id.rs crates/net/src/prefix.rs crates/net/src/rate.rs crates/net/src/time.rs crates/net/src/trie.rs

/root/repo/target/debug/deps/libmantra_net-54ac788210f93cc8.rlib: crates/net/src/lib.rs crates/net/src/addr.rs crates/net/src/id.rs crates/net/src/prefix.rs crates/net/src/rate.rs crates/net/src/time.rs crates/net/src/trie.rs

/root/repo/target/debug/deps/libmantra_net-54ac788210f93cc8.rmeta: crates/net/src/lib.rs crates/net/src/addr.rs crates/net/src/id.rs crates/net/src/prefix.rs crates/net/src/rate.rs crates/net/src/time.rs crates/net/src/trie.rs

crates/net/src/lib.rs:
crates/net/src/addr.rs:
crates/net/src/id.rs:
crates/net/src/prefix.rs:
crates/net/src/rate.rs:
crates/net/src/time.rs:
crates/net/src/trie.rs:
