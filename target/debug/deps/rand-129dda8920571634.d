/root/repo/target/debug/deps/rand-129dda8920571634.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/rand-129dda8920571634: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
