/root/repo/target/debug/deps/prop_pipeline-f5fdf3b88303d01c.d: tests/prop_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libprop_pipeline-f5fdf3b88303d01c.rmeta: tests/prop_pipeline.rs Cargo.toml

tests/prop_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
