/root/repo/target/debug/deps/mantra_core-4f2df8cfdbd524ea.d: crates/core/src/lib.rs crates/core/src/aggregate.rs crates/core/src/anomaly.rs crates/core/src/collector.rs crates/core/src/logger.rs crates/core/src/longterm.rs crates/core/src/monitor.rs crates/core/src/output.rs crates/core/src/processor.rs crates/core/src/stats.rs crates/core/src/tables.rs crates/core/src/web.rs

/root/repo/target/debug/deps/mantra_core-4f2df8cfdbd524ea: crates/core/src/lib.rs crates/core/src/aggregate.rs crates/core/src/anomaly.rs crates/core/src/collector.rs crates/core/src/logger.rs crates/core/src/longterm.rs crates/core/src/monitor.rs crates/core/src/output.rs crates/core/src/processor.rs crates/core/src/stats.rs crates/core/src/tables.rs crates/core/src/web.rs

crates/core/src/lib.rs:
crates/core/src/aggregate.rs:
crates/core/src/anomaly.rs:
crates/core/src/collector.rs:
crates/core/src/logger.rs:
crates/core/src/longterm.rs:
crates/core/src/monitor.rs:
crates/core/src/output.rs:
crates/core/src/processor.rs:
crates/core/src/stats.rs:
crates/core/src/tables.rs:
crates/core/src/web.rs:
