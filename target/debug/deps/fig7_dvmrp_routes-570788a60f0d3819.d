/root/repo/target/debug/deps/fig7_dvmrp_routes-570788a60f0d3819.d: crates/bench/src/bin/fig7_dvmrp_routes.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_dvmrp_routes-570788a60f0d3819.rmeta: crates/bench/src/bin/fig7_dvmrp_routes.rs Cargo.toml

crates/bench/src/bin/fig7_dvmrp_routes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
