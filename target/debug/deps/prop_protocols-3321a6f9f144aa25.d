/root/repo/target/debug/deps/prop_protocols-3321a6f9f144aa25.d: tests/prop_protocols.rs Cargo.toml

/root/repo/target/debug/deps/libprop_protocols-3321a6f9f144aa25.rmeta: tests/prop_protocols.rs Cargo.toml

tests/prop_protocols.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
