/root/repo/target/debug/deps/mantra-c2e75ac79cfd68f8.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/cmd.rs Cargo.toml

/root/repo/target/debug/deps/libmantra-c2e75ac79cfd68f8.rmeta: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/cmd.rs Cargo.toml

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/cmd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
