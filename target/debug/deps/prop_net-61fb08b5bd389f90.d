/root/repo/target/debug/deps/prop_net-61fb08b5bd389f90.d: crates/net/tests/prop_net.rs

/root/repo/target/debug/deps/prop_net-61fb08b5bd389f90: crates/net/tests/prop_net.rs

crates/net/tests/prop_net.rs:
