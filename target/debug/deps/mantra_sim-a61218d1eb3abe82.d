/root/repo/target/debug/deps/mantra_sim-a61218d1eb3abe82.d: crates/sim/src/lib.rs crates/sim/src/applayer.rs crates/sim/src/event.rs crates/sim/src/network.rs crates/sim/src/rng.rs crates/sim/src/scenario.rs crates/sim/src/session.rs crates/sim/src/trees.rs crates/sim/src/workload.rs

/root/repo/target/debug/deps/libmantra_sim-a61218d1eb3abe82.rlib: crates/sim/src/lib.rs crates/sim/src/applayer.rs crates/sim/src/event.rs crates/sim/src/network.rs crates/sim/src/rng.rs crates/sim/src/scenario.rs crates/sim/src/session.rs crates/sim/src/trees.rs crates/sim/src/workload.rs

/root/repo/target/debug/deps/libmantra_sim-a61218d1eb3abe82.rmeta: crates/sim/src/lib.rs crates/sim/src/applayer.rs crates/sim/src/event.rs crates/sim/src/network.rs crates/sim/src/rng.rs crates/sim/src/scenario.rs crates/sim/src/session.rs crates/sim/src/trees.rs crates/sim/src/workload.rs

crates/sim/src/lib.rs:
crates/sim/src/applayer.rs:
crates/sim/src/event.rs:
crates/sim/src/network.rs:
crates/sim/src/rng.rs:
crates/sim/src/scenario.rs:
crates/sim/src/session.rs:
crates/sim/src/trees.rs:
crates/sim/src/workload.rs:
