/root/repo/target/debug/deps/fig8_dvmrp_longterm-e5b20f8ddfffb345.d: crates/bench/src/bin/fig8_dvmrp_longterm.rs Cargo.toml

/root/repo/target/debug/deps/libfig8_dvmrp_longterm-e5b20f8ddfffb345.rmeta: crates/bench/src/bin/fig8_dvmrp_longterm.rs Cargo.toml

crates/bench/src/bin/fig8_dvmrp_longterm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
