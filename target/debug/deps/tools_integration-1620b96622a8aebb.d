/root/repo/target/debug/deps/tools_integration-1620b96622a8aebb.d: tests/tools_integration.rs

/root/repo/target/debug/deps/tools_integration-1620b96622a8aebb: tests/tools_integration.rs

tests/tools_integration.rs:
