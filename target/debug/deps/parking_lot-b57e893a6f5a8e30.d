/root/repo/target/debug/deps/parking_lot-b57e893a6f5a8e30.d: vendor/parking_lot/src/lib.rs

/root/repo/target/debug/deps/parking_lot-b57e893a6f5a8e30: vendor/parking_lot/src/lib.rs

vendor/parking_lot/src/lib.rs:
