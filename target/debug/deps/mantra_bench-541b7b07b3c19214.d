/root/repo/target/debug/deps/mantra_bench-541b7b07b3c19214.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmantra_bench-541b7b07b3c19214.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmantra_bench-541b7b07b3c19214.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
