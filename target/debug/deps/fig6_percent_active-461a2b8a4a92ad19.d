/root/repo/target/debug/deps/fig6_percent_active-461a2b8a4a92ad19.d: crates/bench/src/bin/fig6_percent_active.rs

/root/repo/target/debug/deps/fig6_percent_active-461a2b8a4a92ad19: crates/bench/src/bin/fig6_percent_active.rs

crates/bench/src/bin/fig6_percent_active.rs:
