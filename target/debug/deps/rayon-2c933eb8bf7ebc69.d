/root/repo/target/debug/deps/rayon-2c933eb8bf7ebc69.d: vendor/rayon/src/lib.rs

/root/repo/target/debug/deps/librayon-2c933eb8bf7ebc69.rlib: vendor/rayon/src/lib.rs

/root/repo/target/debug/deps/librayon-2c933eb8bf7ebc69.rmeta: vendor/rayon/src/lib.rs

vendor/rayon/src/lib.rs:
