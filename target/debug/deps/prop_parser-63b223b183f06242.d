/root/repo/target/debug/deps/prop_parser-63b223b183f06242.d: tests/prop_parser.rs

/root/repo/target/debug/deps/prop_parser-63b223b183f06242: tests/prop_parser.rs

tests/prop_parser.rs:
