/root/repo/target/debug/deps/pipeline_end_to_end-bab78b5d938a3f0d.d: tests/pipeline_end_to_end.rs

/root/repo/target/debug/deps/pipeline_end_to_end-bab78b5d938a3f0d: tests/pipeline_end_to_end.rs

tests/pipeline_end_to_end.rs:
