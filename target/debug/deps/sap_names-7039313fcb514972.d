/root/repo/target/debug/deps/sap_names-7039313fcb514972.d: tests/sap_names.rs

/root/repo/target/debug/deps/sap_names-7039313fcb514972: tests/sap_names.rs

tests/sap_names.rs:
