/root/repo/target/debug/deps/fig3_usage-234b142907500545.d: crates/bench/src/bin/fig3_usage.rs

/root/repo/target/debug/deps/fig3_usage-234b142907500545: crates/bench/src/bin/fig3_usage.rs

crates/bench/src/bin/fig3_usage.rs:
