/root/repo/target/debug/deps/mantra-ea5d38f0125bc8bb.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmantra-ea5d38f0125bc8bb.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
