/root/repo/target/debug/deps/fig7_dvmrp_routes-3c246685285037bc.d: crates/bench/src/bin/fig7_dvmrp_routes.rs

/root/repo/target/debug/deps/fig7_dvmrp_routes-3c246685285037bc: crates/bench/src/bin/fig7_dvmrp_routes.rs

crates/bench/src/bin/fig7_dvmrp_routes.rs:
