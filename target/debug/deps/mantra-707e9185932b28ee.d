/root/repo/target/debug/deps/mantra-707e9185932b28ee.d: src/lib.rs

/root/repo/target/debug/deps/libmantra-707e9185932b28ee.rlib: src/lib.rs

/root/repo/target/debug/deps/libmantra-707e9185932b28ee.rmeta: src/lib.rs

src/lib.rs:
