/root/repo/target/debug/deps/mantra_snmp-a53b7c1066608c60.d: crates/snmp/src/lib.rs crates/snmp/src/agent.rs crates/snmp/src/manager.rs crates/snmp/src/mib.rs crates/snmp/src/oid.rs crates/snmp/src/types.rs

/root/repo/target/debug/deps/libmantra_snmp-a53b7c1066608c60.rlib: crates/snmp/src/lib.rs crates/snmp/src/agent.rs crates/snmp/src/manager.rs crates/snmp/src/mib.rs crates/snmp/src/oid.rs crates/snmp/src/types.rs

/root/repo/target/debug/deps/libmantra_snmp-a53b7c1066608c60.rmeta: crates/snmp/src/lib.rs crates/snmp/src/agent.rs crates/snmp/src/manager.rs crates/snmp/src/mib.rs crates/snmp/src/oid.rs crates/snmp/src/types.rs

crates/snmp/src/lib.rs:
crates/snmp/src/agent.rs:
crates/snmp/src/manager.rs:
crates/snmp/src/mib.rs:
crates/snmp/src/oid.rs:
crates/snmp/src/types.rs:
