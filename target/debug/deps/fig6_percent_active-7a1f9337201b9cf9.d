/root/repo/target/debug/deps/fig6_percent_active-7a1f9337201b9cf9.d: crates/bench/src/bin/fig6_percent_active.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_percent_active-7a1f9337201b9cf9.rmeta: crates/bench/src/bin/fig6_percent_active.rs Cargo.toml

crates/bench/src/bin/fig6_percent_active.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
