/root/repo/target/debug/deps/fig3_usage-acc7ba1615781c77.d: crates/bench/src/bin/fig3_usage.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_usage-acc7ba1615781c77.rmeta: crates/bench/src/bin/fig3_usage.rs Cargo.toml

crates/bench/src/bin/fig3_usage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
