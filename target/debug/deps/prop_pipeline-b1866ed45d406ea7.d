/root/repo/target/debug/deps/prop_pipeline-b1866ed45d406ea7.d: tests/prop_pipeline.rs

/root/repo/target/debug/deps/prop_pipeline-b1866ed45d406ea7: tests/prop_pipeline.rs

tests/prop_pipeline.rs:
