/root/repo/target/debug/deps/mantra_tools-cac3d43d4cf26893.d: crates/tools/src/lib.rs crates/tools/src/mrinfo.rs crates/tools/src/mrtree.rs crates/tools/src/mtrace.rs crates/tools/src/mwatch.rs

/root/repo/target/debug/deps/libmantra_tools-cac3d43d4cf26893.rlib: crates/tools/src/lib.rs crates/tools/src/mrinfo.rs crates/tools/src/mrtree.rs crates/tools/src/mtrace.rs crates/tools/src/mwatch.rs

/root/repo/target/debug/deps/libmantra_tools-cac3d43d4cf26893.rmeta: crates/tools/src/lib.rs crates/tools/src/mrinfo.rs crates/tools/src/mrtree.rs crates/tools/src/mtrace.rs crates/tools/src/mwatch.rs

crates/tools/src/lib.rs:
crates/tools/src/mrinfo.rs:
crates/tools/src/mrtree.rs:
crates/tools/src/mtrace.rs:
crates/tools/src/mwatch.rs:
