/root/repo/target/debug/deps/fig5_bandwidth-dd0c9ccaa47a6227.d: crates/bench/src/bin/fig5_bandwidth.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_bandwidth-dd0c9ccaa47a6227.rmeta: crates/bench/src/bin/fig5_bandwidth.rs Cargo.toml

crates/bench/src/bin/fig5_bandwidth.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
