/root/repo/target/debug/deps/mantra_router_cli-438178c892e9a479.d: crates/router-cli/src/lib.rs crates/router-cli/src/ios.rs crates/router-cli/src/mrouted.rs

/root/repo/target/debug/deps/mantra_router_cli-438178c892e9a479: crates/router-cli/src/lib.rs crates/router-cli/src/ios.rs crates/router-cli/src/mrouted.rs

crates/router-cli/src/lib.rs:
crates/router-cli/src/ios.rs:
crates/router-cli/src/mrouted.rs:
