/root/repo/target/debug/examples/debug_route_injection-e94c534076e05cb0.d: examples/debug_route_injection.rs

/root/repo/target/debug/examples/debug_route_injection-e94c534076e05cb0: examples/debug_route_injection.rs

examples/debug_route_injection.rs:
