/root/repo/target/debug/examples/collection_paths-224d5f731b5911f4.d: examples/collection_paths.rs Cargo.toml

/root/repo/target/debug/examples/libcollection_paths-224d5f731b5911f4.rmeta: examples/collection_paths.rs Cargo.toml

examples/collection_paths.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
