/root/repo/target/debug/examples/app_vs_network_layer-0deae6ac6eb6ba14.d: examples/app_vs_network_layer.rs Cargo.toml

/root/repo/target/debug/examples/libapp_vs_network_layer-0deae6ac6eb6ba14.rmeta: examples/app_vs_network_layer.rs Cargo.toml

examples/app_vs_network_layer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
