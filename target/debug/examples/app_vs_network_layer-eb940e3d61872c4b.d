/root/repo/target/debug/examples/app_vs_network_layer-eb940e3d61872c4b.d: examples/app_vs_network_layer.rs

/root/repo/target/debug/examples/app_vs_network_layer-eb940e3d61872c4b: examples/app_vs_network_layer.rs

examples/app_vs_network_layer.rs:
