/root/repo/target/debug/examples/multi_router_aggregation-5baad92294af4930.d: examples/multi_router_aggregation.rs Cargo.toml

/root/repo/target/debug/examples/libmulti_router_aggregation-5baad92294af4930.rmeta: examples/multi_router_aggregation.rs Cargo.toml

examples/multi_router_aggregation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
