/root/repo/target/debug/examples/multi_router_aggregation-dca052b69ceb0250.d: examples/multi_router_aggregation.rs

/root/repo/target/debug/examples/multi_router_aggregation-dca052b69ceb0250: examples/multi_router_aggregation.rs

examples/multi_router_aggregation.rs:
