/root/repo/target/debug/examples/diagnostic_toolbox-efdd24903a0d222e.d: examples/diagnostic_toolbox.rs

/root/repo/target/debug/examples/diagnostic_toolbox-efdd24903a0d222e: examples/diagnostic_toolbox.rs

examples/diagnostic_toolbox.rs:
