/root/repo/target/debug/examples/debug_route_injection-c993de28eecc9e8b.d: examples/debug_route_injection.rs Cargo.toml

/root/repo/target/debug/examples/libdebug_route_injection-c993de28eecc9e8b.rmeta: examples/debug_route_injection.rs Cargo.toml

examples/debug_route_injection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
