/root/repo/target/debug/examples/diagnostic_toolbox-9023d86ed14af6b5.d: examples/diagnostic_toolbox.rs Cargo.toml

/root/repo/target/debug/examples/libdiagnostic_toolbox-9023d86ed14af6b5.rmeta: examples/diagnostic_toolbox.rs Cargo.toml

examples/diagnostic_toolbox.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
