/root/repo/target/debug/examples/transition_study-68d6ca996a1d7c80.d: examples/transition_study.rs

/root/repo/target/debug/examples/transition_study-68d6ca996a1d7c80: examples/transition_study.rs

examples/transition_study.rs:
