/root/repo/target/debug/examples/quickstart-52a5dd051bf1483d.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-52a5dd051bf1483d: examples/quickstart.rs

examples/quickstart.rs:
