/root/repo/target/debug/examples/resilient_collection-7908c9de8a457749.d: examples/resilient_collection.rs

/root/repo/target/debug/examples/resilient_collection-7908c9de8a457749: examples/resilient_collection.rs

examples/resilient_collection.rs:
