/root/repo/target/debug/examples/resilient_collection-624ddcbe768600b7.d: examples/resilient_collection.rs Cargo.toml

/root/repo/target/debug/examples/libresilient_collection-624ddcbe768600b7.rmeta: examples/resilient_collection.rs Cargo.toml

examples/resilient_collection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
