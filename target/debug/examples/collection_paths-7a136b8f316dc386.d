/root/repo/target/debug/examples/collection_paths-7a136b8f316dc386.d: examples/collection_paths.rs

/root/repo/target/debug/examples/collection_paths-7a136b8f316dc386: examples/collection_paths.rs

examples/collection_paths.rs:
