/root/repo/target/debug/examples/transition_study-125389b7b5e01b6a.d: examples/transition_study.rs Cargo.toml

/root/repo/target/debug/examples/libtransition_study-125389b7b5e01b6a.rmeta: examples/transition_study.rs Cargo.toml

examples/transition_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
