//! Debugging a routing problem with Mantra: the 1998-10-14 unicast route
//! injection (the paper's Figure 9 case study).
//!
//! Replays the incident day at the UCSB `mrouted`, shows the route-count
//! series an operator would have been staring at, and then lets Mantra's
//! anomaly detectors do the off-line diagnosis the paper's authors did by
//! hand: a spike alarm, then the injection signature naming the gateway
//! the leak came through.
//!
//! Run with: `cargo run --release --example debug_route_injection`

use mantra::core::anomaly::AnomalyKind;
use mantra::core::collector::SimAccess;
use mantra::core::output::{Cell, DateMode, Graph, Table};
use mantra::core::{Monitor, MonitorConfig};
use mantra::sim::Scenario;

fn main() {
    let mut sc = Scenario::ucsb_injection_day(1014);
    let mut monitor = Monitor::new(MonitorConfig {
        routers: vec!["ucsb-gw".into()],
        interval: sc.sim.tick(),
        ..MonitorConfig::default()
    });

    let end = sc.sim.end_time();
    loop {
        let next = sc.sim.clock + monitor.cfg.interval;
        if next > end {
            break;
        }
        sc.sim.advance_to(next);
        let mut access = SimAccess::new(&sc.sim);
        monitor.run_cycle(&mut access, next);
    }

    // The series the operator watches.
    let routes = monitor.route_series("ucsb-gw", "dvmrp-routes", |r| r.dvmrp_reachable as f64);
    let mut graph = Graph::new("DVMRP routes at ucsb-gw, 1998-10-14");
    graph.overlay(routes.clone());
    println!("{}", graph.render(96, 16));

    // The incident log as an interactive table, rendered with the
    // hour-of-day conversion (Figure 9's x-axis).
    let mut incidents = Table::new(
        "Detected anomalies",
        vec!["time", "kind", "magnitude", "detail"],
    );
    incidents.date_mode = DateMode::HourOfDay;
    for a in &monitor.anomalies {
        let (kind, magnitude, detail) = match &a.kind {
            AnomalyKind::Spike { value, baseline } => {
                ("spike", *value, format!("baseline {baseline:.0} routes"))
            }
            AnomalyKind::Crash { value, baseline } => {
                ("crash", *value, format!("baseline {baseline:.0} routes"))
            }
            AnomalyKind::RouteInjection {
                new_routes,
                gateway,
                gateway_share,
            } => (
                "route-injection",
                *new_routes as f64,
                format!(
                    "{:.0}% via {}",
                    gateway_share * 100.0,
                    gateway.map(|g| g.to_string()).unwrap_or_default()
                ),
            ),
            AnomalyKind::Inconsistency { peer, similarity } => {
                ("inconsistency", *similarity, format!("vs {peer}"))
            }
        };
        incidents.push_row(vec![
            Cell::Time(a.at),
            Cell::Text(kind.into()),
            Cell::Num(magnitude),
            Cell::Text(detail),
        ]);
    }
    // Deduplicate the repeated spike alarms for the report: keep first 3.
    incidents.truncate(6);
    println!("{}", incidents.render());

    // The verdict.
    let injection = monitor
        .anomalies
        .iter()
        .find(|a| matches!(a.kind, AnomalyKind::RouteInjection { .. }));
    match injection {
        Some(a) => println!(
            "diagnosis: unicast route injection at {} (hour {:.1}) — matches the paper's off-line analysis",
            a.at,
            a.at.hour_of_day()
        ),
        None => println!("no injection signature found (unexpected; check seed)"),
    }
    println!(
        "route count: baseline {:.0}, peak {:.0}, final {:.0}",
        routes.median(),
        routes.max().map(|m| m.1).unwrap_or(0.0),
        routes.points.last().map(|p| p.1).unwrap_or(0.0),
    );
}
