//! Resilient collection: retry/backoff, salvage and per-router health.
//!
//! The paper's cron-driven expect scripts simply lost a cycle whenever a
//! router refused the login or a dump died mid-transfer. This example
//! injects both failure modes at 1998-MBone rates and compares the seed
//! collector (one attempt per table) against the resilient collector
//! (3 attempts with deterministic exponential backoff, truncation
//! salvage), then prints the monitor's per-router health table.
//!
//! Run with: `cargo run --release --example resilient_collection`

use mantra::core::collector::{FlakyAccess, RetryPolicy};
use mantra::core::{Monitor, MonitorConfig};
use mantra::sim::Scenario;

/// One day of monitoring with injected failures, under a retry policy.
fn monitor_day(retry: RetryPolicy) -> Monitor {
    let mut sc = Scenario::transition_snapshot(1998, 0.4);
    let mut monitor = Monitor::new(MonitorConfig {
        routers: vec!["fixw".into(), "ucsb-gw".into()],
        interval: sc.sim.tick(),
        retry,
        ..MonitorConfig::default()
    });
    for _ in 0..96 {
        let next = sc.sim.clock + monitor.cfg.interval;
        sc.sim.advance_to(next);
        // 30% login refusals, 15% truncated dumps — keyed on the cycle
        // timestamp, so both runs see identical first-attempt failures.
        let access = FlakyAccess::new(&sc.sim, 0.3, 0.15, 7);
        monitor.run_cycle_parallel(&access, next);
    }
    monitor
}

fn totals(monitor: &Monitor) -> (u64, u64, u64, u64) {
    let mut t = (0, 0, 0, 0);
    for router in ["fixw", "ucsb-gw"] {
        let h = monitor.router_health(router).expect("monitored router");
        t.0 += h.successes;
        t.1 += h.failures;
        t.2 += h.retry_successes;
        t.3 += h.salvaged;
    }
    t
}

fn main() {
    println!("one simulated day, 96 cycles, 2 routers, 5 tables each;");
    println!("injected failures: 30% login refusals, 15% truncations\n");

    let baseline = monitor_day(RetryPolicy::none());
    let resilient = monitor_day(RetryPolicy::default());

    let (b_ok, b_lost, _, _) = totals(&baseline);
    let (r_ok, r_lost, recovered, salvaged) = totals(&resilient);
    println!("seed collector (1 attempt):      {b_ok} captured, {b_lost} lost");
    println!("resilient collector (3 attempts): {r_ok} captured, {r_lost} lost");
    println!(
        "retries recovered {recovered} captures and salvaged {salvaged} partials — \
         {:.0}% of the baseline's losses",
        (b_lost - r_lost) as f64 / b_lost as f64 * 100.0
    );

    let last = resilient.usage_history("fixw").last().expect("96 cycles");
    println!("\n{}", resilient.health(last.at).render());

    println!("data visibility over the same day:");
    for (name, m) in [("seed", &baseline), ("resilient", &resilient)] {
        let sessions: f64 = m
            .usage_history("fixw")
            .iter()
            .map(|u| u.sessions as f64)
            .sum::<f64>()
            / 96.0;
        println!("  {name:<10} mean sessions visible at fixw: {sessions:.1}");
    }
}
