//! CLI scraping vs SNMP: the collection-path comparison behind the
//! paper's design choice.
//!
//! Section II of the paper explains why Mantra logs into routers instead
//! of using SNMP: "lack of updated standards for the newer multicast
//! protocols … in cases of protocols like MSDP, proper MIBs do not even
//! exist". This example runs both collection paths against the *same*
//! simulated border router and tabulates what each one can and cannot
//! see.
//!
//! Run with: `cargo run --release --example collection_paths`

use mantra::core::collector::{preprocess, RouterAccess, SimAccess};
use mantra::core::processor::process;
use mantra::core::tables::LearnedFrom;
use mantra::net::SimDuration;
use mantra::router_cli::TableKind;
use mantra::sim::Scenario;
use mantra::snmp::mib::refresh_agent;
use mantra::snmp::{Agent, Manager};

fn main() {
    // A transition-era border: DVMRP + PIM-SM + MBGP + MSDP all active.
    let mut sc = Scenario::transition_snapshot(1999, 0.6);
    sc.sim.advance_to(sc.sim.clock + SimDuration::hours(8));
    let now = sc.sim.clock;

    // --- Path 1: the expect-script CLI scrape (Mantra's way). ---
    let mut access = SimAccess::new(&sc.sim);
    let mut captures = Vec::new();
    for kind in TableKind::ALL {
        if let Ok(raw) = access.capture("fixw", kind, now) {
            captures.push(preprocess("fixw", kind, &raw, now));
        }
    }
    let (cli, cli_stats) = process(&captures);

    // --- Path 2: SNMP polling (the Merit-tools way). ---
    let mut agent = Agent::new("public");
    refresh_agent(&mut agent, &sc.sim.net, sc.fixw, now);
    let mut collector = mantra::snmp::manager::SnmpCollector::new("public");
    let first_poll = collector.collect(&agent, "fixw", now).unwrap();
    // Second poll 15 minutes later so counter deltas become rates.
    let later = now + SimDuration::mins(15);
    sc.sim.advance_to(later);
    refresh_agent(&mut agent, &sc.sim.net, sc.fixw, later);
    let snmp = collector.collect(&agent, "fixw", later).unwrap();

    println!("what each collection path sees at the same border router:\n");
    println!("{:<34} {:>12} {:>12}", "", "CLI scrape", "SNMP poll");
    println!("{}", "-".repeat(60));
    let row = |name: &str, a: usize, b: usize| {
        println!("{name:<34} {a:>12} {b:>12}");
    };
    row("(S,G) pairs", cli.pairs.len(), snmp.pairs.len());
    row(
        "DVMRP routes (reachable)",
        cli.reachable_dvmrp_routes(),
        snmp.reachable_dvmrp_routes(),
    );
    row(
        "MBGP routes",
        cli.routes_of(LearnedFrom::Mbgp).count(),
        snmp.routes_of(LearnedFrom::Mbgp).count(),
    );
    row(
        "MSDP SA-cache entries",
        cli.sa_cache.len(),
        snmp.sa_cache.len(),
    );
    let senders =
        |t: &mantra::core::tables::Tables| t.senders(mantra::net::rate::SENDER_THRESHOLD).len();
    row(
        "senders classified (1st poll)",
        senders(&cli),
        senders(&first_poll),
    );
    row(
        "senders classified (2nd poll)",
        senders(&cli),
        senders(&snmp),
    );

    println!("\nnotes:");
    println!(
        "  - CLI parse health: {} rows parsed, {} malformed",
        cli_stats.parsed, cli_stats.malformed
    );
    println!("  - SNMP sees no MSDP or MBGP state at all: those MIBs did not exist in 1998-99.");
    println!("  - SNMP rates need two polls (octet-counter deltas); the router CLI reports");
    println!("    its own smoothed rate estimates immediately.");
    println!("  - This is the paper's stated reason Mantra collects via router logins.");

    // An mstat-style report, for flavour.
    let m = Manager::new("public");
    println!("\n{}", m.mstat_report(&agent).unwrap());
}
