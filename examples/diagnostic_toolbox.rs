//! The period diagnostic toolbox in action: `mrinfo`, `mwatch`, `mtrace`
//! and `mrtree` against the simulated MBone — the "existing tools" of the
//! paper's Section II, which Mantra complements rather than replaces.
//!
//! Run with: `cargo run --release --example diagnostic_toolbox`

use mantra::net::SimDuration;
use mantra::sim::Scenario;
use mantra::tools::{mrinfo, mrtree, mtrace, mwatch};

fn main() {
    let mut sc = Scenario::transition_snapshot(1001, 0.0);
    sc.sim.advance_to(sc.sim.clock + SimDuration::hours(4));

    // mrinfo: what does FIXW look like?
    println!("== mrinfo fixw ==");
    let info = mrinfo(&sc.sim.net, sc.fixw).expect("fixw runs DVMRP");
    print!("{}", info.render());

    // mwatch: map the whole MBone from the campus.
    println!("\n== mwatch (starting at ucsb-gw) ==");
    let map = mwatch(&sc.sim.net, sc.ucsb);
    println!("{}", map.summary());

    // Pick a real sender for the path tools.
    let (group, part) = sc
        .sim
        .sessions
        .iter()
        .filter(|s| s.total_rate().bps() > 0)
        .flat_map(|s| s.participants.values().map(move |p| (s.group, p.clone())))
        .max_by_key(|(_, p)| p.rate.bps())
        .expect("senders exist");

    // mtrace: reverse path from FIXW to that sender.
    println!("\n== mtrace (from fixw toward the busiest sender) ==");
    let trace = mtrace(&sc.sim.net, sc.fixw, part.addr, group);
    print!("{}", trace.render(part.addr, group));

    // mrtree: the delivery tree rooted at the sender's first-hop router.
    println!("\n== mrtree ==");
    let tree = mrtree(&sc.sim.net, part.router, part.addr, group);
    println!(
        "tree: {} routers, depth {}, {} with local members",
        tree.size(),
        tree.depth(),
        tree.member_routers()
    );
    print!("{}", tree.render(&sc.sim.net));

    // Now break a tunnel and show all four tools noticing, each its own
    // way — the debugging workflow of 1998.
    let (victim_name, victim_border) = sc
        .sim
        .net
        .topo
        .domains()
        .iter()
        .find(|d| d.name.starts_with("mbone-") && !d.routers.contains(&part.router))
        .map(|d| (d.name.clone(), d.border.unwrap()))
        .expect("another mbone domain");
    let link = sc
        .sim
        .net
        .topo
        .link_between(sc.fixw, victim_border)
        .unwrap()
        .id;
    let now = sc.sim.clock;
    sc.sim.net.on_link_change(link, false, now);
    println!("\n*** tunnel fixw <-> {victim_name} cut ***\n");
    let info = mrinfo(&sc.sim.net, sc.fixw).unwrap();
    let down = info
        .ifaces
        .iter()
        .filter(|i| i.flags.contains(&"down"))
        .count();
    println!("mrinfo: {down} interface(s) now flagged down at fixw");
    let map2 = mwatch(&sc.sim.net, sc.ucsb);
    println!(
        "mwatch: {} -> {} routers discovered",
        map.router_count(),
        map2.router_count()
    );
    let tree2 = mrtree(&sc.sim.net, part.router, part.addr, group);
    println!(
        "mrtree: delivery tree {} -> {} routers",
        tree.size(),
        tree2.size()
    );
}
