//! The infrastructure-transition study: what an exchange-point monitor
//! sees before and after the move to native sparse-mode multicast.
//!
//! Runs two one-week worlds with the *same* workload seed — one all-DVMRP
//! (late 1998), one majority-native (mid 1999) — and compares FIXW's view
//! against the simulator's ground truth. This isolates the paper's core
//! transition findings: sparse-mode filtering removes sessions with no
//! downstream members from the exchange point's tables, the
//! sender/participant ratio rises, and global usage becomes impossible to
//! measure from any single router — the argument for the multi-router
//! aggregation the paper closes with.
//!
//! Run with: `cargo run --release --example transition_study`

use mantra::core::collector::SimAccess;
use mantra::core::{Monitor, MonitorConfig};
use mantra::sim::Scenario;

struct WorldView {
    label: &'static str,
    sessions_truth: f64,
    sessions_seen: f64,
    participants_seen: f64,
    pct_senders: f64,
    pct_active: f64,
    session_stddev: f64,
}

fn run_world(label: &'static str, native_fraction: f64) -> WorldView {
    let mut sc = Scenario::transition_snapshot(777, native_fraction);
    let mut monitor = Monitor::new(MonitorConfig {
        routers: vec!["fixw".into()],
        interval: sc.sim.tick(),
        ..MonitorConfig::default()
    });
    let mut truth_samples = Vec::new();
    for _ in 0..(4 * 24 * 5) {
        let next = sc.sim.clock + monitor.cfg.interval;
        sc.sim.advance_to(next);
        let mut access = SimAccess::new(&sc.sim);
        monitor.run_cycle(&mut access, next);
        truth_samples.push(sc.sim.sessions.len() as f64);
    }
    let seen = monitor.usage_series("fixw", "sessions", |u| u.sessions as f64);
    let parts = monitor.usage_series("fixw", "participants", |u| u.participants as f64);
    let senders = monitor.usage_series("fixw", "pct-senders", |u| u.pct_senders());
    let active = monitor.usage_series("fixw", "pct-active", |u| u.pct_active());
    WorldView {
        label,
        sessions_truth: truth_samples.iter().sum::<f64>() / truth_samples.len() as f64,
        sessions_seen: seen.mean(),
        participants_seen: parts.mean(),
        pct_senders: senders.mean(),
        pct_active: active.mean(),
        session_stddev: seen.stddev(),
    }
}

fn main() {
    println!("running the pre-transition world (all DVMRP)...");
    let before = run_world("1998 DVMRP MBone", 0.0);
    println!("running the post-transition world (80% native sparse)...");
    let after = run_world("1999 native sparse", 0.8);

    println!(
        "\n{:<22} {:>14} {:>14}",
        "metric", before.label, after.label
    );
    println!("{}", "-".repeat(54));
    let row = |name: &str, a: f64, b: f64| {
        println!("{name:<22} {a:>14.1} {b:>14.1}");
    };
    row(
        "sessions (truth)",
        before.sessions_truth,
        after.sessions_truth,
    );
    row(
        "sessions seen @FIXW",
        before.sessions_seen,
        after.sessions_seen,
    );
    row(
        "visibility %",
        100.0 * before.sessions_seen / before.sessions_truth,
        100.0 * after.sessions_seen / after.sessions_truth,
    );
    row(
        "participants @FIXW",
        before.participants_seen,
        after.participants_seen,
    );
    row("% senders", before.pct_senders, after.pct_senders);
    row("% active sessions", before.pct_active, after.pct_active);
    row(
        "stddev(sessions)",
        before.session_stddev,
        after.session_stddev,
    );

    println!("\npaper findings checked:");
    println!(
        "  [{}] total participants dropped considerably after the transition",
        mark(after.participants_seen < 0.7 * before.participants_seen)
    );
    println!(
        "  [{}] sender/participant ratio increases",
        mark(after.pct_senders > before.pct_senders)
    );
    println!(
        "  [{}] sparse filtering hides part of the global session population",
        mark(
            after.sessions_seen / after.sessions_truth
                < before.sessions_seen / before.sessions_truth
        )
    );
    println!("  => single-point monitoring no longer measures global usage; see the",);
    println!("     multi_router_aggregation example for the paper's proposed fix.");
}

fn mark(ok: bool) -> &'static str {
    if ok {
        "ok"
    } else {
        "??"
    }
}
