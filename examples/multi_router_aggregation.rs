//! Multi-router aggregation: the enhancement the paper's conclusion
//! announces ("collect data from multiple routers concurrently …
//! aggregate different data sets and generate combined results in
//! real-time").
//!
//! Collects every border router in a majority-native internetwork in
//! parallel (rayon), merges the per-router tables into one aggregate
//! view, and shows (a) how much more of the ground truth the aggregate
//! recovers than any single collection point, and (b) the pairwise DVMRP
//! consistency matrix that exposes the paper's "inconsistent state"
//! finding automatically.
//!
//! Run with: `cargo run --release --example multi_router_aggregation`

use mantra::core::aggregate::collect_aggregate;
use mantra::core::collector::SimAccess;
use mantra::core::{Monitor, MonitorConfig};
use mantra::net::SimDuration;
use mantra::router_cli::TableKind;
use mantra::sim::Scenario;

fn main() {
    let mut sc = Scenario::transition_snapshot(4242, 0.6);
    // Lossy report delivery, as on the congested 1998 MBone — this is
    // what makes the consistency matrix interesting.
    sc.sim.set_report_loss(0.25);

    // Warm the world up for a day so tables are populated. A monitor on
    // the classic two points runs alongside for comparison. Monitoring
    // all borders makes the simulator materialise their MFIBs.
    let borders: Vec<_> = sc
        .sim
        .net
        .topo
        .domains()
        .iter()
        .filter_map(|d| d.border)
        .collect();
    sc.sim.monitored = {
        let mut m = vec![sc.fixw];
        m.extend(borders.iter().copied());
        m.sort_unstable();
        m.dedup();
        m
    };
    let mut classic = Monitor::new(MonitorConfig {
        routers: vec!["fixw".into()],
        interval: sc.sim.tick(),
        ..MonitorConfig::default()
    });
    for _ in 0..96 {
        let next = sc.sim.clock + classic.cfg.interval;
        sc.sim.advance_to(next);
        let mut access = SimAccess::new(&sc.sim);
        classic.run_cycle(&mut access, next);
    }
    let _ = SimDuration::ZERO;

    // The aggregate cycle across every border, concurrently.
    let router_names: Vec<String> = sc
        .sim
        .monitored
        .iter()
        .map(|r| sc.sim.net.topo.router(*r).name.clone())
        .collect();
    let now = sc.sim.clock;
    let view = collect_aggregate(&sc.sim, &router_names, &TableKind::ALL, now);

    let truth = sc.sim.sessions.len();
    let fixw_only = classic
        .latest("fixw")
        .map(|t| t.sessions.len())
        .unwrap_or(0);
    println!("ground truth:         {truth} live sessions");
    println!("FIXW alone sees:      {fixw_only}");
    println!(
        "aggregate view sees:  {} (from {} routers, {} capture failures)",
        view.merged.sessions.len(),
        view.per_router.len(),
        view.per_router
            .iter()
            .map(|r| r.capture_failures)
            .sum::<usize>()
    );

    println!("\nper-router contributions:");
    for rc in &view.per_router {
        println!(
            "  {:<14} sessions {:>4}  pairs {:>5}  dvmrp routes {:>4}  parse(ok/bad) {}/{}",
            rc.router,
            rc.tables.sessions.len(),
            rc.tables.pairs.len(),
            rc.tables.reachable_dvmrp_routes(),
            rc.parse.parsed,
            rc.parse.malformed,
        );
    }

    println!("\npairwise DVMRP consistency (Jaccard similarity):");
    for (a, b, report) in &view.consistency {
        println!(
            "  {a:<14} vs {b:<14}: {:.2} (shared {}, only-{a} {}, only-{b} {})",
            report.similarity(),
            report.shared,
            report.only_first,
            report.only_second,
        );
    }
    println!("\n(the paper: \"it has become extremely important to generate global");
    println!(" results by collecting data at multiple points\" — quantified above)");
}
