//! Application-layer vs network-layer monitoring — the paper's Section II
//! comparison, run as an experiment.
//!
//! The same simulated world is measured three ways at once:
//!
//! 1. **Ground truth** (the simulator knows every session),
//! 2. **Application layer** — an sdr-monitor/mlisten-style observer at
//!    the UCSB campus counting SAP announcements and RTCP reports,
//! 3. **Network layer** — Mantra scraping the campus router's tables.
//!
//! Then the FIXW uplink is cut, and the three views diverge exactly the
//! way the paper argues: the app-layer observer goes quiet with *no
//! indication of failure*, while Mantra both keeps local visibility and
//! makes the failure itself observable (route withdrawals).
//!
//! Run with: `cargo run --release --example app_vs_network_layer`

use mantra::core::collector::SimAccess;
use mantra::core::{Monitor, MonitorConfig};
use mantra::net::SimDuration;
use mantra::sim::{AppLayerConfig, AppLayerMonitor, Scenario, SimRng};

fn main() {
    let mut sc = Scenario::transition_snapshot(1776, 0.0);
    let mut mantra = Monitor::new(MonitorConfig {
        routers: vec!["ucsb-gw".into()],
        interval: sc.sim.tick(),
        ..MonitorConfig::default()
    });
    let mut app = AppLayerMonitor::new(sc.ucsb, AppLayerConfig::default(), SimRng::seeded(3));

    let report = |label: &str, sc: &Scenario, mantra: &Monitor, app: &mut AppLayerMonitor| {
        let now = sc.sim.clock;
        let truth_sessions = sc.sim.sessions.len();
        let truth_parts = sc.sim.sessions.participant_count();
        let view = app.observe(&sc.sim, now);
        let net = mantra.usage_history("ucsb-gw").last().cloned();
        println!("\n--- {label} ({now}) ---");
        println!(
            "{:<26} {:>9} {:>11} {:>9}",
            "", "truth", "app-layer", "Mantra"
        );
        println!(
            "{:<26} {:>9} {:>11} {:>9}",
            "sessions",
            truth_sessions,
            view.sap_sessions,
            net.as_ref().map(|u| u.sessions).unwrap_or(0)
        );
        println!(
            "{:<26} {:>9} {:>11} {:>9}",
            "participants",
            truth_parts,
            view.rtcp_participants,
            net.as_ref().map(|u| u.participants).unwrap_or(0)
        );
        let routes = mantra
            .route_history("ucsb-gw")
            .last()
            .map(|r| r.dvmrp_reachable)
            .unwrap_or(0);
        println!(
            "{:<26} {:>9} {:>11} {:>9}",
            "reachable networks", "-", "-", routes
        );
    };

    // Twelve healthy hours.
    for _ in 0..48 {
        let next = sc.sim.clock + mantra.cfg.interval;
        sc.sim.advance_to(next);
        let mut access = SimAccess::new(&sc.sim);
        mantra.run_cycle(&mut access, next);
    }
    report("healthy network", &sc, &mantra, &mut app);

    // Cut the campus uplink.
    let link = sc.sim.net.topo.link_between(sc.fixw, sc.ucsb).unwrap().id;
    let t = sc.sim.clock + SimDuration::mins(1);
    sc.sim
        .schedule(t, mantra::sim::Event::SetLink { link, up: false });
    for _ in 0..8 {
        let next = sc.sim.clock + mantra.cfg.interval;
        sc.sim.advance_to(next);
        let mut access = SimAccess::new(&sc.sim);
        mantra.run_cycle(&mut access, next);
    }
    report("uplink cut (2h in)", &sc, &mantra, &mut app);

    println!("\nreading the table:");
    println!("  - the app-layer observer silently loses the remote sessions: nothing tells");
    println!("    it whether the MBone shrank or its own connectivity broke;");
    println!("  - Mantra's session view narrows too (the router really has less state),");
    println!("    but the route-table collapse pinpoints the failure itself;");
    println!(
        "  - and RTCP under-counts even on the healthy network ({}% compliance).",
        (AppLayerConfig::default().rtcp_compliance * 100.0) as u32
    );
}
