//! Quickstart: monitor a simulated multicast internetwork with Mantra.
//!
//! Builds a mid-1999 transition-era internetwork, runs the full Mantra
//! pipeline (scrape router CLIs → parse → log → analyse) for twelve hours
//! of simulated time, and prints the kind of output the paper's web
//! interface showed: summary tables, usage graphs and headline numbers.
//!
//! Run with: `cargo run --release --example quickstart`

use mantra::core::collector::SimAccess;
use mantra::core::{Monitor, MonitorConfig};
use mantra::net::SimDuration;
use mantra::sim::Scenario;

fn main() {
    // A ten-domain internetwork, 40% already migrated to native sparse
    // mode, with FIXW as the DVMRP/native border.
    let mut sc = Scenario::transition_snapshot(2024, 0.4);

    // Mantra watches the two collection points from the paper.
    let mut monitor = Monitor::new(MonitorConfig {
        routers: vec!["fixw".into(), "ucsb-gw".into()],
        interval: sc.sim.tick(),
        ..MonitorConfig::default()
    });

    // Twelve hours of lock-step simulation + monitoring.
    println!("monitoring 12 simulated hours at 15-minute cycles...\n");
    for _ in 0..48 {
        let next = sc.sim.clock + monitor.cfg.interval;
        sc.sim.advance_to(next);
        let mut access = SimAccess::new(&sc.sim);
        monitor.run_cycle(&mut access, next);
    }

    // Headline numbers from the last cycle.
    let usage = monitor.usage_history("fixw").last().expect("cycles ran");
    let routes = monitor.route_history("fixw").last().expect("cycles ran");
    println!("at {} FIXW sees:", usage.at);
    println!(
        "  {} sessions ({} active)",
        usage.sessions, usage.active_sessions
    );
    println!(
        "  {} participants ({} senders)",
        usage.participants, usage.senders
    );
    println!(
        "  {} through the router, saving ~{:.1}x vs unicast",
        usage.total_bandwidth, usage.bandwidth_saved_multiple
    );
    println!(
        "  {} reachable DVMRP routes, {} MBGP routes, {} MSDP SAs\n",
        routes.dvmrp_reachable, routes.mbgp_routes, usage.sa_entries
    );

    // The interactive-table interface: busiest sessions, sorted, top 8.
    println!("{}", monitor.busiest_sessions("fixw", 8).render());

    // Column algebra, as the applet allowed: bandwidth per member.
    let mut busiest = monitor.busiest_sessions("fixw", 8);
    busiest.add_computed(
        "kbps_per_member",
        "bandwidth_kbps",
        mantra::core::output::ColumnOp::Div,
        "density",
    );
    println!("{}", busiest.render());

    // The graph interface: the four Figure 3 series overlaid, zoomed to
    // the last six hours.
    let mut graph = monitor.usage_graph("fixw");
    let end = usage.at;
    let start = mantra::net::SimTime(end.as_secs() - SimDuration::hours(6).as_secs());
    graph.zoom_x(start, end);
    println!("{}", graph.render(90, 14));

    // Storage accounting from the delta logger.
    let log = monitor.log("fixw").expect("log exists");
    println!(
        "archive: {} snapshots, {} bytes stored vs {} baseline ({:.0}% saved)",
        log.len(),
        log.bytes_stored,
        log.bytes_full_baseline,
        100.0 * log.savings_ratio(),
    );
}
