//! SNMP vs CLI collection, head to head — the reproducible version of the
//! paper's Section II argument for router-login scraping.

use mantra::core::collector::{preprocess, RouterAccess, SimAccess};
use mantra::core::processor::process;
use mantra::core::tables::LearnedFrom;
use mantra::net::{SimDuration, SimTime};
use mantra::router_cli::TableKind;
use mantra::sim::Scenario;
use mantra::snmp::manager::SnmpCollector;
use mantra::snmp::mib::refresh_agent;
use mantra::snmp::{Agent, SnmpError};

fn warmed(seed: u64) -> (Scenario, SimTime) {
    let mut sc = Scenario::transition_snapshot(seed, 0.6);
    sc.sim.advance_to(sc.sim.clock + SimDuration::hours(8));
    let t = sc.sim.clock;
    (sc, t)
}

fn cli_tables(sc: &Scenario, router: &str, now: SimTime) -> mantra::core::tables::Tables {
    let mut access = SimAccess::new(&sc.sim);
    let captures: Vec<_> = TableKind::ALL
        .iter()
        .filter_map(|k| {
            access
                .capture(router, *k, now)
                .ok()
                .map(|raw| preprocess(router, *k, &raw, now))
        })
        .collect();
    process(&captures).0
}

#[test]
fn both_paths_agree_where_mibs_exist() {
    let (sc, now) = warmed(1);
    let cli = cli_tables(&sc, "fixw", now);
    let mut agent = Agent::new("public");
    refresh_agent(&mut agent, &sc.sim.net, sc.fixw, now);
    let snmp = mantra::snmp::snmp_collect(&agent, "fixw", now).unwrap();
    // DVMRP: identical route sets.
    assert_eq!(cli.reachable_dvmrp_routes(), snmp.reachable_dvmrp_routes());
    // Forwarding pairs: SNMP sees every (S,G) the CLI sees (the CLI also
    // renders (*,G) entries that RFC 2932-era agents skipped).
    for key in snmp.pairs.keys() {
        assert!(
            cli.pairs.contains_key(key),
            "SNMP pair {key:?} missing in CLI view"
        );
    }
}

#[test]
fn snmp_is_structurally_blind_to_the_new_protocols() {
    let (sc, now) = warmed(2);
    let cli = cli_tables(&sc, "fixw", now);
    let mut agent = Agent::new("public");
    refresh_agent(&mut agent, &sc.sim.net, sc.fixw, now);
    let snmp = mantra::snmp::snmp_collect(&agent, "fixw", now).unwrap();
    // The CLI path sees the new-protocol state...
    assert!(cli.sa_cache.len() > 10, "MSDP visible via CLI");
    assert!(
        cli.routes_of(LearnedFrom::Mbgp).count() > 10,
        "MBGP visible via CLI"
    );
    // ...SNMP sees none of it, with the identical router state underneath.
    assert!(snmp.sa_cache.is_empty());
    assert_eq!(snmp.routes_of(LearnedFrom::Mbgp).count(), 0);
}

#[test]
fn snmp_sender_classification_lags_a_poll_behind() {
    let (mut sc, now) = warmed(3);
    let th = mantra::net::rate::SENDER_THRESHOLD;
    let cli_senders_now = cli_tables(&sc, "fixw", now).senders(th).len();
    let mut agent = Agent::new("public");
    refresh_agent(&mut agent, &sc.sim.net, sc.fixw, now);
    let mut snmp = SnmpCollector::new("public");
    let first = snmp.collect(&agent, "fixw", now).unwrap();
    assert_eq!(
        first.senders(th).len(),
        0,
        "first SNMP poll has no rates at all"
    );
    assert!(cli_senders_now > 0, "the CLI classifies immediately");
    // Second poll closes part of the gap.
    let later = now + SimDuration::mins(15);
    sc.sim.advance_to(later);
    refresh_agent(&mut agent, &sc.sim.net, sc.fixw, later);
    let second = snmp.collect(&agent, "fixw", later).unwrap();
    assert!(
        !second.senders(th).is_empty(),
        "rates appear after two polls"
    );
}

#[test]
fn wrong_community_is_rejected_everywhere() {
    let (sc, now) = warmed(4);
    let mut agent = Agent::new("s3cret");
    refresh_agent(&mut agent, &sc.sim.net, sc.fixw, now);
    let mut collector = SnmpCollector::new("public");
    assert!(matches!(
        collector.collect(&agent, "fixw", now),
        Err(SnmpError::BadCommunity)
    ));
    let mut collector = SnmpCollector::new("s3cret");
    assert!(collector.collect(&agent, "fixw", now).is_ok());
}

#[test]
fn mrouted_agent_exposes_dvmrp_but_not_border_tables() {
    let (sc, now) = warmed(5);
    let mut agent = Agent::new("public");
    refresh_agent(&mut agent, &sc.sim.net, sc.ucsb, now);
    let snmp = mantra::snmp::snmp_collect(&agent, "ucsb-gw", now).unwrap();
    assert!(snmp.reachable_dvmrp_routes() > 10);
    assert!(snmp.sa_cache.is_empty());
}
