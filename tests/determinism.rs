//! Determinism guarantees: the entire pipeline — workload, protocol
//! dynamics, failure injection, collection, parsing, statistics — is a
//! pure function of the scenario seed.

use mantra::core::collector::SimAccess;
use mantra::core::{Monitor, MonitorConfig};
use mantra::sim::Scenario;

fn fingerprint(seed: u64, loss: f64, cycles: usize) -> Vec<(usize, usize, usize, u64)> {
    let mut sc = Scenario::transition_snapshot(seed, 0.4);
    sc.sim.set_report_loss(loss);
    let mut monitor = Monitor::new(MonitorConfig {
        routers: vec!["fixw".into(), "ucsb-gw".into()],
        interval: sc.sim.tick(),
        ..MonitorConfig::default()
    });
    let mut out = Vec::new();
    for _ in 0..cycles {
        let next = sc.sim.clock + monitor.cfg.interval;
        sc.sim.advance_to(next);
        let mut access = SimAccess::new(&sc.sim);
        let report = monitor.run_cycle(&mut access, next);
        let (_, usage, routes) = &report.per_router[0];
        out.push((
            usage.sessions,
            usage.participants,
            routes.dvmrp_reachable,
            usage.total_bandwidth.bps(),
        ));
    }
    out
}

#[test]
fn same_seed_identical_histories() {
    let a = fingerprint(555, 0.2, 16);
    let b = fingerprint(555, 0.2, 16);
    assert_eq!(a, b);
}

#[test]
fn different_seeds_diverge() {
    let a = fingerprint(555, 0.2, 16);
    let b = fingerprint(556, 0.2, 16);
    assert_ne!(a, b);
}

#[test]
fn workload_is_isolated_from_fault_randomness() {
    // Changing the report-loss rate must not change which sessions exist
    // (separate RNG streams): ground-truth session counts stay identical.
    let truth = |loss: f64| {
        let mut sc = Scenario::transition_snapshot(777, 0.4);
        sc.sim.set_report_loss(loss);
        let mut counts = Vec::new();
        for i in 1..=12u64 {
            sc.sim
                .advance_to(sc.sim.clock + mantra::net::SimDuration::mins(15 * i % 120 + 15));
            counts.push(sc.sim.sessions.len());
        }
        counts
    };
    assert_eq!(truth(0.0), truth(0.5));
}

#[test]
fn rendered_cli_output_is_deterministic() {
    let render = || {
        let mut sc = Scenario::transition_snapshot(888, 0.5);
        sc.sim
            .advance_to(sc.sim.clock + mantra::net::SimDuration::hours(4));
        let now = sc.sim.clock;
        mantra::router_cli::render(
            &sc.sim.net,
            sc.fixw,
            mantra::router_cli::TableKind::ForwardingCache,
            now,
        )
    };
    assert_eq!(render(), render());
}
