//! Property-based tests of the protocol substrates under randomized
//! topologies and message loss.

use proptest::prelude::*;

use mantra::net::{SimDuration, SimTime};
use mantra::protocols::dvmrp::DvmrpTimers;
use mantra::sim::{LinkFilter, Network, SimRng};
use mantra::topology::reference::{mbone_1998, transition_internetwork, TopologyConfig};

fn t0() -> SimTime {
    SimTime::from_ymd(1998, 11, 1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Without loss, DVMRP converges on any reference topology to the
    /// same route count at every router, equal to the number of
    /// originated prefixes.
    #[test]
    fn dvmrp_converges_lossless(
        domains in 2usize..8,
        routers_per_domain in 1usize..4,
        leaves in 1usize..3,
    ) {
        let cfg = TopologyConfig {
            domains,
            routers_per_domain,
            leaves_per_router: leaves,
            native_fraction: 0.0,
        };
        let r = mbone_1998(&cfg);
        let mut net = Network::new(r.topo, t0(), DvmrpTimers::default(), 0);
        let mut rng = SimRng::seeded(domains as u64 * 31 + routers_per_domain as u64);
        let mut now = t0();
        // Diameter is 4 (leaf → border → fixw → border → leaf): a handful
        // of rounds suffices.
        for _ in 0..8 {
            now += SimDuration::secs(60);
            net.routing_round(now, 0.0, &mut rng);
        }
        // Expected prefixes: per domain, each internal router has `leaves`
        // /24s, the border has one /24 + the /16 aggregate.
        let expected = domains * (routers_per_domain * leaves + 2);
        let counts: Vec<usize> = (0..net.topo.router_count())
            .map(|i| net.dvmrp_route_count(mantra::net::RouterId(i as u32)))
            .collect();
        for c in &counts {
            prop_assert_eq!(*c, expected, "all routers agree ({:?})", counts);
        }
    }

    /// Under loss, counts never exceed the lossless fixed point and
    /// lossless recovery restores it (no permanent damage).
    #[test]
    fn dvmrp_loss_never_inflates_and_recovers(
        loss_pct in 5u32..60,
        seed in 0u64..1_000,
    ) {
        let cfg = TopologyConfig {
            domains: 4,
            routers_per_domain: 2,
            leaves_per_router: 1,
            native_fraction: 0.0,
        };
        let r = mbone_1998(&cfg);
        let mut net = Network::new(r.topo, t0(), DvmrpTimers::default(), 0);
        let mut rng = SimRng::seeded(seed);
        let mut now = t0();
        for _ in 0..6 {
            now += SimDuration::secs(60);
            net.routing_round(now, 0.0, &mut rng);
        }
        let fixed_point = net.dvmrp_route_count(r.fixw);
        // Lossy period.
        for _ in 0..20 {
            now += SimDuration::secs(60);
            net.routing_round(now, f64::from(loss_pct) / 100.0, &mut rng);
            prop_assert!(net.dvmrp_route_count(r.fixw) <= fixed_point);
        }
        // Recovery.
        for _ in 0..10 {
            now += SimDuration::secs(60);
            net.routing_round(now, 0.0, &mut rng);
        }
        prop_assert_eq!(net.dvmrp_route_count(r.fixw), fixed_point);
    }

    /// The DVMRP and sparse components always overlap in exactly the
    /// border routers, for any native fraction.
    #[test]
    fn components_partition_at_borders(native_tenths in 1usize..9) {
        let cfg = TopologyConfig {
            domains: 8,
            routers_per_domain: 2,
            leaves_per_router: 1,
            native_fraction: native_tenths as f64 / 10.0,
        };
        let r = transition_internetwork(&cfg);
        let net = Network::new(r.topo, t0(), DvmrpTimers::default(), 0);
        let dv = net.component(r.fixw, LinkFilter::Dvmrp);
        let sp = net.component(r.fixw, LinkFilter::Sparse);
        for router in dv.iter().filter(|x| sp.contains(x)) {
            let suite = net.topo.router(*router).suite;
            prop_assert!(
                suite.dvmrp && suite.pim_sm,
                "overlap router {router} must be a border"
            );
        }
        // Union covers everything: no router is stranded.
        let all = net.component(r.fixw, LinkFilter::Any);
        prop_assert_eq!(all.len(), net.topo.router_count());
    }

    /// MSDP floods every origination to every RP, regardless of which RP
    /// originates, and expiry empties all caches symmetrically.
    #[test]
    fn msdp_floods_to_all_rps(native_tenths in 3usize..9, which in 0usize..8) {
        let cfg = TopologyConfig {
            domains: 8,
            routers_per_domain: 1,
            leaves_per_router: 1,
            native_fraction: native_tenths as f64 / 10.0,
        };
        let r = transition_internetwork(&cfg);
        let mut net = Network::new(r.topo, t0(), DvmrpTimers::default(), 0);
        let rps: Vec<_> = (0..net.topo.router_count())
            .map(|i| mantra::net::RouterId(i as u32))
            .filter(|x| net.msdp[x.index()].is_some())
            .collect();
        prop_assume!(rps.len() >= 2);
        let origin = rps[which % rps.len()];
        let src = mantra::net::Ip::new(128, 9, 0, 2);
        let group = mantra::net::GroupAddr::from_index(7);
        let mut rng = SimRng::seeded(3);
        let mut now = t0();
        for _ in 0..3 {
            // An RP re-originates its SAs for as long as the source is
            // registered (the tree builder does this every tick).
            net.msdp[origin.index()]
                .as_mut()
                .unwrap()
                .originate(src, group, now);
            now += SimDuration::secs(60);
            net.routing_round(now, 0.0, &mut rng);
        }
        for rp in &rps {
            prop_assert!(
                net.msdp[rp.index()]
                    .as_ref()
                    .unwrap()
                    .sources_for(group)
                    .contains(&src),
                "SA reached {rp}"
            );
        }
        // Stop refreshing: everything ages out everywhere.
        let later = now + SimDuration::secs(400);
        for rp in &rps {
            net.msdp[rp.index()].as_mut().unwrap().expire(later);
            prop_assert!(net.msdp[rp.index()].as_ref().unwrap().is_empty());
        }
    }
}
