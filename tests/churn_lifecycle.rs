//! Archive lifecycle under churn, end to end: a monitored router leaves
//! mid-scenario, passes through `Stale{n}` into `Retired` (which seals
//! its `.marc` behind a writer-drain barrier), stays byte-stable while
//! absent, and rejoins at a fresh dictionary epoch with the full history
//! replaying clean. An [`ArchiveReader`] opened mid-churn always sees a
//! consistent prefix.

use std::path::PathBuf;

use mantra::core::archive::ArchiveReader;
use mantra::core::collector::SimAccess;
use mantra::core::logger::TableLog;
use mantra::core::{
    ArchiveSpec, BackpressureMode, LifecycleState, Monitor, MonitorConfig, SyncPolicy,
    WriterConfig,
};
use mantra::net::SimTime;
use mantra::sim::{ChurnEntry, ChurnEvent, ChurnSchedule, Scenario};

/// Cycle indices (hard-coded against the 15-minute transition tick):
/// ucsb-gw leaves just after cycle 6 and rejoins just before cycle 21.
const LEAVE_AFTER: u64 = 6;
const REJOIN_BEFORE: u64 = 21;
/// With `stale_after=2, retire_after=4`, the retiring seal lands on the
/// 4th missed cycle — cycle 10.
const RETIRED_BY: u64 = LEAVE_AFTER + 4;

/// A transition world with one precisely-timed churn incident installed:
/// ucsb-gw powers off, stays down long enough to retire, powers back on.
fn churned_world(seed: u64) -> Scenario {
    let mut sc = Scenario::transition_snapshot(seed, 0.4);
    sc.sim.set_report_loss(0.0);
    let ucsb = sc
        .sim
        .net
        .topo
        .router_by_name("ucsb-gw")
        .expect("ucsb-gw exists")
        .id;
    let step = sc.sim.tick().as_secs();
    let start = sc.sim.clock;
    let schedule = ChurnSchedule {
        events: vec![
            ChurnEntry {
                at: SimTime(start.0 + LEAVE_AFTER * step + 1),
                event: ChurnEvent::RouterLeave(ucsb),
                label: "router ucsb-gw leaves".into(),
            },
            ChurnEntry {
                at: SimTime(start.0 + (REJOIN_BEFORE - 1) * step + 1),
                event: ChurnEvent::RouterJoin(ucsb),
                label: "router ucsb-gw joins".into(),
            },
        ],
    };
    sc.sim.install_churn(schedule);
    sc
}

fn monitor_for(sc: &Scenario, dir: PathBuf) -> Monitor {
    Monitor::new(MonitorConfig {
        routers: vec!["fixw".into(), "ucsb-gw".into()],
        interval: sc.sim.tick(),
        archive: ArchiveSpec::Threaded {
            dir,
            sync: SyncPolicy::default(),
            writer: WriterConfig {
                capacity: 64,
                mode: BackpressureMode::Block,
            },
        },
        stale_after_intervals: 2,
        retire_after_intervals: 4,
        ..MonitorConfig::default()
    })
}

fn drive(sc: &mut Scenario, m: &mut Monitor, cycles: u64) -> SimTime {
    let mut now = sc.sim.clock;
    for _ in 0..cycles {
        now = sc.sim.clock + m.cfg.interval;
        sc.sim.advance_to(now);
        let mut access = SimAccess::new(&sc.sim);
        m.run_cycle(&mut access, now);
    }
    now
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mantra-churn-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn retire_seals_a_drained_archive_and_rejoin_appends_at_a_fresh_epoch() {
    let dir = temp_dir("lifecycle");
    let mut sc = churned_world(11);
    let mut m = monitor_for(&sc, dir.clone());
    let path = ArchiveSpec::path_for(&dir, "ucsb-gw");

    // Healthy prefix: every cycle captured and archived.
    drive(&mut sc, &mut m, LEAVE_AFTER);
    assert_eq!(
        m.lifecycle_of("ucsb-gw"),
        Some(LifecycleState::Active),
        "still up"
    );

    // The router leaves; staleness accrues until the retiring cycle
    // seals the archive.
    drive(&mut sc, &mut m, RETIRED_BY - LEAVE_AFTER);
    assert_eq!(m.lifecycle_of("ucsb-gw"), Some(LifecycleState::Retired));
    let log = m.log("ucsb-gw").expect("state exists");
    assert!(log.is_sealed(), "retirement seals the log");

    // Seal is a drain barrier: every pre-departure snapshot reached the
    // disk through the writer thread — a cold read-only load sees all of
    // them, with no torn tail.
    let sealed = TableLog::load_read_only(&path, 96).expect("sealed archive loads");
    let prefix = sealed.replay();
    assert_eq!(prefix.len() as u64, LEAVE_AFTER, "drained, nothing torn");
    let epoch_before = sealed.describe().epoch;

    // Byte-stable while retired: more cycles run (fixw keeps archiving),
    // the sealed file does not move.
    let frozen = std::fs::read(&path).expect("sealed bytes");
    drive(&mut sc, &mut m, 5);
    assert_eq!(m.lifecycle_of("ucsb-gw"), Some(LifecycleState::Retired));
    assert_eq!(
        std::fs::read(&path).expect("sealed bytes again"),
        frozen,
        "sealed .marc changed while the router was retired"
    );

    // An ArchiveReader opened mid-churn (writer alive, router retired)
    // yields the clean prefix.
    let reader = ArchiveReader::open(&path).expect("reader opens sealed archive");
    assert_eq!(reader.len() as u64, LEAVE_AFTER);
    assert!(reader.summary_lines(reader.len()).is_ok());

    // The router powers back on just before the cycle-21 capture: cycles
    // 21..=24 all succeed, and the first of them reopens the archive at a
    // fresh dictionary epoch and appends.
    let total = RETIRED_BY + 5;
    drive(&mut sc, &mut m, REJOIN_BEFORE + 3 - total);
    const POST_REJOIN: u64 = 24 - (REJOIN_BEFORE - 1);
    assert_eq!(m.lifecycle_of("ucsb-gw"), Some(LifecycleState::Active));
    let h = m.router_health("ucsb-gw").expect("health");
    assert_eq!(h.rejoins, 1, "one rejoin counted");
    let log = m.log("ucsb-gw").expect("state exists");
    assert!(!log.is_sealed(), "rejoin unseals");
    assert!(
        log.describe().epoch > epoch_before,
        "rejoin must bump the dictionary epoch ({} -> {})",
        epoch_before,
        log.describe().epoch
    );
    assert_eq!(
        log.archive_stats().records as u64,
        LEAVE_AFTER + POST_REJOIN,
        "history plus post-rejoin appends"
    );

    // The rejoined archive replays clean from disk: the pre-departure
    // prefix byte-compatibly first, then the post-rejoin snapshots.
    let reopened = TableLog::load_read_only(&path, 96).expect("rejoined archive loads");
    let full = reopened.replay();
    assert_eq!(full.len() as u64, LEAVE_AFTER + POST_REJOIN);
    assert_eq!(&full[..LEAVE_AFTER as usize], &prefix[..], "prefix intact");
    for w in full.windows(2) {
        assert!(w[0].captured_at < w[1].captured_at, "monotonic history");
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sealed_log_refuses_appends_loudly() {
    let dir = temp_dir("sealed-append");
    let mut sc = churned_world(13);
    let mut m = monitor_for(&sc, dir.clone());
    drive(&mut sc, &mut m, RETIRED_BY);
    assert_eq!(m.lifecycle_of("ucsb-gw"), Some(LifecycleState::Retired));
    let errors_at_seal = m.log("ucsb-gw").expect("log").write_errors;

    // While retired no cycle work happens for the router, so no append
    // is even attempted — the error count stays put.
    drive(&mut sc, &mut m, 3);
    assert_eq!(m.log("ucsb-gw").expect("log").write_errors, errors_at_seal);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn reader_mid_churn_tracks_the_growing_archive_consistently() {
    let dir = temp_dir("reader-prefix");
    let mut sc = churned_world(17);
    let mut m = monitor_for(&sc, dir.clone());
    let path = ArchiveSpec::path_for(&dir, "fixw");

    // fixw never churns; its archive grows the whole run. A reader
    // opened at any point replays exactly the records it snapshotted.
    let mut seen = 0usize;
    for _ in 0..6 {
        drive(&mut sc, &mut m, 4);
        let reader = ArchiveReader::open(&path).expect("open mid-run");
        let len = reader.len();
        assert!(len >= seen, "logical end never goes backwards");
        seen = len;
        let lines = reader.summary_lines(len).expect("clean prefix");
        assert_eq!(lines.len(), len);
    }
    assert_eq!(seen, 24, "every cycle archived");
    let _ = std::fs::remove_dir_all(&dir);
}
