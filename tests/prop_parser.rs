//! Robustness properties of the capture/parse pipeline: whatever a
//! half-broken terminal session delivers, the processor never panics,
//! never fabricates rows, and always accounts for every line.

use proptest::prelude::*;

use mantra::core::collector::{preprocess, RouterAccess, SimAccess};
use mantra::core::processor::process;
use mantra::net::{SimDuration, SimTime};
use mantra::router_cli::TableKind;
use mantra::sim::Scenario;

/// Real rendered dumps for mutation, captured once.
fn real_dumps() -> Vec<(TableKind, String)> {
    let mut sc = Scenario::transition_snapshot(3, 0.5);
    sc.sim.advance_to(sc.sim.clock + SimDuration::hours(6));
    let now = sc.sim.clock;
    let mut access = SimAccess::new(&sc.sim);
    let mut out = Vec::new();
    for k in TableKind::ALL {
        for router in ["fixw", "ucsb-gw"] {
            if let Ok(raw) = access.capture(router, k, now) {
                out.push((k, raw));
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Truncating a real dump at any byte never panics and never yields
    /// more parsed rows than the intact dump.
    #[test]
    fn truncation_is_safe(cut_permille in 0u32..1000, which in 0usize..10) {
        let dumps = real_dumps();
        let (kind, raw) = &dumps[which % dumps.len()];
        let cut = (raw.len() as u64 * u64::from(cut_permille) / 1000) as usize;
        let cut = (0..=cut).rev().find(|i| raw.is_char_boundary(*i)).unwrap_or(0);
        let now = SimTime::from_ymd(1999, 3, 1);
        let full_cap = preprocess("fixw", *kind, raw, now);
        let cut_cap = preprocess("fixw", *kind, &raw[..cut], now);
        let (full_tables, full_stats) = process(&[full_cap]);
        let (cut_tables, cut_stats) = process(&[cut_cap]);
        prop_assert!(cut_stats.parsed <= full_stats.parsed + 1);
        prop_assert!(cut_tables.pairs.len() <= full_tables.pairs.len());
        prop_assert!(cut_tables.routes.len() <= full_tables.routes.len() + 1);
    }

    /// Injecting garbage lines anywhere is counted as malformed/skipped,
    /// never parsed into rows, and never a panic.
    #[test]
    fn garbage_lines_are_quarantined(
        garbage in proptest::collection::vec("[ -~]{0,60}", 1..8),
        pos_permille in 0u32..1000,
        which in 0usize..10,
    ) {
        let dumps = real_dumps();
        let (kind, raw) = &dumps[which % dumps.len()];
        let lines: Vec<&str> = raw.lines().collect();
        let pos = (lines.len() as u64 * u64::from(pos_permille) / 1000) as usize;
        let mut mutated: Vec<String> = lines.iter().map(|l| l.to_string()).collect();
        for (i, g) in garbage.iter().enumerate() {
            mutated.insert((pos + i).min(mutated.len()), g.clone());
        }
        let now = SimTime::from_ymd(1999, 3, 1);
        let cap = preprocess("fixw", *kind, &mutated.join("\n"), now);
        let (_tables, stats) = process(&[cap]);
        let clean = preprocess("fixw", *kind, raw, now);
        let (_, clean_stats) = process(&[clean]);
        // Garbage can at worst be misparsed as one extra row per line of
        // garbage in line-per-row formats — in practice it lands in
        // malformed/skipped. It must never subtract parsed rows.
        prop_assert!(stats.parsed + stats.malformed + stats.skipped
            >= clean_stats.parsed + clean_stats.malformed + clean_stats.skipped);
        prop_assert!(stats.parsed <= clean_stats.parsed + garbage.len());
    }

    /// The preprocessor is idempotent: cleaning cleaned output changes
    /// nothing.
    #[test]
    fn preprocess_is_idempotent(which in 0usize..10) {
        let dumps = real_dumps();
        let (kind, raw) = &dumps[which % dumps.len()];
        let now = SimTime::from_ymd(1999, 3, 1);
        let once = preprocess("fixw", *kind, raw, now);
        let again = preprocess("fixw", *kind, &once.text_lines().join("\n"), now);
        prop_assert_eq!(once.text_lines(), again.text_lines());
    }
}
