//! Property-based tests spanning crates: the delta logger is lossless for
//! arbitrary snapshot streams, the output engines keep their invariants
//! under arbitrary operations, and the classification threshold behaves
//! monotonically.

use proptest::prelude::*;

use mantra::core::logger::{
    apply_reference, apply_with, diff_reference, diff_with, SnapshotParts, TableLog,
};
use mantra::core::output::{Cell, ColumnOp, Table};
use mantra::core::stats::UsageStats;
use mantra::core::store::TableStore;
use mantra::core::tables::{LearnedFrom, PairRow, RouteRow, Tables};
use mantra::net::{BitRate, GroupAddr, Ip, Prefix, SimTime};

fn arb_pair() -> impl Strategy<Value = PairRow> {
    (0u32..40, 1u32..2_000_000, 0u64..300_000, any::<bool>()).prop_map(
        |(g, src, bps, forwarding)| PairRow {
            source: Ip(src),
            group: GroupAddr::from_index(g),
            current_bw: BitRate::from_bps(bps),
            avg_bw: BitRate::from_bps(bps),
            forwarding,
            learned_from: LearnedFrom::Dvmrp,
        },
    )
}

fn arb_route() -> impl Strategy<Value = RouteRow> {
    (0u32..60, 1u32..32, any::<bool>()).prop_map(|(i, metric, reachable)| RouteRow {
        prefix: Prefix::new(Ip(Ip::new(128, 0, 0, 0).0 + (i << 16)), 16).unwrap(),
        next_hop: Some(Ip::new(10, 0, 0, 1)),
        metric,
        uptime: None,
        reachable,
        learned_from: LearnedFrom::Dvmrp,
    })
}

fn arb_snapshot(n: u64) -> impl Strategy<Value = Tables> {
    (
        proptest::collection::vec(arb_pair(), 0..30),
        proptest::collection::vec(arb_route(), 0..30),
    )
        .prop_map(move |(pairs, routes)| {
            let mut t = Tables::new(
                "fixw",
                SimTime(SimTime::from_ymd(1998, 11, 1).as_secs() + n * 900),
            );
            for p in pairs {
                // Skip duplicate (group, source) keys: add_pair would
                // double-count the derived tables.
                if !t.pairs.contains_key(&(p.group, p.source)) {
                    t.add_pair(p);
                }
            }
            for r in routes {
                t.add_route(r);
            }
            t
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The delta log replays every stream exactly, for any full-snapshot
    /// cadence.
    #[test]
    fn logger_replay_is_lossless(
        streams in proptest::collection::vec((0u64..100).prop_flat_map(arb_snapshot), 1..12),
        full_every in 1usize..8,
    ) {
        // Re-stamp timestamps to be increasing (including the derived
        // first-seen fields, which add_pair anchored to the original
        // captured_at).
        let mut streams = streams;
        for (i, s) in streams.iter_mut().enumerate() {
            let at = SimTime(SimTime::from_ymd(1998, 11, 1).as_secs() + i as u64 * 900);
            s.captured_at = at;
            for p in s.participants.values_mut() {
                p.first_seen = at;
            }
            for sess in s.sessions.values_mut() {
                sess.first_seen = at;
            }
        }
        let mut log = TableLog::new(full_every);
        for s in &streams {
            log.append(s);
        }
        let replayed = log.replay();
        prop_assert_eq!(replayed, streams);
        // The logger picks the smaller representation per record, so the
        // only overhead over the full baseline is the record framing.
        prop_assert!(log.bytes_stored <= log.bytes_full_baseline + 16 * log.len());
    }

    /// The interned diff/apply fast path produces byte-identical deltas
    /// and round-trips to the same snapshots as the reference
    /// implementation, for arbitrary snapshot streams through one store
    /// reused across the whole stream (the monitor's usage pattern).
    #[test]
    fn interned_delta_codec_matches_reference(
        streams in proptest::collection::vec((0u64..100).prop_flat_map(arb_snapshot), 2..10),
    ) {
        let mut store = TableStore::default();
        let parts: Vec<SnapshotParts> =
            streams.iter().map(SnapshotParts::from_tables).collect();
        for w in parts.windows(2) {
            let fast = diff_with(&mut store, &w[0], &w[1]);
            let slow = diff_reference(&w[0], &w[1]);
            // Delta records must serialise identically, or archives would
            // change shape under the interned path.
            prop_assert_eq!(format!("{fast:?}"), format!("{slow:?}"));
            let applied = apply_with(&mut store, &w[0], &fast);
            prop_assert_eq!(&applied, &apply_reference(&w[0], &slow));
            // And applying the delta reconstructs the next snapshot
            // exactly (delta then rebuild is lossless).
            prop_assert_eq!(applied.rebuild(), w[1].rebuild());
        }
    }

    /// Raising the sender threshold never increases senders or active
    /// sessions (classification is monotone).
    #[test]
    fn classification_is_monotone_in_threshold(snapshot in arb_snapshot(0)) {
        let mut prev_senders = usize::MAX;
        let mut prev_active = usize::MAX;
        for kbps in [0u64, 1, 2, 4, 8, 16, 64] {
            let u = UsageStats::from_tables(&snapshot, BitRate::from_kbps(kbps));
            prop_assert!(u.senders <= prev_senders);
            prop_assert!(u.active_sessions <= prev_active);
            prop_assert!(u.senders >= u.active_sessions.min(u.senders));
            prev_senders = u.senders;
            prev_active = u.active_sessions;
        }
    }

    /// Derived tables stay consistent with the pair table for any input.
    #[test]
    fn derived_tables_consistent(snapshot in arb_snapshot(0)) {
        let total_density: u64 = snapshot.sessions.values().map(|s| u64::from(s.density)).sum();
        prop_assert_eq!(total_density as usize, snapshot.pairs.len());
        // Every participant's group count is the number of its pairs.
        for (ip, p) in &snapshot.participants {
            let n = snapshot.pairs.keys().filter(|(_, s)| s == ip).count();
            prop_assert_eq!(p.group_count as usize, n);
        }
        // Sessions' bandwidth equals the sum over their pairs.
        for (g, s) in &snapshot.sessions {
            let sum: u64 = snapshot
                .pairs
                .iter()
                .filter(|((pg, _), _)| pg == g)
                .map(|(_, p)| p.current_bw.bps())
                .sum();
            prop_assert_eq!(s.bandwidth.bps(), sum);
        }
    }

    /// Table sorting is a permutation and orders the key column.
    #[test]
    fn table_sort_permutes_and_orders(vals in proptest::collection::vec(0u32..1_000, 1..50)) {
        let mut table = Table::new("t", vec!["k", "v"]);
        for (i, v) in vals.iter().enumerate() {
            table.push_row(vec![Cell::Num(*v as f64), Cell::Num(i as f64)]);
        }
        let mut sorted = table.clone();
        sorted.sort_by("k", true);
        prop_assert_eq!(sorted.rows.len(), table.rows.len());
        let keys: Vec<f64> = sorted.rows.iter().map(|r| r[0].as_num().unwrap()).collect();
        prop_assert!(keys.windows(2).all(|w| w[0] <= w[1]));
        // Multiset preserved.
        let mut orig: Vec<u64> = vals.iter().map(|v| *v as u64).collect();
        let mut got: Vec<u64> = keys.iter().map(|k| *k as u64).collect();
        orig.sort_unstable();
        got.sort_unstable();
        prop_assert_eq!(orig, got);
    }

    /// Computed columns obey their arithmetic on every row.
    #[test]
    fn computed_columns_are_correct(
        rows in proptest::collection::vec((0f64..1e6, 1f64..1e6), 1..30),
    ) {
        let mut table = Table::new("t", vec!["a", "b"]);
        for (a, b) in &rows {
            table.push_row(vec![Cell::Num(*a), Cell::Num(*b)]);
        }
        table.add_computed("sum", "a", ColumnOp::Add, "b");
        table.add_computed("ratio", "a", ColumnOp::Div, "b");
        let si = table.column_index("sum").unwrap();
        let ri = table.column_index("ratio").unwrap();
        for (i, (a, b)) in rows.iter().enumerate() {
            let sum = table.rows[i][si].as_num().unwrap();
            let ratio = table.rows[i][ri].as_num().unwrap();
            prop_assert!((sum - (a + b)).abs() < 1e-6);
            prop_assert!((ratio - a / b).abs() < 1e-6);
        }
    }

    /// Graph zooming only ever narrows the data.
    #[test]
    fn series_window_is_contractive(
        points in proptest::collection::vec(0u64..1_000_000, 1..100),
        lo in 0u64..1_000_000,
        span in 0u64..1_000_000,
    ) {
        let mut sorted = points.clone();
        sorted.sort_unstable();
        let mut s = mantra::core::stats::Series::new("x");
        for (i, t) in sorted.iter().enumerate() {
            s.push(SimTime(*t), i as f64);
        }
        let w = s.window(SimTime(lo), SimTime(lo + span));
        prop_assert!(w.len() <= s.len());
        for (t, _) in &w.points {
            prop_assert!(t.as_secs() >= lo && t.as_secs() <= lo + span);
        }
    }
}
