//! Property-based tests for the archive backends: the on-disk format
//! stores exactly the payload bytes the in-memory backend does, streaming
//! replay is indistinguishable from materialised replay, and a torn tail
//! (simulated crash mid-append) always recovers to the last intact record.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;

use mantra::core::archive::{
    BackpressureMode, FileBackend, FileBackendV2, ThreadedBackend, WriterConfig,
};
use mantra::core::logger::TableLog;
use mantra::core::tables::{LearnedFrom, PairRow, RouteRow, Tables};
use mantra::net::{BitRate, GroupAddr, Ip, Prefix, SimTime};

fn arb_pair() -> impl Strategy<Value = PairRow> {
    (0u32..40, 1u32..2_000_000, 0u64..300_000, any::<bool>()).prop_map(
        |(g, src, bps, forwarding)| PairRow {
            source: Ip(src),
            group: GroupAddr::from_index(g),
            current_bw: BitRate::from_bps(bps),
            avg_bw: BitRate::from_bps(bps),
            forwarding,
            learned_from: LearnedFrom::Dvmrp,
        },
    )
}

fn arb_route() -> impl Strategy<Value = RouteRow> {
    (0u32..60, 1u32..32, any::<bool>()).prop_map(|(i, metric, reachable)| RouteRow {
        prefix: Prefix::new(Ip(Ip::new(128, 0, 0, 0).0 + (i << 16)), 16).unwrap(),
        next_hop: Some(Ip::new(10, 0, 0, 1)),
        metric,
        uptime: None,
        reachable,
        learned_from: LearnedFrom::Dvmrp,
    })
}

fn arb_snapshot(n: u64) -> impl Strategy<Value = Tables> {
    (
        proptest::collection::vec(arb_pair(), 0..30),
        proptest::collection::vec(arb_route(), 0..30),
    )
        .prop_map(move |(pairs, routes)| {
            let mut t = Tables::new(
                "fixw",
                SimTime(SimTime::from_ymd(1998, 11, 1).as_secs() + n * 900),
            );
            for p in pairs {
                if !t.pairs.contains_key(&(p.group, p.source)) {
                    t.add_pair(p);
                }
            }
            for r in routes {
                t.add_route(r);
            }
            t
        })
}

fn arb_stream(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Tables>> {
    proptest::collection::vec((0u64..100).prop_flat_map(arb_snapshot), len).prop_map(
        |mut streams| {
            // Re-stamp timestamps to be increasing (including the derived
            // first-seen fields, which add_pair anchored to the original
            // captured_at).
            for (i, s) in streams.iter_mut().enumerate() {
                let at = SimTime(SimTime::from_ymd(1998, 11, 1).as_secs() + i as u64 * 900);
                s.captured_at = at;
                for p in s.participants.values_mut() {
                    p.first_seen = at;
                }
                for sess in s.sessions.values_mut() {
                    sess.first_seen = at;
                }
            }
            streams
        },
    )
}

/// A fresh archive path per proptest case; cases within a test run
/// sequentially but distinct tests run on parallel threads.
fn tmp_archive() -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!("mantra-prop-archive-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("case-{}.marc", SEQ.fetch_add(1, Ordering::Relaxed)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The file backend archives the exact payload bytes the memory
    /// backend does, replays to the same snapshots, and survives a
    /// close/reopen cycle unchanged.
    #[test]
    fn file_backend_round_trips_identically_to_memory(
        streams in arb_stream(1..10),
        full_every in 1usize..8,
    ) {
        let mut mem = TableLog::new(full_every);
        let path = tmp_archive();
        let backend = FileBackend::create(&path).unwrap();
        let mut file = TableLog::with_backend(Box::new(backend), full_every);
        for s in &streams {
            mem.append(s);
            file.append(s);
        }
        prop_assert_eq!(file.backend_error(), None);
        // Identical logical content: same payload bytes, same checkpoint
        // schedule, same replayed snapshots.
        prop_assert_eq!(file.bytes_stored, mem.bytes_stored);
        prop_assert_eq!(
            file.archive_stats().checkpoints,
            mem.archive_stats().checkpoints
        );
        prop_assert_eq!(file.replay(), mem.replay());
        drop(file);
        let reopened = TableLog::load(&path, full_every).unwrap();
        prop_assert_eq!(reopened.archive_stats().recovered_bytes, 0);
        prop_assert_eq!(reopened.replay(), streams);
        std::fs::remove_file(&path).unwrap();
    }

    /// Streaming replay yields exactly the sequence `replay()` returns,
    /// in order, with no trailing error.
    #[test]
    fn replay_iter_matches_replay(
        streams in arb_stream(1..10),
        full_every in 1usize..8,
    ) {
        let mut log = TableLog::new(full_every);
        for s in &streams {
            log.append(s);
        }
        let streamed: Vec<Tables> = log
            .replay_iter()
            .collect::<std::io::Result<Vec<_>>>()
            .unwrap();
        prop_assert_eq!(&streamed, &log.replay());
        prop_assert_eq!(streamed, streams);
    }

    /// Cutting an archive mid-frame (a crash during append) loses only the
    /// torn record: reopening drops the partial tail, reports how many
    /// bytes were discarded, and replays every record before the cut.
    #[test]
    fn truncated_tail_recovers_to_last_valid_record(
        streams in arb_stream(2..8),
        full_every in 1usize..4,
        cut_seed in 0usize..1_000,
        partial in 1u64..9,
    ) {
        let path = tmp_archive();
        let backend = FileBackend::create(&path).unwrap();
        let mut log = TableLog::with_backend(Box::new(backend), full_every);
        for s in &streams {
            log.append(s);
        }
        prop_assert_eq!(log.backend_error(), None);
        drop(log);
        // Frame offsets (plus the end-of-file sentinel) tell us where each
        // record starts; cut inside record k's frame header.
        let offsets: Vec<u64> = FileBackend::open(&path).unwrap().offsets().to_vec();
        prop_assert_eq!(offsets.len(), streams.len() + 1);
        let k = 1 + cut_seed % (streams.len() - 1);
        let cut_at = offsets[k] + partial;
        let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(cut_at).unwrap();
        drop(f);
        let recovered = TableLog::load(&path, full_every).unwrap();
        let stats = recovered.archive_stats();
        prop_assert_eq!(stats.records, k as u64);
        prop_assert_eq!(stats.recovered_bytes, partial);
        prop_assert_eq!(recovered.replay(), &streams[..k]);
        std::fs::remove_file(&path).unwrap();
    }

    /// The v2 backend (id-keyed records, embedded dictionary) replays to
    /// exactly the snapshots a memory log holds — same logical bytes, same
    /// checkpoint schedule — and survives a close/reopen cycle unchanged.
    #[test]
    fn v2_backend_round_trips_identically_to_memory(
        streams in arb_stream(1..10),
        full_every in 1usize..8,
    ) {
        let mut mem = TableLog::new(full_every);
        let path = tmp_archive();
        let backend = FileBackendV2::create(&path).unwrap();
        let mut file = TableLog::with_backend(Box::new(backend), full_every);
        for s in &streams {
            mem.append(s);
            file.append(s);
        }
        prop_assert_eq!(file.backend_error(), None);
        // Same logger-level accounting: the full-vs-delta choice is made
        // on the JSON rendering for every backend, so the checkpoint
        // schedule — and therefore replay — cannot diverge.
        prop_assert_eq!(file.bytes_stored, mem.bytes_stored);
        prop_assert_eq!(
            file.archive_stats().checkpoints,
            mem.archive_stats().checkpoints
        );
        prop_assert_eq!(file.replay(), mem.replay());
        drop(file);
        let reopened = TableLog::load(&path, full_every).unwrap();
        prop_assert_eq!(reopened.archive_stats().recovered_bytes, 0);
        prop_assert_eq!(reopened.describe().format_version, 2);
        prop_assert_eq!(reopened.replay(), streams);
        std::fs::remove_file(&path).unwrap();
    }

    /// The threaded writer archives the exact bytes the synchronous
    /// backend does — whatever the queue capacity, and even when the
    /// queue is tiny enough that backpressure engages. Dropping the
    /// backend is the shutdown drain barrier, so the on-disk files must
    /// compare byte-for-byte afterwards.
    #[test]
    fn threaded_writer_archives_byte_identical_to_serial(
        streams in arb_stream(2..10),
        full_every in 1usize..8,
        capacity in 1usize..6,
    ) {
        let serial_path = tmp_archive();
        let backend = FileBackendV2::create(&serial_path).unwrap();
        let mut serial = TableLog::with_backend(Box::new(backend), full_every);

        let threaded_path = tmp_archive();
        let inner = Box::new(FileBackendV2::create(&threaded_path).unwrap());
        let writer = ThreadedBackend::spawn(inner, WriterConfig {
            capacity,
            mode: BackpressureMode::Block,
        });
        let mut threaded = TableLog::with_backend(Box::new(writer), full_every);

        for s in &streams {
            serial.append(s);
            threaded.append(s);
        }
        prop_assert_eq!(serial.backend_error(), None);
        prop_assert_eq!(threaded.backend_error(), None);
        // len() is a drain barrier; after it the mirror-backed stats
        // must agree with the synchronous archive.
        prop_assert_eq!(threaded.len(), serial.len());
        prop_assert_eq!(threaded.replay(), serial.replay());
        let ts = threaded.archive_stats();
        prop_assert_eq!(ts.dropped_records, 0);
        prop_assert_eq!(ts.write_errors, 0);
        drop(serial);
        drop(threaded);
        prop_assert_eq!(
            std::fs::read(&serial_path).unwrap(),
            std::fs::read(&threaded_path).unwrap()
        );
        // And the threaded-written archive reopens as a normal file
        // archive, replaying the original stream.
        let reopened = TableLog::load(&threaded_path, full_every).unwrap();
        prop_assert_eq!(reopened.archive_stats().recovered_bytes, 0);
        prop_assert_eq!(reopened.replay(), streams);
        std::fs::remove_file(&serial_path).unwrap();
        std::fs::remove_file(&threaded_path).unwrap();
    }

    /// Arbitrary corruption of a valid v2 archive — a flipped byte, a
    /// truncation, a duplicated range, a deleted range — must never panic
    /// and never produce wrong rows: loading either fails cleanly or
    /// recovers to a strict prefix of the original stream.
    #[test]
    fn corrupted_v2_archive_loads_to_clean_error_or_intact_prefix(
        streams in arb_stream(2..8),
        full_every in 1usize..4,
        op in 0usize..4,
        a_seed in 0usize..100_000,
        b_seed in 0usize..10_000,
        flip in 1u8..255,
    ) {
        let path = tmp_archive();
        let backend = FileBackendV2::create(&path).unwrap();
        let mut log = TableLog::with_backend(Box::new(backend), full_every);
        for s in &streams {
            log.append(s);
        }
        prop_assert_eq!(log.backend_error(), None);
        drop(log);
        let mut bytes = std::fs::read(&path).unwrap();
        let len = bytes.len();
        let a = a_seed % len;
        let b = (a + 1 + b_seed % 256).min(len);
        match op {
            0 => bytes[a] ^= flip,
            1 => bytes.truncate(a),
            2 => {
                let dup: Vec<u8> = bytes[a..b].to_vec();
                bytes.splice(a..a, dup);
            }
            _ => {
                bytes.drain(a..b);
            }
        }
        std::fs::write(&path, &bytes).unwrap();
        // Loading must not panic. When it succeeds, every surviving
        // record is byte-faithful: the replay is a prefix of the stream
        // that was archived (possibly empty, never reordered or altered).
        if let Ok(recovered) = TableLog::load(&path, full_every) {
            let got = recovered.replay();
            prop_assert!(got.len() <= streams.len());
            prop_assert_eq!(got.as_slice(), &streams[..got.len()]);
        }
        std::fs::remove_file(&path).unwrap();
    }
}
