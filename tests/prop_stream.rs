//! Property-based equivalence of the streaming statistics path: folding
//! logged deltas into [`IncrementalStats`] must produce exactly the
//! statistics the full-snapshot constructors compute, over arbitrary
//! snapshot streams — including empty tables (where every fraction is
//! 0/0 and must come out 0), reachability flips, uptime churn and
//! gateway-concentrated route injections.

use proptest::prelude::*;

use mantra::core::anomaly::detect_injection;
use mantra::core::logger::{diff_with, SnapshotParts};
use mantra::core::stats::{RouteChurn, RouteStats, UsageStats};
use mantra::core::stats_stream::IncrementalStats;
use mantra::core::store::TableStore;
use mantra::core::tables::{LearnedFrom, PairRow, RouteRow, Tables};
use mantra::net::{BitRate, GroupAddr, Ip, Prefix, SimDuration, SimTime};

fn arb_pair() -> impl Strategy<Value = PairRow> {
    // Sources include 0 (the unspecified wildcard) to exercise the
    // member-only / wildcard-sender edge cases of the accumulators.
    (0u32..40, 0u32..2_000_000, 0u64..300_000, any::<bool>()).prop_map(
        |(g, src, bps, forwarding)| PairRow {
            source: Ip(src),
            group: GroupAddr::from_index(g),
            current_bw: BitRate::from_bps(bps),
            avg_bw: BitRate::from_bps(bps),
            forwarding,
            learned_from: if src.is_multiple_of(3) {
                LearnedFrom::Igmp
            } else {
                LearnedFrom::Dvmrp
            },
        },
    )
}

fn arb_route() -> impl Strategy<Value = RouteRow> {
    (
        0u32..60,
        1u32..32,
        any::<bool>(),
        0u64..100_000,
        0u32..4,
        0u32..10,
    )
        .prop_map(|(i, metric, reachable, uptime, gw, kind)| RouteRow {
            prefix: Prefix::new(Ip(Ip::new(128, 0, 0, 0).0 + (i << 16)), 16).unwrap(),
            next_hop: (gw > 0).then(|| Ip::new(10, 0, 0, gw as u8)),
            metric,
            uptime: (uptime > 0).then(|| SimDuration::secs(uptime)),
            reachable,
            learned_from: if kind < 2 {
                LearnedFrom::Mbgp
            } else {
                LearnedFrom::Dvmrp
            },
        })
}

/// Arbitrary snapshots, *including empty tables* (0 pairs, 0 routes).
fn arb_snapshot() -> impl Strategy<Value = Tables> {
    (
        proptest::collection::vec(arb_pair(), 0..30),
        proptest::collection::vec(arb_route(), 0..40),
    )
        .prop_map(|(pairs, routes)| {
            let mut t = Tables::new("fixw", SimTime::from_ymd(1998, 11, 1));
            for p in pairs {
                if !t.pairs.contains_key(&(p.group, p.source)) {
                    t.add_pair(p);
                }
            }
            for r in routes {
                t.add_route(r);
            }
            t
        })
}

/// Re-stamps a stream's timestamps to be strictly increasing, the way
/// the monitor's cycles are.
fn restamp(streams: &mut [Tables]) {
    for (i, s) in streams.iter_mut().enumerate() {
        let at = SimTime(SimTime::from_ymd(1998, 11, 1).as_secs() + i as u64 * 900);
        s.captured_at = at;
        for p in s.participants.values_mut() {
            p.first_seen = at;
        }
        for sess in s.sessions.values_mut() {
            sess.first_seen = at;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Folding the deltas the logger emits reproduces, at every step and
    /// bit for bit, the statistics the full-snapshot constructors build —
    /// usage, routes and churn alike.
    #[test]
    fn incremental_stats_match_full_rebuild(
        mut streams in proptest::collection::vec(arb_snapshot(), 1..10),
        threshold_kbps in 0u64..16,
        min_new in 1usize..20,
    ) {
        restamp(&mut streams);
        let threshold = BitRate::from_kbps(threshold_kbps);
        let mut store = TableStore::default();
        let mut stream = IncrementalStats::default();
        prop_assert!(!stream.is_seeded());
        stream.reseed(&streams[0], threshold);
        prop_assert!(stream.is_seeded());
        prop_assert_eq!(stream.usage(), UsageStats::from_tables(&streams[0], threshold));
        prop_assert_eq!(stream.route_stats(), RouteStats::from_tables(&streams[0]));
        for w in streams.windows(2) {
            let (prev, next) = (&w[0], &w[1]);
            let delta = diff_with(
                &mut store,
                &SnapshotParts::from_tables(prev),
                &SnapshotParts::from_tables(next),
            );
            let changes = stream.fold(&delta);
            // The O(delta) accumulators agree exactly with the O(table)
            // reference constructors...
            prop_assert_eq!(stream.usage(), UsageStats::from_tables(next, threshold));
            prop_assert_eq!(stream.route_stats(), RouteStats::from_tables(next));
            // ...and so do the churn counters and the route-injection
            // detection derived from the fold.
            prop_assert_eq!(changes.churn, RouteChurn::between(prev, next));
            prop_assert_eq!(
                changes.injection(min_new),
                detect_injection(prev, next, min_new)
            );
        }
    }

    /// Reseeding from an arbitrary snapshot mid-stream (the archive
    /// reopen path) leaves the accumulators exactly where a fresh seed
    /// would: folding is independent of the stream's history.
    #[test]
    fn reseed_resets_cleanly(
        mut streams in proptest::collection::vec(arb_snapshot(), 2..6),
        threshold_kbps in 0u64..16,
    ) {
        restamp(&mut streams);
        let threshold = BitRate::from_kbps(threshold_kbps);
        let mut store = TableStore::default();
        let mut dirty = IncrementalStats::default();
        // Accumulate some history first...
        dirty.reseed(&streams[0], threshold);
        for w in streams.windows(2) {
            let delta = diff_with(
                &mut store,
                &SnapshotParts::from_tables(&w[0]),
                &SnapshotParts::from_tables(&w[1]),
            );
            dirty.fold(&delta);
        }
        // ...then reseed from the first snapshot and refold: every step
        // matches a stream that never had the history.
        dirty.reseed(&streams[0], threshold);
        prop_assert_eq!(dirty.usage(), UsageStats::from_tables(&streams[0], threshold));
        for w in streams.windows(2) {
            let delta = diff_with(
                &mut store,
                &SnapshotParts::from_tables(&w[0]),
                &SnapshotParts::from_tables(&w[1]),
            );
            dirty.fold(&delta);
            prop_assert_eq!(dirty.usage(), UsageStats::from_tables(&w[1], threshold));
            prop_assert_eq!(dirty.route_stats(), RouteStats::from_tables(&w[1]));
        }
    }
}
