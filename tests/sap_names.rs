//! SAP session directory feeding Mantra's session-name column: the
//! network-layer tool consuming the application layer's one useful output.

use mantra::core::collector::SimAccess;
use mantra::core::{Monitor, MonitorConfig};
use mantra::net::SimDuration;
use mantra::sim::{AppLayerConfig, AppLayerMonitor, Scenario, SimRng};

#[test]
fn sap_names_annotate_sessions() {
    let mut sc = Scenario::transition_snapshot(321, 0.0);
    let mut monitor = Monitor::new(MonitorConfig {
        routers: vec!["fixw".into()],
        interval: sc.sim.tick(),
        ..MonitorConfig::default()
    });
    let mut sap = AppLayerMonitor::new(sc.fixw, AppLayerConfig::default(), SimRng::seeded(7));
    for _ in 0..24 {
        let next = sc.sim.clock + monitor.cfg.interval;
        sc.sim.advance_to(next);
        // The SAP listener runs alongside and feeds the directory in.
        let names = sap.sap_directory(&sc.sim, next);
        monitor.learn_session_names(names);
        let mut access = SimAccess::new(&sc.sim);
        monitor.run_cycle(&mut access, next);
    }
    let latest = monitor.latest("fixw").unwrap();
    let named = latest
        .sessions
        .values()
        .filter(|s| s.name.is_some())
        .count();
    let total = latest.sessions.len();
    assert!(named > 0, "some sessions get SAP names ({named}/{total})");
    assert!(
        named < total,
        "unadvertised sessions stay nameless ({named}/{total}) — the \"if available\" caveat"
    );
    // Names surface in the summary table.
    let table = monitor.busiest_sessions("fixw", 20);
    let name_col = table.column_index("name").unwrap();
    let any_named = table
        .rows
        .iter()
        .any(|r| matches!(&r[name_col], mantra::core::output::Cell::Text(t) if !t.is_empty()));
    assert!(any_named, "{}", table.render());
}

#[test]
fn directory_is_stable_per_group() {
    let mut sc = Scenario::transition_snapshot(322, 0.0);
    sc.sim.advance_to(sc.sim.clock + SimDuration::hours(6));
    let mut sap = AppLayerMonitor::new(sc.ucsb, AppLayerConfig::default(), SimRng::seeded(8));
    let now = sc.sim.clock;
    let a = sap.sap_directory(&sc.sim, now);
    let b = sap.sap_directory(&sc.sim, now);
    assert_eq!(a, b, "advertisement decisions are sticky");
    for (g, name) in &a {
        assert!(name.contains(&g.to_string()), "{name} names {g}");
    }
}
