//! The diagnostic toolbox against live scenarios, cross-checked with
//! Mantra's own view of the same network.

use mantra::net::{SimDuration, SimTime};
use mantra::sim::Scenario;
use mantra::tools::{mrinfo, mrtree, mtrace, mwatch, MtraceOutcome};

fn warmed(seed: u64) -> Scenario {
    let mut sc = Scenario::transition_snapshot(seed, 0.0);
    sc.sim.advance_to(sc.sim.clock + SimDuration::hours(4));
    sc
}

#[test]
fn mwatch_count_matches_topology() {
    let sc = warmed(11);
    let report = mwatch(&sc.sim.net, sc.fixw);
    assert_eq!(report.router_count(), sc.sim.net.topo.router_count());
    assert_eq!(
        report.tunnel_count(),
        sc.sim
            .net
            .topo
            .links()
            .iter()
            .filter(|l| l.kind == mantra::topology::LinkKind::Tunnel && l.up)
            .count()
    );
}

#[test]
fn mtrace_path_length_matches_bfs_depth() {
    let sc = warmed(12);
    let (group, part) = sc
        .sim
        .sessions
        .iter()
        .flat_map(|s| s.participants.values().map(move |p| (s.group, p.clone())))
        .find(|(_, p)| p.router != sc.fixw)
        .expect("remote participant");
    let trace = mtrace(&sc.sim.net, sc.fixw, part.addr, group);
    assert_eq!(trace.outcome, MtraceOutcome::Reached);
    // Independent ground truth: BFS hops from the participant's router.
    let tree = sc
        .sim
        .net
        .bfs_tree(part.router, mantra::sim::LinkFilter::Dvmrp);
    let mut depth = 1;
    let mut cur = sc.fixw;
    while let Some(h) = tree[cur.index()] {
        cur = h.parent;
        depth += 1;
    }
    assert_eq!(trace.hops.len(), depth, "trace length = BFS path length");
}

#[test]
fn mrtree_agrees_with_mantra_on_fixw_state() {
    let mut sc = warmed(13);
    // Run a couple of extra ticks so FIXW's MFIB is fresh.
    sc.sim.advance_to(sc.sim.clock + SimDuration::mins(30));
    // Pick a forwarding (non-pruned) entry at FIXW.
    let picked = sc.sim.net.mfib[sc.fixw.index()]
        .iter()
        .find(|e| !e.key.is_wildcard() && !e.is_pruned())
        .map(|e| e.key);
    let Some(key) = picked else {
        return; // extremely quiet network; nothing to check
    };
    // Find the source's first-hop by tracing.
    let trace = mtrace(&sc.sim.net, sc.fixw, key.source, key.group);
    assert_eq!(trace.outcome, MtraceOutcome::Reached);
    let root = trace.hops.last().unwrap().router;
    let tree = mrtree(&sc.sim.net, root, key.source, key.group);
    // The tree must contain FIXW, and FIXW must be marked as holding
    // (S,G) state — the same fact Mantra's tables report.
    fn find(node: &mantra::tools::TreeNode, r: mantra::net::RouterId) -> Option<bool> {
        if node.router == r {
            return Some(node.has_state);
        }
        node.children.iter().find_map(|c| find(c, r))
    }
    let fixw_state = find(&tree, sc.fixw).expect("fixw is on the broadcast tree");
    assert!(
        fixw_state,
        "mrtree sees the same (S,G) state Mantra scrapes"
    );
}

#[test]
fn mrinfo_tunnel_metrics_match_topology() {
    let sc = warmed(14);
    let info = mrinfo(&sc.sim.net, sc.ucsb).unwrap();
    for iface in info.ifaces.iter().filter(|i| i.flags.contains(&"tunnel")) {
        let neighbor = iface.neighbor.expect("live tunnel");
        let link = sc
            .sim
            .net
            .topo
            .link_between(sc.ucsb, neighbor)
            .expect("link exists");
        assert_eq!(iface.metric, link.metric);
    }
}

#[test]
fn inconsistent_routing_shows_up_as_trace_failures() {
    let mut sc = warmed(15);
    // Knock a mid-path link out without letting routing reconverge.
    let (group, part) = sc
        .sim
        .sessions
        .iter()
        .flat_map(|s| s.participants.values().map(move |p| (s.group, p.clone())))
        .find(|(_, p)| {
            p.router != sc.fixw
                && sc.sim.net.topo.router(p.router).domain != sc.sim.net.topo.router(sc.fixw).domain
        })
        .expect("remote participant");
    let border = sc
        .sim
        .net
        .topo
        .domain(sc.sim.net.topo.router(part.router).domain)
        .border
        .unwrap();
    let link = sc.sim.net.topo.link_between(sc.fixw, border).unwrap().id;
    let t = sc.sim.clock;
    sc.sim.net.on_link_change(link, false, t);
    let trace = mtrace(&sc.sim.net, sc.fixw, part.addr, group);
    assert_ne!(trace.outcome, MtraceOutcome::Reached);
    // The render carries the failure for the operator.
    let text = trace.render(part.addr, group);
    assert!(text.contains("outcome:"));
    let _ = SimTime::from_ymd(1998, 11, 1);
}
