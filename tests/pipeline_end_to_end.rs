//! End-to-end pipeline tests: simulated routers → CLI scrape → parse →
//! log → statistics, across crates.

use mantra::core::collector::{FlakyAccess, SimAccess};
use mantra::core::{Monitor, MonitorConfig, StageKind};
use mantra::net::rate::SENDER_THRESHOLD;
use mantra::net::{SimDuration, SimTime};
use mantra::sim::Scenario;

fn drive(sc: &mut Scenario, monitor: &mut Monitor, cycles: usize) {
    for _ in 0..cycles {
        let next = sc.sim.clock + monitor.cfg.interval;
        sc.sim.advance_to(next);
        let mut access = SimAccess::new(&sc.sim);
        monitor.run_cycle(&mut access, next);
    }
}

#[test]
fn monitored_tables_track_ground_truth() {
    let mut sc = Scenario::transition_snapshot(101, 0.0);
    let mut monitor = Monitor::new(MonitorConfig {
        routers: vec!["fixw".into(), "ucsb-gw".into()],
        interval: sc.sim.tick(),
        ..MonitorConfig::default()
    });
    drive(&mut sc, &mut monitor, 48);
    let seen = monitor.usage_history("fixw").last().unwrap();
    let truth = sc.sim.sessions.len();
    // The DVMRP world floods everything; modulo cache lag the exchange
    // point's session count brackets the ground truth.
    assert!(
        seen.sessions as f64 > 0.5 * truth as f64 && (seen.sessions as f64) < 2.5 * truth as f64,
        "seen {} vs truth {truth}",
        seen.sessions
    );
    // Sender counts agree with ground truth within slack: every sender
    // visible at FIXW is a real sender.
    let truth_senders: usize = sc
        .sim
        .sessions
        .iter()
        .map(|s| s.senders(SENDER_THRESHOLD).count())
        .sum();
    assert!(
        seen.senders <= truth_senders + 5,
        "seen senders {} vs truth {truth_senders}",
        seen.senders
    );
}

#[test]
fn parse_is_clean_on_healthy_captures() {
    let mut sc = Scenario::transition_snapshot(102, 0.5);
    let mut monitor = Monitor::new(MonitorConfig {
        routers: vec!["fixw".into(), "ucsb-gw".into()],
        interval: sc.sim.tick(),
        ..MonitorConfig::default()
    });
    drive(&mut sc, &mut monitor, 24);
    assert_eq!(
        monitor.parse_totals.malformed, 0,
        "real renderer output must parse without malformed rows: {:?}",
        monitor.parse_totals
    );
    assert!(monitor.parse_totals.parsed > 1_000);
    assert_eq!(monitor.capture_failures(), 0);
}

#[test]
fn archives_replay_losslessly_through_the_monitor() {
    let mut sc = Scenario::transition_snapshot(103, 0.3);
    let mut monitor = Monitor::new(MonitorConfig {
        routers: vec!["fixw".into()],
        interval: sc.sim.tick(),
        log_full_every: 7,
        ..MonitorConfig::default()
    });
    drive(&mut sc, &mut monitor, 20);
    let log = monitor.log("fixw").unwrap();
    let replayed = log.replay();
    assert_eq!(replayed.len(), 20);
    assert_eq!(&replayed[19], monitor.latest("fixw").unwrap());
    // Delta encoding earns its keep even on churning tables.
    assert!(
        log.savings_ratio() > 0.15,
        "savings {:.2}",
        log.savings_ratio()
    );
    // Timestamps are strictly increasing across snapshots.
    for w in replayed.windows(2) {
        assert!(w[0].captured_at < w[1].captured_at);
    }
}

#[test]
fn sa_cache_appears_only_on_msdp_capable_routers() {
    let mut sc = Scenario::transition_snapshot(104, 0.6);
    let mut monitor = Monitor::new(MonitorConfig {
        routers: vec!["fixw".into(), "ucsb-gw".into()],
        interval: sc.sim.tick(),
        ..MonitorConfig::default()
    });
    drive(&mut sc, &mut monitor, 48);
    let fixw = monitor.usage_history("fixw").last().unwrap();
    let ucsb = monitor.usage_history("ucsb-gw").last().unwrap();
    assert!(fixw.sa_entries > 0, "the border RP caches SAs");
    assert_eq!(ucsb.sa_entries, 0, "mrouted has no MSDP");
}

#[test]
fn mbgp_routes_visible_only_at_border() {
    let mut sc = Scenario::transition_snapshot(105, 0.6);
    let mut monitor = Monitor::new(MonitorConfig {
        routers: vec!["fixw".into(), "ucsb-gw".into()],
        interval: sc.sim.tick(),
        ..MonitorConfig::default()
    });
    drive(&mut sc, &mut monitor, 12);
    let fixw = monitor.route_history("fixw").last().unwrap();
    let ucsb = monitor.route_history("ucsb-gw").last().unwrap();
    assert!(fixw.mbgp_routes > 0);
    assert_eq!(ucsb.mbgp_routes, 0);
    assert!(fixw.dvmrp_reachable > 0 && ucsb.dvmrp_reachable > 0);
}

#[test]
fn uptime_reported_by_ios_survives_the_pipeline() {
    let mut sc = Scenario::transition_snapshot(106, 0.5);
    let mut monitor = Monitor::new(MonitorConfig {
        routers: vec!["fixw".into()],
        interval: sc.sim.tick(),
        ..MonitorConfig::default()
    });
    drive(&mut sc, &mut monitor, 8);
    let routes = monitor.route_history("fixw").last().unwrap();
    let mean = routes.mean_uptime_secs.expect("IOS reports uptimes");
    assert!(mean > 0.0, "mean uptime {mean}");
    // Two hours in, stable routes should have accumulated about that much
    // uptime on average.
    assert!(mean <= SimDuration::hours(13).as_secs() as f64);
}

#[test]
fn stage_metrics_sum_to_cycle_totals() {
    let mut sc = Scenario::transition_snapshot(108, 0.3);
    let mut monitor = Monitor::new(MonitorConfig {
        routers: vec!["fixw".into(), "ucsb-gw".into()],
        interval: sc.sim.tick(),
        ..MonitorConfig::default()
    });
    let cycles = 10u64;
    for i in 0..cycles {
        let next = sc.sim.clock + monitor.cfg.interval;
        sc.sim.advance_to(next);
        // Failure injection so retries accumulate simulated backoff
        // latency into the Capture stage.
        let access = FlakyAccess::new(&sc.sim, 0.2, 0.2, 200 + i);
        monitor.run_cycle_parallel(&access, next);
    }
    // Every stage ran exactly once per cycle and spent visible wall time.
    for kind in StageKind::ALL {
        let m = monitor.pipeline().stage(kind);
        assert_eq!(m.invocations, cycles, "{kind:?}");
        assert!(m.wall_nanos > 0, "{kind:?} must report non-zero time");
    }
    // Capture items reconcile with the health registry's capture totals
    // (one item per table whose final attempt succeeded or failed).
    let health_totals: u64 = monitor
        .cfg
        .routers
        .clone()
        .iter()
        .filter_map(|r| monitor.router_health(r))
        .map(|h| h.successes + h.failures)
        .sum();
    let capture = monitor.pipeline().stage(StageKind::Capture);
    assert_eq!(capture.items, health_totals);
    assert!(
        capture.sim_latency > SimDuration::ZERO,
        "retries under failure injection add simulated backoff"
    );
    // Parse items reconcile with the cumulative parse accounting.
    let pt = monitor.parse_totals;
    let parse = monitor.pipeline().stage(StageKind::Parse);
    assert_eq!(
        parse.items,
        (pt.parsed + pt.malformed + pt.skipped + pt.rejected_mixed) as u64
    );
    // Downstream stages handle one snapshot per router per cycle.
    let snapshots = cycles * monitor.cfg.routers.len() as u64;
    for kind in [StageKind::Enrich, StageKind::Log, StageKind::Analyse] {
        assert_eq!(monitor.pipeline().stage(kind).items, snapshots, "{kind:?}");
    }
}

#[test]
fn clock_never_runs_backwards_through_the_pipeline() {
    let mut sc = Scenario::transition_snapshot(107, 0.2);
    let mut monitor = Monitor::new(MonitorConfig {
        routers: vec!["fixw".into()],
        interval: sc.sim.tick(),
        ..MonitorConfig::default()
    });
    drive(&mut sc, &mut monitor, 16);
    let hist = monitor.usage_history("fixw");
    let times: Vec<SimTime> = hist.iter().map(|u| u.at).collect();
    for w in times.windows(2) {
        assert!(w[0] < w[1]);
    }
}
