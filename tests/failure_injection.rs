//! Failure-injection tests: the monitoring pipeline must survive the
//! operational mess the paper's deployment dealt with — refused logins,
//! half-transferred dumps, flapping links and rebooting routers.

use mantra::core::collector::{CaptureError, FlakyAccess, RetryPolicy, RouterAccess, SimAccess};
use mantra::core::monitor::CycleReport;
use mantra::core::{Monitor, MonitorConfig};
use mantra::net::{SimDuration, SimTime};
use mantra::router_cli::TableKind;
use mantra::sim::{Event, Scenario};

/// Drives a retry-configured monitor through `cycles` parallel cycles
/// against a freshly seeded scenario with injected failures.
fn flaky_monitor(
    retry: RetryPolicy,
    cycles: u64,
    login: f64,
    trunc: f64,
    salt: u64,
) -> (Monitor, Vec<CycleReport>) {
    let mut sc = Scenario::transition_snapshot(205, 0.4);
    let mut monitor = Monitor::new(MonitorConfig {
        routers: vec!["fixw".into(), "ucsb-gw".into()],
        interval: sc.sim.tick(),
        retry,
        ..MonitorConfig::default()
    });
    let mut reports = Vec::new();
    for _ in 0..cycles {
        let next = sc.sim.clock + monitor.cfg.interval;
        sc.sim.advance_to(next);
        let access = FlakyAccess::new(&sc.sim, login, trunc, salt);
        reports.push(monitor.run_cycle_parallel(&access, next));
    }
    (monitor, reports)
}

fn captured(m: &Monitor) -> u64 {
    ["fixw", "ucsb-gw"]
        .iter()
        .map(|r| m.router_health(r).unwrap().successes)
        .sum()
}

fn lost(m: &Monitor) -> u64 {
    ["fixw", "ucsb-gw"]
        .iter()
        .map(|r| m.router_health(r).unwrap().failures)
        .sum()
}

#[test]
fn retry_recovers_most_lost_captures() {
    // The acceptance scenario: 30% login failures, 96 cycles, a 3-attempt
    // retry policy against the no-retry seed behaviour.
    let (baseline, _) = flaky_monitor(RetryPolicy::none(), 96, 0.3, 0.0, 11);
    let (retried, _) = flaky_monitor(RetryPolicy::default(), 96, 0.3, 0.0, 11);
    let recovered_by_retry: u64 = ["fixw", "ucsb-gw"]
        .iter()
        .map(|r| retried.router_health(r).unwrap().retry_successes)
        .sum();
    assert!(recovered_by_retry > 0, "retries recovered captures");
    assert!(
        captured(&retried) > captured(&baseline),
        "retry strictly increases the capture count: {} vs {}",
        captured(&retried),
        captured(&baseline)
    );
    // First attempts share the same deterministic failure rolls, so the
    // retried run's losses are a subset of the baseline's; at p=0.3 and 3
    // attempts the residual loss rate is 0.3^3, recovering >= 90% of what
    // the baseline lost.
    let recovery = (lost(&baseline) - lost(&retried)) as f64 / lost(&baseline) as f64;
    assert!(
        recovery >= 0.9,
        "recovered {:.1}% of {} baseline losses",
        recovery * 100.0,
        lost(&baseline)
    );
}

#[test]
fn retry_outcomes_are_deterministic() {
    let (m1, r1) = flaky_monitor(RetryPolicy::default(), 24, 0.3, 0.3, 17);
    let (m2, r2) = flaky_monitor(RetryPolicy::default(), 24, 0.3, 0.3, 17);
    assert_eq!(r1, r2, "same salt, same cycle reports");
    for router in ["fixw", "ucsb-gw"] {
        assert_eq!(m1.router_health(router), m2.router_health(router));
    }
    // A different salt shifts the injected failures, and with them the
    // retry outcomes.
    let (m3, r3) = flaky_monitor(RetryPolicy::default(), 24, 0.3, 0.3, 18);
    assert!(
        r1 != r3 || m1.router_health("fixw") != m3.router_health("fixw"),
        "different salt, different outcomes"
    );
}

#[test]
fn parallel_cycles_write_byte_identical_logs() {
    // Serial monitor over the mutable single-session access...
    let mut sc = Scenario::transition_snapshot(206, 0.4);
    let mut serial = Monitor::new(MonitorConfig {
        routers: vec!["fixw".into(), "ucsb-gw".into()],
        interval: sc.sim.tick(),
        ..MonitorConfig::default()
    });
    let mut serial_reports = Vec::new();
    for _ in 0..12 {
        let next = sc.sim.clock + serial.cfg.interval;
        sc.sim.advance_to(next);
        let mut access = FlakyAccess::new(SimAccess::new(&sc.sim), 0.25, 0.25, 3);
        serial_reports.push(serial.run_cycle(&mut access, next));
    }
    // ...and the parallel monitor over the shared-session access, same
    // scenario seed, same failure salts.
    let mut sc = Scenario::transition_snapshot(206, 0.4);
    let mut parallel = Monitor::new(MonitorConfig {
        routers: vec!["fixw".into(), "ucsb-gw".into()],
        interval: sc.sim.tick(),
        ..MonitorConfig::default()
    });
    let mut parallel_reports = Vec::new();
    for _ in 0..12 {
        let next = sc.sim.clock + parallel.cfg.interval;
        sc.sim.advance_to(next);
        let access = FlakyAccess::new(&sc.sim, 0.25, 0.25, 3);
        parallel_reports.push(parallel.run_cycle_parallel(&access, next));
    }
    assert_eq!(serial_reports, parallel_reports);
    // The delta-log archives must be byte-identical.
    let dir = std::env::temp_dir().join(format!("mantra-par-{}", std::process::id()));
    let (sdir, pdir) = (dir.join("serial"), dir.join("parallel"));
    serial.export_archives(&sdir).unwrap();
    parallel.export_archives(&pdir).unwrap();
    for router in ["fixw", "ucsb-gw"] {
        let s = std::fs::read(sdir.join(format!("{router}.jsonl"))).unwrap();
        let p = std::fs::read(pdir.join(format!("{router}.jsonl"))).unwrap();
        assert!(!s.is_empty());
        assert_eq!(s, p, "{router} archives diverge");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Refuses every login for one router; everything else passes through.
struct Starving<'a> {
    inner: SimAccess<'a>,
    victim: &'static str,
}

impl RouterAccess for Starving<'_> {
    fn capture(
        &mut self,
        router: &str,
        table: TableKind,
        now: SimTime,
    ) -> Result<String, CaptureError> {
        if router == self.victim {
            return Err(CaptureError::LoginFailed("host unreachable".into()));
        }
        self.inner.capture(router, table, now)
    }
}

#[test]
fn starved_router_goes_stale() {
    let mut sc = Scenario::transition_snapshot(207, 0.3);
    let mut monitor = Monitor::new(MonitorConfig {
        routers: vec!["fixw".into(), "ucsb-gw".into()],
        interval: sc.sim.tick(),
        ..MonitorConfig::default()
    });
    let mut now = sc.sim.clock;
    for _ in 0..8 {
        now = sc.sim.clock + monitor.cfg.interval;
        sc.sim.advance_to(now);
        let mut access = Starving {
            inner: SimAccess::new(&sc.sim),
            victim: "ucsb-gw",
        };
        monitor.run_cycle(&mut access, now);
    }
    let healthy = monitor.router_health("fixw").unwrap();
    let starved = monitor.router_health("ucsb-gw").unwrap();
    assert!(healthy.successes > 0);
    assert!(!healthy.is_stale(now, monitor.cfg.interval, monitor.cfg.stale_after_intervals));
    assert_eq!(starved.successes, 0);
    assert!(starved.retries > 0, "the monitor kept trying");
    assert!(starved.is_stale(now, monitor.cfg.interval, monitor.cfg.stale_after_intervals));
    // A router the monitor never reached contributes *no* usage rows —
    // absence is flagged in health, not papered over with zero-valued
    // samples.
    assert_eq!(monitor.usage_history("ucsb-gw").len(), 0);
    assert_eq!(starved.missed_cycles, 8, "every missed cycle is counted");
    // Eight consecutive misses walk the lifecycle all the way to Retired
    // (defaults: stale after 4, retire after 8).
    assert_eq!(
        monitor.lifecycle_of("ucsb-gw"),
        Some(mantra::core::LifecycleState::Retired)
    );
    let table = monitor.health(now);
    let stale_col = table.columns.iter().position(|c| c == "stale").unwrap();
    assert_eq!(
        table.rows[1][stale_col],
        mantra::core::output::Cell::Text("STALE".into())
    );
    let state_col = table.columns.iter().position(|c| c == "state").unwrap();
    assert_eq!(
        table.rows[1][state_col],
        mantra::core::output::Cell::Text("retired".into())
    );
}

#[test]
fn monitor_survives_heavy_capture_failures() {
    let mut sc = Scenario::transition_snapshot(201, 0.4);
    let mut monitor = Monitor::new(MonitorConfig {
        routers: vec!["fixw".into(), "ucsb-gw".into()],
        interval: sc.sim.tick(),
        ..MonitorConfig::default()
    });
    for i in 0..24 {
        let next = sc.sim.clock + monitor.cfg.interval;
        sc.sim.advance_to(next);
        let mut access = FlakyAccess::new(SimAccess::new(&sc.sim), 0.3, 0.3, 99 + i);
        monitor.run_cycle(&mut access, next);
    }
    assert_eq!(monitor.cycles(), 24);
    assert!(monitor.capture_failures() > 5, "failures were injected");
    // History exists for every cycle even when captures failed.
    assert_eq!(monitor.usage_history("fixw").len(), 24);
    // Truncation salvage means parse totals still accumulated.
    assert!(monitor.parse_totals.parsed > 100);
    // The archive stays replayable.
    let log = monitor.log("fixw").unwrap();
    assert_eq!(log.replay().len(), 24);
}

#[test]
fn truncated_dumps_do_not_poison_tables() {
    let mut sc = Scenario::transition_snapshot(202, 0.4);
    sc.sim.advance_to(sc.sim.clock + SimDuration::hours(6));
    let now = sc.sim.clock;
    // Pure truncation, no login failures, aggressive rate.
    let mut flaky = FlakyAccess::new(SimAccess::new(&sc.sim), 0.0, 1.0, 7);
    let mut collector = mantra::core::collector::Collector::new();
    let captures = collector.collect(&mut flaky, "fixw", now);
    let (tables, stats) = mantra::core::processor::process(&captures);
    // Every surviving row is well-formed (the torn line was dropped).
    assert_eq!(stats.malformed, 0, "{stats:?}");
    // Partial data is partial, not garbage: any route present parses to a
    // real prefix.
    for r in tables.routes.values() {
        assert!(r.metric <= 64);
    }
}

#[test]
fn link_flaps_show_up_and_heal() {
    let mut sc = Scenario::transition_snapshot(203, 0.0);
    let mut monitor = Monitor::new(MonitorConfig {
        routers: vec!["fixw".into()],
        interval: sc.sim.tick(),
        ..MonitorConfig::default()
    });
    // Stabilise.
    for _ in 0..8 {
        let next = sc.sim.clock + monitor.cfg.interval;
        sc.sim.advance_to(next);
        let mut access = SimAccess::new(&sc.sim);
        monitor.run_cycle(&mut access, next);
    }
    let healthy = monitor
        .route_history("fixw")
        .last()
        .unwrap()
        .dvmrp_reachable;
    // Take the FIXW–UCSB tunnel down for an hour.
    let link = sc.sim.net.topo.link_between(sc.fixw, sc.ucsb).unwrap().id;
    let t_down = sc.sim.clock + SimDuration::mins(1);
    let t_up = t_down + SimDuration::hours(1);
    sc.sim.schedule(t_down, Event::SetLink { link, up: false });
    sc.sim.schedule(t_up, Event::SetLink { link, up: true });
    for _ in 0..4 {
        let next = sc.sim.clock + monitor.cfg.interval;
        sc.sim.advance_to(next);
        let mut access = SimAccess::new(&sc.sim);
        monitor.run_cycle(&mut access, next);
    }
    let during = monitor
        .route_history("fixw")
        .last()
        .unwrap()
        .dvmrp_reachable;
    assert!(
        during < healthy,
        "withdrawals visible: {healthy} -> {during}"
    );
    // Heal and re-learn.
    for _ in 0..12 {
        let next = sc.sim.clock + monitor.cfg.interval;
        sc.sim.advance_to(next);
        let mut access = SimAccess::new(&sc.sim);
        monitor.run_cycle(&mut access, next);
    }
    let healed = monitor
        .route_history("fixw")
        .last()
        .unwrap()
        .dvmrp_reachable;
    assert!(
        healed >= healthy,
        "routes re-learned after flap: {healthy} -> {healed}"
    );
    // Churn history recorded the round trip.
    let churn: usize = monitor
        .churn_history("fixw")
        .iter()
        .map(|(_, c)| c.total())
        .sum();
    assert!(churn > 0);
}

#[test]
fn collection_gap_then_resume() {
    let mut sc = Scenario::transition_snapshot(204, 0.3);
    let mut monitor = Monitor::new(MonitorConfig {
        routers: vec!["fixw".into()],
        interval: sc.sim.tick(),
        ..MonitorConfig::default()
    });
    for _ in 0..6 {
        let next = sc.sim.clock + monitor.cfg.interval;
        sc.sim.advance_to(next);
        let mut access = SimAccess::new(&sc.sim);
        monitor.run_cycle(&mut access, next);
    }
    // Mantra host goes away for a day; the network keeps running.
    sc.sim.advance_to(sc.sim.clock + SimDuration::days(1));
    for _ in 0..6 {
        let next = sc.sim.clock + monitor.cfg.interval;
        sc.sim.advance_to(next);
        let mut access = SimAccess::new(&sc.sim);
        monitor.run_cycle(&mut access, next);
    }
    assert_eq!(monitor.cycles(), 12);
    let hist = monitor.usage_history("fixw");
    // The gap is visible in the timestamps, not papered over.
    let gaps: Vec<u64> = hist
        .windows(2)
        .map(|w| (w[1].at.as_secs() - w[0].at.as_secs()) / 60)
        .collect();
    assert!(gaps.iter().any(|g| *g > 60 * 12), "gap preserved: {gaps:?}");
    // And the archive replays cleanly across it.
    assert_eq!(monitor.log("fixw").unwrap().replay().len(), 12);
}
