//! Failure-injection tests: the monitoring pipeline must survive the
//! operational mess the paper's deployment dealt with — refused logins,
//! half-transferred dumps, flapping links and rebooting routers.

use mantra::core::collector::{FlakyAccess, SimAccess};
use mantra::core::{Monitor, MonitorConfig};
use mantra::net::SimDuration;
use mantra::sim::{Event, Scenario};

#[test]
fn monitor_survives_heavy_capture_failures() {
    let mut sc = Scenario::transition_snapshot(201, 0.4);
    let mut monitor = Monitor::new(MonitorConfig {
        routers: vec!["fixw".into(), "ucsb-gw".into()],
        interval: sc.sim.tick(),
        ..MonitorConfig::default()
    });
    for i in 0..24 {
        let next = sc.sim.clock + monitor.cfg.interval;
        sc.sim.advance_to(next);
        let mut access = FlakyAccess::new(SimAccess::new(&sc.sim), 0.3, 0.3, 99 + i);
        monitor.run_cycle(&mut access, next);
    }
    assert_eq!(monitor.cycles(), 24);
    assert!(monitor.capture_failures() > 5, "failures were injected");
    // History exists for every cycle even when captures failed.
    assert_eq!(monitor.usage_history("fixw").len(), 24);
    // Truncation salvage means parse totals still accumulated.
    assert!(monitor.parse_totals.parsed > 100);
    // The archive stays replayable.
    let log = monitor.log("fixw").unwrap();
    assert_eq!(log.replay().len(), 24);
}

#[test]
fn truncated_dumps_do_not_poison_tables() {
    let mut sc = Scenario::transition_snapshot(202, 0.4);
    sc.sim.advance_to(sc.sim.clock + SimDuration::hours(6));
    let now = sc.sim.clock;
    // Pure truncation, no login failures, aggressive rate.
    let mut flaky = FlakyAccess::new(SimAccess::new(&sc.sim), 0.0, 1.0, 7);
    let mut collector = mantra::core::collector::Collector::new();
    let captures = collector.collect(&mut flaky, "fixw", now);
    let (tables, stats) = mantra::core::processor::process(&captures);
    // Every surviving row is well-formed (the torn line was dropped).
    assert_eq!(stats.malformed, 0, "{stats:?}");
    // Partial data is partial, not garbage: any route present parses to a
    // real prefix.
    for r in tables.routes.values() {
        assert!(r.metric <= 64);
    }
}

#[test]
fn link_flaps_show_up_and_heal() {
    let mut sc = Scenario::transition_snapshot(203, 0.0);
    let mut monitor = Monitor::new(MonitorConfig {
        routers: vec!["fixw".into()],
        interval: sc.sim.tick(),
        ..MonitorConfig::default()
    });
    // Stabilise.
    for _ in 0..8 {
        let next = sc.sim.clock + monitor.cfg.interval;
        sc.sim.advance_to(next);
        let mut access = SimAccess::new(&sc.sim);
        monitor.run_cycle(&mut access, next);
    }
    let healthy = monitor
        .route_history("fixw")
        .last()
        .unwrap()
        .dvmrp_reachable;
    // Take the FIXW–UCSB tunnel down for an hour.
    let link = sc
        .sim
        .net
        .topo
        .link_between(sc.fixw, sc.ucsb)
        .unwrap()
        .id;
    let t_down = sc.sim.clock + SimDuration::mins(1);
    let t_up = t_down + SimDuration::hours(1);
    sc.sim.schedule(t_down, Event::SetLink { link, up: false });
    sc.sim.schedule(t_up, Event::SetLink { link, up: true });
    for _ in 0..4 {
        let next = sc.sim.clock + monitor.cfg.interval;
        sc.sim.advance_to(next);
        let mut access = SimAccess::new(&sc.sim);
        monitor.run_cycle(&mut access, next);
    }
    let during = monitor
        .route_history("fixw")
        .last()
        .unwrap()
        .dvmrp_reachable;
    assert!(during < healthy, "withdrawals visible: {healthy} -> {during}");
    // Heal and re-learn.
    for _ in 0..12 {
        let next = sc.sim.clock + monitor.cfg.interval;
        sc.sim.advance_to(next);
        let mut access = SimAccess::new(&sc.sim);
        monitor.run_cycle(&mut access, next);
    }
    let healed = monitor
        .route_history("fixw")
        .last()
        .unwrap()
        .dvmrp_reachable;
    assert!(
        healed >= healthy,
        "routes re-learned after flap: {healthy} -> {healed}"
    );
    // Churn history recorded the round trip.
    let churn: usize = monitor
        .churn_history("fixw")
        .iter()
        .map(|(_, c)| c.total())
        .sum();
    assert!(churn > 0);
}

#[test]
fn collection_gap_then_resume() {
    let mut sc = Scenario::transition_snapshot(204, 0.3);
    let mut monitor = Monitor::new(MonitorConfig {
        routers: vec!["fixw".into()],
        interval: sc.sim.tick(),
        ..MonitorConfig::default()
    });
    for _ in 0..6 {
        let next = sc.sim.clock + monitor.cfg.interval;
        sc.sim.advance_to(next);
        let mut access = SimAccess::new(&sc.sim);
        monitor.run_cycle(&mut access, next);
    }
    // Mantra host goes away for a day; the network keeps running.
    sc.sim.advance_to(sc.sim.clock + SimDuration::days(1));
    for _ in 0..6 {
        let next = sc.sim.clock + monitor.cfg.interval;
        sc.sim.advance_to(next);
        let mut access = SimAccess::new(&sc.sim);
        monitor.run_cycle(&mut access, next);
    }
    assert_eq!(monitor.cycles(), 12);
    let hist = monitor.usage_history("fixw");
    // The gap is visible in the timestamps, not papered over.
    let gaps: Vec<u64> = hist
        .windows(2)
        .map(|w| (w[1].at.as_secs() - w[0].at.as_secs()) / 60)
        .collect();
    assert!(gaps.iter().any(|g| *g > 60 * 12), "gap preserved: {gaps:?}");
    // And the archive replays cleanly across it.
    assert_eq!(monitor.log("fixw").unwrap().replay().len(), 12);
}
