//! Fast shape assertions for every figure — the CI-sized versions of the
//! full regeneration binaries. Each test checks the *qualitative* claim
//! the paper's figure makes, on a window short enough for the test suite.

use mantra::core::anomaly::AnomalyKind;
use mantra::core::collector::SimAccess;
use mantra::core::{Monitor, MonitorConfig};
use mantra::net::{SimDuration, SimTime};
use mantra::sim::{Event, Scenario};

fn drive_until(sc: &mut Scenario, monitor: &mut Monitor, until: SimTime) {
    loop {
        let next = sc.sim.clock + monitor.cfg.interval;
        if next > until {
            break;
        }
        sc.sim.advance_to(next);
        let mut access = SimAccess::new(&sc.sim);
        monitor.run_cycle(&mut access, next);
    }
}

fn two_point_monitor(sc: &Scenario) -> Monitor {
    Monitor::new(MonitorConfig {
        routers: vec![
            sc.sim.net.topo.router(sc.fixw).name.clone(),
            sc.sim.net.topo.router(sc.ucsb).name.clone(),
        ],
        interval: sc.sim.tick(),
        ..MonitorConfig::default()
    })
}

/// Figure 3: counts low, active subset much smaller, variation high.
#[test]
fn fig3_shape_low_counts_wide_gap_high_variance() {
    let mut sc = Scenario::fixw_six_months(301);
    let mut monitor = two_point_monitor(&sc);
    let end = sc.sim.clock + SimDuration::days(4);
    drive_until(&mut sc, &mut monitor, end);
    let sessions = monitor.usage_series("fixw", "s", |u| u.sessions as f64);
    let active = monitor.usage_series("fixw", "a", |u| u.active_sessions as f64);
    let participants = monitor.usage_series("fixw", "p", |u| u.participants as f64);
    // Counts are low: hundreds, not tens of thousands.
    assert!(sessions.mean() > 20.0 && sessions.mean() < 2_000.0);
    assert!(participants.mean() > 20.0 && participants.mean() < 5_000.0);
    // Wide gap: most sessions carry no data.
    assert!(
        active.mean() < 0.4 * sessions.mean(),
        "active {} vs sessions {}",
        active.mean(),
        sessions.mean()
    );
    // High variation (storms).
    assert!(
        sessions.stddev() / sessions.mean() > 0.10,
        "cv {}",
        sessions.stddev() / sessions.mean()
    );
}

/// Figure 4: session-count spikes coincide with density dips.
#[test]
fn fig4_shape_density_anticorrelates_with_session_spikes() {
    let mut sc = Scenario::fixw_six_months(401);
    let mut monitor = two_point_monitor(&sc);
    let end = sc.sim.clock + SimDuration::days(6);
    drive_until(&mut sc, &mut monitor, end);
    let sessions = monitor.usage_series("fixw", "s", |u| u.sessions as f64);
    let density = monitor.usage_series("fixw", "d", |u| u.avg_density);
    // At the session-count maximum (a storm), density sits below its
    // median (single-member flood).
    let (t_peak, _) = sessions.max().unwrap();
    let density_at_peak = density
        .points
        .iter()
        .find(|(t, _)| *t == t_peak)
        .map(|(_, v)| *v)
        .unwrap();
    assert!(
        density_at_peak < density.median(),
        "density at storm peak {density_at_peak} !< median {}",
        density.median()
    );
    // The single-member share at the peak is storm-dominated.
    let single = monitor.usage_series("fixw", "sm", |u| u.single_member_fraction);
    let single_at_peak = single
        .points
        .iter()
        .find(|(t, _)| *t == t_peak)
        .map(|(_, v)| *v)
        .unwrap();
    assert!(single_at_peak > 0.6, "single-member {single_at_peak}");
}

/// Figure 5: nonzero spiky bandwidth; unicast-equivalent multiple > 1.
#[test]
fn fig5_shape_bandwidth_and_savings() {
    let mut sc = Scenario::fixw_six_months(501);
    let mut monitor = two_point_monitor(&sc);
    let end = sc.sim.clock + SimDuration::days(4);
    drive_until(&mut sc, &mut monitor, end);
    let bw = monitor.usage_series("fixw", "bw", |u| u.total_bandwidth.mbps());
    let saved = monitor.usage_series("fixw", "sv", |u| u.bandwidth_saved_multiple);
    assert!(bw.mean() > 0.5, "mean bandwidth {:.2} Mbps", bw.mean());
    assert!(bw.mean() < 40.0, "mean bandwidth {:.2} Mbps", bw.mean());
    assert!(
        bw.stddev() / bw.mean() > 0.2,
        "bandwidth is spiky: cv {:.2}",
        bw.stddev() / bw.mean()
    );
    assert!(
        saved.mean() > 1.0,
        "multicast saves bandwidth: {:.2}",
        saved.mean()
    );
}

/// Figure 6: the transition raises the sender share and cuts variance.
/// (Uses the two static worlds; the time-series version is the binary.)
#[test]
fn fig6_shape_transition_effect() {
    let run = |native: f64| {
        let mut sc = Scenario::transition_snapshot(601, native);
        let mut monitor = two_point_monitor(&sc);
        let end = sc.sim.clock + SimDuration::days(3);
        drive_until(&mut sc, &mut monitor, end);
        let pct_senders = monitor.usage_series("fixw", "ps", |u| u.pct_senders());
        let sessions = monitor.usage_series("fixw", "s", |u| u.sessions as f64);
        let participants = monitor.usage_series("fixw", "p", |u| u.participants as f64);
        (pct_senders.mean(), sessions.stddev(), participants.mean())
    };
    let (snd_pre, var_pre, part_pre) = run(0.0);
    let (snd_post, var_post, part_post) = run(0.8);
    assert!(
        snd_post > snd_pre,
        "sender share rises: {snd_pre:.1}% -> {snd_post:.1}%"
    );
    assert!(
        var_post < var_pre,
        "session-count variance drops: {var_pre:.1} -> {var_post:.1}"
    );
    assert!(
        part_post < part_pre,
        "participants drop: {part_pre:.0} -> {part_post:.0}"
    );
}

/// Figure 7: report loss makes route counts vary and the two collection
/// points disagree.
#[test]
fn fig7_shape_instability_and_inconsistency() {
    let mut sc = Scenario::fixw_six_months(701);
    sc.sim.set_report_loss(0.30);
    let mut monitor = two_point_monitor(&sc);
    let end = sc.sim.clock + SimDuration::days(2);
    drive_until(&mut sc, &mut monitor, end);
    let fixw = monitor.route_series("fixw", "f", |r| r.dvmrp_reachable as f64);
    assert!(
        fixw.stddev() > 1.0,
        "unstable routes: stddev {}",
        fixw.stddev()
    );
    // Some cycle saw the two routers disagree.
    let churn_events: usize = monitor
        .churn_history("fixw")
        .iter()
        .map(|(_, c)| c.total())
        .sum();
    assert!(churn_events > 10, "churn {churn_events}");
    let a = monitor.latest("fixw").unwrap();
    let b = monitor.latest("ucsb-gw").unwrap();
    let report = mantra::core::stats::ConsistencyReport::between(a, b);
    assert!(report.shared > 0);
}

/// Figure 8: full DVMRP decommissioning drives the count to ~zero.
#[test]
fn fig8_shape_dvmrp_declines_to_zero() {
    let mut sc = Scenario::dvmrp_two_years(801);
    let mut monitor = Monitor::new(MonitorConfig {
        routers: vec!["fixw".into()],
        interval: sc.sim.tick(),
        ..MonitorConfig::default()
    });
    // Sample one day per quarter.
    let mut probe = SimTime::from_ymd(1998, 11, 2);
    while probe < SimTime::from_ymd(2000, 11, 1) {
        sc.sim.advance_to(probe);
        drive_until(&mut sc, &mut monitor, probe + SimDuration::hours(12));
        let (y, m, _) = probe.ymd();
        let (ny, nm) = if m >= 10 { (y + 1, m - 9) } else { (y, m + 3) };
        probe = SimTime::from_ymd(ny, nm, 2);
    }
    let routes = monitor.route_series("fixw", "r", |r| r.dvmrp_reachable as f64);
    let first = routes.points.first().unwrap().1;
    let last = routes.points.last().unwrap().1;
    assert!(first > 100.0, "healthy MBone at the start: {first}");
    assert!(
        last < 0.15 * first,
        "DVMRP nearly gone at the end: {first} -> {last}"
    );
}

/// Figure 9: the injection spike and the automated diagnosis.
#[test]
fn fig9_shape_injection_spike_detected_and_recovers() {
    let mut sc = Scenario::ucsb_injection_day(901);
    let mut monitor = Monitor::new(MonitorConfig {
        routers: vec!["ucsb-gw".into()],
        interval: sc.sim.tick(),
        ..MonitorConfig::default()
    });
    let end = sc.sim.end_time();
    drive_until(&mut sc, &mut monitor, end);
    let routes = monitor.route_series("ucsb-gw", "r", |r| r.dvmrp_reachable as f64);
    let baseline = routes.median();
    let (t_peak, peak) = routes.max().unwrap();
    assert!(peak > baseline * 5.0, "sharp spike: {baseline} -> {peak}");
    assert!(
        (t_peak.hour_of_day() - 14.0).abs() < 1.5,
        "spike near 14:00, got {:.1}",
        t_peak.hour_of_day()
    );
    // Recovered by end of day.
    let final_v = routes.points.last().unwrap().1;
    assert!(
        final_v < baseline * 1.5,
        "recovered: {final_v} vs {baseline}"
    );
    // Detectors fired with the right classification.
    assert!(monitor
        .anomalies
        .iter()
        .any(|a| matches!(a.kind, AnomalyKind::Spike { .. })));
    assert!(monitor
        .anomalies
        .iter()
        .any(|a| matches!(a.kind, AnomalyKind::RouteInjection { .. })));
}

/// The IETF broadcast (Figure 4's December peak) is visible end-to-end
/// through the monitoring pipeline, not just in ground truth.
#[test]
fn ietf_broadcast_visible_in_monitored_density() {
    let mut sc = Scenario::transition_snapshot(911, 0.0);
    let start = sc.sim.clock;
    sc.sim.schedule(
        start + SimDuration::days(1),
        Event::Broadcast {
            duration: SimDuration::days(3),
            audience: 250,
        },
    );
    let mut monitor = two_point_monitor(&sc);
    drive_until(&mut sc, &mut monitor, start + SimDuration::days(3));
    let density = monitor.usage_series("fixw", "d", |u| u.avg_density);
    let before = density.window(start, start + SimDuration::days(1));
    let during = density.window(start + SimDuration::days(2), start + SimDuration::days(3));
    assert!(
        during.mean() > before.mean() * 1.2,
        "density rises with the broadcast: {:.2} -> {:.2}",
        before.mean(),
        during.mean()
    );
}
