//! The daemon's read path lives or dies on one invariant: an
//! [`ArchiveReader`] opened against *any* byte-length prefix of a v2
//! archive — including prefixes that end mid-frame, because the writer
//! is still appending — replays a clean prefix of the record stream,
//! never an error and never a torn row. These tests sweep every byte
//! growth point offline, chase a live writer with a refreshing reader,
//! and pin the read-only-opens-never-write guarantee with a
//! byte-identity check.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use mantra::core::archive::{
    replay_summary_line, ArchiveBackend, ArchiveReader, FileBackendV2, OpenMode,
};
use mantra::core::logger::TableLog;
use mantra::core::tables::{LearnedFrom, PairRow, Tables};
use mantra::net::{BitRate, GroupAddr, Ip, SimTime};

const FULL_EVERY: usize = 3;
const HEADER_LEN: u64 = 24;

/// Deterministic churn: full and delta records, dictionary growth and
/// checkpoints all appear (same shape the crash-injection suite uses).
fn snapshot(n: u64) -> Tables {
    let at = SimTime(SimTime::from_ymd(1998, 11, 1).as_secs() + n * 900);
    let mut t = Tables::new("fixw", at);
    for g in 0..12 {
        t.add_pair(PairRow {
            source: Ip(0x0a00_0000 + g),
            group: GroupAddr::from_index(g),
            current_bw: BitRate::from_bps(1_000 + 97 * n * u64::from(g == 0)),
            avg_bw: BitRate::from_bps(1_000),
            forwarding: g % 2 == 0,
            learned_from: LearnedFrom::Dvmrp,
        });
    }
    if n >= 3 {
        t.add_pair(PairRow {
            source: Ip(0x0a00_0100 + n as u32),
            group: GroupAddr::from_index(20 + n as u32),
            current_bw: BitRate::from_bps(500),
            avg_bw: BitRate::from_bps(500),
            forwarding: true,
            learned_from: LearnedFrom::Pim,
        });
    }
    t
}

fn stream() -> Vec<Tables> {
    (0..8).map(snapshot).collect()
}

fn tmp_path(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mantra-reader-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{tag}.marc"))
}

fn write_archive(path: &PathBuf, streams: &[Tables]) {
    let _ = std::fs::remove_file(path);
    let mut log =
        TableLog::with_backend(Box::new(FileBackendV2::create(path).unwrap()), FULL_EVERY);
    for s in streams {
        log.append(s);
    }
    assert_eq!(log.backend_error(), None);
}

#[test]
fn reader_at_every_byte_growth_point_yields_a_clean_prefix() {
    let streams = stream();
    let full = tmp_path("growth-full");
    write_archive(&full, &streams);
    let bytes = std::fs::read(&full).unwrap();

    // Ground truth: record-batch end offsets and the full summary.
    let offsets: Vec<u64> = FileBackendV2::open_read_only(&full)
        .unwrap()
        .offsets()
        .to_vec();
    let ground: Vec<String> = streams
        .iter()
        .enumerate()
        .map(|(i, t)| replay_summary_line(i, t))
        .collect();

    // A writer extends the file one byte at a time, as far as any
    // concurrent observer can tell. At every possible length the reader
    // must open, see exactly the wholly-contained records, and replay
    // them without error.
    let prefix = tmp_path("growth-prefix");
    for cut in HEADER_LEN as usize..=bytes.len() {
        std::fs::write(&prefix, &bytes[..cut]).unwrap();
        let rd =
            ArchiveReader::open(&prefix).unwrap_or_else(|e| panic!("cut {cut}: open failed: {e}"));
        let expect = offsets[1..]
            .iter()
            .filter(|&&end| end <= cut as u64)
            .count();
        assert_eq!(rd.len(), expect, "cut {cut}: visible record count");
        let lines = rd
            .summary_lines(rd.len())
            .unwrap_or_else(|e| panic!("cut {cut}: replay failed: {e}"));
        assert_eq!(
            lines,
            ground[..expect],
            "cut {cut}: replay is not a clean prefix"
        );
        // The frozen prefix is never mutated by the read.
        assert_eq!(
            std::fs::metadata(&prefix).unwrap().len(),
            cut as u64,
            "cut {cut}"
        );
    }
    std::fs::remove_file(&full).unwrap();
    std::fs::remove_file(&prefix).unwrap();
}

#[test]
fn refreshing_reader_chases_a_live_writer_without_torn_rows() {
    let streams = stream();
    let ground: Vec<String> = streams
        .iter()
        .enumerate()
        .map(|(i, t)| replay_summary_line(i, t))
        .collect();
    let path = tmp_path("live");
    let _ = std::fs::remove_file(&path);

    let writer_path = path.clone();
    let writer_streams = streams.clone();
    let writer = std::thread::spawn(move || {
        let backend = FileBackendV2::create(&writer_path).unwrap();
        let mut log = TableLog::with_backend(Box::new(backend), FULL_EVERY);
        for s in &writer_streams {
            log.append(s);
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(log.backend_error(), None);
    });

    // Open as soon as the header lands, then refresh until every record
    // is visible. Each snapshot must be a clean, monotonically growing
    // prefix of the final stream.
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut rd = loop {
        match ArchiveReader::open(&path) {
            Ok(rd) => break rd,
            Err(_) if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(1)),
            Err(e) => panic!("reader never opened: {e}"),
        }
    };
    let mut seen = 0usize;
    while seen < streams.len() {
        assert!(
            Instant::now() < deadline,
            "reader stalled at {seen} records"
        );
        let grew = rd.refresh().unwrap();
        assert_eq!(rd.len(), seen + grew, "refresh must only extend the prefix");
        seen = rd.len();
        let lines = rd.summary_lines(seen).unwrap();
        assert_eq!(
            lines,
            ground[..seen],
            "mid-write replay is not a clean prefix"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    writer.join().unwrap();
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn read_only_opens_leave_a_torn_archive_byte_identical() {
    let streams = stream();
    let path = tmp_path("readonly-hash");
    write_archive(&path, &streams);

    // Tear the tail: the last frame loses its final 3 bytes, exactly
    // what a crashed writer leaves behind.
    let clean_len = std::fs::metadata(&path).unwrap().len();
    let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
    f.set_len(clean_len - 3).unwrap();
    drop(f);
    let before = std::fs::read(&path).unwrap();

    // Every read-only entry point: bytes untouched, clean prefix served.
    let rd = ArchiveReader::open(&path).unwrap();
    assert_eq!(rd.len(), streams.len() - 1);
    assert_eq!(
        rd.summary_lines(rd.len()).unwrap(),
        streams[..streams.len() - 1]
            .iter()
            .enumerate()
            .map(|(i, t)| replay_summary_line(i, t))
            .collect::<Vec<_>>()
    );
    assert_eq!(std::fs::read(&path).unwrap(), before, "ArchiveReader wrote");

    let be = FileBackendV2::open_read_only(&path).unwrap();
    assert_eq!(be.len(), streams.len() - 1);
    drop(be);
    assert_eq!(
        std::fs::read(&path).unwrap(),
        before,
        "FileBackendV2::open_read_only wrote"
    );

    let log = TableLog::load_read_only(&path, FULL_EVERY).unwrap();
    assert_eq!(log.replay().as_slice(), &streams[..streams.len() - 1]);
    drop(log);
    assert_eq!(
        std::fs::read(&path).unwrap(),
        before,
        "TableLog::load_read_only wrote"
    );

    // The owning writer is the one allowed to heal: a ReadWrite open
    // truncates the torn tail — strictly shorter, still a byte prefix.
    let be = FileBackendV2::open_with(&path, OpenMode::ReadWrite).unwrap();
    assert_eq!(be.len(), streams.len() - 1);
    drop(be);
    let after = std::fs::read(&path).unwrap();
    assert!(after.len() < before.len(), "ReadWrite open did not heal");
    assert_eq!(&before[..after.len()], after.as_slice());
    std::fs::remove_file(&path).unwrap();
}
