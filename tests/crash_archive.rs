//! Crash-injection harness for the v2 archive: a [`FailingBackend`]
//! wrapper gives the on-disk file a byte budget and "crashes" the first
//! append that would exceed it — only the bytes that made it to the
//! platter survive, exactly like a power cut mid-write. Sweeping the
//! budget across every frame boundary (and the bytes around them) proves
//! the recovery invariant: reopening always yields a clean prefix of the
//! appended stream, accounts the torn tail in `recovered_bytes`, and the
//! archive accepts new appends afterwards.

use std::io;
use std::path::{Path, PathBuf};

use mantra::core::archive::{
    ArchiveBackend, ArchiveInfo, ArchiveSpec, ArchiveStats, BackpressureMode, FileBackendV2,
    RecordIter, ThreadedBackend, WriterConfig,
};
use mantra::core::logger::{LogRecord, TableLog};
use mantra::core::pipeline::{PipelineMetrics, RouterState};
use mantra::core::tables::{LearnedFrom, PairRow, Tables};
use mantra::net::{BitRate, GroupAddr, Ip, SimTime};

/// A deterministic snapshot stream: enough churn that full and delta
/// records, dictionary growth and checkpoints all appear.
fn snapshot(n: u64) -> Tables {
    let at = SimTime(SimTime::from_ymd(1998, 11, 1).as_secs() + n * 900);
    let mut t = Tables::new("fixw", at);
    for g in 0..12 {
        t.add_pair(PairRow {
            source: Ip(0x0a00_0000 + g),
            group: GroupAddr::from_index(g),
            // One rate varies per cycle so every snapshot differs.
            current_bw: BitRate::from_bps(1_000 + 97 * n * u64::from(g == 0)),
            avg_bw: BitRate::from_bps(1_000),
            forwarding: g % 2 == 0,
            learned_from: LearnedFrom::Dvmrp,
        });
    }
    // A pair that only exists on later cycles: dictionary entries keep
    // arriving after the first record, so dict segments interleave.
    if n >= 3 {
        t.add_pair(PairRow {
            source: Ip(0x0a00_0100 + n as u32),
            group: GroupAddr::from_index(20 + n as u32),
            current_bw: BitRate::from_bps(500),
            avg_bw: BitRate::from_bps(500),
            forwarding: true,
            learned_from: LearnedFrom::Pim,
        });
    }
    t
}

fn stream() -> Vec<Tables> {
    (0..8).map(snapshot).collect()
}

fn tmp_path(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mantra-crash-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{tag}.marc"))
}

/// Wraps a [`FileBackendV2`] with a byte budget. The append that pushes
/// the file past the budget truncates it back to exactly `budget` bytes
/// (the prefix that "reached the disk") and kills the backend: every
/// later append and fsync fails, as it would on a dead device.
#[derive(Debug)]
struct FailingBackend {
    inner: FileBackendV2,
    path: PathBuf,
    budget: u64,
    dead: bool,
}

impl FailingBackend {
    fn create(path: &Path, budget: u64) -> Self {
        FailingBackend {
            inner: FileBackendV2::create(path).unwrap(),
            path: path.to_path_buf(),
            budget,
            dead: false,
        }
    }

    fn die(&mut self) -> io::Error {
        self.dead = true;
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(&self.path)
            .unwrap();
        let len = f.metadata().unwrap().len();
        f.set_len(self.budget.min(len)).unwrap();
        io::Error::other("simulated crash: write budget exhausted")
    }
}

impl ArchiveBackend for FailingBackend {
    fn kind(&self) -> &'static str {
        "failing"
    }

    fn append(&mut self, rec: &LogRecord, json: &str) -> io::Result<()> {
        if self.dead {
            return Err(io::Error::other("simulated crash: backend dead"));
        }
        self.inner.append(rec, json)?;
        if std::fs::metadata(&self.path).unwrap().len() > self.budget {
            return Err(self.die());
        }
        Ok(())
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn records(&self) -> RecordIter<'_> {
        self.inner.records()
    }

    fn records_from(&self, start: usize) -> RecordIter<'_> {
        self.inner.records_from(start)
    }

    fn last_checkpoint(&self) -> Option<usize> {
        self.inner.last_checkpoint()
    }

    fn stats(&self) -> ArchiveStats {
        self.inner.stats()
    }

    fn describe(&self) -> ArchiveInfo {
        self.inner.describe()
    }

    fn sync(&mut self) -> io::Result<()> {
        if self.dead {
            return Err(io::Error::other("simulated crash: backend dead"));
        }
        self.inner.sync()
    }
}

/// Record-batch offsets (dict frame + record frame spans) of the clean,
/// uncrashed archive — the crashed file is byte-identical up to its
/// budget, so these are the ground truth for what each budget preserves.
fn clean_offsets(streams: &[Tables], full_every: usize) -> (Vec<u64>, u64) {
    let path = tmp_path("clean");
    let backend = FileBackendV2::create(&path).unwrap();
    let mut log = TableLog::with_backend(Box::new(backend), full_every);
    for s in streams {
        log.append(s);
    }
    assert_eq!(log.backend_error(), None);
    drop(log);
    let be = FileBackendV2::open(&path).unwrap();
    let offsets = be.offsets().to_vec();
    let total = *offsets.last().unwrap();
    std::fs::remove_file(&path).unwrap();
    (offsets, total)
}

#[test]
fn every_crash_point_recovers_to_a_clean_prefix_and_keeps_appending() {
    let streams = stream();
    let full_every = 3;
    let (offsets, total) = clean_offsets(&streams, full_every);
    assert_eq!(offsets.len(), streams.len() + 1);

    // Every frame boundary ± 1, plus a stride across the whole file.
    let mut budgets: Vec<u64> = offsets
        .iter()
        .flat_map(|&o| [o.saturating_sub(1), o, o + 1])
        .chain((24..total).step_by(7))
        .filter(|&b| (24..total).contains(&b))
        .collect();
    budgets.sort_unstable();
    budgets.dedup();
    assert!(budgets.len() > 50, "sweep too small: {}", budgets.len());

    let path = tmp_path("crash");
    for &budget in &budgets {
        // Expected survivors: record batches wholly within the budget.
        let k = offsets[1..].iter().filter(|&&end| end <= budget).count();

        let mut log =
            TableLog::with_backend(Box::new(FailingBackend::create(&path, budget)), full_every);
        for s in &streams {
            log.append(s);
        }
        assert!(log.write_errors >= 1, "budget {budget}: no crash observed");
        assert!(log.backend_error().is_some(), "budget {budget}");
        drop(log);

        // Reopen: the torn tail is dropped and accounted, survivors
        // replay byte-faithfully. Recovery may retain a complete
        // dictionary frame whose record was torn (harmless: unreferenced
        // entries), so the surviving length lands between the last
        // record boundary and the budget, with every dropped byte
        // accounted in `recovered_bytes`.
        let recovered = TableLog::load(&path, full_every).unwrap();
        let stats = recovered.archive_stats();
        assert_eq!(stats.records, k as u64, "budget {budget}");
        let len_after = std::fs::metadata(&path).unwrap().len();
        assert!(
            (offsets[k]..=budget).contains(&len_after),
            "budget {budget}: recovered file len {len_after}"
        );
        assert_eq!(stats.recovered_bytes, budget - len_after, "budget {budget}");
        assert_eq!(recovered.replay(), &streams[..k], "budget {budget}");

        // And the recovered archive is writable: life goes on after a
        // crash, from the last intact record.
        let mut recovered = recovered;
        recovered.append(&snapshot(99));
        assert_eq!(recovered.backend_error(), None, "budget {budget}");
        assert_eq!(recovered.replay().len(), k + 1, "budget {budget}");
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn every_crash_point_recovers_under_the_threaded_writer() {
    let streams = stream();
    let full_every = 3;
    let (offsets, total) = clean_offsets(&streams, full_every);

    // Frame boundaries ± 1 — the sweep that matters for torn frames.
    // (The dense byte stride is covered by the synchronous sweep above;
    // this one proves the same invariant holds with a writer thread
    // between the logger and the disk.)
    let mut budgets: Vec<u64> = offsets
        .iter()
        .flat_map(|&o| [o.saturating_sub(1), o, o + 1])
        .filter(|&b| (24..total).contains(&b))
        .collect();
    budgets.sort_unstable();
    budgets.dedup();
    assert!(budgets.len() > 10, "sweep too small: {}", budgets.len());

    let serial_path = tmp_path("thr-serial");
    let threaded_path = tmp_path("thr-crash");
    for &budget in &budgets {
        let k = offsets[1..].iter().filter(|&&end| end <= budget).count();

        // Ground truth: the same crash through the synchronous backend.
        let mut serial = TableLog::with_backend(
            Box::new(FailingBackend::create(&serial_path, budget)),
            full_every,
        );
        for s in &streams {
            serial.append(s);
        }
        drop(serial);

        let failing = Box::new(FailingBackend::create(&threaded_path, budget));
        let writer = ThreadedBackend::spawn(
            failing,
            WriterConfig {
                capacity: 2, // small enough that backpressure engages
                mode: BackpressureMode::Block,
            },
        );
        let mut log = TableLog::with_backend(Box::new(writer), full_every);
        for s in &streams {
            log.append(s);
        }
        // The crash happened on the writer thread; the error is still
        // visible — either deferred into the logger on a later append,
        // or through the backend stats the writer maintains. len() is a
        // drain barrier, so the crash has been applied by the time the
        // stats are read.
        let _ = log.len();
        let observed = log.write_errors.max(log.archive_stats().write_errors);
        assert!(observed >= 1, "budget {budget}: crash never surfaced");
        drop(log); // shutdown drain barrier

        // Nothing past the crash reaches the disk on either path: the
        // crashed files are byte-identical, writer thread or not.
        assert_eq!(
            std::fs::read(&serial_path).unwrap(),
            std::fs::read(&threaded_path).unwrap(),
            "budget {budget}"
        );

        // And recovery is the same clean prefix the synchronous sweep
        // proves.
        let recovered = TableLog::load(&threaded_path, full_every).unwrap();
        assert_eq!(
            recovered.archive_stats().records,
            k as u64,
            "budget {budget}"
        );
        assert_eq!(recovered.replay(), &streams[..k], "budget {budget}");
    }
    std::fs::remove_file(&serial_path).unwrap();
    std::fs::remove_file(&threaded_path).unwrap();
}

#[test]
fn corrupted_archive_replay_degrades_instead_of_panicking() {
    // Satellite regression for the `.expect("archive replay failed")`
    // panic: a record that goes bad *after* the archive was opened (the
    // open-time scan can no longer truncate it away) must end replay at
    // the last clean snapshot, not crash the monitor.
    let path = tmp_path("replay-degrade");
    let streams = stream();
    let backend = FileBackendV2::create(&path).unwrap();
    let mut log = TableLog::with_backend(Box::new(backend), 3);
    for s in &streams {
        log.append(s);
    }
    assert_eq!(log.backend_error(), None);

    // Corrupt a payload byte of the 4th record batch on disk while the
    // log stays open — bit rot under a live monitor.
    let offsets: Vec<u64> = {
        let be = FileBackendV2::open(&path).unwrap();
        be.offsets().to_vec()
    };
    let mut bytes = std::fs::read(&path).unwrap();
    let target = (offsets[3] + 15) as usize;
    bytes[target] ^= 0xFF;
    std::fs::write(&path, &bytes).unwrap();

    // replay(): clean prefix, error counted, no panic.
    let got = log.replay();
    assert!(got.len() < streams.len(), "corruption must cut the replay");
    assert_eq!(got.as_slice(), &streams[..got.len()]);
    assert_eq!(log.replay_errors(), 1);
    assert!(log.last_replay_error().is_some());

    // try_replay(): same accounting, error propagated.
    assert!(log.try_replay().is_err());
    assert_eq!(log.replay_errors(), 2);

    // The failure reaches the pipeline metrics (and from there the
    // archive_degraded health flag and the HTML report).
    let state = vec![RouterState {
        log,
        ..RouterState::new("fixw".into(), 4, &ArchiveSpec::Memory)
    }];
    let mut metrics = PipelineMetrics::default();
    metrics.record_archives(&state);
    let m = &metrics.archives()[0];
    assert_eq!(m.replay_errors, 2);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn crashed_backend_surfaces_in_pipeline_metrics() {
    let path = tmp_path("metrics");
    let budget = 200; // enough for the header and about one record
    let mut log = TableLog::with_backend(Box::new(FailingBackend::create(&path, budget)), 4);
    for s in &stream() {
        log.append(s);
    }
    assert!(log.write_errors > 0);

    let state = vec![RouterState {
        log,
        ..RouterState::new("fixw".into(), 4, &ArchiveSpec::Memory)
    }];
    let mut metrics = PipelineMetrics::default();
    metrics.record_archives(&state);
    let m = metrics
        .archives()
        .iter()
        .find(|m| m.backend == "failing")
        .expect("failing backend aggregated");
    assert_eq!(m.routers, 1);
    assert!(m.write_errors > 0);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn unopenable_archive_dir_counts_as_fallback_in_metrics() {
    // A path under a regular file can never become a directory, so the
    // spec's file backend cannot be created and the log silently
    // degrades to memory — which the metrics must surface.
    let flat = std::env::temp_dir().join(format!("mantra-crash-flat-{}", std::process::id()));
    std::fs::write(&flat, b"not a dir").unwrap();
    let spec = ArchiveSpec::File {
        dir: flat.join("archives"),
        sync: Default::default(),
    };
    let state = vec![RouterState::new("fixw".into(), 4, &spec)];
    assert!(state[0].log.fell_back);
    assert_eq!(state[0].log.backend_kind(), "memory");

    let mut metrics = PipelineMetrics::default();
    metrics.record_archives(&state);
    assert_eq!(metrics.archives().len(), 1);
    assert_eq!(metrics.archives()[0].fallbacks, 1);
    std::fs::remove_file(&flat).unwrap();
}
