//! Property tests for the sharded fleet monitor: for ANY shard count and
//! ANY router→shard partition, the fleet's global outputs — per-cycle
//! reports, usage/route statistics, anomaly stream, per-router histories
//! and archived snapshots — are bit-identical to a single monolithic
//! [`Monitor`] over the same fleet. This is the aggregation tier's
//! exactness claim (integer partial sums compose associatively; the
//! global consistency join visits each pair once), checked end-to-end
//! through the live simulator rather than on synthetic tables.

use proptest::prelude::*;

use mantra::core::anomaly::InconsistencyMonitor;
use mantra::core::collector::SimAccess;
use mantra::core::logger::TableLog;
use mantra::core::tables::{LearnedFrom, RouteRow, Tables};
use mantra::core::{ArchiveSpec, FleetMonitor, Monitor, MonitorConfig, SyncPolicy};
use mantra::net::{Ip, Prefix, SimTime};
use mantra::sim::{ChurnSchedule, Scenario, CHURN_SLOTS};

/// A small fleet world: every router monitored, dense fleet workload.
/// Target 10 sizes to one 8-router domain plus the exchange → 9 routers.
fn world(seed: u64) -> (Scenario, Vec<String>) {
    let sc = Scenario::fleet_snapshot(seed, 10, 0.5);
    let routers: Vec<String> = sc
        .sim
        .monitored
        .iter()
        .map(|id| sc.sim.net.topo.router(*id).name.clone())
        .collect();
    (sc, routers)
}

fn cfg_for(routers: Vec<String>, sc: &Scenario, archive: ArchiveSpec) -> MonitorConfig {
    MonitorConfig {
        routers,
        interval: sc.sim.tick(),
        archive,
        ..MonitorConfig::default()
    }
}

/// Soak-tunable case count: `PROPTEST_CASES` scales the churn property up
/// (the CI churn-soak job sets 1024); the default stays cheap for tier-1.
fn soak_cases(default: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Any assignment of 9 routers to up to 4 shards (empty shards, a
    /// single mega-shard, singleton shards — whatever proptest draws)
    /// reproduces the single monitor bit for bit, cycle by cycle.
    #[test]
    fn any_partition_matches_single_monitor(
        assignment in proptest::collection::vec(0usize..4, 9..10),
        seed in 0u64..20,
    ) {
        let (mut sc_fleet, routers) = world(seed);
        let (mut sc_single, _) = world(seed);
        let mut fleet = FleetMonitor::with_assignment(
            cfg_for(routers.clone(), &sc_fleet, ArchiveSpec::Memory),
            &assignment,
        );
        let mut single = Monitor::new(cfg_for(routers.clone(), &sc_single, ArchiveSpec::Memory));
        for _ in 0..3 {
            let next = sc_fleet.sim.clock + fleet.cfg.interval;
            sc_fleet.sim.advance_to(next);
            let fr = fleet.run_cycle(&sc_fleet.sim, next);
            sc_single.sim.advance_to(next);
            let mut access = SimAccess::new(&sc_single.sim);
            let sr = single.run_cycle(&mut access, next);
            // The merged cycle report re-interleaves to the single
            // monitor's exact shape.
            prop_assert_eq!(&fr, &sr);
            // Global statistics compose exactly from shard partial sums.
            prop_assert_eq!(
                fleet.usage_history().last().unwrap(),
                &single.stream_totals().usage()
            );
            prop_assert_eq!(
                fleet.route_history().last().unwrap(),
                &single.stream_totals().route_stats()
            );
            prop_assert_eq!(
                &fleet.churn_history().last().unwrap().1,
                &single.cycle_churn(next)
            );
        }
        // The fleet-wide anomaly stream matches, and so does every
        // router's per-shard history and archived snapshot stream.
        prop_assert_eq!(&fleet.anomalies, &single.anomalies);
        for r in &routers {
            let shard = fleet.monitor_of(r).expect("router owned by a shard");
            prop_assert_eq!(shard.usage_history(r), single.usage_history(r));
            prop_assert_eq!(shard.route_history(r), single.route_history(r));
            let f_log = shard.log(r).expect("shard archive").replay();
            let s_log = single.log(r).expect("single archive").replay();
            prop_assert_eq!(f_log, s_log);
        }
    }

}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(soak_cases(6)))]

    /// The churn invariant: for ANY router→shard partition, ANY churn
    /// schedule (shrinkable raw triples — routers leaving and rejoining,
    /// links flapping, partitions forming and healing), ANY mid-run
    /// re-sharding, and any seed, the fleet stays bit-identical to a
    /// single monitor over the same churned world: per-cycle reports,
    /// global statistics, anomalies, per-router histories, lifecycle
    /// states and archive replays. Routers that leave and rejoin may land
    /// on a *different* shard after the rebalance — their moved state
    /// (open archive log included) must carry over exactly.
    #[test]
    fn any_churn_schedule_matches_single_monitor(
        assignment in proptest::collection::vec(0usize..4, 9..10),
        reassignment in proptest::collection::vec(0usize..4, 9..10),
        raw in proptest::collection::vec(
            (0u16..CHURN_SLOTS, 0u8..12, 0u16..64u16),
            0..16,
        ),
        seed in 0u64..8,
    ) {
        let (mut sc_fleet, routers) = world(seed);
        let (mut sc_single, _) = world(seed);
        let cycles = 8u64;
        let interval = sc_fleet.sim.tick();
        // Compress the raw ops' slot grid onto the cycles we actually
        // run, so every drawn event fires inside the observed window.
        let start = sc_fleet.sim.clock;
        let end = SimTime(start.0 + interval.as_secs() * cycles);
        let schedule = ChurnSchedule::from_raw(
            &raw,
            &sc_fleet.sim.net.topo,
            &[sc_fleet.fixw],
            start,
            end,
        );
        sc_fleet.sim.install_churn(schedule.clone());
        sc_single.sim.install_churn(schedule);
        let mut fleet = FleetMonitor::with_assignment(
            cfg_for(routers.clone(), &sc_fleet, ArchiveSpec::Memory),
            &assignment,
        );
        let mut single = Monitor::new(cfg_for(routers.clone(), &sc_single, ArchiveSpec::Memory));
        for cycle in 0..cycles {
            if cycle == cycles / 2 {
                // Re-shard mid-churn: any router may move shards while
                // down, stale, retired, or mid-rejoin.
                fleet.rebalance(&reassignment);
            }
            let next = sc_fleet.sim.clock + fleet.cfg.interval;
            sc_fleet.sim.advance_to(next);
            let fr = fleet.run_cycle(&sc_fleet.sim, next);
            sc_single.sim.advance_to(next);
            let mut access = SimAccess::new(&sc_single.sim);
            let sr = single.run_cycle(&mut access, next);
            prop_assert_eq!(&fr, &sr);
            prop_assert_eq!(
                fleet.usage_history().last().unwrap(),
                &single.stream_totals().usage()
            );
            prop_assert_eq!(
                fleet.route_history().last().unwrap(),
                &single.stream_totals().route_stats()
            );
        }
        prop_assert_eq!(&fleet.anomalies, &single.anomalies);
        for r in &routers {
            let shard = fleet.monitor_of(r).expect("router owned by a shard");
            prop_assert_eq!(shard.lifecycle_of(r), single.lifecycle_of(r));
            prop_assert_eq!(shard.usage_history(r), single.usage_history(r));
            prop_assert_eq!(shard.route_history(r), single.route_history(r));
            let f_log = shard.log(r).expect("shard archive").replay();
            let s_log = single.log(r).expect("single archive").replay();
            prop_assert_eq!(f_log, s_log, "archive divergence at {}", r);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The group-by-key consistency join raises exactly the anomalies of
    /// the O(n²) pairwise reference sweep, for arbitrary route views and
    /// several detector tunings.
    #[test]
    fn sweep_matches_pairwise_reference(
        views_raw in proptest::collection::vec(
            proptest::collection::vec((0u32..50, any::<bool>()), 0..40),
            2..8,
        ),
    ) {
        let views: Vec<Tables> = views_raw
            .iter()
            .enumerate()
            .map(|(i, routes)| {
                let mut t = Tables::new(format!("r{i}"), SimTime::from_ymd(1999, 3, 1));
                for (k, reachable) in routes {
                    t.add_route(RouteRow {
                        prefix: Prefix::new(Ip(Ip::new(128, 0, 0, 0).0 + (k << 16)), 16)
                            .unwrap(),
                        next_hop: Some(Ip::new(10, 0, 0, 1)),
                        metric: 1,
                        uptime: None,
                        reachable: *reachable,
                        learned_from: LearnedFrom::Dvmrp,
                    });
                }
                t
            })
            .collect();
        let refs: Vec<&Tables> = views.iter().collect();
        let now = SimTime::from_ymd(1999, 3, 1);
        for (min_similarity, min_routes) in [(0.85, 20), (0.99, 1), (0.5, 5)] {
            let m = InconsistencyMonitor { min_similarity, min_routes };
            prop_assert_eq!(m.sweep(&refs, now), m.sweep_reference(&refs, now));
        }
    }
}

/// On-disk archives: shards writing `<router>.marc` files into one
/// shared directory replay to the same snapshot streams a single monitor
/// archives — from disk, through fresh `TableLog::load`s.
#[test]
fn sharded_file_archives_replay_identically() {
    let base = std::env::temp_dir().join(format!("mantra-prop-fleet-{}", std::process::id()));
    let (dir_fleet, dir_single) = (base.join("fleet"), base.join("single"));
    let spec = |dir: &std::path::Path| ArchiveSpec::File {
        dir: dir.to_path_buf(),
        sync: SyncPolicy::default(),
    };
    let (mut sc_fleet, routers) = world(5);
    let (mut sc_single, _) = world(5);
    let mut fleet = FleetMonitor::new(cfg_for(routers.clone(), &sc_fleet, spec(&dir_fleet)), 3);
    let mut single = Monitor::new(cfg_for(routers.clone(), &sc_single, spec(&dir_single)));
    for _ in 0..4 {
        let next = sc_fleet.sim.clock + fleet.cfg.interval;
        sc_fleet.sim.advance_to(next);
        fleet.run_cycle(&sc_fleet.sim, next);
        sc_single.sim.advance_to(next);
        let mut access = SimAccess::new(&sc_single.sim);
        single.run_cycle(&mut access, next);
    }
    // No shard hit a write error or fell back to memory.
    for shard in fleet.shards() {
        assert!(shard.pipeline().archives().iter().all(|a| a.fallbacks == 0));
    }
    for r in &routers {
        let f = TableLog::load(&ArchiveSpec::path_for(&dir_fleet, r), 96).expect("fleet archive");
        let s = TableLog::load(&ArchiveSpec::path_for(&dir_single, r), 96).expect("single archive");
        assert_eq!(f.replay(), s.replay(), "archive divergence at {r}");
        assert_eq!(f.replay().len(), 4);
    }
    let _ = std::fs::remove_dir_all(&base);
}
