//! Slow-disk and blocked-writer fault injection for the threaded
//! archive writer: a [`SlowBackend`] wrapper sleeps on every append, so
//! the bounded queue actually fills and both backpressure policies are
//! exercised for real — `Block` must account its wall time and lose
//! nothing, `Shed` must keep collection unblocked and lose records
//! *loudly*. Shutdown and sync are drain barriers: whatever was queued
//! is on disk (and fsynced) when they return.

use std::io;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use mantra::core::archive::{
    ArchiveBackend, ArchiveInfo, ArchiveStats, BackpressureMode, FileBackendV2, RecordIter,
    SyncPolicy, ThreadedBackend, WriterConfig,
};
use mantra::core::logger::{LogRecord, SnapshotParts};
use mantra::net::SimTime;

/// Wraps any backend and sleeps before each append — a disk whose write
/// latency dwarfs the collection cadence.
#[derive(Debug)]
struct SlowBackend {
    inner: Box<dyn ArchiveBackend>,
    delay: Duration,
}

impl SlowBackend {
    fn new(inner: Box<dyn ArchiveBackend>, delay: Duration) -> Self {
        SlowBackend { inner, delay }
    }
}

impl ArchiveBackend for SlowBackend {
    fn kind(&self) -> &'static str {
        self.inner.kind()
    }

    fn append(&mut self, rec: &LogRecord, json: &str) -> io::Result<()> {
        std::thread::sleep(self.delay);
        self.inner.append(rec, json)
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn records(&self) -> RecordIter<'_> {
        self.inner.records()
    }

    fn records_from(&self, start: usize) -> RecordIter<'_> {
        self.inner.records_from(start)
    }

    fn last_checkpoint(&self) -> Option<usize> {
        self.inner.last_checkpoint()
    }

    fn stats(&self) -> ArchiveStats {
        self.inner.stats()
    }

    fn describe(&self) -> ArchiveInfo {
        self.inner.describe()
    }

    fn sync(&mut self) -> io::Result<()> {
        self.inner.sync()
    }
}

fn tmp_path(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mantra-threaded-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{tag}.marc"))
}

/// A small full-snapshot record with a unique timestamp.
fn full_record(n: u64) -> (LogRecord, String) {
    let parts = SnapshotParts {
        captured_at: SimTime(SimTime::from_ymd(1998, 11, 1).as_secs() + n * 900),
        router: "fixw".into(),
        ..SnapshotParts::default()
    };
    let rec = LogRecord::Full(parts);
    let json = serde_json::to_string(&rec).unwrap();
    (rec, json)
}

fn slow_file_writer(
    path: &Path,
    delay: Duration,
    capacity: usize,
    mode: BackpressureMode,
) -> ThreadedBackend {
    let inner = Box::new(FileBackendV2::create(path).unwrap());
    let slow = Box::new(SlowBackend::new(inner, delay));
    ThreadedBackend::spawn(slow, WriterConfig { capacity, mode })
}

#[test]
fn block_mode_loses_nothing_and_accounts_its_wall_time() {
    let path = tmp_path("block");
    let mut be = slow_file_writer(
        &path,
        Duration::from_millis(2),
        2, // tiny queue: the producer outruns the disk immediately
        BackpressureMode::Block,
    );
    const N: u64 = 50;
    for n in 0..N {
        let (rec, json) = full_record(n);
        be.append(&rec, &json).unwrap();
    }
    let stats = be.stats();
    assert!(
        stats.blocked_nanos > 0,
        "a 2ms disk behind a 2-slot queue must block the producer"
    );
    assert!(stats.queue_high_water >= 2);
    assert_eq!(stats.dropped_records, 0);
    drop(be); // shutdown drain barrier

    // Every record survived, in order.
    let reopened = FileBackendV2::open(&path).unwrap();
    assert_eq!(reopened.len(), N as usize);
    let times: Vec<u64> = reopened
        .records()
        .map(|r| match r.unwrap() {
            LogRecord::Full(p) => p.captured_at.as_secs(),
            LogRecord::Delta(d) => d.captured_at.as_secs(),
        })
        .collect();
    let expected: Vec<u64> = (0..N)
        .map(|n| SimTime::from_ymd(1998, 11, 1).as_secs() + n * 900)
        .collect();
    assert_eq!(times, expected);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn shed_mode_keeps_collection_unblocked_and_loses_records_loudly() {
    let path = tmp_path("shed");
    let mut be = slow_file_writer(&path, Duration::from_millis(5), 1, BackpressureMode::Shed);
    const N: u64 = 30;
    let start = Instant::now();
    let mut shed = 0u64;
    for n in 0..N {
        let (rec, json) = full_record(n);
        if be.append(&rec, &json).is_err() {
            shed += 1;
        }
    }
    let elapsed = start.elapsed();
    // 30 appends against a 5ms-per-record disk take >= 150ms when
    // blocking; shedding must come back far sooner than that.
    assert!(
        elapsed < Duration::from_millis(100),
        "shed mode must not block the producer (took {elapsed:?})"
    );
    assert!(shed > 0, "a 1-slot queue over a 5ms disk must shed");
    let stats = be.stats();
    assert!(stats.dropped_records >= shed, "every shed is accounted");
    assert_eq!(stats.blocked_nanos, 0, "shed mode never blocks");
    drop(be);

    // What survived is an in-order subsequence of what was offered —
    // records are lost, never reordered, duplicated or altered.
    let reopened = FileBackendV2::open(&path).unwrap();
    let stored = reopened.len() as u64;
    assert_eq!(stored + shed, N);
    assert!(stored >= 1, "the first record always fits the empty queue");
    let times: Vec<u64> = reopened
        .records()
        .map(|r| match r.unwrap() {
            LogRecord::Full(p) => p.captured_at.as_secs(),
            LogRecord::Delta(d) => d.captured_at.as_secs(),
        })
        .collect();
    let base = SimTime::from_ymd(1998, 11, 1).as_secs();
    for t in &times {
        assert_eq!((t - base) % 900, 0, "stored record was altered");
    }
    assert!(times.windows(2).all(|w| w[0] < w[1]), "order preserved");
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn dropping_the_backend_drains_the_queue() {
    let path = tmp_path("drain");
    let mut be = slow_file_writer(
        &path,
        Duration::from_millis(2),
        64, // roomy queue: everything is still queued when we drop
        BackpressureMode::Block,
    );
    const N: u64 = 20;
    for n in 0..N {
        let (rec, json) = full_record(n);
        be.append(&rec, &json).unwrap();
    }
    // No barrier call — drop while the writer is still chewing.
    drop(be);
    let reopened = FileBackendV2::open(&path).unwrap();
    assert_eq!(
        reopened.len(),
        N as usize,
        "shutdown must drain, not discard"
    );
    assert_eq!(reopened.stats().recovered_bytes, 0);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn sync_is_a_drain_and_fsync_barrier() {
    let path = tmp_path("sync-barrier");
    let inner = Box::new({
        let mut b = FileBackendV2::create(&path).unwrap();
        // Never fsync on its own: only the explicit barrier may clear
        // the pending count.
        b.sync = SyncPolicy {
            on_checkpoint: false,
            every_records: 0,
            every_bytes: 0,
        };
        b
    });
    let slow = Box::new(SlowBackend::new(inner, Duration::from_millis(2)));
    let mut be = ThreadedBackend::spawn(
        slow,
        WriterConfig {
            capacity: 64,
            mode: BackpressureMode::Block,
        },
    );
    const N: u64 = 12;
    for n in 0..N {
        let (rec, json) = full_record(n);
        be.append(&rec, &json).unwrap();
    }
    // Checkpoint barrier: when sync() returns, nothing is queued and
    // nothing is pending an fsync — the archive is durable to here.
    be.sync().unwrap();
    let stats = be.stats();
    assert_eq!(stats.records, N);
    assert_eq!(stats.queue_depth, 0);
    assert_eq!(stats.pending_appends, 0);
    assert!(stats.fsyncs >= 1);
    drop(be);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn observers_never_act_as_drain_barriers() {
    // The daemon polls stats()/describe() between cycles while the
    // writer chews through its queue. Those observers must answer from
    // the mirror + queue overlay, never by waiting for the drain — a
    // health query that stalls behind a slow disk would defeat the
    // writer thread entirely.
    let path = tmp_path("observer-no-stall");
    let delay = Duration::from_millis(20);
    let mut be = slow_file_writer(&path, delay, 64, BackpressureMode::Block);
    const N: u64 = 24;
    for n in 0..N {
        let (rec, json) = full_record(n);
        be.append(&rec, &json).unwrap();
    }
    // ~N*20ms of disk work is queued; observers must return well inside
    // one append's delay, and the queue must still be non-empty after —
    // proof they did not silently drain it.
    let t = Instant::now();
    let stats = be.stats();
    let info = be.describe();
    let observed = t.elapsed();
    assert!(
        stats.queue_depth > 0,
        "queue drained under the observers: stats() blocked on the writer"
    );
    assert!(
        observed < delay * (N as u32) / 2,
        "observers took {observed:?} — they stalled behind the slow disk"
    );
    assert_eq!(info.format_version, 2);
    // pending includes the queued records (power-loss exposure).
    assert!(stats.pending_appends >= stats.queue_depth);
    drop(be); // the shutdown drain barrier is still a drain barrier
    let reopened = FileBackendV2::open(&path).unwrap();
    assert_eq!(reopened.len(), N as usize);
    std::fs::remove_file(&path).unwrap();
}
