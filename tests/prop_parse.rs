//! Zero-copy parser equivalence: the span/byte parser and the kept
//! string parser (`processor::reference`) must be byte-identical — same
//! `Tables`, same `ParseStats` — on everything a terminal can deliver:
//! live simulator cycles, the golden messy-capture corpus, and arbitrary
//! garbage including ANSI noise, interior carriage returns, truncation
//! and non-UTF-8 bytes. Neither parser may ever panic.

use proptest::prelude::*;

use mantra::core::collector::{preprocess_bytes, RouterAccess, SimAccess};
use mantra::core::processor::{process, reference};
use mantra::net::{SimDuration, SimTime};
use mantra::router_cli::TableKind;
use mantra::sim::Scenario;

fn t0() -> SimTime {
    SimTime::from_ymd(1999, 3, 1)
}

/// Preprocess raw bytes once (preprocessing is shared by both parsers)
/// and assert the two parsers produce identical tables and accounting.
fn assert_agreement(kind: TableKind, raw: &[u8]) {
    let cap = preprocess_bytes("fixw", kind, raw.to_vec(), t0());
    let (bt, bs) = process(std::slice::from_ref(&cap));
    let (rt, rs) = reference::process(std::slice::from_ref(&cap));
    assert_eq!(bs, rs, "ParseStats diverge for {kind:?}");
    assert_eq!(bt, rt, "Tables diverge for {kind:?}");
}

/// Real rendered dumps for mutation, captured once.
fn real_dumps() -> Vec<(TableKind, String)> {
    let mut sc = Scenario::transition_snapshot(7, 0.5);
    sc.sim.advance_to(sc.sim.clock + SimDuration::hours(6));
    let now = sc.sim.clock;
    let mut access = SimAccess::new(&sc.sim);
    let mut out = Vec::new();
    for k in TableKind::ALL {
        for router in ["fixw", "ucsb-gw"] {
            if let Ok(raw) = access.capture(router, k, now) {
                out.push((k, raw));
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary byte soup — any values, any length — parses without
    /// panicking and both parsers agree exactly.
    #[test]
    fn parsers_agree_on_arbitrary_garbage(
        raw in proptest::collection::vec(any::<u8>(), 0..2048),
        kind_ix in 0usize..TableKind::ALL.len(),
    ) {
        assert_agreement(TableKind::ALL[kind_ix], &raw);
    }

    /// Real dumps mutated the way broken sessions break them — ANSI
    /// escapes, interior `\r` overwrites, `--More--` residue, non-UTF-8
    /// line noise spliced in at arbitrary positions, then truncated at an
    /// arbitrary *byte* (no char-boundary courtesy) — still parse
    /// identically through both parsers.
    #[test]
    fn parsers_agree_on_mutated_real_dumps(
        which in 0usize..10,
        splice_ix in 0usize..6,
        pos_permille in 0u32..1000,
        cut_permille in 0u32..=1000,
    ) {
        const SPLICES: &[&[u8]] = &[
            b"\x1b[2K\x1b[1;32m",
            b"524288 bytes\rX",
            b" --More-- \r        \r",
            b"\xff\xfe\x80 noise \xf5",
            b"\r\r\n\r",
            b"fixw> \n",
        ];
        let dumps = real_dumps();
        let (kind, raw) = &dumps[which % dumps.len()];
        let mut bytes = raw.as_bytes().to_vec();
        let pos = (bytes.len() as u64 * u64::from(pos_permille) / 1000) as usize;
        let splice = SPLICES[splice_ix % SPLICES.len()];
        bytes.splice(pos..pos, splice.iter().copied());
        let cut = (bytes.len() as u64 * u64::from(cut_permille) / 1000) as usize;
        bytes.truncate(cut.max(1));
        assert_agreement(*kind, &bytes);
    }
}

/// Every capture of every kind from live simulator cycles — banners,
/// prompts, pagination and all — parses identically, both one capture at
/// a time and as full per-router batches (the shape `process` sees in a
/// monitoring cycle).
#[test]
fn parsers_agree_on_live_cycles() {
    let mut sc = Scenario::transition_snapshot(11, 0.4);
    for cycle in 0..6 {
        let now = sc.sim.clock + SimDuration::hours(2);
        sc.sim.advance_to(now);
        let mut access = SimAccess::new(&sc.sim);
        for router in ["fixw", "ucsb-gw"] {
            let mut batch = Vec::new();
            for kind in TableKind::ALL {
                if let Ok(raw) = access.capture(router, kind, now) {
                    batch.push(preprocess_bytes(router, kind, raw.into_bytes(), now));
                }
            }
            for cap in &batch {
                let (bt, bs) = process(std::slice::from_ref(cap));
                let (rt, rs) = reference::process(std::slice::from_ref(cap));
                assert_eq!(bs, rs, "cycle {cycle} {router} {:?}", cap.kind);
                assert_eq!(bt, rt, "cycle {cycle} {router} {:?}", cap.kind);
            }
            let (bt, bs) = process(&batch);
            let (rt, rs) = reference::process(&batch);
            assert_eq!(bs, rs, "cycle {cycle} {router} batch");
            assert_eq!(bt, rt, "cycle {cycle} {router} batch");
        }
    }
}

/// The golden corpus of messy captured dumps replays byte-identically
/// through both parsers, and its accounting matches the checked-in
/// expectations exactly (catching silent parser drift).
#[test]
fn golden_corpus_parses_identically() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/data/captures");
    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .expect("golden corpus directory")
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .filter(|n| n.contains("__"))
        .collect();
    names.sort();
    assert!(names.len() >= 8, "corpus went missing: {names:?}");
    let mut actual = String::new();
    for name in &names {
        let prefix = name.split("__").next().unwrap();
        let kind = TableKind::ALL
            .into_iter()
            .find(|k| k.label() == prefix)
            .unwrap_or_else(|| panic!("{name}: unknown kind prefix {prefix}"));
        let raw = std::fs::read(dir.join(name)).unwrap();
        let cap = preprocess_bytes("fixw", kind, raw, t0());
        let (bt, bs) = process(std::slice::from_ref(&cap));
        let (rt, rs) = reference::process(std::slice::from_ref(&cap));
        assert_eq!(bs, rs, "{name}: ParseStats diverge");
        assert_eq!(bt, rt, "{name}: Tables diverge");
        actual.push_str(&format!(
            "{name}\tparsed={} malformed={} skipped={} pairs={} routes={} sa={} sessions={}\n",
            bs.parsed,
            bs.malformed,
            bs.skipped,
            bt.pairs.len(),
            bt.routes.len(),
            bt.sa_cache.len(),
            bt.sessions.len(),
        ));
    }
    let expected_path = dir.join("expected.tsv");
    let expected = std::fs::read_to_string(&expected_path).unwrap_or_default();
    assert_eq!(
        actual.trim(),
        expected.trim(),
        "golden corpus accounting drifted; if intentional, update expected.tsv to:\n{actual}"
    );
}
