//! Golden v1 fixture archives: committed MANTRARC v1 files that pin the
//! legacy on-disk format forever. The v2-capable reader must keep
//! replaying them byte-identically to a memory archive fed the same
//! stream, and `v1 → compact → v2` must preserve every row while
//! shrinking the file.
//!
//! The fixture stream is regenerated deterministically in-test (no
//! committed JSON), so a drift in either the fixture bytes or the reader
//! shows up as a replay diff. To rewrite the fixtures after a deliberate
//! format change:
//!
//! ```text
//! cargo test --test archive_fixtures -- --ignored regenerate
//! ```

use std::path::PathBuf;

use mantra::core::archive::FileBackend;
use mantra::core::logger::{compact_archive, CompactOptions, TableLog};
use mantra::core::tables::{LearnedFrom, PairRow, RouteRow, Tables};
use mantra::net::{BitRate, GroupAddr, Ip, Prefix, SimTime};

const FULL_EVERY: usize = 4;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(format!("tests/data/{name}"))
}

/// The canonical fixture stream: 10 cycles over a small multicast fleet
/// with per-cycle bandwidth drift, pair churn and a route flap — every
/// record kind and both full/delta encodings appear.
fn fixture_stream() -> Vec<Tables> {
    (0..10u64)
        .map(|n| {
            let at = SimTime(SimTime::from_ymd(1999, 2, 15).as_secs() + n * 900);
            let mut t = Tables::new("fixw", at);
            for g in 0..10u32 {
                t.add_pair(PairRow {
                    source: Ip(0x0a14_0000 + g),
                    group: GroupAddr::from_index(g),
                    current_bw: BitRate::from_bps(2_000 + 131 * n * u64::from(g == 1)),
                    avg_bw: BitRate::from_bps(2_000),
                    forwarding: g % 3 != 0,
                    learned_from: if g % 2 == 0 {
                        LearnedFrom::Dvmrp
                    } else {
                        LearnedFrom::Pim
                    },
                });
            }
            // Churn: a pair that joins halfway through.
            if n >= 5 {
                t.add_pair(PairRow {
                    source: Ip(0x0a14_0100 + n as u32),
                    group: GroupAddr::from_index(30 + n as u32),
                    current_bw: BitRate::from_bps(750),
                    avg_bw: BitRate::from_bps(750),
                    forwarding: true,
                    learned_from: LearnedFrom::Msdp,
                });
            }
            for i in 0..6u32 {
                // One prefix flaps reachability every other cycle.
                let reachable = i != 2 || n % 2 == 0;
                t.add_route(RouteRow {
                    prefix: Prefix::new(Ip(Ip::new(128, 111, 0, 0).0 + (i << 8)), 24).unwrap(),
                    next_hop: Some(Ip::new(10, 20, 0, 1)),
                    metric: 1 + i,
                    uptime: None,
                    reachable,
                    learned_from: LearnedFrom::Dvmrp,
                });
            }
            t
        })
        .collect()
}

/// Rewrites the committed fixtures. Run explicitly (`-- --ignored`)
/// after a deliberate v1 writer change — never from CI.
#[test]
#[ignore = "regenerates the committed fixtures in tests/data/"]
fn regenerate() {
    let path = fixture_path("fixw-v1.marc");
    std::fs::create_dir_all(path.parent().unwrap()).unwrap();
    let _ = std::fs::remove_file(&path);
    let backend = FileBackend::create(&path).unwrap();
    let mut log = TableLog::with_backend(Box::new(backend), FULL_EVERY);
    for s in &fixture_stream() {
        log.append(s);
    }
    assert_eq!(log.backend_error(), None);
    eprintln!("wrote {}", path.display());
}

#[test]
fn v1_fixture_replays_byte_identically_to_memory() {
    let streams = fixture_stream();
    let log = TableLog::load(&fixture_path("fixw-v1.marc"), FULL_EVERY).unwrap();
    assert_eq!(log.backend_kind(), "file");
    assert_eq!(log.describe().format_version, 1);
    assert_eq!(log.archive_stats().recovered_bytes, 0);

    let mut mem = TableLog::new(FULL_EVERY);
    for s in &streams {
        mem.append(s);
    }
    // Same rows, same record kinds, same logical payload bytes: the v1
    // reader in the v2-capable build loses nothing.
    assert_eq!(log.replay(), streams);
    assert_eq!(log.replay(), mem.replay());
    // The fixture stores exactly the memory log's JSON payloads plus the
    // fixed 9-byte v1 frame header per record — pinning both the payload
    // bytes and the frame overhead.
    let stats = log.archive_stats();
    assert_eq!(stats.bytes, mem.bytes_stored as u64 + 9 * stats.records);
    assert_eq!(stats.checkpoints, mem.archive_stats().checkpoints);
}

#[test]
fn v1_fixture_compacts_to_an_equivalent_smaller_v2_archive() {
    let src = TableLog::load(&fixture_path("fixw-v1.marc"), FULL_EVERY).unwrap();
    let out = std::env::temp_dir().join(format!(
        "mantra-fixture-compact-{}.marc",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&out);
    let (dst, dropped) = compact_archive(
        &src,
        &out,
        &CompactOptions {
            full_every: FULL_EVERY,
            ..CompactOptions::default()
        },
    )
    .unwrap();
    assert_eq!(dropped, 0);
    assert_eq!(dst.replay(), src.replay());
    // The rewrite bumps the dictionary epoch past the v1 source's 0 and
    // lands in the id-keyed format, which is strictly smaller on disk.
    let info = dst.describe();
    assert_eq!(info.format_version, 2);
    assert_eq!(info.epoch, 1);
    assert!(info.dict_entries > 0);
    assert!(
        dst.archive_stats().bytes < src.archive_stats().bytes,
        "v2 {} bytes vs v1 {} bytes",
        dst.archive_stats().bytes,
        src.archive_stats().bytes
    );
    // And the compacted archive reloads through the format sniffer.
    drop(dst);
    let reloaded = TableLog::load(&out, FULL_EVERY).unwrap();
    assert_eq!(reloaded.replay(), src.replay());
    std::fs::remove_file(&out).unwrap();
}
