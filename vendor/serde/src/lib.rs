//! A self-contained, offline subset of `serde`.
//!
//! This workspace builds in environments with no crates.io access, so the
//! handful of external crates it depends on are vendored as minimal
//! first-party implementations (see `vendor/README.md`). This crate keeps
//! serde's public *shape* — `Serialize`/`Deserialize` traits, the
//! `ser`/`de` modules, and `#[derive(Serialize, Deserialize)]` — but routes
//! everything through one concrete tree type, [`Value`]. Serializers
//! consume a `Value`; deserializers produce one. That is all the workspace
//! needs: `serde_json` (also vendored) renders and parses `Value`s, and the
//! derive macro emits `Value`-building code.
//!
//! Fidelity notes, relative to real serde:
//! * Formats are self-consistent, not wire-compatible with serde_json
//!   proper (maps serialize as entry lists, enums as externally tagged).
//! * There is no zero-copy deserialization; the `'de` lifetime exists only
//!   so downstream trait bounds written against real serde still compile.

pub use serde_derive::{Deserialize, Serialize};

/// The single data model everything serializes through.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A negative integer.
    I64(i64),
    /// A non-negative integer.
    U64(u64),
    /// A float.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (field order is preserved).
    Map(Vec<(String, Value)>),
}

/// Serialization: the trait and the `Value`-producing serializer.
pub mod ser {
    use super::{Serialize, Value};

    /// Mirrors `serde::ser::Serializer` closely enough for generic
    /// helper functions (`fn serialize<S: Serializer>(...)`) to compile.
    pub trait Serializer: Sized {
        /// What a successful serialization yields.
        type Ok;
        /// The error type.
        type Error;

        /// Consumes a fully-built value tree.
        fn serialize_value(self, v: Value) -> Result<Self::Ok, Self::Error>;

        /// Serializes an iterator as a sequence.
        fn collect_seq<I>(self, iter: I) -> Result<Self::Ok, Self::Error>
        where
            I: IntoIterator,
            I::Item: Serialize,
        {
            let items = iter.into_iter().map(|x| to_value(&x)).collect();
            self.serialize_value(Value::Seq(items))
        }
    }

    /// An error that cannot occur (serializing to a `Value` is total).
    #[derive(Debug)]
    pub enum Impossible {}

    /// The serializer that builds a [`Value`].
    pub struct ValueSerializer;

    impl Serializer for ValueSerializer {
        type Ok = Value;
        type Error = Impossible;

        fn serialize_value(self, v: Value) -> Result<Value, Impossible> {
            Ok(v)
        }
    }

    /// Serializes anything into a [`Value`] (infallible).
    pub fn to_value<T: Serialize + ?Sized>(t: &T) -> Value {
        match t.serialize(ValueSerializer) {
            Ok(v) => v,
            Err(e) => match e {},
        }
    }
}

/// Deserialization: the trait, the `Value`-consuming deserializer and its
/// error type.
pub mod de {
    use super::Value;

    /// The concrete deserialization error.
    #[derive(Debug)]
    pub struct Error(pub String);

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.0)
        }
    }

    impl std::error::Error for Error {}

    /// Mirrors `serde::de::Deserializer`: hands the impl a value tree.
    pub trait Deserializer<'de>: Sized {
        /// The error type.
        type Error;

        /// Yields the value to deserialize from.
        fn take_value(self) -> Result<Value, Self::Error>;

        /// Builds an error from a message (serde's `Error::custom`).
        fn custom(msg: String) -> Self::Error;
    }

    /// A deserializer over an owned [`Value`].
    pub struct ValueDeserializer(pub Value);

    impl<'de> Deserializer<'de> for ValueDeserializer {
        type Error = Error;

        fn take_value(self) -> Result<Value, Error> {
            Ok(self.0)
        }

        fn custom(msg: String) -> Error {
            Error(msg)
        }
    }

    /// Deserializes a sub-value on behalf of an outer deserializer `D`,
    /// converting the error type. The derive macro and container impls
    /// route every field/element through this.
    pub fn field<'de, T, D>(v: Value) -> Result<T, D::Error>
    where
        T: super::Deserialize<'de>,
        D: Deserializer<'de>,
    {
        T::deserialize(ValueDeserializer(v)).map_err(|e| D::custom(e.0))
    }
}

/// A type that can serialize itself.
pub trait Serialize {
    /// Serializes `self` into `serializer`.
    fn serialize<S: ser::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A type that can deserialize itself.
pub trait Deserialize<'de>: Sized {
    /// Deserializes from `deserializer`.
    fn deserialize<D: de::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// Deserializes a `T` from an owned [`Value`].
pub fn from_value<T>(v: Value) -> Result<T, de::Error>
where
    T: for<'de> Deserialize<'de>,
{
    T::deserialize(de::ValueDeserializer(v))
}

// ---------------------------------------------------------------------
// Serialize impls for std types
// ---------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: ser::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl Serialize for bool {
    fn serialize<S: ser::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Bool(*self))
    }
}

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: ser::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_value(Value::U64(*self as u64))
            }
        }
    )*};
}
ser_unsigned!(u8, u16, u32, u64, usize);

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: ser::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                let v = *self as i64;
                if v >= 0 {
                    s.serialize_value(Value::U64(v as u64))
                } else {
                    s.serialize_value(Value::I64(v))
                }
            }
        }
    )*};
}
ser_signed!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn serialize<S: ser::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::F64(f64::from(*self)))
    }
}

impl Serialize for f64 {
    fn serialize<S: ser::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::F64(*self))
    }
}

impl Serialize for str {
    fn serialize<S: ser::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Str(self.to_string()))
    }
}

impl Serialize for String {
    fn serialize<S: ser::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Str(self.clone()))
    }
}

impl Serialize for char {
    fn serialize<S: ser::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Str(self.to_string()))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: ser::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        match self {
            None => s.serialize_value(Value::Null),
            Some(v) => v.serialize(s),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: ser::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.collect_seq(self.iter())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: ser::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.collect_seq(self.iter())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: ser::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.collect_seq(self.iter())
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize<S: ser::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_value(Value::Seq(vec![$(ser::to_value(&self.$n)),+]))
            }
        }
    )*};
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize<S: ser::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.collect_seq(self.iter())
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn serialize<S: ser::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.collect_seq(self.iter())
    }
}

// ---------------------------------------------------------------------
// Deserialize impls for std types
// ---------------------------------------------------------------------

// `Value` deserializes as itself — upstream serde_json offers the same
// escape hatch for callers that want the raw tree (tests asserting JSON
// shapes, generic tooling) rather than a typed struct.
impl<'de> Deserialize<'de> for Value {
    fn deserialize<D: de::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        d.take_value()
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: de::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Bool(b) => Ok(b),
            other => Err(D::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! de_unsigned {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: de::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let n: u64 = match d.take_value()? {
                    Value::U64(n) => n,
                    Value::I64(n) if n >= 0 => n as u64,
                    Value::F64(f) if f >= 0.0 && f.fract() == 0.0 => f as u64,
                    other => return Err(D::custom(format!("expected unsigned int, got {other:?}"))),
                };
                <$t>::try_from(n).map_err(|_| D::custom(format!("{n} out of range")))
            }
        }
    )*};
}
de_unsigned!(u8, u16, u32, u64, usize);

macro_rules! de_signed {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: de::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let n: i64 = match d.take_value()? {
                    Value::I64(n) => n,
                    Value::U64(n) => i64::try_from(n)
                        .map_err(|_| D::custom(format!("{n} out of range")))?,
                    Value::F64(f) if f.fract() == 0.0 => f as i64,
                    other => return Err(D::custom(format!("expected int, got {other:?}"))),
                };
                <$t>::try_from(n).map_err(|_| D::custom(format!("{n} out of range")))
            }
        }
    )*};
}
de_signed!(i8, i16, i32, i64, isize);

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: de::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::F64(f) => Ok(f),
            Value::U64(n) => Ok(n as f64),
            Value::I64(n) => Ok(n as f64),
            other => Err(D::custom(format!("expected number, got {other:?}"))),
        }
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: de::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        f64::deserialize(d).map(|f| f as f32)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: de::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Str(s) => Ok(s),
            other => Err(D::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize<D: de::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let s = String::deserialize(d)?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(D::custom(format!("expected single char, got {s:?}"))),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: de::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Null => Ok(None),
            v => Ok(Some(de::field::<T, D>(v)?)),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: de::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Seq(items) => items.into_iter().map(|v| de::field::<T, D>(v)).collect(),
            other => Err(D::custom(format!("expected sequence, got {other:?}"))),
        }
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: de::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let items = Vec::<T>::deserialize(d)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| D::custom(format!("expected array of {N}, got {len} items")))
    }
}

macro_rules! de_tuple {
    ($(($len:literal; $($n:tt $t:ident),+))*) => {$(
        impl<'de, $($t: Deserialize<'de>),+> Deserialize<'de> for ($($t,)+) {
            fn deserialize<__D: de::Deserializer<'de>>(d: __D) -> Result<Self, __D::Error> {
                match d.take_value()? {
                    Value::Seq(items) if items.len() == $len => {
                        let mut it = items.into_iter();
                        Ok(($({
                            let _ = $n; // positional marker
                            de::field::<$t, __D>(it.next().expect("length checked"))?
                        },)+))
                    }
                    other => Err(__D::custom(format!(
                        "expected {}-tuple, got {other:?}", $len
                    ))),
                }
            }
        }
    )*};
}
de_tuple! {
    (1; 0 A)
    (2; 0 A, 1 B)
    (3; 0 A, 1 B, 2 C)
    (4; 0 A, 1 B, 2 C, 3 D)
    (5; 0 A, 1 B, 2 C, 3 D, 4 E)
}

impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::BTreeMap<K, V>
{
    fn deserialize<D: de::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let entries = Vec::<(K, V)>::deserialize(d)?;
        Ok(entries.into_iter().collect())
    }
}

impl<'de, T: Deserialize<'de> + Ord> Deserialize<'de> for std::collections::BTreeSet<T> {
    fn deserialize<D: de::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let items = Vec::<T>::deserialize(d)?;
        Ok(items.into_iter().collect())
    }
}
