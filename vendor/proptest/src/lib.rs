//! Offline subset of proptest: deterministic random sampling with the
//! proptest macro/strategy surface this workspace uses.
//!
//! Differences from upstream: cases are sampled from a per-test
//! deterministic stream (seeded by the test's module path + name), there
//! is no shrinking, and failures report the plain `assert!` panic for the
//! sampled case. `.proptest-regressions` files are ignored.

pub mod test_runner {
    /// Per-test configuration. Only `cases` is honoured.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }

        /// The case count actually run: the `PROPTEST_CASES` environment
        /// variable overrides the configured count when set (matching
        /// upstream proptest), so CI can rerun the same suites at higher
        /// case counts without code changes.
        pub fn effective_cases(&self) -> u32 {
            match std::env::var("PROPTEST_CASES") {
                Ok(v) => v.trim().parse().unwrap_or(self.cases),
                Err(_) => self.cases,
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic generator (xoshiro256++ seeded from the test name),
    /// so every run of a test samples the same cases.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        pub fn for_test(name: &str) -> TestRng {
            use std::hash::{Hash, Hasher};
            let mut h = std::collections::hash_map::DefaultHasher::new();
            // DefaultHasher::new() is stable across runs and platforms
            // (SipHash-1-3 with fixed keys), so this seed is stable too.
            name.hash(&mut h);
            let mut state = h.finish();
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform in `[0, n)`.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            self.next_u64() % n
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for sampling values of `Self::Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let width = (self.end - self.start) as u64;
                    self.start + rng.below(width) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let width = (hi - lo) as u64;
                    if width == u64::MAX {
                        rng.next_u64() as $t
                    } else {
                        lo + rng.below(width + 1) as $t
                    }
                }
            }
        )+};
    }

    int_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for std::ops::Range<i64> {
        type Value = i64;
        fn generate(&self, rng: &mut TestRng) -> i64 {
            assert!(self.start < self.end, "empty strategy range");
            let width = self.end.wrapping_sub(self.start) as u64;
            self.start.wrapping_add(rng.below(width) as i64)
        }
    }

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    /// String strategy from a regex-like pattern. Supports the subset
    /// `[class]` / literal chars, each optionally quantified with
    /// `{m,n}`, `{n}`, `*`, `+`, or `?` — enough for patterns like
    /// `"[ -~]{0,60}"`. Unsupported syntax falls back to emitting the
    /// pattern text literally.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            match parse_pattern(self) {
                Some(elements) => {
                    let mut out = String::new();
                    for el in &elements {
                        let n = el.min as u64
                            + if el.max > el.min {
                                rng.below((el.max - el.min + 1) as u64)
                            } else {
                                0
                            };
                        for _ in 0..n {
                            let idx = rng.below(el.chars.len() as u64) as usize;
                            out.push(el.chars[idx]);
                        }
                    }
                    out
                }
                None => (*self).to_string(),
            }
        }
    }

    struct Element {
        chars: Vec<char>,
        min: usize,
        max: usize,
    }

    fn parse_pattern(pat: &str) -> Option<Vec<Element>> {
        let chars: Vec<char> = pat.chars().collect();
        let mut i = 0;
        let mut out = Vec::new();
        while i < chars.len() {
            let set = if chars[i] == '[' {
                let close = chars[i..].iter().position(|c| *c == ']')? + i;
                let inner = &chars[i + 1..close];
                i = close + 1;
                expand_class(inner)?
            } else if chars[i] == '\\' {
                let c = *chars.get(i + 1)?;
                i += 2;
                vec![match c {
                    'n' => '\n',
                    't' => '\t',
                    'd' => return None, // digit classes unused; bail to literal
                    c => c,
                }]
            } else if "(){}*+?|^$".contains(chars[i]) {
                return None; // unsupported syntax
            } else {
                let c = chars[i];
                i += 1;
                vec![c]
            };
            // Optional quantifier.
            let (min, max) = match chars.get(i) {
                Some('{') => {
                    let close = chars[i..].iter().position(|c| *c == '}')? + i;
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((lo, hi)) => (lo.trim().parse().ok()?, hi.trim().parse().ok()?),
                        None => {
                            let n = body.trim().parse().ok()?;
                            (n, n)
                        }
                    }
                }
                Some('*') => {
                    i += 1;
                    (0, 8)
                }
                Some('+') => {
                    i += 1;
                    (1, 8)
                }
                Some('?') => {
                    i += 1;
                    (0, 1)
                }
                _ => (1, 1),
            };
            if set.is_empty() || max < min {
                return None;
            }
            out.push(Element {
                chars: set,
                min,
                max,
            });
        }
        Some(out)
    }

    fn expand_class(inner: &[char]) -> Option<Vec<char>> {
        let mut set = Vec::new();
        let mut i = 0;
        while i < inner.len() {
            if i + 2 < inner.len() && inner[i + 1] == '-' {
                let (lo, hi) = (inner[i] as u32, inner[i + 2] as u32);
                if lo > hi {
                    return None;
                }
                for c in lo..=hi {
                    set.push(char::from_u32(c)?);
                }
                i += 3;
            } else {
                set.push(inner[i]);
                i += 1;
            }
        }
        Some(set)
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arb_uint {
        ($($t:ty),+) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )+};
    }

    arb_uint!(u8, u16, u32, u64, usize);

    pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(std::marker::PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let __strategy = ( $($strat,)+ );
            for __case in 0..__config.effective_cases() {
                let ( $($arg,)+ ) =
                    $crate::strategy::Strategy::generate(&__strategy, &mut __rng);
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skips the current case when the assumption fails. Expands to
/// `continue`, so it is only valid directly inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($t:tt)*)?) => {
        if !($cond) {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn regex_subset_generates_printable() {
        let mut rng = crate::test_runner::TestRng::for_test("regex");
        for _ in 0..200 {
            let s = Strategy::generate(&"[ -~]{0,60}", &mut rng);
            assert!(s.len() <= 60);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(a in 3u32..10, b in 0usize..5, c in 1u64..=4) {
            prop_assert!((3..10).contains(&a));
            prop_assert!(b < 5);
            prop_assert!((1..=4).contains(&c));
        }

        #[test]
        fn combinators_compose(
            v in crate::collection::vec((0u32..50).prop_map(|x| x * 2), 1..10),
        ) {
            prop_assume!(!v.is_empty());
            prop_assert!(v.iter().all(|x| x % 2 == 0));
            prop_assert_eq!(v.len(), v.len());
        }
    }
}
