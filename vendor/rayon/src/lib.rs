//! Order-preserving parallel iteration with rayon's call shape.
//!
//! Supports the `slice.par_iter().map(f).collect()` pipeline this
//! workspace uses. Work is split into contiguous chunks across scoped
//! threads (one per available core, capped by item count), and results
//! are reassembled in input order — callers relying on rayon's
//! order-preserving `collect` see identical output.

pub mod prelude {
    pub use crate::{IntoParallelRefIterator, ParIter, ParMap};
}

pub struct ParIter<'a, T> {
    items: &'a [T],
}

pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

pub trait IntoParallelRefIterator<'a> {
    type Item: Sync + 'a;
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync> ParIter<'a, T> {
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

impl<'a, T: Sync, F> ParMap<'a, T, F> {
    pub fn collect<C, R>(self) -> C
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
        C: FromIterator<R>,
    {
        parallel_map(self.items, self.f).into_iter().collect()
    }
}

/// Maps `f` over `items` on scoped threads, preserving input order.
pub fn parallel_map<'a, T, R, F>(items: &'a [T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    let n = items.len();
    if n <= 1 {
        return items.iter().map(&f).collect();
    }
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(n);
    let chunk = n.div_ceil(workers);
    let fr = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|part| scope.spawn(move || part.iter().map(fr).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("rayon worker panicked"))
            .collect()
    })
}

/// Maps `f` over `items` through exclusive references on scoped threads,
/// preserving input order — the fan-out shape for per-item mutable state
/// (each item is visited by exactly one worker, so no synchronisation is
/// needed around the mutation).
pub fn parallel_map_mut<T, R, F>(items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(&mut T) -> R + Sync,
{
    let n = items.len();
    if n <= 1 {
        return items.iter_mut().map(&f).collect();
    }
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(n);
    let chunk = n.div_ceil(workers);
    let fr = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks_mut(chunk)
            .map(|part| scope.spawn(move || part.iter_mut().map(fr).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("rayon worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn preserves_order() {
        let xs: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = xs.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn mutable_map_preserves_order_and_mutates() {
        let mut xs: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = crate::parallel_map_mut(&mut xs, |x| {
            *x += 1;
            *x * 2
        });
        assert_eq!(xs, (1..=1000).collect::<Vec<_>>());
        assert_eq!(doubled, (1..=1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn nested_parallelism() {
        let xs: Vec<u64> = (0..8).collect();
        let sums: Vec<u64> = xs
            .par_iter()
            .map(|x| {
                let inner: Vec<u64> = (0..4u64).collect::<Vec<_>>();
                let mapped: Vec<u64> = inner.par_iter().map(|y| x * 10 + y).collect();
                mapped.iter().sum()
            })
            .collect();
        assert_eq!(sums[1], 10 + 11 + 12 + 13);
    }
}
