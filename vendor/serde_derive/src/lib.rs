//! `#[derive(Serialize, Deserialize)]` for the vendored serde subset.
//!
//! Implemented directly on `proc_macro` token trees (no `syn`/`quote`,
//! which are unavailable offline). The parser covers the item shapes this
//! workspace actually derives on: named structs, tuple structs, unit
//! structs, enums with unit/tuple/struct variants, a single layer of type
//! generics, and the `#[serde(with = "module")]` field attribute. Output
//! is generated as source text and re-parsed, which keeps the codegen
//! readable and the error surface small.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What we learned about the item being derived.
struct Input {
    name: String,
    /// Type-parameter identifiers (lifetimes are not supported).
    params: Vec<String>,
    kind: Kind,
}

enum Kind {
    /// Named-field struct.
    Struct(Vec<Field>),
    /// Tuple struct with this many fields.
    Tuple(usize),
    /// Unit struct.
    Unit,
    /// Enum.
    Enum(Vec<Variant>),
}

struct Field {
    name: String,
    /// Payload of `#[serde(with = "...")]`, if present.
    with: Option<String>,
}

struct Variant {
    name: String,
    shape: VarShape,
}

enum VarShape {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_input(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive: generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_input(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive: generated invalid Deserialize impl")
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

fn parse_input(input: TokenStream) -> Input {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Outer attributes and visibility.
    loop {
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 2; // `#` + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = toks.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }

    let is_enum = match toks.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => false,
        Some(TokenTree::Ident(id)) if id.to_string() == "enum" => true,
        other => panic!("serde_derive: expected struct or enum, got {other:?}"),
    };
    i += 1;

    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, got {other:?}"),
    };
    i += 1;

    // Generic parameters: collect idents in parameter position at depth 1.
    let mut params = Vec::new();
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            i += 1;
            let mut depth = 1usize;
            let mut expect_param = true;
            while depth > 0 {
                match toks.get(i) {
                    Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                        depth += 1;
                        expect_param = false;
                    }
                    Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                        depth -= 1;
                        expect_param = false;
                    }
                    Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 1 => {
                        expect_param = true;
                    }
                    Some(TokenTree::Punct(p)) if p.as_char() == '\'' => {
                        // Lifetime parameter: skip its ident, stay in
                        // expect_param state only until the ident.
                        i += 1; // consume the ident after the tick
                        expect_param = false;
                    }
                    Some(TokenTree::Ident(id)) => {
                        if expect_param && depth == 1 {
                            params.push(id.to_string());
                        }
                        expect_param = false;
                    }
                    None => panic!("serde_derive: unterminated generics on {name}"),
                    _ => {
                        expect_param = false;
                    }
                }
                i += 1;
            }
        }
    }

    // Skip a where-clause if present: everything up to the body group.
    while let Some(tok) = toks.get(i) {
        match tok {
            TokenTree::Group(g)
                if g.delimiter() == Delimiter::Brace || g.delimiter() == Delimiter::Parenthesis =>
            {
                break;
            }
            TokenTree::Punct(p) if p.as_char() == ';' => break,
            _ => i += 1,
        }
    }

    let kind = match toks.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            if is_enum {
                Kind::Enum(parse_variants(g.stream()))
            } else {
                Kind::Struct(parse_fields(g.stream()))
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Kind::Tuple(count_top_level(g.stream()))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::Unit,
        None => Kind::Unit,
        other => panic!("serde_derive: unexpected token in {name}: {other:?}"),
    };

    Input { name, params, kind }
}

/// Splits a token stream on commas that are outside `<...>` (delimiter
/// groups are atomic tokens, but angle brackets are plain puncts and need
/// manual depth tracking).
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut angle = 0i32;
    for tok in stream {
        match &tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                out.push(std::mem::take(&mut cur));
                continue;
            }
            _ => {}
        }
        cur.push(tok);
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn count_top_level(stream: TokenStream) -> usize {
    split_top_level(stream).len()
}

/// Parses one named field's tokens: attrs, visibility, `name : type`.
fn parse_field(tokens: &[TokenTree]) -> Field {
    let mut with = None;
    let mut i = 0;
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    if let Some(w) = parse_serde_with(g.stream()) {
                        with = Some(w);
                    }
                }
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            Some(TokenTree::Ident(id)) => {
                return Field {
                    name: id.to_string(),
                    with,
                };
            }
            other => panic!("serde_derive: expected field name, got {other:?}"),
        }
    }
}

fn parse_fields(stream: TokenStream) -> Vec<Field> {
    split_top_level(stream)
        .iter()
        .filter(|chunk| !chunk.is_empty())
        .map(|chunk| parse_field(chunk))
        .collect()
}

/// Extracts `with = "path"` from the contents of a `#[serde(...)]`
/// attribute's bracket group, if that is what this attribute is.
fn parse_serde_with(stream: TokenStream) -> Option<String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    match toks.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return None,
    }
    let inner = match toks.get(1) {
        Some(TokenTree::Group(g)) => g.stream(),
        _ => return None,
    };
    let inner: Vec<TokenTree> = inner.into_iter().collect();
    let mut i = 0;
    while i < inner.len() {
        if let TokenTree::Ident(id) = &inner[i] {
            if id.to_string() == "with" {
                if let Some(TokenTree::Literal(lit)) = inner.get(i + 2) {
                    let raw = lit.to_string();
                    return Some(raw.trim_matches('"').to_string());
                }
            }
        }
        i += 1;
    }
    None
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    split_top_level(stream)
        .iter()
        .filter(|chunk| !chunk.is_empty())
        .map(|chunk| {
            let mut i = 0;
            // Skip attributes (e.g. `#[default]` used by derive(Default)).
            while let Some(TokenTree::Punct(p)) = chunk.get(i) {
                if p.as_char() == '#' {
                    i += 2;
                } else {
                    break;
                }
            }
            let name = match chunk.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("serde_derive: expected variant name, got {other:?}"),
            };
            i += 1;
            let shape = match chunk.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    VarShape::Tuple(count_top_level(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    VarShape::Struct(parse_fields(g.stream()))
                }
                _ => VarShape::Unit,
            };
            Variant { name, shape }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------

fn ser_impl_header(input: &Input) -> String {
    if input.params.is_empty() {
        format!("impl serde::Serialize for {}", input.name)
    } else {
        let bounds: Vec<String> = input
            .params
            .iter()
            .map(|p| format!("{p}: serde::Serialize"))
            .collect();
        format!(
            "impl<{}> serde::Serialize for {}<{}>",
            bounds.join(", "),
            input.name,
            input.params.join(", ")
        )
    }
}

fn de_impl_header(input: &Input) -> String {
    if input.params.is_empty() {
        format!("impl<'de> serde::Deserialize<'de> for {}", input.name)
    } else {
        let bounds: Vec<String> = input
            .params
            .iter()
            .map(|p| format!("{p}: serde::Deserialize<'de>"))
            .collect();
        format!(
            "impl<'de, {}> serde::Deserialize<'de> for {}<{}>",
            bounds.join(", "),
            input.name,
            input.params.join(", ")
        )
    }
}

/// Expression producing the `serde::Value` for one field access path.
fn ser_field_expr(access: &str, with: &Option<String>) -> String {
    match with {
        None => format!("serde::ser::to_value({access})"),
        Some(path) => format!(
            "match {path}::serialize({access}, serde::ser::ValueSerializer) \
             {{ Ok(__v) => __v, Err(_) => serde::Value::Null }}"
        ),
    }
}

/// Expression deserializing one field from the `serde::Value` in `var`.
fn de_field_expr(var: &str, with: &Option<String>) -> String {
    match with {
        None => format!("serde::de::field::<_, __D>({var})?"),
        Some(path) => format!(
            "{path}::deserialize(serde::de::ValueDeserializer({var}))\
             .map_err(|__e| __D::custom(__e.0))?"
        ),
    }
}

fn gen_serialize(input: &Input) -> String {
    let body = match &input.kind {
        Kind::Unit => "__s.serialize_value(serde::Value::Null)".to_string(),
        Kind::Tuple(1) => format!("__s.serialize_value({})", ser_field_expr("&self.0", &None)),
        Kind::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| ser_field_expr(&format!("&self.{i}"), &None))
                .collect();
            format!(
                "__s.serialize_value(serde::Value::Seq(vec![{}]))",
                items.join(", ")
            )
        }
        Kind::Struct(fields) => {
            let pushes: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "__m.push((\"{0}\".to_string(), {1}));",
                        f.name,
                        ser_field_expr(&format!("&self.{}", f.name), &f.with)
                    )
                })
                .collect();
            format!(
                "let mut __m: Vec<(String, serde::Value)> = Vec::new();\n{}\n\
                 __s.serialize_value(serde::Value::Map(__m))",
                pushes.join("\n")
            )
        }
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    let tname = &input.name;
                    match &v.shape {
                        VarShape::Unit => format!(
                            "{tname}::{vname} => __s.serialize_value(\
                             serde::Value::Str(\"{vname}\".to_string())),"
                        ),
                        VarShape::Tuple(1) => format!(
                            "{tname}::{vname}(__x0) => __s.serialize_value(\
                             serde::Value::Map(vec![(\"{vname}\".to_string(), {})])),",
                            ser_field_expr("__x0", &None)
                        ),
                        VarShape::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__x{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| ser_field_expr(&format!("__x{i}"), &None))
                                .collect();
                            format!(
                                "{tname}::{vname}({}) => __s.serialize_value(\
                                 serde::Value::Map(vec![(\"{vname}\".to_string(), \
                                 serde::Value::Seq(vec![{}]))])),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        VarShape::Struct(fields) => {
                            let binds: Vec<String> =
                                fields.iter().map(|f| f.name.clone()).collect();
                            let items: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(\"{0}\".to_string(), {1})",
                                        f.name,
                                        ser_field_expr(&f.name, &f.with)
                                    )
                                })
                                .collect();
                            format!(
                                "{tname}::{vname} {{ {} }} => __s.serialize_value(\
                                 serde::Value::Map(vec![(\"{vname}\".to_string(), \
                                 serde::Value::Map(vec![{}]))])),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{\n{}\n}}", arms.join("\n"))
        }
    };
    format!(
        "{} {{\n fn serialize<__S: serde::ser::Serializer>(&self, __s: __S) \
         -> Result<__S::Ok, __S::Error> {{\n{body}\n}}\n}}",
        ser_impl_header(input)
    )
}

/// Generates the shared named-fields decoding snippet: binds each field
/// name from a `Vec<(String, serde::Value)>` called `__map`, then builds
/// `ctor { field, ... }`.
fn de_named_fields(ctx: &str, fields: &[Field], ctor: &str) -> String {
    let mut out = String::new();
    for f in fields {
        out.push_str(&format!(
            "let mut __f_{}: Option<serde::Value> = None;\n",
            f.name
        ));
    }
    out.push_str("for (__k, __val) in __map {\nmatch __k.as_str() {\n");
    for f in fields {
        out.push_str(&format!("\"{0}\" => __f_{0} = Some(__val),\n", f.name));
    }
    out.push_str("_ => {}\n}\n}\n");
    for f in fields {
        out.push_str(&format!(
            "let {0} = match __f_{0} {{ Some(__v) => {1}, None => return Err(__D::custom(\
             \"missing field {0} in {ctx}\".to_string())) }};\n",
            f.name,
            de_field_expr("__v", &f.with)
        ));
    }
    let names: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
    out.push_str(&format!("Ok({ctor} {{ {} }})", names.join(", ")));
    out
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::Unit => format!("let _ = __d.take_value()?; Ok({name})"),
        Kind::Tuple(1) => format!(
            "let __v = __d.take_value()?; Ok({name}({}))",
            de_field_expr("__v", &None)
        ),
        Kind::Tuple(n) => {
            let gets: Vec<String> = (0..*n)
                .map(|_| de_field_expr("__it.next().expect(\"length checked\")", &None))
                .collect();
            format!(
                "match __d.take_value()? {{\n\
                 serde::Value::Seq(__items) if __items.len() == {n} => {{\n\
                 let mut __it = __items.into_iter();\n\
                 Ok({name}({}))\n}}\n\
                 __other => Err(__D::custom(format!(\
                 \"expected {n}-element seq for {name}, got {{__other:?}}\"))),\n}}",
                gets.join(", ")
            )
        }
        Kind::Struct(fields) => format!(
            "let __map = match __d.take_value()? {{\n\
             serde::Value::Map(__m) => __m,\n\
             __other => return Err(__D::custom(format!(\
             \"expected map for {name}, got {{__other:?}}\"))),\n}};\n{}",
            de_named_fields(name, fields, name)
        ),
        Kind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.shape, VarShape::Unit))
                .map(|v| format!("\"{0}\" => Ok({name}::{0}),", v.name))
                .collect();
            let payload_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        VarShape::Unit => None,
                        VarShape::Tuple(1) => Some(format!(
                            "\"{vname}\" => Ok({name}::{vname}({})),",
                            de_field_expr("__payload", &None)
                        )),
                        VarShape::Tuple(n) => {
                            let gets: Vec<String> = (0..*n)
                                .map(|_| {
                                    de_field_expr("__it.next().expect(\"length checked\")", &None)
                                })
                                .collect();
                            Some(format!(
                                "\"{vname}\" => match __payload {{\n\
                                 serde::Value::Seq(__items) if __items.len() == {n} => {{\n\
                                 let mut __it = __items.into_iter();\n\
                                 Ok({name}::{vname}({}))\n}}\n\
                                 __other => Err(__D::custom(format!(\
                                 \"bad payload for {name}::{vname}: {{__other:?}}\"))),\n}},",
                                gets.join(", ")
                            ))
                        }
                        VarShape::Struct(fields) => Some(format!(
                            "\"{vname}\" => match __payload {{\n\
                             serde::Value::Map(__map) => {{\n{}\n}}\n\
                             __other => Err(__D::custom(format!(\
                             \"bad payload for {name}::{vname}: {{__other:?}}\"))),\n}},",
                            de_named_fields(
                                &format!("{name}::{vname}"),
                                fields,
                                &format!("{name}::{vname}")
                            )
                        )),
                    }
                })
                .collect();
            format!(
                "match __d.take_value()? {{\n\
                 serde::Value::Str(__s) => match __s.as_str() {{\n{}\n\
                 __other => Err(__D::custom(format!(\
                 \"unknown variant {{__other}} of {name}\"))),\n}},\n\
                 serde::Value::Map(mut __m) if __m.len() == 1 => {{\n\
                 let (__k, __payload) = __m.remove(0);\n\
                 match __k.as_str() {{\n{}\n\
                 __other => Err(__D::custom(format!(\
                 \"unknown variant {{__other}} of {name}\"))),\n}}\n}}\n\
                 __other => Err(__D::custom(format!(\
                 \"expected variant tag for {name}, got {{__other:?}}\"))),\n}}",
                unit_arms.join("\n"),
                payload_arms.join("\n")
            )
        }
    };
    format!(
        "{} {{\n fn deserialize<__D: serde::de::Deserializer<'de>>(__d: __D) \
         -> Result<Self, __D::Error> {{\n{body}\n}}\n}}",
        de_impl_header(input)
    )
}
