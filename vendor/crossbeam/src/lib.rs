//! Crossbeam-shaped channels and scoped threads built on std.
//!
//! `channel::unbounded` wraps `std::sync::mpsc`; `thread::scope` wraps
//! `std::thread::scope`, adapting crossbeam's closure signature (workers
//! receive a `&Scope` argument). Worker panics propagate when the std
//! scope joins, so the caller's `.expect(...)` site still halts the
//! process on a poisoned cycle rather than deadlocking.

pub mod channel {
    pub use std::sync::mpsc::{RecvError, SendError};

    pub struct Sender<T>(std::sync::mpsc::Sender<T>);

    pub struct Receiver<T>(std::sync::mpsc::Receiver<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        pub fn try_recv(&self) -> Result<T, std::sync::mpsc::TryRecvError> {
            self.0.try_recv()
        }

        pub fn iter(&self) -> std::sync::mpsc::Iter<'_, T> {
            self.0.iter()
        }
    }

    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = std::sync::mpsc::channel();
        (Sender(tx), Receiver(rx))
    }
}

pub mod thread {
    /// Wrapper around `std::thread::Scope` so spawned closures can take
    /// the crossbeam-style `&Scope` argument and spawn further work.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            self.inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope handle; all spawned threads are joined before
    /// returning. A worker panic re-raises on join (std scope semantics),
    /// so `Err` is never constructed — the signature exists for drop-in
    /// compatibility with crossbeam's fallible API.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn fan_in_over_channel() {
        let (tx, rx) = super::channel::unbounded::<usize>();
        let total: usize = super::thread::scope(|scope| {
            for i in 0..8 {
                let tx = tx.clone();
                scope.spawn(move |_| tx.send(i).unwrap());
            }
            drop(tx);
            let mut sum = 0;
            while let Ok(v) = rx.recv() {
                sum += v;
            }
            sum
        })
        .unwrap();
        assert_eq!(total, (0..8).sum());
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let out = super::thread::scope(|scope| {
            let h = scope.spawn(|inner| {
                let h2 = inner.spawn(|_| 21);
                h2.join().unwrap() * 2
            });
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(out, 42);
    }
}
