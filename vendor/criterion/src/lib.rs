//! Criterion-shaped bench harness for offline builds.
//!
//! Implements the API surface the workspace's `harness = false` benches
//! use — groups, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `sample_size`, and the `criterion_group!`/`criterion_main!` macros.
//! Each benchmark runs its closure `sample_size` times and prints the
//! mean wall-clock time; there is no warm-up, outlier analysis, or
//! report directory.

use std::time::Instant;

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn benchmark_group(&mut self, name: impl std::fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.to_string(), self.sample_size, &mut f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(
            &format!("{}/{}", self.name, id.0),
            self.sample_size,
            &mut |b| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn from_parameter(p: impl std::fmt::Display) -> Self {
        BenchmarkId(p.to_string())
    }

    pub fn new(name: impl std::fmt::Display, p: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{p}"))
    }
}

pub struct Bencher {
    samples: usize,
    total: std::time::Duration,
    iters: u64,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(f());
            self.total += start.elapsed();
            self.iters += 1;
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, samples: usize, f: &mut F) {
    let mut b = Bencher {
        samples,
        total: std::time::Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    if b.iters > 0 {
        let mean = b.total / b.iters as u32;
        println!("bench {label:<50} {mean:>12.2?}/iter ({} iters)", b.iters);
    } else {
        println!("bench {label:<50} (no samples)");
    }
}

/// Re-export so generated code can use `criterion::black_box` too.
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
