//! parking_lot-shaped locks over std. `lock()` is infallible (poisoning
//! is cleared, matching parking_lot's no-poison semantics).

pub struct Mutex<T>(std::sync::Mutex<T>);

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

pub struct RwLock<T>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|p| p.into_inner())
    }

    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|p| p.into_inner())
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }
}
