//! Offline subset of `rand`: a deterministic `StdRng` plus the `Rng` /
//! `SeedableRng` trait surface this workspace calls.
//!
//! `StdRng` is xoshiro256++ seeded through splitmix64 — statistically
//! strong enough for the simulator's distribution sampling and fully
//! reproducible from a `u64` seed. Note the stream differs from upstream
//! rand's ChaCha-based `StdRng`; seeds produce different (but equally
//! deterministic) scenarios.

pub mod rngs {
    /// xoshiro256++ generator.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut state = seed;
        let s = [
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
        ];
        rngs::StdRng { s }
    }
}

/// Types producible uniformly from a generator via [`Rng::gen`].
pub trait Random {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Random for u64 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Random for bool {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange {
    type Output;
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for std::ops::Range<usize> {
    type Output = usize;
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> usize {
        assert!(self.start < self.end, "gen_range: empty range");
        let width = (self.end - self.start) as u64;
        self.start + (rng.next_u64() % width) as usize
    }
}

impl SampleRange for std::ops::Range<u64> {
    type Output = u64;
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> u64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + rng.next_u64() % (self.end - self.start)
    }
}

impl SampleRange for std::ops::Range<u32> {
    type Output = u32;
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> u32 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + (rng.next_u64() % (self.end - self.start) as u64) as u32
    }
}

impl SampleRange for std::ops::RangeInclusive<u64> {
    type Output = u64;
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> u64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        let width = hi.wrapping_sub(lo).wrapping_add(1);
        if width == 0 {
            // Full u64 domain.
            rng.next_u64()
        } else {
            lo + rng.next_u64() % width
        }
    }
}

pub trait Rng {
    fn next_u64(&mut self) -> u64;

    fn gen<T: Random>(&mut self) -> T
    where
        Self: Sized,
    {
        T::random(self)
    }

    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl Rng for rngs::StdRng {
    fn next_u64(&mut self) -> u64 {
        rngs::StdRng::next_u64(self)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_in_range_and_uniformish() {
        let mut r = StdRng::seed_from_u64(1);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..1_000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(5u64..=9);
            assert!((5..=9).contains(&w));
        }
    }
}
