//! JSON rendering/parsing over the vendored serde `Value` model.
//!
//! Supports exactly what the workspace uses: `to_string` and `from_str`.
//! Numbers parse to U64/I64 when integral and F64 otherwise; floats render
//! via `{}` formatting, which round-trips through Rust's shortest-repr
//! float printing.

use serde::{Deserialize, Serialize, Value};

#[derive(Debug)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&serde::ser::to_value(value), &mut out);
    Ok(out)
}

pub fn from_str<T: for<'de> Deserialize<'de>>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing data at byte {}", p.pos)));
    }
    serde::from_value(v).map_err(|e| Error(e.0))
}

// ---------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------

fn render(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                let s = x.to_string();
                out.push_str(&s);
                // Ensure floats stay floats on re-parse.
                if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => render_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_string(k, out);
                out.push(':');
                render(val, out);
            }
            out.push('}');
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let val = self.value()?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error("bad \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("bad \\u escape".into()))?;
                            // Surrogate pairs are not needed by our own
                            // writer (it only \u-escapes control chars).
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u codepoint".into()))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error(format!("bad escape at byte {}", self.pos))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid utf-8".into()))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error(format!("bad float {text:?}")))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<u64>()
                .map(|_| ())
                .and_then(|()| text.parse::<i64>().map(Value::I64))
                .or_else(|_| text.parse::<i64>().map(Value::I64))
                .map_err(|_| Error(format!("bad integer {text:?}")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error(format!("bad integer {text:?}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_value_shapes() {
        let v = Value::Map(vec![
            ("a".to_string(), Value::U64(7)),
            (
                "b".to_string(),
                Value::Seq(vec![Value::Bool(true), Value::Null]),
            ),
            ("c".to_string(), Value::Str("x\n\"y\"".to_string())),
            ("d".to_string(), Value::F64(1.5)),
            ("e".to_string(), Value::I64(-3)),
        ]);
        let mut s = String::new();
        render(&v, &mut s);
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        let back = p.value().unwrap();
        assert_eq!(format!("{v:?}"), format!("{back:?}"));
    }

    #[test]
    fn typed_round_trip() {
        let xs: Vec<(String, u64)> = vec![("r1".into(), 10), ("r2".into(), 20)];
        let s = to_string(&xs).unwrap();
        let back: Vec<(String, u64)> = from_str(&s).unwrap();
        assert_eq!(xs, back);
    }

    #[test]
    fn whole_floats_stay_floats() {
        let s = to_string(&vec![2.0f64]).unwrap();
        assert_eq!(s, "[2.0]");
        let back: Vec<f64> = from_str(&s).unwrap();
        assert_eq!(back, vec![2.0]);
    }
}
