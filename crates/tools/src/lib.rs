//! The period multicast diagnostic toolbox.
//!
//! Section II-C of the paper surveys the tools operators actually had:
//! `mrinfo` (a router's multicast interfaces and DVMRP neighbors),
//! `mwatch` (recursive `mrinfo` to map the whole MBone), `mtrace` (the
//! multicast path-trace facility) and Merit's `mrtree` (a session's
//! distribution tree via cascaded router queries). They are the
//! "special implementation in the routers" school of monitoring that
//! Mantra complements. This crate implements all four over the simulated
//! internetwork, with text output shaped like the originals.
//!
//! * [`mod@mrinfo`] — interface/neighbor enumeration,
//! * [`mod@mwatch`] — recursive topology discovery,
//! * [`mod@mtrace`] — receiver-to-source RPF path tracing with per-hop
//!   diagnostics and the real tool's failure modes,
//! * [`mod@mrtree`] — distribution-tree discovery for an `(S,G)`.

pub mod mrinfo;
pub mod mrtree;
pub mod mtrace;
pub mod mwatch;

pub use mrinfo::{mrinfo, MrinfoReport};
pub use mrtree::{mrtree, TreeNode};
pub use mtrace::{mtrace, MtraceHop, MtraceOutcome};
pub use mwatch::{mwatch, MwatchReport};
