//! `mrtree`: discover a session's distribution tree by cascaded router
//! queries, the way Merit's tool did over SNMP.
//!
//! Starting at the source's first-hop router, each neighbor is asked (in
//! effect) "is your RPF next hop for this source *me*?" — neighbors that
//! answer yes are children in the delivery tree, and the recursion
//! continues below them. The result is the truncated-broadcast /
//! shortest-path tree as the *routers believe it to be*, which under
//! inconsistent routing state can differ from the ideal tree — that gap
//! is precisely what made the tool useful.

use mantra_net::{GroupAddr, Ip, RouterId};
use mantra_protocols::mfib::SourceGroup;
use mantra_sim::Network;

/// One node of the discovered tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TreeNode {
    /// The router at this node.
    pub router: RouterId,
    /// Whether it has local members for the group (IGMP).
    pub has_members: bool,
    /// Whether it holds `(S,G)` forwarding state (monitored routers).
    pub has_state: bool,
    /// Children in the delivery tree.
    pub children: Vec<TreeNode>,
}

impl TreeNode {
    /// Number of routers in the subtree (including this node).
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(TreeNode::size).sum::<usize>()
    }

    /// Depth of the subtree.
    pub fn depth(&self) -> usize {
        1 + self.children.iter().map(TreeNode::depth).max().unwrap_or(0)
    }

    /// Routers with local members in the subtree.
    pub fn member_routers(&self) -> usize {
        usize::from(self.has_members)
            + self
                .children
                .iter()
                .map(TreeNode::member_routers)
                .sum::<usize>()
    }

    /// Indented rendering like the original tool's output.
    pub fn render(&self, net: &Network) -> String {
        let mut out = String::new();
        self.render_into(net, 0, &mut out);
        out
    }

    fn render_into(&self, net: &Network, depth: usize, out: &mut String) {
        use std::fmt::Write as _;
        let r = net.topo.router(self.router);
        let mut tags = Vec::new();
        if self.has_members {
            tags.push("members");
        }
        if self.has_state {
            tags.push("S,G");
        }
        let tag = if tags.is_empty() {
            String::new()
        } else {
            format!("  [{}]", tags.join(","))
        };
        let _ = writeln!(out, "{}{} ({}){}", "  ".repeat(depth), r.name, r.addr, tag);
        for c in &self.children {
            c.render_into(net, depth + 1, out);
        }
    }
}

/// Discovers the delivery tree for `(source, group)` rooted at the
/// source's first-hop router `root`.
pub fn mrtree(net: &Network, root: RouterId, source: Ip, group: GroupAddr) -> TreeNode {
    build(net, root, None, source, group)
}

fn build(
    net: &Network,
    router: RouterId,
    parent: Option<RouterId>,
    source: Ip,
    group: GroupAddr,
) -> TreeNode {
    let mut children = Vec::new();
    for (l, _local, remote) in net.topo.neighbors(router) {
        if Some(remote.router) == parent || !l.up {
            continue;
        }
        // Would the neighbor accept multicast from `source` via me?
        let accepts = net.dvmrp[remote.router.index()]
            .as_ref()
            .and_then(|e| e.rib.rpf(source))
            .map(|r| r.next_hop == Some(router))
            .unwrap_or(false)
            || net.mbgp[remote.router.index()]
                .as_ref()
                .and_then(|e| e.rpf(source))
                .map(|r| r.peer == Some(router))
                .unwrap_or(false);
        if accepts {
            children.push(build(net, remote.router, Some(router), source, group));
        }
    }
    let has_members = !net.igmp[router.index()].member_ifaces(group).is_empty();
    let has_state = net.mfib[router.index()]
        .get(&SourceGroup::sg(source, group))
        .is_some();
    TreeNode {
        router,
        has_members,
        has_state,
        children,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mantra_net::SimDuration;
    use mantra_sim::Scenario;

    fn warmed() -> mantra_sim::Scenario {
        let mut sc = Scenario::transition_snapshot(66, 0.0);
        sc.sim.advance_to(sc.sim.clock + SimDuration::hours(4));
        sc
    }

    #[test]
    fn tree_spans_the_dvmrp_region_from_a_source() {
        let sc = warmed();
        let (group, part) = sc
            .sim
            .sessions
            .iter()
            .flat_map(|s| s.participants.values().map(move |p| (s.group, p.clone())))
            .next()
            .expect("sessions exist");
        let tree = mrtree(&sc.sim.net, part.router, part.addr, group);
        // Converged DVMRP: the broadcast tree reaches every router.
        assert_eq!(
            tree.size(),
            sc.sim.net.topo.router_count(),
            "{}",
            tree.render(&sc.sim.net)
        );
        assert!(tree.depth() >= 3, "hub topology has at least 3 levels");
        // The source router is the root.
        assert_eq!(tree.router, part.router);
        // Members exist somewhere (at least the source's own site).
        assert!(tree.member_routers() >= 1);
    }

    #[test]
    fn severed_subtree_disappears() {
        let mut sc = warmed();
        let (group, part) = sc
            .sim
            .sessions
            .iter()
            .flat_map(|s| s.participants.values().map(move |p| (s.group, p.clone())))
            .next()
            .expect("sessions exist");
        let full = mrtree(&sc.sim.net, part.router, part.addr, group).size();
        // Cut one of FIXW's tunnels (not the source's own domain).
        let victim = sc
            .sim
            .net
            .topo
            .domains()
            .iter()
            .filter(|d| d.border.is_some() && d.name != "fixw-exchange")
            .find(|d| !d.routers.contains(&part.router))
            .unwrap();
        let link = sc
            .sim
            .net
            .topo
            .link_between(sc.fixw, victim.border.unwrap())
            .unwrap()
            .id;
        let t = sc.sim.clock;
        sc.sim.net.on_link_change(link, false, t);
        let cut = mrtree(&sc.sim.net, part.router, part.addr, group).size();
        assert!(
            cut < full,
            "severed domain drops out of the tree: {full} -> {cut}"
        );
    }

    #[test]
    fn render_marks_state_and_members() {
        let sc = warmed();
        // Use a pair with state at FIXW so the S,G tag shows.
        let key = sc.sim.net.mfib[sc.fixw.index()]
            .iter()
            .find(|e| !e.key.is_wildcard())
            .map(|e| e.key);
        if let Some(e) = key
            .and_then(|k| sc.sim.net.mfib[sc.fixw.index()].get(&k))
            .cloned()
            .as_ref()
        {
            // Root the tree at the true first-hop: walk mtrace backwards.
            let trace = crate::mtrace::mtrace(&sc.sim.net, sc.fixw, e.key.source, e.key.group);
            if let Some(last) = trace.hops.last() {
                let tree = mrtree(&sc.sim.net, last.router, e.key.source, e.key.group);
                let text = tree.render(&sc.sim.net);
                assert!(text.contains("[") || tree.size() > 0);
                assert!(text.contains("fixw"));
            }
        }
    }
}
