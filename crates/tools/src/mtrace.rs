//! `mtrace`: the multicast traceroute facility.
//!
//! The real facility (Fenner & Casner) walks the reverse path hop by hop:
//! starting at the receiver's router, each hop reports how it would reach
//! the source (RPF interface, metric, forwarding state for the group) and
//! the query is forwarded upstream until it reaches the source's first-hop
//! router — or fails in one of the characteristic ways: no route, a
//! routing loop, or too many hops. All of those outcomes are modelled,
//! because they are what made mtrace useful for debugging.

use mantra_net::{GroupAddr, Ip, RouterId};
use mantra_protocols::mfib::SourceGroup;
use mantra_sim::Network;

/// Per-hop report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MtraceHop {
    /// The reporting router.
    pub router: RouterId,
    /// Its address.
    pub addr: Ip,
    /// Which protocol provided the RPF route here.
    pub protocol: &'static str,
    /// Metric of the RPF route.
    pub metric: u32,
    /// Packets forwarded for the traced `(S,G)` where the router has
    /// state (monitored routers only; others report `None`, as real
    /// routers without cache entries reported zero counts).
    pub sg_packets: Option<u64>,
    /// True when the router holds forwarding state for the pair.
    pub has_state: bool,
}

/// How the trace ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MtraceOutcome {
    /// Reached the source's first-hop router.
    Reached,
    /// A hop had no RPF route toward the source.
    NoRoute {
        /// Where the trace died.
        at: RouterId,
    },
    /// The reverse path revisited a router — inconsistent routing state,
    /// one of the paper's observed pathologies.
    Loop {
        /// Where the loop closed.
        at: RouterId,
    },
    /// Exceeded the hop budget.
    MaxHops,
}

/// A complete trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Mtrace {
    /// Hops from the receiver toward the source (receiver side first).
    pub hops: Vec<MtraceHop>,
    /// Terminal outcome.
    pub outcome: MtraceOutcome,
}

impl Mtrace {
    /// Renders like the real tool: one indented line per hop.
    pub fn render(&self, source: Ip, group: GroupAddr) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "mtrace from receiver toward {source} for group {group}"
        );
        for (i, h) in self.hops.iter().enumerate() {
            let state = if h.has_state {
                match h.sg_packets {
                    Some(p) => format!("{p} pkts"),
                    None => "state".into(),
                }
            } else {
                "no state".into()
            };
            let _ = writeln!(
                out,
                " {:>2}  {} ({})  [{} metric {}]  {}",
                i, h.addr, h.router, h.protocol, h.metric, state
            );
        }
        let _ = writeln!(out, " outcome: {:?}", self.outcome);
        out
    }
}

/// Traces the reverse path from `receiver` toward `source` for `group`.
pub fn mtrace(net: &Network, receiver: RouterId, source: Ip, group: GroupAddr) -> Mtrace {
    let mut hops = Vec::new();
    let mut visited = vec![false; net.topo.router_count()];
    let mut cur = receiver;
    let max_hops = net.topo.router_count() + 2;
    for _ in 0..max_hops {
        if visited[cur.index()] {
            return Mtrace {
                hops,
                outcome: MtraceOutcome::Loop { at: cur },
            };
        }
        visited[cur.index()] = true;
        // RPF lookup at this hop: DVMRP first, MBGP for sparse borders.
        let (protocol, metric, next): (&'static str, u32, Option<RouterId>) = if let Some(route) =
            net.dvmrp[cur.index()]
                .as_ref()
                .and_then(|e| e.rib.rpf(source))
        {
            ("DVMRP", route.metric, route.next_hop)
        } else if let Some(route) = net.mbgp[cur.index()].as_ref().and_then(|e| e.rpf(source)) {
            ("MBGP", route.path_len() as u32, route.peer)
        } else if net.topo.router(cur).leaf_ifaces().any(|i| {
            mantra_net::Prefix::new(i.addr, 24)
                .map(|p| p.contains(source))
                .unwrap_or(false)
        }) {
            // Directly attached source subnet.
            ("LOCAL", 1, None)
        } else {
            hops.push(hop_report(net, cur, source, group, "NONE", 0));
            return Mtrace {
                hops,
                outcome: MtraceOutcome::NoRoute { at: cur },
            };
        };
        hops.push(hop_report(net, cur, source, group, protocol, metric));
        match next {
            None => {
                return Mtrace {
                    hops,
                    outcome: MtraceOutcome::Reached,
                }
            }
            Some(n) => cur = n,
        }
    }
    Mtrace {
        hops,
        outcome: MtraceOutcome::MaxHops,
    }
}

fn hop_report(
    net: &Network,
    router: RouterId,
    source: Ip,
    group: GroupAddr,
    protocol: &'static str,
    metric: u32,
) -> MtraceHop {
    let entry = net.mfib[router.index()].get(&SourceGroup::sg(source, group));
    MtraceHop {
        router,
        addr: net.topo.router(router).addr,
        protocol,
        metric,
        sg_packets: entry.map(|e| e.packets),
        has_state: entry.is_some(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mantra_net::{SimDuration, SimTime};
    use mantra_sim::Scenario;

    fn warmed() -> mantra_sim::Scenario {
        let mut sc = Scenario::transition_snapshot(55, 0.0);
        sc.sim.advance_to(sc.sim.clock + SimDuration::hours(4));
        sc
    }

    #[test]
    fn trace_reaches_a_leaf_source() {
        let sc = warmed();
        // Pick a real participant as the source.
        let p = sc
            .sim
            .sessions
            .iter()
            .flat_map(|s| s.participants.values().map(move |p| (s.group, p.clone())))
            .next()
            .expect("sessions exist");
        let (group, part) = p;
        // Trace from FIXW toward the participant.
        let trace = mtrace(&sc.sim.net, sc.fixw, part.addr, group);
        assert_eq!(trace.outcome, MtraceOutcome::Reached, "{trace:?}");
        assert!(!trace.hops.is_empty());
        assert_eq!(trace.hops.last().unwrap().router, part.router);
        let text = trace.render(part.addr, group);
        assert!(text.contains("outcome: Reached"));
    }

    #[test]
    fn no_route_terminates_the_trace() {
        let sc = warmed();
        let group = GroupAddr::from_index(0);
        // An address no one originates.
        let trace = mtrace(&sc.sim.net, sc.fixw, Ip::new(203, 0, 113, 7), group);
        assert!(matches!(trace.outcome, MtraceOutcome::NoRoute { .. }));
        assert_eq!(trace.hops.last().unwrap().protocol, "NONE");
    }

    #[test]
    fn monitored_hops_report_packet_counts() {
        let sc = warmed();
        // Find a pair with state at FIXW (monitored => counts available).
        let e = sc.sim.net.mfib[sc.fixw.index()]
            .iter()
            .find(|e| !e.key.is_wildcard() && e.packets > 0);
        if let Some(e) = e {
            let trace = mtrace(&sc.sim.net, sc.fixw, e.key.source, e.key.group);
            let first = &trace.hops[0];
            assert!(first.has_state);
            assert_eq!(first.sg_packets, Some(e.packets));
        }
    }

    #[test]
    fn broken_uplink_gives_no_route_mid_path() {
        let mut sc = warmed();
        let p = sc
            .sim
            .sessions
            .iter()
            .flat_map(|s| s.participants.values().map(move |p| (s.group, p.clone())))
            .find(|(_, p)| p.router != sc.fixw)
            .expect("remote participant");
        let (group, part) = p;
        // Sever the path and let the withdrawal propagate.
        let link = sc
            .sim
            .net
            .topo
            .link_between(
                sc.fixw,
                sc.sim
                    .net
                    .topo
                    .domain(sc.sim.net.topo.router(part.router).domain)
                    .border
                    .unwrap(),
            )
            .map(|l| l.id);
        if let Some(link) = link {
            let t = sc.sim.clock;
            sc.sim.net.on_link_change(link, false, t);
            let trace = mtrace(&sc.sim.net, sc.fixw, part.addr, group);
            assert!(
                !matches!(trace.outcome, MtraceOutcome::Reached),
                "severed path cannot be traced: {:?}",
                trace.outcome
            );
        }
    }

    #[test]
    fn render_is_stable() {
        let _ = SimTime::from_ymd(1998, 11, 1); // silence potential unused warnings in cfg(test)
        let sc = warmed();
        let group = GroupAddr::from_index(0);
        let a = mtrace(&sc.sim.net, sc.ucsb, Ip::new(203, 0, 113, 7), group);
        let b = mtrace(&sc.sim.net, sc.ucsb, Ip::new(203, 0, 113, 7), group);
        assert_eq!(a, b);
    }
}
