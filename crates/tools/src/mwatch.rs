//! `mwatch`: map the MBone by recursive `mrinfo`.
//!
//! The UCL tool started from one router and called `mrinfo` on every
//! neighbor it had not seen yet, building the tunnel topology. Its
//! blind spots are reproduced too: routers behind down links are never
//! discovered, and non-DVMRP routers terminate the recursion.

use std::collections::BTreeSet;

use mantra_net::RouterId;
use mantra_sim::Network;

use crate::mrinfo::{mrinfo, MrinfoReport};

/// The discovery result.
#[derive(Clone, Debug, Default)]
pub struct MwatchReport {
    /// Routers discovered, in visit order.
    pub routers: Vec<MrinfoReport>,
    /// Routers that were referenced but did not answer (non-multicast or
    /// filtered) — the real tool printed these as unreachable.
    pub unresponsive: Vec<RouterId>,
}

impl MwatchReport {
    /// Discovered router count.
    pub fn router_count(&self) -> usize {
        self.routers.len()
    }

    /// Total live tunnels among discovered routers (each counted once).
    pub fn tunnel_count(&self) -> usize {
        let discovered: BTreeSet<RouterId> = self.routers.iter().map(|r| r.router).collect();
        let mut n = 0;
        for r in &self.routers {
            for i in &r.ifaces {
                if i.flags.contains(&"tunnel") && !i.flags.contains(&"down") {
                    if let Some(peer) = i.neighbor {
                        // Count each tunnel from the lower-id side only.
                        if r.router < peer || !discovered.contains(&peer) {
                            n += 1;
                        }
                    }
                }
            }
        }
        n
    }

    /// A summary line like the tool's final report.
    pub fn summary(&self) -> String {
        format!(
            "mwatch: {} multicast routers, {} tunnels, {} unresponsive",
            self.router_count(),
            self.tunnel_count(),
            self.unresponsive.len()
        )
    }
}

/// Runs the recursive discovery from `start`.
pub fn mwatch(net: &Network, start: RouterId) -> MwatchReport {
    let mut report = MwatchReport::default();
    let mut seen: BTreeSet<RouterId> = BTreeSet::new();
    let mut queue = std::collections::VecDeque::from([start]);
    seen.insert(start);
    while let Some(router) = queue.pop_front() {
        match mrinfo(net, router) {
            None => report.unresponsive.push(router),
            Some(info) => {
                for n in info.live_neighbors() {
                    if seen.insert(n) {
                        queue.push_back(n);
                    }
                }
                report.routers.push(info);
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use mantra_net::SimTime;
    use mantra_protocols::dvmrp::DvmrpTimers;
    use mantra_topology::reference::{mbone_1998, transition_internetwork, TopologyConfig};

    fn t0() -> SimTime {
        SimTime::from_ymd(1998, 11, 1)
    }

    #[test]
    fn discovers_the_whole_mbone() {
        let r = mbone_1998(&TopologyConfig::default());
        let total = r.topo.router_count();
        let net = Network::new(r.topo, t0(), DvmrpTimers::default(), 0);
        let report = mwatch(&net, r.fixw);
        assert_eq!(report.router_count(), total);
        assert!(report.unresponsive.is_empty());
        // Every inter-router link in the 1998 topology is a tunnel.
        assert_eq!(report.tunnel_count(), net.topo.links().len());
        assert!(report.summary().contains("multicast routers"));
    }

    #[test]
    fn down_tunnels_hide_subtrees() {
        let r = mbone_1998(&TopologyConfig::default());
        let total = r.topo.router_count();
        let mut net = Network::new(r.topo, t0(), DvmrpTimers::default(), 0);
        let link = net.topo.link_between(r.fixw, r.ucsb).unwrap().id;
        net.topo.set_link_up(link, false);
        let report = mwatch(&net, r.fixw);
        // The UCSB domain (1 gateway + 3 internal routers) disappears.
        assert_eq!(report.router_count(), total - 4);
    }

    #[test]
    fn discovery_from_a_leaf_reaches_the_core() {
        let r = mbone_1998(&TopologyConfig::default());
        let net = Network::new(r.topo, t0(), DvmrpTimers::default(), 0);
        let from_leaf = mwatch(&net, r.ucsb);
        let from_core = mwatch(&net, r.fixw);
        assert_eq!(from_leaf.router_count(), from_core.router_count());
    }

    #[test]
    fn mixed_infrastructure_still_maps() {
        let cfg = TopologyConfig {
            native_fraction: 0.5,
            ..TopologyConfig::default()
        };
        let r = transition_internetwork(&cfg);
        let total = r.topo.router_count();
        let net = Network::new(r.topo, t0(), DvmrpTimers::default(), 0);
        let report = mwatch(&net, r.fixw);
        // PIM routers answer mrinfo too (IOS did), so everything maps.
        assert_eq!(report.router_count(), total);
    }
}
