//! `mrinfo`: ask a multicast router about its interfaces and neighbors.
//!
//! The real tool sends a DVMRP ASK_NEIGHBORS2 IGMP message and formats
//! the reply; routers answer with one line per vif listing the local and
//! remote addresses, metric, threshold and flags. `mwatch` and several
//! MBone mapping efforts were built on exactly this.

use mantra_net::{Ip, RouterId};
use mantra_sim::Network;
use mantra_topology::IfaceKind;

/// One interface line of an mrinfo reply.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MrinfoIface {
    /// Local interface address.
    pub local: Ip,
    /// Remote neighbor address (tunnels/physical) or the subnet itself
    /// (leaf interfaces).
    pub remote: Ip,
    /// DVMRP metric.
    pub metric: u32,
    /// TTL threshold.
    pub threshold: u8,
    /// `tunnel`, `querier`, `down`… flags as the real output shows them.
    pub flags: Vec<&'static str>,
    /// The neighboring router, when one is attached and reachable.
    pub neighbor: Option<RouterId>,
}

/// A parsed mrinfo reply.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MrinfoReport {
    /// The queried router.
    pub router: RouterId,
    /// Its primary address.
    pub addr: Ip,
    /// Version banner (mrouted version or IOS).
    pub version: String,
    /// Interface lines.
    pub ifaces: Vec<MrinfoIface>,
}

impl MrinfoReport {
    /// Neighbors with live adjacency (what mwatch recurses over).
    pub fn live_neighbors(&self) -> impl Iterator<Item = RouterId> + '_ {
        self.ifaces
            .iter()
            .filter(|i| !i.flags.contains(&"down"))
            .filter_map(|i| i.neighbor)
    }

    /// Renders in the real tool's shape.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} ({}) [version {}]:",
            self.addr, self.router, self.version
        );
        for i in &self.ifaces {
            let flags = if i.flags.is_empty() {
                String::new()
            } else {
                format!(" [{}]", i.flags.join("/"))
            };
            let _ = writeln!(
                out,
                "  {} -> {} ({}) [{}/{}]{}",
                i.local,
                i.remote,
                i.neighbor
                    .map(|n| n.to_string())
                    .unwrap_or_else(|| "local".into()),
                i.metric,
                i.threshold,
                flags,
            );
        }
        out
    }
}

/// Queries `router`. Returns `None` when the router does not speak DVMRP
/// (the real tool times out against non-multicast routers).
pub fn mrinfo(net: &Network, router: RouterId) -> Option<MrinfoReport> {
    let r = net.topo.router(router);
    if !r.suite.dvmrp && !r.suite.pim_dm && !r.suite.pim_sm {
        return None;
    }
    let version = if r.suite.dvmrp && !r.suite.pim_sm {
        "3.255,genid,prune,mtrace".to_string()
    } else {
        "11.2,prune,mtrace,snmp".to_string()
    };
    let mut ifaces = Vec::new();
    // Link-attached interfaces.
    for l in net.topo.links_of(router) {
        let local_ep = l.endpoint_of(router).expect("adjacency consistent");
        let remote_ep = l.other(router).expect("two endpoints");
        let local = r.ifaces[local_ep.iface.index()].addr;
        let remote = net.topo.router(remote_ep.router).ifaces[remote_ep.iface.index()].addr;
        let mut flags = Vec::new();
        if matches!(
            r.ifaces[local_ep.iface.index()].kind,
            IfaceKind::Tunnel { .. }
        ) {
            flags.push("tunnel");
        }
        if !l.up {
            flags.push("down");
        }
        ifaces.push(MrinfoIface {
            local,
            remote,
            metric: l.metric,
            threshold: r.ifaces[local_ep.iface.index()].threshold,
            flags,
            neighbor: if l.up { Some(remote_ep.router) } else { None },
        });
    }
    // Leaf subnets: the router is the querier.
    for i in r.leaf_ifaces() {
        ifaces.push(MrinfoIface {
            local: i.addr,
            remote: i.addr,
            metric: 1,
            threshold: i.threshold,
            flags: vec!["querier", "leaf"],
            neighbor: None,
        });
    }
    Some(MrinfoReport {
        router,
        addr: r.addr,
        version,
        ifaces,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mantra_net::SimTime;
    use mantra_protocols::dvmrp::DvmrpTimers;
    use mantra_topology::reference::{mbone_1998, TopologyConfig};

    fn net() -> (Network, RouterId, RouterId) {
        let r = mbone_1998(&TopologyConfig::default());
        let net = Network::new(
            r.topo,
            SimTime::from_ymd(1998, 11, 1),
            DvmrpTimers::default(),
            0,
        );
        (net, r.fixw, r.ucsb)
    }

    #[test]
    fn fixw_reports_all_tunnels() {
        let (net, fixw, _) = net();
        let report = mrinfo(&net, fixw).unwrap();
        let tunnels = report
            .ifaces
            .iter()
            .filter(|i| i.flags.contains(&"tunnel"))
            .count();
        assert_eq!(tunnels, 12, "one tunnel per member domain");
        assert_eq!(report.live_neighbors().count(), 12);
        let text = report.render();
        assert!(text.contains("[version 3.255"));
        assert!(text.contains("tunnel"));
    }

    #[test]
    fn leaf_interfaces_marked_querier() {
        let (net, _, ucsb) = net();
        let report = mrinfo(&net, ucsb).unwrap();
        assert!(report
            .ifaces
            .iter()
            .any(|i| i.flags.contains(&"querier") && i.flags.contains(&"leaf")));
    }

    #[test]
    fn down_links_flagged_and_excluded_from_neighbors() {
        let (mut net, fixw, ucsb) = net();
        let link = net.topo.link_between(fixw, ucsb).unwrap().id;
        net.topo.set_link_up(link, false);
        let report = mrinfo(&net, fixw).unwrap();
        let down = report
            .ifaces
            .iter()
            .filter(|i| i.flags.contains(&"down"))
            .count();
        assert_eq!(down, 1);
        assert_eq!(report.live_neighbors().count(), 11);
    }
}
