//! Web presentation: static HTML/SVG reports.
//!
//! The paper's results were "available via the web using interactive Java
//! applets". Applets are gone; the modern equivalent of Mantra's
//! presentation layer is a self-contained HTML report with inline SVG
//! line graphs — no external assets, viewable from a file. The
//! *operations* (sort, search, column algebra, zoom) live in
//! [`crate::output`]; this module renders their results.

use std::fmt::Write as _;

use mantra_net::SimTime;

use crate::monitor::Monitor;
use crate::output::{Graph, Table};

/// Escapes text for HTML.
fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

/// Renders a summary table as an HTML `<table>`.
pub fn table_html(t: &Table) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "<h3>{}</h3>", esc(&t.title));
    let _ = writeln!(
        out,
        "<table border=\"1\" cellspacing=\"0\" cellpadding=\"4\">"
    );
    let _ = write!(out, "<tr>");
    for c in &t.columns {
        let _ = write!(out, "<th>{}</th>", esc(c));
    }
    let _ = writeln!(out, "</tr>");
    for row in &t.rows {
        let _ = write!(out, "<tr>");
        for (i, _cell) in row.iter().enumerate() {
            let rendered = {
                // Reuse the table's own date-mode rendering through CSV
                // (cell rendering is private); CSV escaping is a no-op for
                // our numeric/time cells.
                let mut tmp = Table::new("", t.columns.iter().map(|s| s.as_str()).collect());
                tmp.date_mode = t.date_mode;
                tmp.push_row(row.clone());
                tmp.to_csv()
                    .lines()
                    .nth(1)
                    .and_then(|l| l.split(',').nth(i).map(str::to_string))
                    .unwrap_or_default()
            };
            let _ = write!(out, "<td>{}</td>", esc(&rendered));
        }
        let _ = writeln!(out, "</tr>");
    }
    let _ = writeln!(out, "</table>");
    if let Some(f) = &t.footer {
        let _ = writeln!(out, "<p><em>{}</em></p>", esc(f));
    }
    out
}

/// Renders a graph as inline SVG with axes, one polyline per series.
pub fn graph_svg(g: &Graph, width: u32, height: u32) -> String {
    const COLORS: [&str; 6] = [
        "#1f4e8c", "#b03a2e", "#1e8449", "#9a7d0a", "#6c3483", "#34495e",
    ];
    let (w, h) = (width.max(200), height.max(120));
    let (ml, mr, mt, mb) = (60.0, 10.0, 24.0, 36.0); // margins
    let plot_w = w as f64 - ml - mr;
    let plot_h = h as f64 - mt - mb;

    // Data ranges (reusing the graph's zoom window semantics).
    let windowed: Vec<_> = g
        .series
        .iter()
        .map(|s| match g.x_range {
            Some((a, b)) => s.window(a, b),
            None => s.clone(),
        })
        .collect();
    let xs: Vec<u64> = windowed
        .iter()
        .flat_map(|s| s.points.iter().map(|(t, _)| t.as_secs()))
        .collect();
    let x_lo = xs.iter().copied().min().unwrap_or(0);
    let x_hi = xs.iter().copied().max().unwrap_or(x_lo + 1).max(x_lo + 1);
    let (y_lo, y_hi) = g.y_range.unwrap_or_else(|| {
        let ys: Vec<f64> = windowed
            .iter()
            .flat_map(|s| s.points.iter().map(|(_, v)| *v))
            .collect();
        let lo = ys.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = ys.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        if lo.is_finite() && hi.is_finite() {
            (lo.min(0.0), hi.max(lo + 1.0))
        } else {
            (0.0, 1.0)
        }
    });

    let mut out = String::new();
    let _ = writeln!(
        out,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{w}\" height=\"{h}\" viewBox=\"0 0 {w} {h}\">"
    );
    let _ = writeln!(
        out,
        "<text x=\"{}\" y=\"16\" font-size=\"13\" font-family=\"sans-serif\">{}</text>",
        ml,
        esc(&g.title)
    );
    // Axes.
    let _ = writeln!(
        out,
        "<line x1=\"{ml}\" y1=\"{mt}\" x2=\"{ml}\" y2=\"{}\" stroke=\"#333\"/>",
        mt + plot_h
    );
    let _ = writeln!(
        out,
        "<line x1=\"{ml}\" y1=\"{}\" x2=\"{}\" y2=\"{}\" stroke=\"#333\"/>",
        mt + plot_h,
        ml + plot_w,
        mt + plot_h
    );
    // Y labels.
    for i in 0..=4 {
        let v = y_lo + (y_hi - y_lo) * f64::from(i) / 4.0;
        let y = mt + plot_h - plot_h * f64::from(i) / 4.0;
        let _ = writeln!(
            out,
            "<text x=\"4\" y=\"{:.0}\" font-size=\"10\" font-family=\"sans-serif\">{v:.1}</text>",
            y + 3.0
        );
    }
    // X labels (start/end).
    let _ = writeln!(
        out,
        "<text x=\"{ml}\" y=\"{}\" font-size=\"10\" font-family=\"sans-serif\">{}</text>",
        mt + plot_h + 14.0,
        SimTime(x_lo).iso8601()
    );
    let _ = writeln!(
        out,
        "<text x=\"{}\" y=\"{}\" font-size=\"10\" font-family=\"sans-serif\" text-anchor=\"end\">{}</text>",
        ml + plot_w,
        mt + plot_h + 14.0,
        SimTime(x_hi).iso8601()
    );
    // Series.
    for (si, s) in windowed.iter().enumerate() {
        let color = COLORS[si % COLORS.len()];
        let pts: Vec<String> = s
            .points
            .iter()
            .map(|(t, v)| {
                let x = ml + plot_w * (t.as_secs() - x_lo) as f64 / (x_hi - x_lo) as f64;
                let clamped = v.clamp(y_lo, y_hi);
                let y = mt + plot_h - plot_h * (clamped - y_lo) / (y_hi - y_lo).max(1e-12);
                format!("{x:.1},{y:.1}")
            })
            .collect();
        if !pts.is_empty() {
            let _ = writeln!(
                out,
                "<polyline fill=\"none\" stroke=\"{color}\" stroke-width=\"1.2\" points=\"{}\"/>",
                pts.join(" ")
            );
        }
        // Legend.
        let ly = mt + 14.0 * si as f64;
        let _ = writeln!(
            out,
            "<rect x=\"{}\" y=\"{:.0}\" width=\"10\" height=\"3\" fill=\"{color}\"/>",
            ml + plot_w - 120.0,
            ly
        );
        let _ = writeln!(
            out,
            "<text x=\"{}\" y=\"{:.0}\" font-size=\"10\" font-family=\"sans-serif\">{}</text>",
            ml + plot_w - 105.0,
            ly + 4.0,
            esc(&s.name)
        );
    }
    let _ = writeln!(out, "</svg>");
    out
}

/// Renders the topology-events strip: the churn timeline (joins, leaves,
/// link flaps, partitions) as a compact HTML list. Plain text markup, no
/// SVG — reports embed it alongside the graphs without disturbing their
/// chart count, and the daemon serves the same rows as JSON on
/// `/health`. Empty input renders an explicit "none" line so a calm run
/// is distinguishable from a report built without churn wiring.
pub fn topology_events_html(events: &[(SimTime, String)]) -> String {
    let mut out = String::new();
    if events.is_empty() {
        let _ = writeln!(out, "<p>Topology events: none.</p>");
        return out;
    }
    let _ = writeln!(out, "<p>Topology events ({}):</p><ol>", events.len());
    for (at, label) in events {
        let _ = writeln!(out, "<li>{} — {}</li>", at.iso8601(), esc(label));
    }
    let _ = writeln!(out, "</ol>");
    out
}

/// Renders a full monitoring report page for one router.
pub fn report_html(monitor: &Monitor, router: &str) -> String {
    report_html_with_events(monitor, router, &[])
}

/// [`report_html`] with a topology-events strip: `events` is the churn
/// timeline up to the report's moment (`Simulation::churn().strip(..)` in
/// scenarios, empty when monitoring a static world).
pub fn report_html_with_events(
    monitor: &Monitor,
    router: &str,
    events: &[(SimTime, String)],
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "<!DOCTYPE html>");
    let _ = writeln!(
        out,
        "<html><head><meta charset=\"utf-8\"><title>Mantra report: {}</title></head><body>",
        esc(router)
    );
    let _ = writeln!(out, "<h1>Mantra monitoring report — {}</h1>", esc(router));
    let _ = writeln!(
        out,
        "<p>{} cycles, {} capture failures, {} anomalies.</p>",
        monitor.cycles(),
        monitor.capture_failures(),
        monitor.anomalies.len()
    );
    let archives = monitor.pipeline().archives();
    let fallbacks: u64 = archives.iter().map(|a| a.fallbacks).sum();
    let write_errors: u64 = archives.iter().map(|a| a.write_errors).sum();
    let dropped: u64 = archives.iter().map(|a| a.dropped_records).sum();
    let replay_errors: u64 = archives.iter().map(|a| a.replay_errors).sum();
    if fallbacks > 0 || write_errors > 0 || dropped > 0 || replay_errors > 0 {
        let _ = writeln!(
            out,
            "<p><strong>Degraded persistence:</strong> {fallbacks} archive(s) fell back to \
             in-memory storage, {write_errors} write error(s), {dropped} dropped record(s) \
             and {replay_errors} replay error(s) were recorded — data on the affected \
             routers is incomplete or will not survive a restart.</p>"
        );
    }
    if monitor.parse_degraded() {
        let s = monitor.parse_last;
        let _ = writeln!(
            out,
            "<p><strong>Degraded parse:</strong> {} of {} row-like lines were malformed in \
             the last cycle (threshold {}%) — CLI output formats may have drifted; the \
             tables below undercount the affected routers.</p>",
            s.malformed,
            s.parsed + s.malformed,
            crate::monitor::DEGRADED_PARSE_PCT
        );
    }
    let fsyncs: u64 = archives.iter().map(|a| a.fsyncs).sum();
    let pending: u64 = archives.iter().map(|a| a.pending_appends).sum();
    let queued: u64 = archives.iter().map(|a| a.queue_depth).sum();
    let blocked_ms: f64 = archives.iter().map(|a| a.blocked_nanos).sum::<u64>() as f64 / 1e6;
    let _ = writeln!(
        out,
        "<p>Durability: {fsyncs} fsync(s) issued; {pending} append(s) pending since the \
         last fsync (lost on power failure), {queued} of them still queued for writer \
         threads; collection spent {blocked_ms:.1} ms blocked on full writer queues.</p>"
    );
    let cache = monitor.pipeline().query_cache();
    let _ = writeln!(
        out,
        "<p>Query cache: {} hit(s), {} miss(es), {} eviction(s); {} entr{} resident.</p>",
        cache.hits,
        cache.misses,
        cache.evictions,
        cache.entries,
        if cache.entries == 1 { "y" } else { "ies" }
    );
    let _ = writeln!(out, "{}", graph_svg(&monitor.usage_graph(router), 860, 300));
    let mut routes = Graph::new(format!("DVMRP routes at {router}"));
    routes.overlay(monitor.route_series(router, "dvmrp-routes", |r| r.dvmrp_reachable as f64));
    let _ = writeln!(out, "{}", graph_svg(&routes, 860, 240));
    let mut growth = Graph::new(format!("Archive growth at {router}"));
    let mut stored = crate::stats::Series::new("stored-kbytes");
    for (at, bytes) in monitor.archive_growth(router) {
        stored.push(*at, *bytes as f64 / 1024.0);
    }
    growth.overlay(stored);
    let _ = writeln!(out, "{}", graph_svg(&growth, 860, 200));
    let _ = writeln!(out, "{}", topology_events_html(events));
    let _ = writeln!(out, "{}", table_html(&monitor.busiest_sessions(router, 10)));
    let _ = writeln!(out, "{}", table_html(&monitor.top_senders(router, 10)));
    let _ = writeln!(out, "{}", table_html(&monitor.stage_table()));
    let _ = writeln!(out, "{}", table_html(&monitor.parse_table()));
    let _ = writeln!(out, "{}", table_html(&monitor.archive_table()));
    if let Some(lt) = monitor.longterm(router) {
        let _ = writeln!(
            out,
            "<p>route stability: {:.0}% of routes never flapped; median session lifetime {:.0} s over {} completed sessions.</p>",
            100.0 * lt.route_stability(),
            lt.session_lifetimes.median_secs(),
            lt.session_lifetimes.len()
        );
    }
    let _ = writeln!(out, "</body></html>");
    out
}

/// Renders the fleet-wide monitoring report: one page for the whole
/// sharded fleet, built from the aggregation tier's global outputs
/// rather than any single shard's view.
pub fn fleet_report_html(fleet: &crate::fleet::FleetMonitor, now: SimTime) -> String {
    fleet_report_html_with_events(fleet, now, &[])
}

/// [`fleet_report_html`] with a topology-events strip, like
/// [`report_html_with_events`].
pub fn fleet_report_html_with_events(
    fleet: &crate::fleet::FleetMonitor,
    now: SimTime,
    events: &[(SimTime, String)],
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "<!DOCTYPE html>");
    let _ = writeln!(
        out,
        "<html><head><meta charset=\"utf-8\"><title>Mantra fleet report</title></head><body>"
    );
    let _ = writeln!(
        out,
        "<h1>Mantra fleet report — {} routers, {} shards</h1>",
        fleet.cfg.routers.len(),
        fleet.shard_count()
    );
    let _ = writeln!(
        out,
        "<p>{} cycles, {} capture failures, {} anomalies fleet-wide.</p>",
        fleet.cycles(),
        fleet.capture_failures(),
        fleet.anomalies.len()
    );
    let _ = writeln!(out, "{}", graph_svg(&fleet.usage_graph(), 860, 300));
    let mut routes = Graph::new("Fleet DVMRP routes (global)");
    let mut reachable = crate::stats::Series::new("dvmrp-reachable");
    let mut total = crate::stats::Series::new("dvmrp-total");
    for r in fleet.route_history() {
        reachable.push(r.at, r.dvmrp_reachable as f64);
        total.push(r.at, r.dvmrp_total as f64);
    }
    routes.overlay(reachable).overlay(total);
    let _ = writeln!(out, "{}", graph_svg(&routes, 860, 240));
    if fleet.parse_degraded() {
        let s = fleet.parse_last();
        let _ = writeln!(
            out,
            "<p><strong>Degraded parse:</strong> {} of {} row-like lines were malformed in \
             the last fleet cycle (threshold {}%).</p>",
            s.malformed,
            s.parsed + s.malformed,
            crate::monitor::DEGRADED_PARSE_PCT
        );
    }
    let cache = fleet.query_cache_stats();
    let _ = writeln!(
        out,
        "<p>Query cache: {} hit(s), {} miss(es), {} eviction(s); {} entr{} resident.</p>",
        cache.hits,
        cache.misses,
        cache.evictions,
        cache.entries,
        if cache.entries == 1 { "y" } else { "ies" }
    );
    let _ = writeln!(out, "{}", topology_events_html(events));
    let _ = writeln!(out, "{}", table_html(&fleet.health(now)));
    let _ = writeln!(out, "{}", table_html(&fleet.parse_table()));
    let _ = writeln!(out, "{}", table_html(&fleet.archive_table()));
    let divergent = fleet.consistency_view();
    if divergent.is_empty() {
        let _ = writeln!(out, "<p>Route consistency: no divergent router pairs.</p>");
    } else {
        let _ = writeln!(
            out,
            "<p>Route consistency: {} divergent router pair(s):</p><ul>",
            divergent.len()
        );
        for (a, b, r) in &divergent {
            let _ = writeln!(
                out,
                "<li>{} vs {}: similarity {:.2} ({} shared, {} only-first, {} only-second)</li>",
                esc(a),
                esc(b),
                r.similarity(),
                r.shared,
                r.only_first,
                r.only_second
            );
        }
        let _ = writeln!(out, "</ul>");
    }
    let _ = writeln!(out, "</body></html>");
    out
}

/// Wraps [`report_html`] in an auto-refreshing live shell for the daemon:
/// a status strip at the top is repopulated every `refresh_secs` seconds
/// from the daemon's JSON endpoints (`/health`, `/parse`, `/anomalies`)
/// without reloading the page, and a meta-refresh fallback reloads the
/// whole report for clients with scripting disabled.
pub fn live_report_html(monitor: &Monitor, router: &str, refresh_secs: u64) -> String {
    live_wrap(&report_html(monitor, router), refresh_secs)
}

/// Injects the auto-refresh shell into any rendered report page: a status
/// strip fed by the daemon's JSON endpoints plus a whole-page meta-refresh
/// fallback. [`live_report_html`] is this over [`report_html`]; the daemon
/// applies it to [`fleet_report_html`] too.
pub fn live_wrap(body: &str, refresh_secs: u64) -> String {
    let secs = refresh_secs.max(1);
    let meta = format!(
        "<meta http-equiv=\"refresh\" content=\"{}\">",
        secs.saturating_mul(10)
    );
    let strip = format!(
        "<p id=\"live\">live: waiting for first poll (every {secs}s)\u{2026}</p>\
         <script>\n\
         async function mantraPoll() {{\n\
           try {{\n\
             const [h, p, a] = await Promise.all([\n\
               fetch('/health').then(r => r.json()),\n\
               fetch('/parse').then(r => r.json()),\n\
               fetch('/anomalies').then(r => r.json()),\n\
             ]);\n\
             document.getElementById('live').textContent =\n\
               'live: cycle ' + h.cycles + ', ' + h.routers.length + ' routers, ' +\n\
               p.totals.parsed + ' rows parsed, ' + a.anomalies.length + ' anomalies, ' +\n\
               'cache ' + h.query_cache.hits + ' hit(s)/' + h.query_cache.misses + ' miss(es)';\n\
           }} catch (e) {{\n\
             document.getElementById('live').textContent = 'live: poll failed (' + e + ')';\n\
           }}\n\
         }}\n\
         mantraPoll();\n\
         setInterval(mantraPoll, {secs} * 1000);\n\
         </script>"
    );
    body.replacen("</head>", &format!("{meta}</head>"), 1)
        .replacen("<body>", &format!("<body>{strip}"), 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::output::Cell;
    use crate::stats::Series;

    fn t(n: u64) -> SimTime {
        SimTime(SimTime::from_ymd(1998, 11, 1).as_secs() + n * 3600)
    }

    #[test]
    fn table_html_escapes_and_structures() {
        let mut table = Table::new("A <weird> & title", vec!["name", "v"]);
        table.push_row(vec![Cell::Text("x<y>&\"z\"".into()), Cell::Num(4.0)]);
        let html = table_html(&table);
        assert!(html.contains("&lt;weird&gt; &amp;"));
        assert!(html.contains("x&lt;y&gt;&amp;&quot;z&quot;"));
        assert_eq!(html.matches("<tr>").count(), html.matches("</tr>").count());
        assert_eq!(html.matches("<tr>").count(), 2);
    }

    #[test]
    fn table_html_renders_condensed_footer() {
        let mut table = Table::new("Big", vec!["name", "v"]);
        for i in 0..4 {
            table.push_row(vec![Cell::Text(format!("r{i}")), Cell::Num(i as f64)]);
        }
        table.condense(2, "v", "2 of 4 shown; totals: <6>");
        let html = table_html(&table);
        assert_eq!(html.matches("<tr>").count(), 3);
        assert!(html.contains("2 of 4 shown; totals: &lt;6&gt;"));
    }

    #[test]
    fn fleet_report_page_is_complete() {
        use crate::{FleetMonitor, MonitorConfig};
        let mut sc = mantra_sim::Scenario::transition_snapshot(41, 0.3);
        let mut fleet = FleetMonitor::new(
            MonitorConfig {
                routers: vec!["fixw".into(), "ucsb-gw".into()],
                interval: sc.sim.tick(),
                table_detail_limit: 1,
                ..MonitorConfig::default()
            },
            2,
        );
        for _ in 0..4 {
            let next = sc.sim.clock + fleet.cfg.interval;
            sc.sim.advance_to(next);
            fleet.run_cycle(&sc.sim, next);
        }
        let html = fleet_report_html(&fleet, sc.sim.clock);
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("</html>"));
        assert_eq!(html.matches("<svg").count(), 2);
        assert!(html.contains("2 routers, 2 shards"));
        assert!(html.contains("Fleet usage"));
        assert!(html.contains("Fleet DVMRP routes"));
        assert!(html.contains("Fleet collection health"));
        assert!(html.contains("Parse accounting (fleet)"));
        assert!(html.contains("Fleet archives"));
        // Live simulator output parses cleanly — no degraded-parse banner.
        assert!(!html.contains("Degraded parse"));
        assert!(html.contains("Route consistency:"));
        // detail limit 1 → both fleet tables condensed with footers.
        assert!(html.contains("of 2 routers shown"));
        assert!(html.contains("of 2 archives shown"));
    }

    #[test]
    fn graph_svg_has_polyline_per_series() {
        let mut g = Graph::new("usage & more");
        let mut a = Series::new("sessions");
        let mut b = Series::new("senders");
        for i in 0..24 {
            a.push(t(i), 100.0 + i as f64);
            b.push(t(i), 5.0);
        }
        g.overlay(a).overlay(b);
        let svg = graph_svg(&g, 600, 240);
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains("usage &amp; more"));
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // Points stay inside the viewbox.
        for seg in svg.split("points=\"").skip(1) {
            let pts = seg.split('"').next().unwrap();
            for p in pts.split(' ') {
                let (x, y) = p.split_once(',').unwrap();
                let x: f64 = x.parse().unwrap();
                let y: f64 = y.parse().unwrap();
                assert!((0.0..=600.0).contains(&x));
                assert!((0.0..=240.0).contains(&y));
            }
        }
    }

    #[test]
    fn empty_graph_svg_renders() {
        let g = Graph::new("empty");
        let svg = graph_svg(&g, 300, 150);
        assert!(svg.contains("</svg>"));
        assert_eq!(svg.matches("<polyline").count(), 0);
    }

    #[test]
    fn report_page_is_complete() {
        use crate::collector::SimAccess;
        use crate::{Monitor, MonitorConfig};
        let mut sc = mantra_sim::Scenario::transition_snapshot(41, 0.3);
        let mut monitor = Monitor::new(MonitorConfig {
            routers: vec!["fixw".into()],
            interval: sc.sim.tick(),
            ..MonitorConfig::default()
        });
        for _ in 0..8 {
            let next = sc.sim.clock + monitor.cfg.interval;
            sc.sim.advance_to(next);
            let mut access = SimAccess::new(&sc.sim);
            monitor.run_cycle(&mut access, next);
        }
        let html = report_html(&monitor, "fixw");
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("</html>"));
        assert!(html.matches("<svg").count() == 3);
        assert!(html.contains("Archive growth"));
        assert!(html.contains("Busiest sessions"));
        assert!(html.contains("route stability"));
        assert!(html.contains("Pipeline stages"));
        assert!(html.contains("Parse accounting"));
        assert!(html.contains("Archives"));
        assert!(html.contains("Durability:"));
        // Healthy archives raise no persistence warning, and live
        // simulator output parses cleanly.
        assert!(!html.contains("Degraded persistence"));
        assert!(!html.contains("Degraded parse"));
    }

    #[test]
    fn unwritable_archive_dir_surfaces_degraded_persistence() {
        use crate::archive::ArchiveSpec;
        use crate::collector::SimAccess;
        use crate::output::Cell;
        use crate::{Monitor, MonitorConfig};
        let mut sc = mantra_sim::Scenario::transition_snapshot(42, 0.2);
        // A path under a regular file can never become a directory, so
        // every router's archive falls back to the in-memory backend.
        let bogus = std::env::temp_dir().join(format!("mantra-web-flat-{}", std::process::id()));
        std::fs::write(&bogus, b"not a dir").unwrap();
        let mut monitor = Monitor::new(MonitorConfig {
            routers: vec!["fixw".into()],
            interval: sc.sim.tick(),
            archive: ArchiveSpec::File {
                dir: bogus.join("archives"),
                sync: crate::archive::SyncPolicy::default(),
            },
            ..MonitorConfig::default()
        });
        for _ in 0..3 {
            let next = sc.sim.clock + monitor.cfg.interval;
            sc.sim.advance_to(next);
            let mut access = SimAccess::new(&sc.sim);
            monitor.run_cycle(&mut access, next);
        }
        // Monitoring kept going on the fallback backend…
        assert_eq!(monitor.usage_history("fixw").len(), 3);
        assert_eq!(monitor.log("fixw").unwrap().replay().len(), 3);
        // …and the degradation is visible everywhere an operator looks:
        // the aggregated archive metrics,
        let archives = monitor.pipeline().archives();
        assert!(archives.iter().any(|a| a.fallbacks > 0), "{archives:?}");
        // the per-router health registry and table,
        assert!(monitor.router_health("fixw").unwrap().archive_degraded);
        let health = monitor.health(sc.sim.clock);
        let col = health.columns.iter().position(|c| c == "archive").unwrap();
        assert_eq!(health.rows[0][col], Cell::Text("degraded".into()));
        // the archive table,
        let table = monitor.archive_table();
        let col = table
            .columns
            .iter()
            .position(|c| c == "persistence")
            .unwrap();
        assert_eq!(table.rows[0][col], Cell::Text("degraded".into()));
        // and the HTML report.
        let html = report_html(&monitor, "fixw");
        assert!(html.contains("Degraded persistence"));
        std::fs::remove_file(&bogus).unwrap();
    }
}
