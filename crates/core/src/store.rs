//! Interned identifier tables for the hot monitoring path.
//!
//! Every cycle the monitor diffs snapshots, folds running averages and
//! counts distinct hosts/groups — all keyed by `String` router names,
//! `Ip`/`GroupAddr` pairs or `(LearnedFrom, Prefix)` route keys. Doing
//! that through `BTreeMap` rebuilds clones every key every cycle. The
//! [`TableStore`] maps each key to a dense `u32` id once; after that,
//! membership tests and per-key scratch state are array indexing.
//!
//! Ids are assigned in first-seen order and never change, so per-router
//! state can live in plain `Vec`s indexed by id. Set-style passes (diff,
//! distinct counting) use epoch-stamped scratch marks: [`Interner::begin_pass`]
//! invalidates all marks in O(1), so a pass never allocates or clears.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hash, Hasher};

use mantra_net::{GroupAddr, Ip, Prefix};

use crate::tables::LearnedFrom;

/// A fast multiply-rotate hasher (the FxHash construction) for the
/// interner maps. Keys here are short — a router name, a pair of `u32`
/// addresses, a route key — so per-call hashing overhead dominates; a
/// SipHash-class hasher costs more than the `BTreeMap` lookups interning
/// replaces. Not DoS-resistant, which is fine: keys come from router
/// tables this process parsed, not from untrusted map insertions.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(Self::SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while let Some(chunk) = bytes.first_chunk::<8>() {
            self.add(u64::from_le_bytes(*chunk));
            bytes = &bytes[8..];
        }
        if let Some(chunk) = bytes.first_chunk::<4>() {
            self.add(u64::from(u32::from_le_bytes(*chunk)));
            bytes = &bytes[4..];
        }
        for &b in bytes {
            self.add(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
}

type FxBuild = BuildHasherDefault<FxHasher>;

/// A `HashMap` hashed with [`FxHasher`] — the store's own hasher, exported
/// so per-router accumulators keyed by addresses can share it without
/// going through an interner.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuild>;

/// The [`FxHashMap`] companion set.
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuild>;

/// A map from keys to dense `u32` ids, with per-id scratch marks.
///
/// Two independent scratch channels are provided per pass: a value mark
/// ([`Interner::mark`]/[`Interner::marked`], carrying a `u32` payload such
/// as an index) and a presence flag ([`Interner::see`]/[`Interner::seen`]).
/// Both reset lazily when [`Interner::begin_pass`] bumps the epoch.
#[derive(Clone, Debug)]
pub struct Interner<K> {
    map: HashMap<K, u32, FxBuild>,
    keys: Vec<K>,
    epoch: u32,
    mark_epoch: Vec<u32>,
    mark_val: Vec<u32>,
    seen_epoch: Vec<u32>,
}

impl<K> Default for Interner<K> {
    fn default() -> Self {
        Interner {
            map: HashMap::default(),
            keys: Vec::new(),
            epoch: 0,
            mark_epoch: Vec::new(),
            mark_val: Vec::new(),
            seen_epoch: Vec::new(),
        }
    }
}

impl<K: Eq + Hash + Clone> Interner<K> {
    /// The id for `key`, interning it on first sight.
    pub fn intern(&mut self, key: &K) -> u32 {
        if let Some(&id) = self.map.get(key) {
            return id;
        }
        self.push_new(key.clone())
    }

    /// Inserts a key known to be absent and returns its fresh id.
    fn push_new(&mut self, key: K) -> u32 {
        let id = self.keys.len() as u32;
        self.map.insert(key.clone(), id);
        self.keys.push(key);
        self.mark_epoch.push(0);
        self.mark_val.push(0);
        self.seen_epoch.push(0);
        id
    }

    /// The id for `key` when already interned.
    pub fn get(&self, key: &K) -> Option<u32> {
        self.map.get(key).copied()
    }

    /// The key behind an id.
    pub fn resolve(&self, id: u32) -> &K {
        &self.keys[id as usize]
    }

    /// Every interned key, indexed by id — ids are assigned densely in
    /// first-seen order and never change, so `keys()[id]` is stable for
    /// the interner's lifetime. This is the export the archive dictionary
    /// builds on: persisting `keys()[watermark..]` after each batch of
    /// interns writes exactly the new entries, in id order.
    pub fn keys(&self) -> &[K] {
        &self.keys
    }

    /// Number of interned keys.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Starts a new scratch pass: all marks and presence flags from prior
    /// passes become invisible, in O(1).
    pub fn begin_pass(&mut self) {
        if self.epoch == u32::MAX {
            // Epoch wrapped (after ~4 billion passes): hard-reset the
            // stamps so stale marks cannot alias the new epoch.
            self.mark_epoch.iter_mut().for_each(|e| *e = 0);
            self.seen_epoch.iter_mut().for_each(|e| *e = 0);
            self.epoch = 0;
        }
        self.epoch += 1;
    }

    /// Marks `id` with a payload for the current pass.
    pub fn mark(&mut self, id: u32, val: u32) {
        self.mark_epoch[id as usize] = self.epoch;
        self.mark_val[id as usize] = val;
    }

    /// The payload marked on `id` this pass, if any.
    pub fn marked(&self, id: u32) -> Option<u32> {
        let i = id as usize;
        (self.epoch > 0 && self.mark_epoch[i] == self.epoch).then(|| self.mark_val[i])
    }

    /// Flags `id` as present this pass.
    pub fn see(&mut self, id: u32) {
        self.seen_epoch[id as usize] = self.epoch;
    }

    /// Whether `id` was flagged present this pass.
    pub fn seen(&self, id: u32) -> bool {
        self.epoch > 0 && self.seen_epoch[id as usize] == self.epoch
    }
}

impl Interner<String> {
    /// The id for a textual key, cloning into an owned `String` only on
    /// first sight. The lookup borrows the map's keys as `str`, so the
    /// hash is computed over exactly the bytes [`Interner::intern`] would
    /// hash — the two paths always agree on ids.
    pub fn intern_str(&mut self, key: &str) -> u32 {
        if let Some(&id) = self.map.get(key) {
            return id;
        }
        self.push_new(key.to_string())
    }

    /// The id for a key taken straight off a capture buffer. Valid UTF-8
    /// interns without any intermediate allocation; invalid bytes are
    /// lossily decoded first, matching what the string path would have
    /// stored for the same capture.
    pub fn intern_bytes(&mut self, key: &[u8]) -> u32 {
        match std::str::from_utf8(key) {
            Ok(s) => self.intern_str(s),
            Err(_) => self.intern_str(&String::from_utf8_lossy(key)),
        }
    }
}

/// The shared interning tables for one monitor: routers, participant
/// hosts, session groups, `(S,G)` pair keys, route keys and bare prefixes.
///
/// One store serves every stage of the pipeline, so a key pays its hash
/// exactly once per lifetime and thereafter costs an array index.
#[derive(Clone, Debug, Default)]
pub struct TableStore {
    /// Router names.
    pub routers: Interner<String>,
    /// Participant host addresses.
    pub hosts: Interner<Ip>,
    /// Session group addresses.
    pub groups: Interner<GroupAddr>,
    /// `(group, source)` pair keys.
    pub pairs: Interner<(GroupAddr, Ip)>,
    /// `(protocol, prefix)` route keys.
    pub routes: Interner<(LearnedFrom, Prefix)>,
    /// Bare prefixes, for cross-router consistency sets.
    pub prefixes: Interner<Prefix>,
}

impl TableStore {
    /// Interns a router name straight off capture bytes.
    pub fn intern_router_bytes(&mut self, name: &[u8]) -> u32 {
        self.routers.intern_bytes(name)
    }

    /// Interns a participant host from dotted-quad bytes, when they parse.
    pub fn intern_host_bytes(&mut self, addr: &[u8]) -> Option<u32> {
        let ip = Ip::parse_bytes(addr).ok()?;
        Some(self.hosts.intern(&ip))
    }

    /// Interns a session group from dotted-quad bytes, when class-D.
    pub fn intern_group_bytes(&mut self, group: &[u8]) -> Option<u32> {
        let g = GroupAddr::parse_bytes(group).ok()?;
        Some(self.groups.intern(&g))
    }

    /// Interns a `(group, source)` pair key from dotted-quad bytes.
    pub fn intern_pair_bytes(&mut self, group: &[u8], source: &[u8]) -> Option<u32> {
        let g = GroupAddr::parse_bytes(group).ok()?;
        let s = Ip::parse_bytes(source).ok()?;
        Some(self.pairs.intern(&(g, s)))
    }

    /// Interns a `(protocol, prefix)` route key from `net/len` bytes.
    pub fn intern_route_bytes(&mut self, learned: LearnedFrom, prefix: &[u8]) -> Option<u32> {
        let p = Prefix::parse_bytes(prefix).ok()?;
        Some(self.routes.intern(&(learned, p)))
    }

    /// Interns a bare prefix from `net/len` bytes.
    pub fn intern_prefix_bytes(&mut self, prefix: &[u8]) -> Option<u32> {
        let p = Prefix::parse_bytes(prefix).ok()?;
        Some(self.prefixes.intern(&p))
    }
}

/// Borrows `items` in strict key order: a cheap `Vec` of references when
/// the input is already sorted and duplicate-free (the common case —
/// snapshot parts come out of `BTreeMap` iteration), otherwise a stable
/// sort with last-occurrence-wins deduplication, matching what collecting
/// into a `BTreeMap` would have produced.
pub fn in_key_order<T, K: Ord>(items: &[T], key: impl Fn(&T) -> K) -> Vec<&T> {
    let sorted = items.windows(2).all(|w| key(&w[0]) < key(&w[1]));
    if sorted {
        return items.iter().collect();
    }
    let mut v: Vec<&T> = items.iter().collect();
    v.sort_by_key(|a| key(a));
    let mut out: Vec<&T> = Vec::with_capacity(v.len());
    for t in v {
        match out.last_mut() {
            Some(last) if key(last) == key(t) => *last = t,
            _ => out.push(t),
        }
    }
    out
}

/// [`in_key_order`] with a caller-supplied sortedness hint: when the
/// caller already knows the input is strictly key-sorted (snapshot parts
/// carry that knowledge from construction), the per-call verification
/// scan is skipped entirely. Debug builds cross-check the hint so a
/// wrongly-flagged section fails loudly instead of corrupting a diff.
pub fn in_key_order_cached<T, K: Ord>(
    items: &[T],
    key: impl Fn(&T) -> K,
    presorted: bool,
) -> Vec<&T> {
    if presorted {
        debug_assert!(
            items.windows(2).all(|w| key(&w[0]) < key(&w[1])),
            "presorted hint set on an unsorted or duplicated section"
        );
        return items.iter().collect();
    }
    in_key_order(items, key)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_stable_and_dense() {
        let mut i: Interner<String> = Interner::default();
        let a = i.intern(&"fixw".to_string());
        let b = i.intern(&"ucsb-gw".to_string());
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(i.intern(&"fixw".to_string()), a);
        assert_eq!(i.len(), 2);
        assert_eq!(i.resolve(b), "ucsb-gw");
        assert_eq!(i.get(&"ghost".to_string()), None);
    }

    #[test]
    fn byte_and_str_interning_are_hash_compatible() {
        let mut i: Interner<String> = Interner::default();
        let a = i.intern(&"fixw".to_string());
        assert_eq!(i.intern_str("fixw"), a, "str lookup hits the same slot");
        assert_eq!(i.intern_bytes(b"fixw"), a, "byte lookup hits the same slot");
        let b = i.intern_bytes(b"ucsb-gw");
        assert_eq!(
            i.intern(&"ucsb-gw".to_string()),
            b,
            "byte-first interning is visible to the owned path"
        );
        assert_eq!(i.len(), 2);
        // Invalid UTF-8 interns its lossy decoding, so replaying the same
        // bytes (or the decoded text) is stable.
        let c = i.intern_bytes(b"bad\xffname");
        assert_eq!(i.intern_bytes(b"bad\xffname"), c);
        assert_eq!(i.intern_str("bad\u{fffd}name"), c);
        assert_eq!(i.len(), 3);
    }

    #[test]
    fn table_store_interns_typed_keys_from_bytes() {
        use mantra_net::{GroupAddr, Ip, Prefix};

        let mut store = TableStore::default();
        let r = store.intern_router_bytes(b"fixw");
        assert_eq!(store.routers.intern_str("fixw"), r);

        let h = store.intern_host_bytes(b"10.1.2.3").unwrap();
        assert_eq!(store.hosts.intern(&Ip::new(10, 1, 2, 3)), h);
        assert_eq!(store.intern_host_bytes(b"10.1.2"), None);

        let g = store.intern_group_bytes(b"224.2.0.9").unwrap();
        let group: GroupAddr = "224.2.0.9".parse().unwrap();
        assert_eq!(store.groups.intern(&group), g);
        assert_eq!(store.intern_group_bytes(b"10.0.0.1"), None, "not class-D");

        let p = store.intern_pair_bytes(b"224.2.0.9", b"10.1.2.3").unwrap();
        assert_eq!(store.pairs.intern(&(group, Ip::new(10, 1, 2, 3))), p);

        let prefix: Prefix = "128.111.0.0/16".parse().unwrap();
        let rt = store
            .intern_route_bytes(crate::tables::LearnedFrom::Dvmrp, b"128.111.0.0/16")
            .unwrap();
        assert_eq!(
            store
                .routes
                .intern(&(crate::tables::LearnedFrom::Dvmrp, prefix)),
            rt
        );
        let px = store.intern_prefix_bytes(b"128.111.0.0/16").unwrap();
        assert_eq!(store.prefixes.intern(&prefix), px);
        assert_eq!(store.intern_prefix_bytes(b"128.111.0.0"), None);
    }

    #[test]
    fn marks_reset_per_pass_in_constant_time() {
        let mut i: Interner<u32> = Interner::default();
        let a = i.intern(&7);
        let b = i.intern(&9);
        assert_eq!(i.marked(a), None, "no pass started yet");
        i.begin_pass();
        i.mark(a, 42);
        i.see(b);
        assert_eq!(i.marked(a), Some(42));
        assert!(i.seen(b));
        assert!(!i.seen(a));
        i.begin_pass();
        assert_eq!(i.marked(a), None);
        assert!(!i.seen(b));
    }

    #[test]
    fn key_order_fast_path_and_fallback_agree() {
        let sorted = vec![1u32, 3, 5, 9];
        let refs = in_key_order(&sorted, |x| *x);
        assert_eq!(refs, sorted.iter().collect::<Vec<_>>());
        // Unsorted with a duplicate: last occurrence wins, output sorted.
        let messy = vec![5u32, 1, 5, 3];
        let refs: Vec<u32> = in_key_order(&messy, |x| *x).into_iter().copied().collect();
        assert_eq!(refs, vec![1, 3, 5]);
        // Last-wins is observable through identity: pair (key, payload).
        let messy = vec![(5u32, 'a'), (1, 'b'), (5, 'c')];
        let refs: Vec<(u32, char)> = in_key_order(&messy, |x| x.0).into_iter().copied().collect();
        assert_eq!(refs, vec![(1, 'b'), (5, 'c')]);
    }

    #[test]
    fn cached_key_order_trusts_the_hint_and_verifies_without_it() {
        let sorted = vec![1u32, 3, 5, 9];
        let refs = in_key_order_cached(&sorted, |x| *x, true);
        assert_eq!(refs, sorted.iter().collect::<Vec<_>>());
        // Unflagged input still goes through the verifying/sorting path.
        let messy = vec![5u32, 1, 3];
        let refs: Vec<u32> = in_key_order_cached(&messy, |x| *x, false)
            .into_iter()
            .copied()
            .collect();
        assert_eq!(refs, vec![1, 3, 5]);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "presorted hint")]
    fn wrong_presorted_hint_fails_loudly_in_debug_builds() {
        let messy = vec![5u32, 1];
        let _ = in_key_order_cached(&messy, |x| *x, true);
    }
}
