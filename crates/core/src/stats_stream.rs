//! Streaming statistics: the data processor's accumulators, fed by deltas.
//!
//! [`crate::stats`] computes every cycle's figures from a full snapshot —
//! O(table) per router per cycle. But the paper's whole storage design
//! rests on the observation that inter-cycle churn is small relative to
//! table size, and the delta logger already computes exactly that churn.
//! [`IncrementalStats`] folds each [`TableDelta`] into running usage and
//! route accumulators in O(delta): adding or removing a pair, session or
//! route adjusts integer counts, bandwidth sums and the density histogram,
//! and the per-cycle [`UsageStats`]/[`RouteStats`]/[`RouteChurn`] are
//! assembled from those integers.
//!
//! The full-snapshot constructors in [`crate::stats`] remain the
//! behavioural reference: every division here happens at assembly time on
//! the same integer sums the reference computes, so the results are
//! bit-identical, and `tests/prop_stream.rs` proves it over arbitrary
//! delta sequences (the byte-identical-fast-path pattern the interned
//! diff and the archive backends already follow).

use std::collections::BTreeMap;

use mantra_net::{BitRate, GroupAddr, Ip, Prefix, SimTime};

use crate::anomaly::AnomalyKind;
use crate::logger::TableDelta;
use crate::stats::{RouteChurn, RouteStats, UsageStats};
use crate::store::{FxHashMap, FxHashSet};
use crate::tables::{LearnedFrom, PairRow, RouteRow, Tables};

/// Per-pair accumulator state.
#[derive(Clone, Copy, Debug)]
struct PairAcc {
    bps: u64,
    forwarding: bool,
}

/// Per-group accumulator state. A group is *present* (a session exists at
/// the router) when it has at least one pair or is a member-only session.
#[derive(Clone, Copy, Debug, Default)]
struct GroupAcc {
    /// Pairs in the group, wildcard sources included.
    pair_count: u32,
    /// Pairs with a specified source — the session's density.
    density: u32,
    /// Pairs at or above the sender threshold.
    sender_pairs: u32,
    /// Sum of the sender pairs' bandwidth.
    sender_bps: u64,
    /// Group carried by an IGMP-membership-only session row.
    member_only: bool,
}

impl GroupAcc {
    fn present(&self) -> bool {
        self.pair_count > 0 || self.member_only
    }

    /// The group's unicast-equivalent bandwidth: every sender's stream
    /// delivered once per other participant (the paper's density × rate
    /// model, same arithmetic as the reference).
    fn unicast_bps(&self) -> u64 {
        self.sender_bps * u64::from(self.density).saturating_sub(1).max(1)
    }

    fn is_dead(&self) -> bool {
        self.pair_count == 0 && !self.member_only
    }
}

/// Per-source accumulator state.
#[derive(Clone, Copy, Debug, Default)]
struct SourceAcc {
    pair_count: u32,
    sender_pairs: u32,
}

/// Per-route accumulator state.
#[derive(Clone, Copy, Debug)]
struct RouteAcc {
    metric: u32,
    next_hop: Option<Ip>,
    reachable: bool,
    uptime_secs: Option<u64>,
}

/// What one [`IncrementalStats::fold`] observed: the route churn of the
/// delta and the gateway attribution of brand-new DVMRP routes, enough to
/// run the route-injection detector without revisiting the snapshots.
#[derive(Clone, Debug, Default)]
pub struct FoldChanges {
    /// Route churn of the folded delta (added/removed/changed/flips).
    pub churn: RouteChurn,
    /// New DVMRP routes per gateway, keyed as the injection detector
    /// counts them.
    new_dvmrp_gateways: BTreeMap<Option<Ip>, usize>,
}

impl FoldChanges {
    /// The route-injection check over this fold's changes — the same
    /// signature [`crate::anomaly::detect_injection`] looks for, computed
    /// from the delta instead of a snapshot pair.
    pub fn injection(&self, min_new: usize) -> Option<AnomalyKind> {
        if self.churn.added < min_new {
            return None;
        }
        let (gateway, count) = self
            .new_dvmrp_gateways
            .iter()
            .map(|(gw, c)| (*gw, *c))
            .max_by_key(|(_, c)| *c)
            .unwrap_or((None, 0));
        let share = count as f64 / self.churn.added.max(1) as f64;
        if share >= 0.8 {
            Some(AnomalyKind::RouteInjection {
                new_routes: self.churn.added,
                gateway,
                gateway_share: share,
            })
        } else {
            None
        }
    }
}

/// Running usage and route accumulators for one router's snapshot stream.
///
/// Seed once from a full snapshot ([`IncrementalStats::reseed`]), then
/// fold each cycle's [`TableDelta`] — the per-cycle cost is proportional
/// to what changed, not to table size. [`IncrementalStats::usage`] and
/// [`IncrementalStats::route_stats`] assemble the current cycle's
/// statistics from the integers, bit-identical to the full-snapshot
/// reference constructors.
#[derive(Clone, Debug, Default)]
pub struct IncrementalStats {
    threshold: BitRate,
    at: SimTime,
    seeded: bool,
    pairs: FxHashMap<(GroupAddr, Ip), PairAcc>,
    groups: FxHashMap<GroupAddr, GroupAcc>,
    sources: FxHashMap<Ip, SourceAcc>,
    routes: FxHashMap<(LearnedFrom, Prefix), RouteAcc>,
    sa: FxHashSet<(GroupAddr, Ip)>,
    /// Present groups per density value — the density distribution the
    /// single-member / ≤2 / top-6 % figures are read from.
    density_hist: BTreeMap<u32, usize>,
    sessions: usize,
    participants: usize,
    senders: usize,
    active_sessions: usize,
    total_density: u64,
    total_bw_bps: u64,
    unicast_bw_bps: u64,
    dvmrp_total: usize,
    dvmrp_reachable: usize,
    mbgp_total: usize,
    uptime_sum: u64,
    uptime_count: usize,
}

impl IncrementalStats {
    /// Whether the accumulators have been seeded from a snapshot yet.
    /// Folding a delta into an unseeded accumulator would silently track
    /// the wrong base, so callers must reseed first.
    pub fn is_seeded(&self) -> bool {
        self.seeded
    }

    /// Resets and rebuilds every accumulator from a full snapshot — the
    /// O(table) fallback for the first cycle (or any cycle whose delta is
    /// unavailable).
    pub fn reseed(&mut self, t: &Tables, threshold: BitRate) {
        *self = IncrementalStats {
            threshold,
            at: t.captured_at,
            seeded: true,
            ..IncrementalStats::default()
        };
        for p in t.pairs.values() {
            self.upsert_pair(p);
        }
        for s in t
            .sessions
            .values()
            .filter(|s| s.density == 0 && s.first_advertised == LearnedFrom::Igmp)
        {
            self.set_member_only(s.group, true);
        }
        for key in t.sa_cache.keys() {
            self.sa.insert(*key);
        }
        let mut discard = FoldChanges::default();
        for r in t.routes.values() {
            self.upsert_route(r, &mut discard);
        }
    }

    /// Folds one delta, advancing the accumulators from the previous
    /// snapshot's state to the next's in O(delta). Returns the changes a
    /// per-cycle analysis needs (route churn, injection attribution).
    pub fn fold(&mut self, d: &TableDelta) -> FoldChanges {
        debug_assert!(self.seeded, "fold before reseed");
        self.at = d.captured_at;
        let mut changes = FoldChanges::default();
        for p in &d.pair_upserts {
            self.upsert_pair(p);
        }
        for key in &d.pair_removals {
            self.remove_pair(*key);
        }
        for s in &d.session_upserts {
            self.set_member_only(s.group, true);
        }
        for g in &d.session_removals {
            self.set_member_only(*g, false);
        }
        for (g, s, _) in &d.sa_upserts {
            self.sa.insert((*g, *s));
        }
        for key in &d.sa_removals {
            self.sa.remove(key);
        }
        for r in &d.route_upserts {
            self.upsert_route(r, &mut changes);
        }
        for key in &d.route_removals {
            self.remove_route(*key, &mut changes);
        }
        changes
    }

    /// This router's contribution to a fleet's totals: the integer
    /// accumulators [`IncrementalStats::usage`]/[`IncrementalStats::route_stats`]
    /// assemble from, with no derived ratios — so shard partial sums
    /// compose exactly (see [`StatsTotals::absorb`]).
    pub fn totals(&self) -> StatsTotals {
        StatsTotals {
            at: self.at,
            density_hist: self.density_hist.clone(),
            sessions: self.sessions,
            participants: self.participants,
            senders: self.senders,
            active_sessions: self.active_sessions,
            total_density: self.total_density,
            total_bw_bps: self.total_bw_bps,
            unicast_bw_bps: self.unicast_bw_bps,
            sa_entries: self.sa.len(),
            dvmrp_total: self.dvmrp_total,
            dvmrp_reachable: self.dvmrp_reachable,
            mbgp_total: self.mbgp_total,
            uptime_sum: self.uptime_sum,
            uptime_count: self.uptime_count,
        }
    }

    /// Assembles the current cycle's usage statistics from the
    /// accumulators — the same integer sums [`UsageStats::from_tables`]
    /// computes, divided the same way, so the output is bit-identical.
    pub fn usage(&self) -> UsageStats {
        self.totals().usage()
    }

    /// Assembles the current cycle's route statistics, bit-identical to
    /// [`RouteStats::from_tables`].
    pub fn route_stats(&self) -> RouteStats {
        self.totals().route_stats()
    }

    // ------------------------------------------------------------------
    // Pair / session accumulation
    // ------------------------------------------------------------------

    fn upsert_pair(&mut self, row: &PairRow) {
        let key = (row.group, row.source);
        let acc = PairAcc {
            bps: row.current_bw.bps(),
            forwarding: row.forwarding,
        };
        let old = self.pairs.insert(key, acc);
        let old_sender = old.is_some_and(|p| BitRate(p.bps).is_sender(self.threshold));
        let new_sender = row.current_bw.is_sender(self.threshold);
        let wildcard = row.source.is_unspecified();

        let mut g = self.groups.get(&row.group).copied().unwrap_or_default();
        let g_old = g;
        if old.is_none() {
            g.pair_count += 1;
            if !wildcard {
                g.density += 1;
            }
        }
        if old_sender {
            g.sender_pairs -= 1;
            g.sender_bps -= old.expect("sender implies present").bps;
        }
        if new_sender {
            g.sender_pairs += 1;
            g.sender_bps += acc.bps;
        }
        self.store_group(row.group, g_old, g);

        let mut s = self.sources.get(&row.source).copied().unwrap_or_default();
        let s_old = s;
        if old.is_none() {
            s.pair_count += 1;
        }
        if old_sender {
            s.sender_pairs -= 1;
        }
        if new_sender {
            s.sender_pairs += 1;
        }
        self.store_source(row.source, s_old, s);

        self.total_bw_bps -= old
            .filter(|p| p.forwarding && !wildcard)
            .map_or(0, |p| p.bps);
        if acc.forwarding && !wildcard {
            self.total_bw_bps += acc.bps;
        }
    }

    fn remove_pair(&mut self, key: (GroupAddr, Ip)) {
        let Some(old) = self.pairs.remove(&key) else {
            return;
        };
        let (group, source) = key;
        let wildcard = source.is_unspecified();
        let was_sender = BitRate(old.bps).is_sender(self.threshold);

        let mut g = self.groups.get(&group).copied().unwrap_or_default();
        let g_old = g;
        g.pair_count -= 1;
        if !wildcard {
            g.density -= 1;
        }
        if was_sender {
            g.sender_pairs -= 1;
            g.sender_bps -= old.bps;
        }
        self.store_group(group, g_old, g);

        let mut s = self.sources.get(&source).copied().unwrap_or_default();
        let s_old = s;
        s.pair_count -= 1;
        if was_sender {
            s.sender_pairs -= 1;
        }
        self.store_source(source, s_old, s);

        if old.forwarding && !wildcard {
            self.total_bw_bps -= old.bps;
        }
    }

    fn set_member_only(&mut self, group: GroupAddr, member_only: bool) {
        let mut g = self.groups.get(&group).copied().unwrap_or_default();
        let g_old = g;
        g.member_only = member_only;
        self.store_group(group, g_old, g);
    }

    /// Writes a group's new accumulator back and re-derives every global
    /// the group contributes to, by retiring the old contribution and
    /// adding the new one.
    fn store_group(&mut self, group: GroupAddr, old: GroupAcc, new: GroupAcc) {
        if new.is_dead() {
            self.groups.remove(&group);
        } else {
            self.groups.insert(group, new);
        }
        if old.present() {
            self.sessions -= 1;
            self.total_density -= u64::from(old.density);
            self.unicast_bw_bps -= old.unicast_bps();
            if old.sender_pairs > 0 {
                self.active_sessions -= 1;
            }
            let slot = self
                .density_hist
                .get_mut(&old.density)
                .expect("present group counted in histogram");
            *slot -= 1;
            if *slot == 0 {
                self.density_hist.remove(&old.density);
            }
        }
        if new.present() {
            self.sessions += 1;
            self.total_density += u64::from(new.density);
            self.unicast_bw_bps += new.unicast_bps();
            if new.sender_pairs > 0 {
                self.active_sessions += 1;
            }
            *self.density_hist.entry(new.density).or_insert(0) += 1;
        }
    }

    fn store_source(&mut self, source: Ip, old: SourceAcc, new: SourceAcc) {
        if new.pair_count == 0 {
            self.sources.remove(&source);
        } else {
            self.sources.insert(source, new);
        }
        if !source.is_unspecified() {
            match (old.pair_count > 0, new.pair_count > 0) {
                (false, true) => self.participants += 1,
                (true, false) => self.participants -= 1,
                _ => {}
            }
        }
        match (old.sender_pairs > 0, new.sender_pairs > 0) {
            (false, true) => self.senders += 1,
            (true, false) => self.senders -= 1,
            _ => {}
        }
    }

    // ------------------------------------------------------------------
    // Route accumulation
    // ------------------------------------------------------------------

    fn upsert_route(&mut self, row: &RouteRow, changes: &mut FoldChanges) {
        let key = (row.learned_from, row.prefix);
        let acc = RouteAcc {
            metric: row.metric,
            next_hop: row.next_hop,
            reachable: row.reachable,
            uptime_secs: row.uptime.map(|u| u.as_secs()),
        };
        let old = self.routes.insert(key, acc);
        match old {
            None => {
                match row.learned_from {
                    LearnedFrom::Dvmrp => {
                        self.dvmrp_total += 1;
                        changes.churn.added += 1;
                        *changes.new_dvmrp_gateways.entry(row.next_hop).or_default() += 1;
                    }
                    LearnedFrom::Mbgp => self.mbgp_total += 1,
                    _ => {}
                }
                if row.learned_from == LearnedFrom::Dvmrp && row.reachable {
                    self.dvmrp_reachable += 1;
                }
            }
            Some(prev) => {
                if row.learned_from == LearnedFrom::Dvmrp {
                    if prev.metric != acc.metric || prev.next_hop != acc.next_hop {
                        changes.churn.changed += 1;
                    }
                    if prev.reachable != acc.reachable {
                        changes.churn.reachability_flips += 1;
                        if acc.reachable {
                            self.dvmrp_reachable += 1;
                        } else {
                            self.dvmrp_reachable -= 1;
                        }
                    }
                }
                if let Some(u) = prev.uptime_secs {
                    self.uptime_sum -= u;
                    self.uptime_count -= 1;
                }
            }
        }
        if let Some(u) = acc.uptime_secs {
            self.uptime_sum += u;
            self.uptime_count += 1;
        }
    }

    fn remove_route(&mut self, key: (LearnedFrom, Prefix), changes: &mut FoldChanges) {
        let Some(old) = self.routes.remove(&key) else {
            return;
        };
        match key.0 {
            LearnedFrom::Dvmrp => {
                self.dvmrp_total -= 1;
                if old.reachable {
                    self.dvmrp_reachable -= 1;
                }
                changes.churn.removed += 1;
            }
            LearnedFrom::Mbgp => self.mbgp_total -= 1,
            _ => {}
        }
        if let Some(u) = old.uptime_secs {
            self.uptime_sum -= u;
            self.uptime_count -= 1;
        }
    }
}

fn frac(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// The aggregation tier's unit of composition: pure integer accumulators
/// (counts, sums, the density histogram), no derived ratios.
///
/// Integer addition is associative and commutative, so summing per-router
/// totals per shard and then summing the shard partials gives *exactly*
/// the sum over all routers, regardless of partition — every division
/// (average density, bandwidth-saved multiple, uptime mean) happens once,
/// at assembly, on identical integers. That is the whole exactness
/// argument for sharded aggregation: a fleet's global
/// [`UsageStats`]/[`RouteStats`] are bit-identical to the single-monitor
/// computation because the f64 operations see the same operands in the
/// same order. The semantic is router-observations summed across the
/// fleet (a session with state at three routers contributes three times),
/// the same reading the per-router figures already have.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StatsTotals {
    at: SimTime,
    density_hist: BTreeMap<u32, usize>,
    sessions: usize,
    participants: usize,
    senders: usize,
    active_sessions: usize,
    total_density: u64,
    total_bw_bps: u64,
    unicast_bw_bps: u64,
    sa_entries: usize,
    dvmrp_total: usize,
    dvmrp_reachable: usize,
    mbgp_total: usize,
    uptime_sum: u64,
    uptime_count: usize,
}

impl StatsTotals {
    /// Adds another partial sum into this one. `at` takes the later of
    /// the two timestamps (within one cycle they are equal).
    pub fn absorb(&mut self, other: &StatsTotals) {
        self.at = self.at.max(other.at);
        for (&d, &n) in &other.density_hist {
            *self.density_hist.entry(d).or_insert(0) += n;
        }
        self.sessions += other.sessions;
        self.participants += other.participants;
        self.senders += other.senders;
        self.active_sessions += other.active_sessions;
        self.total_density += other.total_density;
        self.total_bw_bps += other.total_bw_bps;
        self.unicast_bw_bps += other.unicast_bw_bps;
        self.sa_entries += other.sa_entries;
        self.dvmrp_total += other.dvmrp_total;
        self.dvmrp_reachable += other.dvmrp_reachable;
        self.mbgp_total += other.mbgp_total;
        self.uptime_sum += other.uptime_sum;
        self.uptime_count += other.uptime_count;
    }

    /// Assembles usage statistics — every ratio divided here, once, from
    /// the summed integers.
    pub fn usage(&self) -> UsageStats {
        let sessions = self.sessions;
        let avg_density = if sessions == 0 {
            0.0
        } else {
            self.total_density as f64 / sessions as f64
        };
        let hist_count = |d: u32| self.density_hist.get(&d).copied().unwrap_or(0);
        let single = hist_count(1);
        let le2 = hist_count(0) + hist_count(1) + hist_count(2);
        let top6 = {
            let take = (sessions * 6).div_ceil(100).max(usize::from(sessions > 0));
            let mut left = take;
            let mut top = 0u64;
            for (&density, &n) in self.density_hist.iter().rev() {
                let k = n.min(left);
                top += u64::from(density) * k as u64;
                left -= k;
                if left == 0 {
                    break;
                }
            }
            if self.total_density == 0 {
                0.0
            } else {
                top as f64 / self.total_density as f64
            }
        };
        let saved = if self.total_bw_bps == 0 {
            0.0
        } else {
            self.unicast_bw_bps as f64 / self.total_bw_bps as f64
        };
        UsageStats {
            at: self.at,
            sessions,
            participants: self.participants,
            active_sessions: self.active_sessions,
            senders: self.senders,
            avg_density,
            single_member_fraction: frac(single, sessions),
            le2_density_fraction: frac(le2, sessions),
            top6pct_participant_share: top6,
            total_bandwidth: BitRate(self.total_bw_bps),
            bandwidth_saved_multiple: saved,
            sa_entries: self.sa_entries,
        }
    }

    /// Assembles route statistics from the summed integers.
    pub fn route_stats(&self) -> RouteStats {
        RouteStats {
            at: self.at,
            dvmrp_total: self.dvmrp_total,
            dvmrp_reachable: self.dvmrp_reachable,
            mbgp_routes: self.mbgp_total,
            mean_uptime_secs: if self.uptime_count == 0 {
                None
            } else {
                Some(self.uptime_sum as f64 / self.uptime_count as f64)
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logger::{diff, SnapshotParts};
    use crate::tables::SessionRow;
    use mantra_net::rate::SENDER_THRESHOLD;
    use mantra_net::SimDuration;

    fn t(n: u64) -> SimTime {
        SimTime(SimTime::from_ymd(1998, 11, 1).as_secs() + n * 900)
    }

    fn g(i: u32) -> GroupAddr {
        GroupAddr::from_index(i)
    }

    fn pair(t: &mut Tables, gi: u32, src: Ip, kbps: u64, forwarding: bool) {
        t.add_pair(PairRow {
            source: src,
            group: g(gi),
            current_bw: BitRate::from_kbps(kbps),
            avg_bw: BitRate::from_kbps(kbps),
            forwarding,
            learned_from: LearnedFrom::Dvmrp,
        });
    }

    fn route(t: &mut Tables, third: u8, reachable: bool, metric: u32, uptime: Option<u64>) {
        t.add_route(RouteRow {
            prefix: Prefix::new(Ip::new(128, third, 0, 0), 16).unwrap(),
            next_hop: Some(Ip::new(10, 0, 0, 1)),
            metric,
            uptime: uptime.map(SimDuration::secs),
            reachable,
            learned_from: LearnedFrom::Dvmrp,
        });
    }

    /// Folds the stream's consecutive deltas and checks every cycle's
    /// incremental output against the full-snapshot reference.
    fn check_stream(stream: &[Tables]) {
        let mut inc = IncrementalStats::default();
        inc.reseed(&stream[0], SENDER_THRESHOLD);
        assert_eq!(
            inc.usage(),
            UsageStats::from_tables(&stream[0], SENDER_THRESHOLD)
        );
        assert_eq!(inc.route_stats(), RouteStats::from_tables(&stream[0]));
        for w in stream.windows(2) {
            let d = diff(
                &SnapshotParts::from_tables(&w[0]),
                &SnapshotParts::from_tables(&w[1]),
            );
            let changes = inc.fold(&d);
            assert_eq!(
                inc.usage(),
                UsageStats::from_tables(&w[1], SENDER_THRESHOLD)
            );
            assert_eq!(inc.route_stats(), RouteStats::from_tables(&w[1]));
            assert_eq!(changes.churn, RouteChurn::between(&w[0], &w[1]));
        }
    }

    #[test]
    fn fold_tracks_pair_and_session_turnover() {
        let mut a = Tables::new("fixw", t(0));
        pair(&mut a, 0, Ip::new(1, 0, 0, 1), 64, true);
        pair(&mut a, 0, Ip::new(1, 0, 0, 2), 1, true);
        pair(&mut a, 1, Ip::new(2, 0, 0, 1), 1, true);
        pair(&mut a, 2, Ip::new(3, 0, 0, 1), 128, false);
        a.sa_cache.insert((g(0), Ip::new(1, 0, 0, 1)), t(0));

        // Cycle 1: the session-0 sender goes quiet, a wildcard sender
        // appears, session 1 disappears, the SA entry is re-learned.
        let mut b = Tables::new("fixw", t(1));
        pair(&mut b, 0, Ip::new(1, 0, 0, 1), 2, true);
        pair(&mut b, 0, Ip::new(1, 0, 0, 2), 1, true);
        pair(&mut b, 2, Ip::new(3, 0, 0, 1), 128, false);
        pair(&mut b, 3, Ip::UNSPECIFIED, 96, true);
        b.sa_cache.insert((g(0), Ip::new(1, 0, 0, 1)), t(1));

        // Cycle 2: everything gone.
        let c = Tables::new("fixw", t(2));
        check_stream(&[a, b, c]);
    }

    #[test]
    fn fold_tracks_member_only_sessions() {
        let mut a = Tables::new("fixw", t(0));
        a.sessions.insert(
            g(7),
            SessionRow {
                group: g(7),
                name: None,
                density: 0,
                bandwidth: BitRate::ZERO,
                first_advertised: LearnedFrom::Igmp,
                first_seen: t(0),
            },
        );
        // Cycle 1: the member-only session gains a real participant (no
        // longer member-only), and a new member-only session appears.
        let mut b = Tables::new("fixw", t(1));
        pair(&mut b, 7, Ip::new(9, 0, 0, 1), 8, true);
        b.sessions.get_mut(&g(7)).unwrap().first_advertised = LearnedFrom::Igmp;
        b.sessions.insert(
            g(8),
            SessionRow {
                group: g(8),
                name: None,
                density: 0,
                bandwidth: BitRate::ZERO,
                first_advertised: LearnedFrom::Igmp,
                first_seen: t(1),
            },
        );
        let c = Tables::new("fixw", t(2));
        check_stream(&[a, b, c]);
    }

    #[test]
    fn fold_tracks_route_churn_and_uptime() {
        let mut a = Tables::new("fixw", t(0));
        route(&mut a, 1, true, 3, Some(600));
        route(&mut a, 2, true, 3, None);
        route(&mut a, 3, false, 32, Some(60));
        let mut b = Tables::new("fixw", t(1));
        route(&mut b, 1, true, 5, Some(1_500)); // metric + uptime change
        route(&mut b, 3, true, 3, Some(120)); // flip + metric change
        route(&mut b, 4, true, 3, None); // added; 128.2 removed
        let c = Tables::new("fixw", t(2));
        check_stream(&[a, b, c]);
    }

    #[test]
    fn injection_matches_reference_detector() {
        let gw_leak = Ip::new(10, 9, 9, 9);
        let mut a = Tables::new("ucsb", t(0));
        for i in 0..50u32 {
            route(&mut a, (i % 200) as u8, true, 3, None);
        }
        let mut b = a.clone();
        b.captured_at = t(1);
        for i in 0..400u32 {
            b.add_route(RouteRow {
                prefix: Prefix::new(Ip(Ip::new(192, 0, 0, 0).0 + (i << 8)), 24).unwrap(),
                next_hop: Some(gw_leak),
                metric: 1,
                uptime: None,
                reachable: true,
                learned_from: LearnedFrom::Dvmrp,
            });
        }
        let mut inc = IncrementalStats::default();
        inc.reseed(&a, SENDER_THRESHOLD);
        let d = diff(
            &SnapshotParts::from_tables(&a),
            &SnapshotParts::from_tables(&b),
        );
        let changes = inc.fold(&d);
        for min_new in [100, 1_000] {
            assert_eq!(
                changes.injection(min_new),
                crate::anomaly::detect_injection(&a, &b, min_new),
            );
        }
        // A quiet delta never alerts.
        assert_eq!(inc.fold(&TableDelta::default()).injection(1), None);
    }

    #[test]
    fn reseed_resets_previous_state() {
        let mut a = Tables::new("fixw", t(0));
        pair(&mut a, 0, Ip::new(1, 0, 0, 1), 64, true);
        route(&mut a, 1, true, 3, None);
        let mut inc = IncrementalStats::default();
        assert!(!inc.is_seeded());
        inc.reseed(&a, SENDER_THRESHOLD);
        assert!(inc.is_seeded());
        let mut b = Tables::new("fixw", t(1));
        pair(&mut b, 5, Ip::new(2, 0, 0, 1), 8, true);
        inc.reseed(&b, SENDER_THRESHOLD);
        assert_eq!(inc.usage(), UsageStats::from_tables(&b, SENDER_THRESHOLD));
        assert_eq!(inc.route_stats(), RouteStats::from_tables(&b));
    }

    #[test]
    fn empty_tables_stay_all_zero() {
        let empty = Tables::new("fixw", t(0));
        let mut inc = IncrementalStats::default();
        inc.reseed(&empty, SENDER_THRESHOLD);
        let u = inc.usage();
        assert_eq!(u, UsageStats::from_tables(&empty, SENDER_THRESHOLD));
        assert_eq!(u.sessions, 0);
        assert_eq!(u.single_member_fraction, 0.0);
        assert_eq!(u.bandwidth_saved_multiple, 0.0);
        assert_eq!(inc.route_stats().mean_uptime_secs, None);
    }
}
