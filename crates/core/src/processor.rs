//! The router-table processor: raw captures → Mantra's local tables.
//!
//! Each parser auto-detects the dialect (mrouted debug dump vs IOS `show`
//! output) from the capture's header line, tolerates unknown lines (real
//! dumps contain decorations the period tools simply skipped), and
//! accounts what it skipped so collection health is observable.

use mantra_net::{BitRate, GroupAddr, Ip, Prefix, SimDuration, SimTime};
use mantra_router_cli::TableKind;

use crate::collector::Capture;
use crate::tables::{LearnedFrom, PairRow, RouteRow, Tables};

/// Per-capture parse accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ParseStats {
    /// Rows successfully mapped into local tables.
    pub parsed: usize,
    /// Lines that looked like rows but failed to parse.
    pub malformed: usize,
    /// Header/decoration lines skipped by design.
    pub skipped: usize,
    /// Captures rejected whole because the batch mixed routers — the
    /// snapshot would otherwise be silently stamped with the first
    /// capture's router and mislabel every other router's rows.
    pub rejected_mixed: usize,
}

impl ParseStats {
    /// Folds another capture batch's accounting into this one.
    pub fn merge(&mut self, other: ParseStats) {
        self.parsed += other.parsed;
        self.malformed += other.malformed;
        self.skipped += other.skipped;
        self.rejected_mixed += other.rejected_mixed;
    }
}

/// Processes a batch of captures (one collection cycle for one router)
/// into a table snapshot.
///
/// A batch spanning more than one router is rejected outright: the
/// resulting snapshot is empty and [`ParseStats::rejected_mixed`] counts
/// every capture in the batch, so the mislabelling is observable instead
/// of silent.
pub fn process(captures: &[Capture]) -> (Tables, ParseStats) {
    if let Some(first) = captures.first() {
        if captures.iter().any(|c| c.router != first.router) {
            return (
                Tables::default(),
                ParseStats {
                    rejected_mixed: captures.len(),
                    ..ParseStats::default()
                },
            );
        }
    }
    let mut tables = Tables::new(
        captures.first().map(|c| c.router.as_str()).unwrap_or(""),
        captures.first().map(|c| c.captured_at).unwrap_or_default(),
    );
    let mut stats = ParseStats::default();
    for cap in captures {
        let s = match cap.kind {
            TableKind::DvmrpRoutes => parse_dvmrp_routes(cap, &mut tables),
            TableKind::ForwardingCache => parse_forwarding(cap, &mut tables),
            TableKind::IgmpGroups => parse_igmp(cap, &mut tables),
            TableKind::MbgpRoutes => parse_mbgp(cap, &mut tables),
            TableKind::SaCache => parse_sa_cache(cap, &mut tables),
        };
        stats.merge(s);
    }
    (tables, stats)
}

/// Parses `hh:mm:ss` or `NdHHh` IOS uptimes.
fn parse_uptime(s: &str) -> Option<SimDuration> {
    if let Some((d, rest)) = s.split_once('d') {
        let days: u64 = d.parse().ok()?;
        let hours: u64 = rest.strip_suffix('h')?.parse().ok()?;
        return Some(SimDuration::days(days) + SimDuration::hours(hours));
    }
    let mut parts = s.split(':');
    let h: u64 = parts.next()?.parse().ok()?;
    let m: u64 = parts.next()?.parse().ok()?;
    let sec: u64 = parts.next()?.parse().ok()?;
    if parts.next().is_some() {
        return None;
    }
    Some(SimDuration::secs(h * 3_600 + m * 60 + sec))
}

// ---------------------------------------------------------------------
// DVMRP route tables
// ---------------------------------------------------------------------

fn parse_dvmrp_routes(cap: &Capture, tables: &mut Tables) -> ParseStats {
    let mut st = ParseStats::default();
    let ios = cap
        .lines
        .first()
        .is_some_and(|l| l.contains("DVMRP Routing Table -"));
    for line in &cap.lines {
        if line.starts_with("DVMRP Routing Table")
            || line.starts_with("Origin-Subnet")
            || line.starts_with('%')
            || line.starts_with("mrouted:")
        {
            st.skipped += 1;
            continue;
        }
        let parsed = if ios {
            parse_ios_dvmrp_row(line)
        } else {
            parse_mrouted_route_row(line)
        };
        match parsed {
            Some(row) => {
                tables.add_route(row);
                st.parsed += 1;
            }
            None => st.malformed += 1,
        }
    }
    st
}

/// `128.111.0.0/16 10.128.0.2 3 25 1 1*` or gateway `direct` / `--`.
fn parse_mrouted_route_row(line: &str) -> Option<RouteRow> {
    let mut f = line.split(' ');
    let prefix: Prefix = f.next()?.parse().ok()?;
    let gw = f.next()?;
    let metric: u32 = f.next()?.parse().ok()?;
    let (next_hop, reachable) = match gw {
        "direct" => (None, true),
        "--" => (None, false),
        other => (Some(other.parse().ok()?), true),
    };
    Some(RouteRow {
        prefix,
        next_hop,
        metric,
        uptime: None,
        reachable,
        learned_from: LearnedFrom::Dvmrp,
    })
}

/// `10.3.0.0/16 [1/3] via 10.128.0.6 uptime 04:23:00` or
/// `… directly connected uptime …` / `… unreachable uptime … H`.
fn parse_ios_dvmrp_row(line: &str) -> Option<RouteRow> {
    let mut f = line.split(' ');
    let prefix: Prefix = f.next()?.parse().ok()?;
    let bracket = f.next()?; // [ad/metric]
    let metric: u32 = bracket
        .strip_prefix('[')?
        .strip_suffix(']')?
        .split_once('/')?
        .1
        .parse()
        .ok()?;
    let kind = f.next()?;
    let (next_hop, reachable) = match kind {
        "via" => (Some(f.next()?.parse().ok()?), true),
        "directly" => {
            f.next()?; // "connected"
            (None, true)
        }
        "unreachable" => (None, false),
        _ => return None,
    };
    let mut uptime = None;
    let rest: Vec<&str> = f.collect();
    if let Some(pos) = rest.iter().position(|w| *w == "uptime") {
        uptime = rest.get(pos + 1).and_then(|u| parse_uptime(u));
    }
    Some(RouteRow {
        prefix,
        next_hop,
        metric,
        uptime,
        reachable,
        learned_from: LearnedFrom::Dvmrp,
    })
}

// ---------------------------------------------------------------------
// Forwarding caches
// ---------------------------------------------------------------------

fn parse_forwarding(cap: &Capture, tables: &mut Tables) -> ParseStats {
    let ios = cap
        .lines
        .first()
        .is_some_and(|l| l.starts_with("IP Multicast Statistics"));
    if ios {
        parse_ios_mroute(cap, tables)
    } else {
        parse_mrouted_cache(cap, tables)
    }
}

/// mrouted cache rows:
/// `1.2.3.4 224.2.0.5 150 4m 0 3.2k 1 2 3` (oifs) or trailing `P`.
fn parse_mrouted_cache(cap: &Capture, tables: &mut Tables) -> ParseStats {
    let mut st = ParseStats::default();
    for line in &cap.lines {
        if line.starts_with("Multicast Routing Cache")
            || line.starts_with("Origin")
            || line.starts_with("mrouted:")
        {
            st.skipped += 1;
            continue;
        }
        let row = (|| {
            let mut f = line.split(' ');
            let source: Ip = f.next()?.parse().ok()?;
            let group: GroupAddr = f.next()?.parse().ok()?;
            let _ctmr = f.next()?;
            let _age = f.next()?;
            let _ptmr = f.next()?;
            let rate_s = f.next()?;
            let kbps: f64 = rate_s.strip_suffix('k')?.parse().ok()?;
            let _ivif = f.next()?;
            let fw: Vec<&str> = f.collect();
            let forwarding = !(fw.is_empty() || fw == ["P"]);
            Some(PairRow {
                source,
                group,
                current_bw: BitRate::from_bps((kbps * 1_000.0) as u64),
                avg_bw: BitRate::from_bps((kbps * 1_000.0) as u64),
                forwarding,
                learned_from: LearnedFrom::Dvmrp,
            })
        })();
        match row {
            Some(r) => {
                tables.add_pair(r);
                st.parsed += 1;
            }
            None => st.malformed += 1,
        }
    }
    st
}

/// IOS `show ip mroute count` blocks: header pair line, interface line,
/// counter line.
fn parse_ios_mroute(cap: &Capture, tables: &mut Tables) -> ParseStats {
    let mut st = ParseStats::default();
    let mut pending: Option<(Ip, GroupAddr, bool, LearnedFrom)> = None;
    let mut pending_forwarding = true;
    for line in &cap.lines {
        if line.starts_with('(') {
            // `(1.2.3.4, 224.2.0.5), uptime 00:01:02, flags: SP`
            let row = (|| {
                let inner = line.strip_prefix('(')?;
                let (src_s, rest) = inner.split_once(',')?;
                let (grp_s, rest) = rest.trim_start().split_once(')')?;
                let source = if src_s == "*" {
                    Ip::UNSPECIFIED
                } else {
                    src_s.parse().ok()?
                };
                let group: GroupAddr = grp_s.parse().ok()?;
                let flags = rest.split("flags:").nth(1).unwrap_or("").trim();
                let learned = if flags.contains('M') {
                    LearnedFrom::Msdp
                } else if flags.contains('S') {
                    LearnedFrom::Pim
                } else {
                    LearnedFrom::Dvmrp
                };
                let pruned = flags.contains('P');
                Some((source, group, pruned, learned))
            })();
            match row {
                Some((s, g, pruned, learned)) => {
                    pending = Some((s, g, pruned, learned));
                    pending_forwarding = !pruned;
                    st.parsed += 1;
                }
                None => st.malformed += 1,
            }
        } else if line.starts_with("Incoming interface:") {
            if line.ends_with("Outgoing: Null") {
                pending_forwarding = false;
            }
            st.skipped += 1;
        } else if line.starts_with("Pkt count") {
            // `Pkt count 123, bytes 4567, rate 12 kbps`
            let Some((source, group, _pruned, learned)) = pending.take() else {
                st.malformed += 1;
                continue;
            };
            let kbps: u64 = line
                .split("rate ")
                .nth(1)
                .and_then(|r| r.split(' ').next())
                .and_then(|n| n.parse().ok())
                .unwrap_or(0);
            tables.add_pair(PairRow {
                source,
                group,
                current_bw: BitRate::from_kbps(kbps),
                avg_bw: BitRate::from_kbps(kbps),
                forwarding: pending_forwarding,
                learned_from: learned,
            });
            st.parsed += 1;
        } else {
            st.skipped += 1;
        }
    }
    st
}

// ---------------------------------------------------------------------
// IGMP, MBGP, MSDP
// ---------------------------------------------------------------------

fn parse_igmp(cap: &Capture, tables: &mut Tables) -> ParseStats {
    let mut st = ParseStats::default();
    for line in &cap.lines {
        // mrouted: `0 224.2.0.5 3 12s ago`; IOS: `224.2.0.5 Vif2 00:01:02 h3`.
        let mut fields = line.split(' ');
        let first = match fields.next() {
            Some(f) => f,
            None => continue,
        };
        let group: Option<GroupAddr> = if first.parse::<u32>().is_ok() {
            fields.next().and_then(|g| g.parse().ok())
        } else {
            first.parse().ok()
        };
        match group {
            Some(g) => {
                // Membership implies a session exists even with no (S,G)
                // state yet; record it without inventing participants.
                let at = cap.captured_at;
                tables
                    .sessions
                    .entry(g)
                    .or_insert_with(|| crate::tables::SessionRow {
                        group: g,
                        name: None,
                        density: 0,
                        bandwidth: BitRate::ZERO,
                        first_advertised: LearnedFrom::Igmp,
                        first_seen: at,
                    });
                st.parsed += 1;
            }
            None => st.skipped += 1,
        }
    }
    st
}

fn parse_mbgp(cap: &Capture, tables: &mut Tables) -> ParseStats {
    let mut st = ParseStats::default();
    for line in &cap.lines {
        let Some(rest) = line.strip_prefix("*> ") else {
            st.skipped += 1;
            continue;
        };
        let row = (|| {
            let mut f = rest.split(' ');
            let prefix: Prefix = f.next()?.parse().ok()?;
            let nh: Ip = f.next()?.parse().ok()?;
            let hops = f.filter(|w| *w != "i").count() as u32;
            Some(RouteRow {
                prefix,
                next_hop: if nh.is_unspecified() { None } else { Some(nh) },
                metric: hops,
                uptime: None,
                reachable: true,
                learned_from: LearnedFrom::Mbgp,
            })
        })();
        match row {
            Some(r) => {
                tables.add_route(r);
                st.parsed += 1;
            }
            None => st.malformed += 1,
        }
    }
    st
}

fn parse_sa_cache(cap: &Capture, tables: &mut Tables) -> ParseStats {
    let mut st = ParseStats::default();
    for line in &cap.lines {
        if !line.starts_with('(') {
            st.skipped += 1;
            continue;
        }
        let entry = (|| {
            let inner = line.strip_prefix('(')?;
            let (src_s, rest) = inner.split_once(',')?;
            let (grp_s, rest) = rest.trim_start().split_once(')')?;
            let source: Ip = src_s.parse().ok()?;
            let group: GroupAddr = grp_s.parse().ok()?;
            let learned = rest
                .split("learned ")
                .nth(1)
                .and_then(parse_uptime)
                .unwrap_or(SimDuration::ZERO);
            Some((group, source, learned))
        })();
        match entry {
            Some((g, s, ago)) => {
                let first = SimTime(cap.captured_at.as_secs().saturating_sub(ago.as_secs()));
                tables.sa_cache.insert((g, s), first);
                st.parsed += 1;
            }
            None => st.malformed += 1,
        }
    }
    st
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::preprocess;

    fn t0() -> SimTime {
        SimTime::from_ymd(1998, 11, 1)
    }

    fn cap(kind: TableKind, text: &str) -> Capture {
        preprocess("r", kind, text, t0())
    }

    #[test]
    fn uptime_parsing() {
        assert_eq!(parse_uptime("04:23:07"), Some(SimDuration::secs(15_787)));
        assert_eq!(
            parse_uptime("3d04h"),
            Some(SimDuration::days(3) + SimDuration::hours(4))
        );
        assert_eq!(parse_uptime("garbage"), None);
        assert_eq!(parse_uptime("1:2"), None);
    }

    #[test]
    fn mrouted_route_table() {
        let text = "DVMRP Routing Table (3 entries)\n Origin-Subnet      From-Gateway       Metric  Tmr  In-Vif  Out-Vifs\n 128.111.0.0/16   10.128.0.2     3   25  1  1*\n 10.5.0.0/24   direct   1   0   0  1*\n 10.9.0.0/24   --   32  140  1  1*\n";
        let (tables, st) = process(&[cap(TableKind::DvmrpRoutes, text)]);
        assert_eq!(st.parsed, 3);
        assert_eq!(st.malformed, 0);
        assert_eq!(tables.routes.len(), 3);
        assert_eq!(tables.reachable_dvmrp_routes(), 2);
        let r = &tables.routes[&(LearnedFrom::Dvmrp, "128.111.0.0/16".parse().unwrap())];
        assert_eq!(r.next_hop, Some(Ip::new(10, 128, 0, 2)));
        assert_eq!(r.metric, 3);
    }

    #[test]
    fn ios_dvmrp_table() {
        let text = "DVMRP Routing Table - 3 entries\n128.111.0.0/16 [1/3] via 10.128.0.6 uptime 04:23:00  \n10.5.0.0/24 [1/1] directly connected uptime 3d04h C\n10.9.0.0/24 [1/32] unreachable uptime 00:02:20 H\n";
        let (tables, st) = process(&[cap(TableKind::DvmrpRoutes, text)]);
        assert_eq!(st.parsed, 3, "{st:?}");
        assert_eq!(tables.reachable_dvmrp_routes(), 2);
        let r = &tables.routes[&(LearnedFrom::Dvmrp, "128.111.0.0/16".parse().unwrap())];
        assert_eq!(r.uptime, Some(SimDuration::secs(4 * 3600 + 23 * 60)));
    }

    #[test]
    fn mrouted_cache() {
        let text = "Multicast Routing Cache Table (2 entries)\n Origin Mcast-group CTmr Age Ptmr Rate IVif Forwvifs\n 128.111.5.2 224.2.0.1 150 4m 0 64.0k 1 2 3\n 128.111.5.3 224.2.0.2 150 9m 0 0.8k 1 P\n";
        let (tables, st) = process(&[cap(TableKind::ForwardingCache, text)]);
        assert_eq!(st.parsed, 2);
        assert_eq!(tables.pairs.len(), 2);
        let sg = ("224.2.0.1".parse().unwrap(), "128.111.5.2".parse().unwrap());
        assert_eq!(tables.pairs[&sg].current_bw, BitRate::from_kbps(64));
        assert!(tables.pairs[&sg].forwarding);
        let pruned = ("224.2.0.2".parse().unwrap(), "128.111.5.3".parse().unwrap());
        assert!(!tables.pairs[&pruned].forwarding);
        // Derived tables populated.
        assert_eq!(tables.participants.len(), 2);
        assert_eq!(tables.sessions.len(), 2);
    }

    #[test]
    fn ios_mroute_blocks() {
        let text = "IP Multicast Statistics\n2 routes using 304 bytes of memory\nFlags: D - Dense, S - Sparse, C - Connected, P - Pruned, M - MSDP created entry\n(128.111.5.2, 224.2.0.1), uptime 00:10:00, flags: S\n  Incoming interface: Vif1, Outgoing: Vif2, Vif3\n  Pkt count 1000, bytes 500000, rate 64 kbps\n(*, 224.2.0.2), uptime 01:00:00, flags: SP\n  Incoming interface: Vif1, Outgoing: Null\n  Pkt count 0, bytes 0, rate 0 kbps\n";
        let (tables, st) = process(&[cap(TableKind::ForwardingCache, text)]);
        assert_eq!(st.malformed, 0, "{st:?}");
        assert_eq!(tables.pairs.len(), 2);
        let sg = ("224.2.0.1".parse().unwrap(), "128.111.5.2".parse().unwrap());
        assert_eq!(tables.pairs[&sg].current_bw, BitRate::from_kbps(64));
        assert_eq!(tables.pairs[&sg].learned_from, LearnedFrom::Pim);
        let star = ("224.2.0.2".parse().unwrap(), Ip::UNSPECIFIED);
        assert!(!tables.pairs[&star].forwarding);
        // Wildcard rows don't fabricate participants.
        assert_eq!(tables.participants.len(), 1);
    }

    #[test]
    fn mbgp_table() {
        let text = "MBGP table version is 4, local router ID is 198.32.136.1\n   Network            Next Hop          Path\n*> 128.3.0.0/16 10.128.0.9 65002 65003 i\n*> 128.4.0.0/16 0.0.0.0  i\n";
        let (tables, st) = process(&[cap(TableKind::MbgpRoutes, text)]);
        assert_eq!(st.parsed, 2, "{st:?}");
        let r = &tables.routes[&(LearnedFrom::Mbgp, "128.3.0.0/16".parse().unwrap())];
        assert_eq!(r.metric, 2, "AS-path length as metric");
        let local = &tables.routes[&(LearnedFrom::Mbgp, "128.4.0.0/16".parse().unwrap())];
        assert_eq!(local.next_hop, None);
    }

    #[test]
    fn sa_cache_table() {
        let text = "MSDP Source-Active Cache - 2 entries\n(128.3.5.2, 224.2.0.9), RP 198.32.136.1, learned 00:05:00\n(128.4.5.2, 224.2.0.9), RP 198.32.136.9, learned 3d00h\n";
        let (tables, st) = process(&[cap(TableKind::SaCache, text)]);
        assert_eq!(st.parsed, 2, "{st:?}");
        assert_eq!(tables.sa_cache.len(), 2);
        let key = ("224.2.0.9".parse().unwrap(), "128.3.5.2".parse().unwrap());
        assert_eq!(tables.sa_cache[&key], SimTime(t0().as_secs() - 300));
        // SA entries do not fabricate pairs or participants.
        assert!(tables.pairs.is_empty());
        assert!(tables.participants.is_empty());
    }

    #[test]
    fn igmp_creates_sessions_without_participants() {
        let mrouted = "Virtual Interface Table, Groups (1)\n Vif Group Members Reported\n 0 224.2.0.7 3 12s ago\n";
        let (tables, st) = process(&[cap(TableKind::IgmpGroups, mrouted)]);
        assert!(st.parsed >= 1);
        assert!(tables.sessions.contains_key(&"224.2.0.7".parse().unwrap()));
        assert!(tables.participants.is_empty());
    }

    #[test]
    fn malformed_rows_are_counted_not_fatal() {
        let text = "DVMRP Routing Table (2 entries)\n totally bogus line here\n 128.111.0.0/16 10.128.0.2 3 25 1 1*\n";
        let (tables, st) = process(&[cap(TableKind::DvmrpRoutes, text)]);
        assert_eq!(st.parsed, 1);
        assert_eq!(st.malformed, 1);
        assert_eq!(tables.routes.len(), 1);
    }

    #[test]
    fn mixed_router_batches_are_rejected_not_mislabelled() {
        let a = preprocess(
            "fixw",
            TableKind::DvmrpRoutes,
            "DVMRP Routing Table (1 entries)\n 128.111.0.0/16 10.128.0.2 3 25 1 1*\n",
            t0(),
        );
        let b = preprocess(
            "ucsb-gw",
            TableKind::DvmrpRoutes,
            "DVMRP Routing Table (1 entries)\n 10.5.0.0/24 direct 1 0 0 1*\n",
            t0(),
        );
        let (tables, st) = process(&[a.clone(), b]);
        assert_eq!(st.rejected_mixed, 2);
        assert_eq!(st.parsed, 0);
        assert!(tables.routes.is_empty());
        assert!(tables.router.is_empty());
        // A single-router batch is unaffected.
        let (tables, st) = process(&[a]);
        assert_eq!(st.rejected_mixed, 0);
        assert_eq!(st.parsed, 1);
        assert_eq!(tables.router, "fixw");
    }

    #[test]
    fn error_responses_parse_to_empty() {
        let (tables, _) = process(&[
            cap(
                TableKind::MbgpRoutes,
                "mrouted: unknown command 'show ip mbgp'\n",
            ),
            cap(TableKind::SaCache, "%MSDP not enabled\n"),
        ]);
        assert!(tables.routes.is_empty());
        assert!(tables.sa_cache.is_empty());
    }
}
