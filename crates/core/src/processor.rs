//! The router-table processor: raw captures → Mantra's local tables.
//!
//! Each parser auto-detects the dialect (mrouted debug dump vs IOS `show`
//! output) from the capture's header line, tolerates unknown lines (real
//! dumps contain decorations the period tools simply skipped), and
//! accounts what it skipped so collection health is observable.
//!
//! The hot path parses `&[u8]` fields straight off the capture buffer
//! ([`Capture`] keeps lines as spans, not `String`s): field splitting
//! tolerates runs of spaces/tabs, and integers, addresses, prefixes and
//! uptimes decode directly from bytes. The previous string-materialising
//! parser is kept as [`reference`] and property-tested byte-identical
//! against this path (see `tests/prop_parse.rs`); the two stay in
//! lock-step because every anchor the parsers match on is pure ASCII, and
//! ASCII bytes can neither appear inside a multi-byte UTF-8 sequence nor
//! be introduced by lossy decoding.

use mantra_net::{BitRate, GroupAddr, Ip, Prefix, SimDuration, SimTime};
use mantra_router_cli::TableKind;

use crate::collector::Capture;
use crate::tables::{LearnedFrom, PairRow, RouteRow, Tables};

/// Per-table-kind parse accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KindStats {
    /// Rows successfully mapped into local tables.
    pub parsed: usize,
    /// Lines that looked like rows but failed to parse.
    pub malformed: usize,
    /// Header/decoration lines skipped by design.
    pub skipped: usize,
}

impl KindStats {
    /// Folds another accounting into this one.
    pub fn merge(&mut self, other: KindStats) {
        self.parsed += other.parsed;
        self.malformed += other.malformed;
        self.skipped += other.skipped;
    }
}

/// Per-capture parse accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ParseStats {
    /// Rows successfully mapped into local tables.
    pub parsed: usize,
    /// Lines that looked like rows but failed to parse.
    pub malformed: usize,
    /// Header/decoration lines skipped by design.
    pub skipped: usize,
    /// Captures rejected whole because the batch mixed routers — the
    /// snapshot would otherwise be silently stamped with the first
    /// capture's router and mislabel every other router's rows.
    pub rejected_mixed: usize,
    /// The same parsed/malformed/skipped accounting attributed per table
    /// kind, indexed by [`TableKind::index`].
    pub per_kind: [KindStats; TableKind::ALL.len()],
}

impl ParseStats {
    /// Folds another capture batch's accounting into this one.
    pub fn merge(&mut self, other: ParseStats) {
        self.parsed += other.parsed;
        self.malformed += other.malformed;
        self.skipped += other.skipped;
        self.rejected_mixed += other.rejected_mixed;
        for (mine, theirs) in self.per_kind.iter_mut().zip(other.per_kind) {
            mine.merge(theirs);
        }
    }

    /// The accounting attributed to one table kind.
    pub fn kind(&self, kind: TableKind) -> KindStats {
        self.per_kind[kind.index()]
    }

    /// Folds one capture's accounting in under its table kind.
    fn absorb_kind(&mut self, kind: TableKind, s: KindStats) {
        self.parsed += s.parsed;
        self.malformed += s.malformed;
        self.skipped += s.skipped;
        self.per_kind[kind.index()].merge(s);
    }
}

/// The shared batch skeleton: mixed-router rejection, snapshot stamping
/// and per-kind attribution are identical for both parser families.
fn process_with(
    captures: &[Capture],
    mut parse_one: impl FnMut(&Capture, &mut Tables) -> KindStats,
) -> (Tables, ParseStats) {
    if let Some(first) = captures.first() {
        if captures.iter().any(|c| c.router != first.router) {
            return (
                Tables::default(),
                ParseStats {
                    rejected_mixed: captures.len(),
                    ..ParseStats::default()
                },
            );
        }
    }
    let mut tables = Tables::new(
        captures.first().map(|c| c.router.as_str()).unwrap_or(""),
        captures.first().map(|c| c.captured_at).unwrap_or_default(),
    );
    let mut stats = ParseStats::default();
    for cap in captures {
        let s = parse_one(cap, &mut tables);
        stats.absorb_kind(cap.kind, s);
    }
    (tables, stats)
}

/// Processes a batch of captures (one collection cycle for one router)
/// into a table snapshot, parsing fields directly off the capture bytes.
///
/// A batch spanning more than one router is rejected outright: the
/// resulting snapshot is empty and [`ParseStats::rejected_mixed`] counts
/// every capture in the batch, so the mislabelling is observable instead
/// of silent.
pub fn process(captures: &[Capture]) -> (Tables, ParseStats) {
    process_with(captures, |cap, tables| match cap.kind {
        TableKind::DvmrpRoutes => parse_dvmrp_routes(cap, tables),
        TableKind::ForwardingCache => parse_forwarding(cap, tables),
        TableKind::IgmpGroups => parse_igmp(cap, tables),
        TableKind::MbgpRoutes => parse_mbgp(cap, tables),
        TableKind::SaCache => parse_sa_cache(cap, tables),
    })
}

// ---------------------------------------------------------------------
// Byte-slice parsing primitives
// ---------------------------------------------------------------------

/// Iterator over whitespace-separated fields of a line, tolerant of runs
/// of spaces and tabs — the byte twin of `str::split_ascii_whitespace`.
struct Fields<'a> {
    rest: &'a [u8],
}

impl<'a> Iterator for Fields<'a> {
    type Item = &'a [u8];

    fn next(&mut self) -> Option<&'a [u8]> {
        let start = self.rest.iter().position(|b| !b.is_ascii_whitespace())?;
        let rest = &self.rest[start..];
        let end = rest
            .iter()
            .position(u8::is_ascii_whitespace)
            .unwrap_or(rest.len());
        self.rest = &rest[end..];
        Some(&rest[..end])
    }
}

/// Splits a line into whitespace-run-separated fields.
fn fields(line: &[u8]) -> Fields<'_> {
    Fields { rest: line }
}

/// Trims ASCII whitespace from both ends.
fn trim(mut s: &[u8]) -> &[u8] {
    while let [first, rest @ ..] = s {
        if !first.is_ascii_whitespace() {
            break;
        }
        s = rest;
    }
    while let [rest @ .., last] = s {
        if !last.is_ascii_whitespace() {
            break;
        }
        s = rest;
    }
    s
}

/// First occurrence of `needle` in `hay` (`needle` must be non-empty).
fn find(hay: &[u8], needle: &[u8]) -> Option<usize> {
    hay.windows(needle.len()).position(|w| w == needle)
}

/// Decimal `u32` off bytes, mirroring `str::parse::<u32>`: an optional
/// leading `+`, then one or more ASCII digits, overflow rejected.
fn parse_u32(s: &[u8]) -> Option<u32> {
    let digits = s.strip_prefix(b"+").unwrap_or(s);
    if digits.is_empty() {
        return None;
    }
    let mut v: u32 = 0;
    for &b in digits {
        if !b.is_ascii_digit() {
            return None;
        }
        v = v.checked_mul(10)?.checked_add(u32::from(b - b'0'))?;
    }
    Some(v)
}

/// Decimal `u64` off bytes, mirroring `str::parse::<u64>`.
fn parse_u64(s: &[u8]) -> Option<u64> {
    let digits = s.strip_prefix(b"+").unwrap_or(s);
    if digits.is_empty() {
        return None;
    }
    let mut v: u64 = 0;
    for &b in digits {
        if !b.is_ascii_digit() {
            return None;
        }
        v = v.checked_mul(10)?.checked_add(u64::from(b - b'0'))?;
    }
    Some(v)
}

/// `f64` off bytes. Floats are rare (one mrouted rate column), so this
/// validates UTF-8 in place and defers to `str::parse` — still zero-copy,
/// and exactly the grammar the reference parser accepts.
fn parse_f64(s: &[u8]) -> Option<f64> {
    std::str::from_utf8(s).ok()?.parse().ok()
}

/// Parses `hh:mm:ss` or `NdHHh` IOS uptimes off bytes; the byte twin of
/// [`reference::parse_uptime`].
fn parse_uptime_bytes(s: &[u8]) -> Option<SimDuration> {
    if let Some(d) = s.iter().position(|&b| b == b'd') {
        let days = parse_u64(&s[..d])?;
        let hours = parse_u64(s[d + 1..].strip_suffix(b"h")?)?;
        return Some(SimDuration::days(days) + SimDuration::hours(hours));
    }
    let mut parts = s.split(|&b| b == b':');
    let h = parse_u64(parts.next()?)?;
    let m = parse_u64(parts.next()?)?;
    let sec = parse_u64(parts.next()?)?;
    if parts.next().is_some() {
        return None;
    }
    Some(SimDuration::secs(h * 3_600 + m * 60 + sec))
}

/// Splits `(src, grp)…` into trimmed source and group texts plus the
/// remainder after the closing parenthesis.
fn split_pair_head(line: &[u8]) -> Option<(&[u8], &[u8], &[u8])> {
    let inner = line.strip_prefix(b"(")?;
    let comma = inner.iter().position(|&b| b == b',')?;
    let src = trim(&inner[..comma]);
    let rest = &inner[comma + 1..];
    let paren = rest.iter().position(|&b| b == b')')?;
    let grp = trim(&rest[..paren]);
    Some((src, grp, &rest[paren + 1..]))
}

// ---------------------------------------------------------------------
// DVMRP route tables
// ---------------------------------------------------------------------

fn parse_dvmrp_routes(cap: &Capture, tables: &mut Tables) -> KindStats {
    let mut st = KindStats::default();
    let ios = cap.line_count() > 0 && find(cap.line(0), b"DVMRP Routing Table -").is_some();
    for line in cap.lines() {
        if line.starts_with(b"DVMRP Routing Table")
            || line.starts_with(b"Origin-Subnet")
            || line.starts_with(b"%")
            || line.starts_with(b"mrouted:")
        {
            st.skipped += 1;
            continue;
        }
        let parsed = if ios {
            parse_ios_dvmrp_row(line)
        } else {
            parse_mrouted_route_row(line)
        };
        match parsed {
            Some(row) => {
                tables.add_route(row);
                st.parsed += 1;
            }
            None => st.malformed += 1,
        }
    }
    st
}

/// `128.111.0.0/16 10.128.0.2 3 25 1 1*` or gateway `direct` / `--`.
fn parse_mrouted_route_row(line: &[u8]) -> Option<RouteRow> {
    let mut f = fields(line);
    let prefix = Prefix::parse_bytes(f.next()?).ok()?;
    let gw = f.next()?;
    let metric = parse_u32(f.next()?)?;
    let (next_hop, reachable) = match gw {
        b"direct" => (None, true),
        b"--" => (None, false),
        other => (Some(Ip::parse_bytes(other).ok()?), true),
    };
    Some(RouteRow {
        prefix,
        next_hop,
        metric,
        uptime: None,
        reachable,
        learned_from: LearnedFrom::Dvmrp,
    })
}

/// `10.3.0.0/16 [1/3] via 10.128.0.6 uptime 04:23:00` or
/// `… directly connected uptime …` / `… unreachable uptime … H`.
fn parse_ios_dvmrp_row(line: &[u8]) -> Option<RouteRow> {
    let mut f = fields(line);
    let prefix = Prefix::parse_bytes(f.next()?).ok()?;
    let bracket = f.next()?; // [ad/metric]
    let ad_metric = bracket.strip_prefix(b"[")?.strip_suffix(b"]")?;
    let slash = ad_metric.iter().position(|&b| b == b'/')?;
    let metric = parse_u32(&ad_metric[slash + 1..])?;
    let kind = f.next()?;
    let (next_hop, reachable) = match kind {
        b"via" => (Some(Ip::parse_bytes(f.next()?).ok()?), true),
        b"directly" => {
            f.next()?; // "connected"
            (None, true)
        }
        b"unreachable" => (None, false),
        _ => return None,
    };
    let mut uptime = None;
    while let Some(w) = f.next() {
        if w == b"uptime" {
            uptime = f.next().and_then(parse_uptime_bytes);
            break;
        }
    }
    Some(RouteRow {
        prefix,
        next_hop,
        metric,
        uptime,
        reachable,
        learned_from: LearnedFrom::Dvmrp,
    })
}

// ---------------------------------------------------------------------
// Forwarding caches
// ---------------------------------------------------------------------

fn parse_forwarding(cap: &Capture, tables: &mut Tables) -> KindStats {
    let ios = cap.line_count() > 0 && cap.line(0).starts_with(b"IP Multicast Statistics");
    if ios {
        parse_ios_mroute(cap, tables)
    } else {
        parse_mrouted_cache(cap, tables)
    }
}

/// mrouted cache rows:
/// `1.2.3.4 224.2.0.5 150 4m 0 3.2k 1 2 3` (oifs) or trailing `P`.
fn parse_mrouted_cache(cap: &Capture, tables: &mut Tables) -> KindStats {
    let mut st = KindStats::default();
    for line in cap.lines() {
        if line.starts_with(b"Multicast Routing Cache")
            || line.starts_with(b"Origin")
            || line.starts_with(b"mrouted:")
        {
            st.skipped += 1;
            continue;
        }
        let row = (|| {
            let mut f = fields(line);
            let source = Ip::parse_bytes(f.next()?).ok()?;
            let group = GroupAddr::parse_bytes(f.next()?).ok()?;
            let _ctmr = f.next()?;
            let _age = f.next()?;
            let _ptmr = f.next()?;
            let kbps = parse_f64(f.next()?.strip_suffix(b"k")?)?;
            let _ivif = f.next()?;
            // Remaining fields are the outgoing vif list; a bare `P` (or
            // nothing) marks a pruned entry.
            let fw0 = f.next();
            let forwarding = match fw0 {
                None => false,
                Some(b"P") => f.next().is_some(),
                Some(_) => true,
            };
            Some(PairRow {
                source,
                group,
                current_bw: BitRate::from_bps((kbps * 1_000.0) as u64),
                avg_bw: BitRate::from_bps((kbps * 1_000.0) as u64),
                forwarding,
                learned_from: LearnedFrom::Dvmrp,
            })
        })();
        match row {
            Some(r) => {
                tables.add_pair(r);
                st.parsed += 1;
            }
            None => st.malformed += 1,
        }
    }
    st
}

/// IOS `show ip mroute count` blocks: header pair line, interface line,
/// counter line.
fn parse_ios_mroute(cap: &Capture, tables: &mut Tables) -> KindStats {
    let mut st = KindStats::default();
    let mut pending: Option<(Ip, GroupAddr, bool, LearnedFrom)> = None;
    let mut pending_forwarding = true;
    for line in cap.lines() {
        if line.starts_with(b"(") {
            // `(1.2.3.4, 224.2.0.5), uptime 00:01:02, flags: SP`
            let row = (|| {
                let (src_s, grp_s, rest) = split_pair_head(line)?;
                let source = if src_s == b"*" {
                    Ip::UNSPECIFIED
                } else {
                    Ip::parse_bytes(src_s).ok()?
                };
                let group = GroupAddr::parse_bytes(grp_s).ok()?;
                let flags = match find(rest, b"flags:") {
                    Some(p) => trim(&rest[p + b"flags:".len()..]),
                    None => &b""[..],
                };
                let learned = if flags.contains(&b'M') {
                    LearnedFrom::Msdp
                } else if flags.contains(&b'S') {
                    LearnedFrom::Pim
                } else {
                    LearnedFrom::Dvmrp
                };
                let pruned = flags.contains(&b'P');
                Some((source, group, pruned, learned))
            })();
            match row {
                Some((s, g, pruned, learned)) => {
                    pending = Some((s, g, pruned, learned));
                    pending_forwarding = !pruned;
                    st.parsed += 1;
                }
                None => st.malformed += 1,
            }
        } else if line.starts_with(b"Incoming interface:") {
            if line.ends_with(b"Outgoing: Null") {
                pending_forwarding = false;
            }
            st.skipped += 1;
        } else if line.starts_with(b"Pkt count") {
            // `Pkt count 123, bytes 4567, rate 12 kbps`
            let Some((source, group, _pruned, learned)) = pending.take() else {
                st.malformed += 1;
                continue;
            };
            let mut kbps = 0u64;
            let mut f = fields(line);
            while let Some(w) = f.next() {
                if w == b"rate" {
                    kbps = f.next().and_then(parse_u64).unwrap_or(0);
                    break;
                }
            }
            tables.add_pair(PairRow {
                source,
                group,
                current_bw: BitRate::from_kbps(kbps),
                avg_bw: BitRate::from_kbps(kbps),
                forwarding: pending_forwarding,
                learned_from: learned,
            });
            st.parsed += 1;
        } else {
            st.skipped += 1;
        }
    }
    st
}

// ---------------------------------------------------------------------
// IGMP, MBGP, MSDP
// ---------------------------------------------------------------------

fn parse_igmp(cap: &Capture, tables: &mut Tables) -> KindStats {
    let mut st = KindStats::default();
    for line in cap.lines() {
        // mrouted: `0 224.2.0.5 3 12s ago`; IOS: `224.2.0.5 Vif2 00:01:02 h3`.
        let mut f = fields(line);
        let first = match f.next() {
            Some(w) => w,
            None => continue,
        };
        let group: Option<GroupAddr> = if parse_u32(first).is_some() {
            f.next().and_then(|g| GroupAddr::parse_bytes(g).ok())
        } else {
            GroupAddr::parse_bytes(first).ok()
        };
        match group {
            Some(g) => {
                // Membership implies a session exists even with no (S,G)
                // state yet; record it without inventing participants.
                let at = cap.captured_at;
                tables
                    .sessions
                    .entry(g)
                    .or_insert_with(|| crate::tables::SessionRow {
                        group: g,
                        name: None,
                        density: 0,
                        bandwidth: BitRate::ZERO,
                        first_advertised: LearnedFrom::Igmp,
                        first_seen: at,
                    });
                st.parsed += 1;
            }
            None => st.skipped += 1,
        }
    }
    st
}

fn parse_mbgp(cap: &Capture, tables: &mut Tables) -> KindStats {
    let mut st = KindStats::default();
    for line in cap.lines() {
        let mut f = fields(line);
        if f.next() != Some(b"*>") {
            st.skipped += 1;
            continue;
        }
        let row = (|| {
            let prefix = Prefix::parse_bytes(f.next()?).ok()?;
            let nh = Ip::parse_bytes(f.next()?).ok()?;
            let hops = f.filter(|w| *w != b"i").count() as u32;
            Some(RouteRow {
                prefix,
                next_hop: if nh.is_unspecified() { None } else { Some(nh) },
                metric: hops,
                uptime: None,
                reachable: true,
                learned_from: LearnedFrom::Mbgp,
            })
        })();
        match row {
            Some(r) => {
                tables.add_route(r);
                st.parsed += 1;
            }
            None => st.malformed += 1,
        }
    }
    st
}

fn parse_sa_cache(cap: &Capture, tables: &mut Tables) -> KindStats {
    let mut st = KindStats::default();
    for line in cap.lines() {
        if !line.starts_with(b"(") {
            st.skipped += 1;
            continue;
        }
        let entry = (|| {
            let (src_s, grp_s, rest) = split_pair_head(line)?;
            let source = Ip::parse_bytes(src_s).ok()?;
            let group = GroupAddr::parse_bytes(grp_s).ok()?;
            let mut learned = SimDuration::ZERO;
            let mut f = fields(rest);
            while let Some(w) = f.next() {
                if w == b"learned" {
                    learned = f
                        .next()
                        .and_then(parse_uptime_bytes)
                        .unwrap_or(SimDuration::ZERO);
                    break;
                }
            }
            Some((group, source, learned))
        })();
        match entry {
            Some((g, s, ago)) => {
                let first = SimTime(cap.captured_at.as_secs().saturating_sub(ago.as_secs()));
                tables.sa_cache.insert((g, s), first);
                st.parsed += 1;
            }
            None => st.malformed += 1,
        }
    }
    st
}

// ---------------------------------------------------------------------
// Reference parser (string-materialising)
// ---------------------------------------------------------------------

/// The kept string parser: each capture's lines are materialised as owned
/// `String`s (lossily decoded) and every row parses through `str` APIs.
///
/// This is the pre-refactor implementation, preserved as the oracle the
/// zero-copy path is property-tested against — same dialect detection,
/// same row grammars, same accounting — and as the baseline the
/// `ablation_parse` bench measures the refactor's win over.
pub mod reference {
    use super::*;

    /// Processes a batch of captures exactly like [`super::process`], but
    /// through owned strings.
    pub fn process(captures: &[Capture]) -> (Tables, ParseStats) {
        process_with(captures, |cap, tables| {
            let lines = cap.text_lines();
            match cap.kind {
                TableKind::DvmrpRoutes => parse_dvmrp_routes(&lines, tables),
                TableKind::ForwardingCache => parse_forwarding(&lines, tables),
                TableKind::IgmpGroups => parse_igmp(cap, &lines, tables),
                TableKind::MbgpRoutes => parse_mbgp(&lines, tables),
                TableKind::SaCache => parse_sa_cache(cap, &lines, tables),
            }
        })
    }

    /// Parses `hh:mm:ss` or `NdHHh` IOS uptimes.
    pub(crate) fn parse_uptime(s: &str) -> Option<SimDuration> {
        if let Some((d, rest)) = s.split_once('d') {
            let days: u64 = d.parse().ok()?;
            let hours: u64 = rest.strip_suffix('h')?.parse().ok()?;
            return Some(SimDuration::days(days) + SimDuration::hours(hours));
        }
        let mut parts = s.split(':');
        let h: u64 = parts.next()?.parse().ok()?;
        let m: u64 = parts.next()?.parse().ok()?;
        let sec: u64 = parts.next()?.parse().ok()?;
        if parts.next().is_some() {
            return None;
        }
        Some(SimDuration::secs(h * 3_600 + m * 60 + sec))
    }

    /// Splits `(src, grp)…` into trimmed source and group texts plus the
    /// remainder after the closing parenthesis.
    fn split_pair_head(line: &str) -> Option<(&str, &str, &str)> {
        let inner = line.strip_prefix('(')?;
        let (src_s, rest) = inner.split_once(',')?;
        let (grp_s, rest) = rest.split_once(')')?;
        Some((src_s.trim(), grp_s.trim(), rest))
    }

    fn parse_dvmrp_routes(lines: &[String], tables: &mut Tables) -> KindStats {
        let mut st = KindStats::default();
        let ios = lines
            .first()
            .is_some_and(|l| l.contains("DVMRP Routing Table -"));
        for line in lines {
            if line.starts_with("DVMRP Routing Table")
                || line.starts_with("Origin-Subnet")
                || line.starts_with('%')
                || line.starts_with("mrouted:")
            {
                st.skipped += 1;
                continue;
            }
            let parsed = if ios {
                parse_ios_dvmrp_row(line)
            } else {
                parse_mrouted_route_row(line)
            };
            match parsed {
                Some(row) => {
                    tables.add_route(row);
                    st.parsed += 1;
                }
                None => st.malformed += 1,
            }
        }
        st
    }

    fn parse_mrouted_route_row(line: &str) -> Option<RouteRow> {
        let mut f = line.split_ascii_whitespace();
        let prefix: Prefix = f.next()?.parse().ok()?;
        let gw = f.next()?;
        let metric: u32 = f.next()?.parse().ok()?;
        let (next_hop, reachable) = match gw {
            "direct" => (None, true),
            "--" => (None, false),
            other => (Some(other.parse().ok()?), true),
        };
        Some(RouteRow {
            prefix,
            next_hop,
            metric,
            uptime: None,
            reachable,
            learned_from: LearnedFrom::Dvmrp,
        })
    }

    fn parse_ios_dvmrp_row(line: &str) -> Option<RouteRow> {
        let mut f = line.split_ascii_whitespace();
        let prefix: Prefix = f.next()?.parse().ok()?;
        let bracket = f.next()?; // [ad/metric]
        let metric: u32 = bracket
            .strip_prefix('[')?
            .strip_suffix(']')?
            .split_once('/')?
            .1
            .parse()
            .ok()?;
        let kind = f.next()?;
        let (next_hop, reachable) = match kind {
            "via" => (Some(f.next()?.parse().ok()?), true),
            "directly" => {
                f.next()?; // "connected"
                (None, true)
            }
            "unreachable" => (None, false),
            _ => return None,
        };
        let mut uptime = None;
        while let Some(w) = f.next() {
            if w == "uptime" {
                uptime = f.next().and_then(parse_uptime);
                break;
            }
        }
        Some(RouteRow {
            prefix,
            next_hop,
            metric,
            uptime,
            reachable,
            learned_from: LearnedFrom::Dvmrp,
        })
    }

    fn parse_forwarding(lines: &[String], tables: &mut Tables) -> KindStats {
        let ios = lines
            .first()
            .is_some_and(|l| l.starts_with("IP Multicast Statistics"));
        if ios {
            parse_ios_mroute(lines, tables)
        } else {
            parse_mrouted_cache(lines, tables)
        }
    }

    fn parse_mrouted_cache(lines: &[String], tables: &mut Tables) -> KindStats {
        let mut st = KindStats::default();
        for line in lines {
            if line.starts_with("Multicast Routing Cache")
                || line.starts_with("Origin")
                || line.starts_with("mrouted:")
            {
                st.skipped += 1;
                continue;
            }
            let row = (|| {
                let mut f = line.split_ascii_whitespace();
                let source: Ip = f.next()?.parse().ok()?;
                let group: GroupAddr = f.next()?.parse().ok()?;
                let _ctmr = f.next()?;
                let _age = f.next()?;
                let _ptmr = f.next()?;
                let kbps: f64 = f.next()?.strip_suffix('k')?.parse().ok()?;
                let _ivif = f.next()?;
                let fw0 = f.next();
                let forwarding = match fw0 {
                    None => false,
                    Some("P") => f.next().is_some(),
                    Some(_) => true,
                };
                Some(PairRow {
                    source,
                    group,
                    current_bw: BitRate::from_bps((kbps * 1_000.0) as u64),
                    avg_bw: BitRate::from_bps((kbps * 1_000.0) as u64),
                    forwarding,
                    learned_from: LearnedFrom::Dvmrp,
                })
            })();
            match row {
                Some(r) => {
                    tables.add_pair(r);
                    st.parsed += 1;
                }
                None => st.malformed += 1,
            }
        }
        st
    }

    fn parse_ios_mroute(lines: &[String], tables: &mut Tables) -> KindStats {
        let mut st = KindStats::default();
        let mut pending: Option<(Ip, GroupAddr, bool, LearnedFrom)> = None;
        let mut pending_forwarding = true;
        for line in lines {
            if line.starts_with('(') {
                let row = (|| {
                    let (src_s, grp_s, rest) = split_pair_head(line)?;
                    let source = if src_s == "*" {
                        Ip::UNSPECIFIED
                    } else {
                        src_s.parse().ok()?
                    };
                    let group: GroupAddr = grp_s.parse().ok()?;
                    let flags = match rest.find("flags:") {
                        Some(p) => rest[p + "flags:".len()..].trim(),
                        None => "",
                    };
                    let learned = if flags.contains('M') {
                        LearnedFrom::Msdp
                    } else if flags.contains('S') {
                        LearnedFrom::Pim
                    } else {
                        LearnedFrom::Dvmrp
                    };
                    let pruned = flags.contains('P');
                    Some((source, group, pruned, learned))
                })();
                match row {
                    Some((s, g, pruned, learned)) => {
                        pending = Some((s, g, pruned, learned));
                        pending_forwarding = !pruned;
                        st.parsed += 1;
                    }
                    None => st.malformed += 1,
                }
            } else if line.starts_with("Incoming interface:") {
                if line.ends_with("Outgoing: Null") {
                    pending_forwarding = false;
                }
                st.skipped += 1;
            } else if line.starts_with("Pkt count") {
                let Some((source, group, _pruned, learned)) = pending.take() else {
                    st.malformed += 1;
                    continue;
                };
                let mut kbps = 0u64;
                let mut f = line.split_ascii_whitespace();
                while let Some(w) = f.next() {
                    if w == "rate" {
                        kbps = f.next().and_then(|n| n.parse().ok()).unwrap_or(0);
                        break;
                    }
                }
                tables.add_pair(PairRow {
                    source,
                    group,
                    current_bw: BitRate::from_kbps(kbps),
                    avg_bw: BitRate::from_kbps(kbps),
                    forwarding: pending_forwarding,
                    learned_from: learned,
                });
                st.parsed += 1;
            } else {
                st.skipped += 1;
            }
        }
        st
    }

    fn parse_igmp(cap: &Capture, lines: &[String], tables: &mut Tables) -> KindStats {
        let mut st = KindStats::default();
        for line in lines {
            let mut f = line.split_ascii_whitespace();
            let first = match f.next() {
                Some(w) => w,
                None => continue,
            };
            let group: Option<GroupAddr> = if first.parse::<u32>().is_ok() {
                f.next().and_then(|g| g.parse().ok())
            } else {
                first.parse().ok()
            };
            match group {
                Some(g) => {
                    let at = cap.captured_at;
                    tables
                        .sessions
                        .entry(g)
                        .or_insert_with(|| crate::tables::SessionRow {
                            group: g,
                            name: None,
                            density: 0,
                            bandwidth: BitRate::ZERO,
                            first_advertised: LearnedFrom::Igmp,
                            first_seen: at,
                        });
                    st.parsed += 1;
                }
                None => st.skipped += 1,
            }
        }
        st
    }

    fn parse_mbgp(lines: &[String], tables: &mut Tables) -> KindStats {
        let mut st = KindStats::default();
        for line in lines {
            let mut f = line.split_ascii_whitespace();
            if f.next() != Some("*>") {
                st.skipped += 1;
                continue;
            }
            let row = (|| {
                let prefix: Prefix = f.next()?.parse().ok()?;
                let nh: Ip = f.next()?.parse().ok()?;
                let hops = f.filter(|w| *w != "i").count() as u32;
                Some(RouteRow {
                    prefix,
                    next_hop: if nh.is_unspecified() { None } else { Some(nh) },
                    metric: hops,
                    uptime: None,
                    reachable: true,
                    learned_from: LearnedFrom::Mbgp,
                })
            })();
            match row {
                Some(r) => {
                    tables.add_route(r);
                    st.parsed += 1;
                }
                None => st.malformed += 1,
            }
        }
        st
    }

    fn parse_sa_cache(cap: &Capture, lines: &[String], tables: &mut Tables) -> KindStats {
        let mut st = KindStats::default();
        for line in lines {
            if !line.starts_with('(') {
                st.skipped += 1;
                continue;
            }
            let entry = (|| {
                let (src_s, grp_s, rest) = split_pair_head(line)?;
                let source: Ip = src_s.parse().ok()?;
                let group: GroupAddr = grp_s.parse().ok()?;
                let mut learned = SimDuration::ZERO;
                let mut f = rest.split_ascii_whitespace();
                while let Some(w) = f.next() {
                    if w == "learned" {
                        learned = f.next().and_then(parse_uptime).unwrap_or(SimDuration::ZERO);
                        break;
                    }
                }
                Some((group, source, learned))
            })();
            match entry {
                Some((g, s, ago)) => {
                    let first = SimTime(cap.captured_at.as_secs().saturating_sub(ago.as_secs()));
                    tables.sa_cache.insert((g, s), first);
                    st.parsed += 1;
                }
                None => st.malformed += 1,
            }
        }
        st
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::preprocess;

    fn t0() -> SimTime {
        SimTime::from_ymd(1998, 11, 1)
    }

    fn cap(kind: TableKind, text: &str) -> Capture {
        preprocess("r", kind, text, t0())
    }

    /// Every raw text a unit test below feeds the parsers, for the
    /// byte-vs-reference agreement check.
    const UNIT_CORPUS: &[(TableKind, &str)] = &[
        (TableKind::DvmrpRoutes, "DVMRP Routing Table (3 entries)\n Origin-Subnet      From-Gateway       Metric  Tmr  In-Vif  Out-Vifs\n 128.111.0.0/16   10.128.0.2     3   25  1  1*\n 10.5.0.0/24   direct   1   0   0  1*\n 10.9.0.0/24   --   32  140  1  1*\n"),
        (TableKind::DvmrpRoutes, "DVMRP Routing Table - 3 entries\n128.111.0.0/16 [1/3] via 10.128.0.6 uptime 04:23:00  \n10.5.0.0/24 [1/1] directly connected uptime 3d04h C\n10.9.0.0/24 [1/32] unreachable uptime 00:02:20 H\n"),
        (TableKind::ForwardingCache, "Multicast Routing Cache Table (2 entries)\n Origin Mcast-group CTmr Age Ptmr Rate IVif Forwvifs\n 128.111.5.2 224.2.0.1 150 4m 0 64.0k 1 2 3\n 128.111.5.3 224.2.0.2 150 9m 0 0.8k 1 P\n"),
        (TableKind::ForwardingCache, "IP Multicast Statistics\n2 routes using 304 bytes of memory\nFlags: D - Dense, S - Sparse, C - Connected, P - Pruned, M - MSDP created entry\n(128.111.5.2, 224.2.0.1), uptime 00:10:00, flags: S\n  Incoming interface: Vif1, Outgoing: Vif2, Vif3\n  Pkt count 1000, bytes 500000, rate 64 kbps\n(*, 224.2.0.2), uptime 01:00:00, flags: SP\n  Incoming interface: Vif1, Outgoing: Null\n  Pkt count 0, bytes 0, rate 0 kbps\n"),
        (TableKind::MbgpRoutes, "MBGP table version is 4, local router ID is 198.32.136.1\n   Network            Next Hop          Path\n*> 128.3.0.0/16 10.128.0.9 65002 65003 i\n*> 128.4.0.0/16 0.0.0.0  i\n"),
        (TableKind::SaCache, "MSDP Source-Active Cache - 2 entries\n(128.3.5.2, 224.2.0.9), RP 198.32.136.1, learned 00:05:00\n(128.4.5.2, 224.2.0.9), RP 198.32.136.9, learned 3d00h\n"),
        (TableKind::IgmpGroups, "Virtual Interface Table, Groups (1)\n Vif Group Members Reported\n 0 224.2.0.7 3 12s ago\n"),
        (TableKind::DvmrpRoutes, "DVMRP Routing Table (2 entries)\n totally bogus line here\n 128.111.0.0/16 10.128.0.2 3 25 1 1*\n"),
        (TableKind::MbgpRoutes, "mrouted: unknown command 'show ip mbgp'\n"),
        (TableKind::SaCache, "%MSDP not enabled\n"),
    ];

    #[test]
    fn uptime_parsing() {
        for s in ["04:23:07", "3d04h", "garbage", "1:2", "", "1:2:3:4", "d04h"] {
            assert_eq!(
                parse_uptime_bytes(s.as_bytes()),
                reference::parse_uptime(s),
                "{s:?}"
            );
        }
        assert_eq!(
            parse_uptime_bytes(b"04:23:07"),
            Some(SimDuration::secs(15_787))
        );
        assert_eq!(
            parse_uptime_bytes(b"3d04h"),
            Some(SimDuration::days(3) + SimDuration::hours(4))
        );
        assert_eq!(parse_uptime_bytes(b"garbage"), None);
        assert_eq!(parse_uptime_bytes(b"1:2"), None);
    }

    #[test]
    fn byte_integer_parsers_mirror_str_parse() {
        for s in [
            "0",
            "42",
            "+7",
            "007",
            "",
            "+",
            "4 2",
            "-1",
            "4294967295",
            "4294967296",
        ] {
            assert_eq!(parse_u32(s.as_bytes()), s.parse::<u32>().ok(), "{s:?}");
            assert_eq!(parse_u64(s.as_bytes()), s.parse::<u64>().ok(), "{s:?}");
        }
        assert_eq!(
            parse_u64(b"18446744073709551616"),
            "18446744073709551616".parse::<u64>().ok()
        );
    }

    #[test]
    fn mrouted_route_table() {
        let (tables, st) = process(&[cap(TableKind::DvmrpRoutes, UNIT_CORPUS[0].1)]);
        assert_eq!(st.parsed, 3);
        assert_eq!(st.malformed, 0);
        assert_eq!(tables.routes.len(), 3);
        assert_eq!(tables.reachable_dvmrp_routes(), 2);
        let r = &tables.routes[&(LearnedFrom::Dvmrp, "128.111.0.0/16".parse().unwrap())];
        assert_eq!(r.next_hop, Some(Ip::new(10, 128, 0, 2)));
        assert_eq!(r.metric, 3);
        // Accounting attributed under the capture's kind.
        assert_eq!(st.kind(TableKind::DvmrpRoutes).parsed, 3);
        assert_eq!(st.kind(TableKind::DvmrpRoutes).skipped, st.skipped);
        assert_eq!(st.kind(TableKind::MbgpRoutes), KindStats::default());
    }

    #[test]
    fn fields_tolerate_space_and_tab_runs() {
        // Raw captures space columns unevenly and sometimes with tabs; the
        // field scanner must not depend on single-space separators.
        let text = "DVMRP Routing Table (2 entries)\n 128.111.0.0/16 \t 10.128.0.2\t\t3   25  1  1*\n 10.5.0.0/24\tdirect\t1  0  0  1*\n";
        let (tables, st) = process(&[cap(TableKind::DvmrpRoutes, text)]);
        assert_eq!(st.parsed, 2, "{st:?}");
        assert_eq!(st.malformed, 0);
        assert_eq!(tables.routes.len(), 2);
        let mb = "*> \t128.3.0.0/16 \t 10.128.0.9   65002\t65003 i\n";
        let (tables, st) = process(&[cap(TableKind::MbgpRoutes, mb)]);
        assert_eq!(st.parsed, 1, "{st:?}");
        let r = &tables.routes[&(LearnedFrom::Mbgp, "128.3.0.0/16".parse().unwrap())];
        assert_eq!(r.metric, 2);
    }

    #[test]
    fn ios_dvmrp_table() {
        let (tables, st) = process(&[cap(TableKind::DvmrpRoutes, UNIT_CORPUS[1].1)]);
        assert_eq!(st.parsed, 3, "{st:?}");
        assert_eq!(tables.reachable_dvmrp_routes(), 2);
        let r = &tables.routes[&(LearnedFrom::Dvmrp, "128.111.0.0/16".parse().unwrap())];
        assert_eq!(r.uptime, Some(SimDuration::secs(4 * 3600 + 23 * 60)));
    }

    #[test]
    fn mrouted_cache() {
        let (tables, st) = process(&[cap(TableKind::ForwardingCache, UNIT_CORPUS[2].1)]);
        assert_eq!(st.parsed, 2);
        assert_eq!(tables.pairs.len(), 2);
        let sg = ("224.2.0.1".parse().unwrap(), "128.111.5.2".parse().unwrap());
        assert_eq!(tables.pairs[&sg].current_bw, BitRate::from_kbps(64));
        assert!(tables.pairs[&sg].forwarding);
        let pruned = ("224.2.0.2".parse().unwrap(), "128.111.5.3".parse().unwrap());
        assert!(!tables.pairs[&pruned].forwarding);
        // Derived tables populated.
        assert_eq!(tables.participants.len(), 2);
        assert_eq!(tables.sessions.len(), 2);
    }

    #[test]
    fn ios_mroute_blocks() {
        let (tables, st) = process(&[cap(TableKind::ForwardingCache, UNIT_CORPUS[3].1)]);
        assert_eq!(st.malformed, 0, "{st:?}");
        assert_eq!(tables.pairs.len(), 2);
        let sg = ("224.2.0.1".parse().unwrap(), "128.111.5.2".parse().unwrap());
        assert_eq!(tables.pairs[&sg].current_bw, BitRate::from_kbps(64));
        assert_eq!(tables.pairs[&sg].learned_from, LearnedFrom::Pim);
        let star = ("224.2.0.2".parse().unwrap(), Ip::UNSPECIFIED);
        assert!(!tables.pairs[&star].forwarding);
        // Wildcard rows don't fabricate participants.
        assert_eq!(tables.participants.len(), 1);
    }

    #[test]
    fn mbgp_table() {
        let (tables, st) = process(&[cap(TableKind::MbgpRoutes, UNIT_CORPUS[4].1)]);
        assert_eq!(st.parsed, 2, "{st:?}");
        let r = &tables.routes[&(LearnedFrom::Mbgp, "128.3.0.0/16".parse().unwrap())];
        assert_eq!(r.metric, 2, "AS-path length as metric");
        let local = &tables.routes[&(LearnedFrom::Mbgp, "128.4.0.0/16".parse().unwrap())];
        assert_eq!(local.next_hop, None);
    }

    #[test]
    fn sa_cache_table() {
        let (tables, st) = process(&[cap(TableKind::SaCache, UNIT_CORPUS[5].1)]);
        assert_eq!(st.parsed, 2, "{st:?}");
        assert_eq!(tables.sa_cache.len(), 2);
        let key = ("224.2.0.9".parse().unwrap(), "128.3.5.2".parse().unwrap());
        assert_eq!(tables.sa_cache[&key], SimTime(t0().as_secs() - 300));
        // SA entries do not fabricate pairs or participants.
        assert!(tables.pairs.is_empty());
        assert!(tables.participants.is_empty());
    }

    #[test]
    fn igmp_creates_sessions_without_participants() {
        let (tables, st) = process(&[cap(TableKind::IgmpGroups, UNIT_CORPUS[6].1)]);
        assert!(st.parsed >= 1);
        assert!(tables.sessions.contains_key(&"224.2.0.7".parse().unwrap()));
        assert!(tables.participants.is_empty());
        assert_eq!(st.kind(TableKind::IgmpGroups).parsed, st.parsed);
    }

    #[test]
    fn malformed_rows_are_counted_not_fatal() {
        let (tables, st) = process(&[cap(TableKind::DvmrpRoutes, UNIT_CORPUS[7].1)]);
        assert_eq!(st.parsed, 1);
        assert_eq!(st.malformed, 1);
        assert_eq!(st.kind(TableKind::DvmrpRoutes).malformed, 1);
        assert_eq!(tables.routes.len(), 1);
    }

    #[test]
    fn mixed_router_batches_are_rejected_not_mislabelled() {
        let a = preprocess(
            "fixw",
            TableKind::DvmrpRoutes,
            "DVMRP Routing Table (1 entries)\n 128.111.0.0/16 10.128.0.2 3 25 1 1*\n",
            t0(),
        );
        let b = preprocess(
            "ucsb-gw",
            TableKind::DvmrpRoutes,
            "DVMRP Routing Table (1 entries)\n 10.5.0.0/24 direct 1 0 0 1*\n",
            t0(),
        );
        let (tables, st) = process(&[a.clone(), b]);
        assert_eq!(st.rejected_mixed, 2);
        assert_eq!(st.parsed, 0);
        assert_eq!(st.per_kind, <[KindStats; 5]>::default());
        assert!(tables.routes.is_empty());
        assert!(tables.router.is_empty());
        // A single-router batch is unaffected.
        let (tables, st) = process(&[a]);
        assert_eq!(st.rejected_mixed, 0);
        assert_eq!(st.parsed, 1);
        assert_eq!(tables.router, "fixw");
    }

    #[test]
    fn error_responses_parse_to_empty() {
        let (tables, _) = process(&[
            cap(TableKind::MbgpRoutes, UNIT_CORPUS[8].1),
            cap(TableKind::SaCache, UNIT_CORPUS[9].1),
        ]);
        assert!(tables.routes.is_empty());
        assert!(tables.sa_cache.is_empty());
    }

    #[test]
    fn byte_and_reference_parsers_agree_on_unit_corpus() {
        let captures: Vec<Capture> = UNIT_CORPUS.iter().map(|(k, text)| cap(*k, text)).collect();
        // Per capture and as one batch per kind grouping.
        for c in &captures {
            let batch = [c.clone()];
            let (bt, bs) = process(&batch);
            let (rt, rs) = reference::process(&batch);
            assert_eq!(bt, rt, "tables diverge on {:?}", c.kind);
            assert_eq!(bs, rs, "stats diverge on {:?}", c.kind);
        }
        let (bt, bs) = process(&captures);
        let (rt, rs) = reference::process(&captures);
        assert_eq!(bt, rt);
        assert_eq!(bs, rs);
    }
}
