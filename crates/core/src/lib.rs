//! Mantra: router-based monitoring of Internet multicast protocols.
//!
//! This crate is the reproduction's primary contribution — the monitoring
//! tool of Rajvaidya & Almeroth (ICPP 2001). Its modules mirror the
//! paper's Figure 1 pipeline:
//!
//! * [`collector`] — logs into routers (through a [`collector::RouterAccess`]
//!   implementation; the simulator-backed one stands in for the paper's
//!   expect scripts) and pre-processes the raw captures,
//! * [`tables`] — Mantra's local data format: the Pair, Participant,
//!   Session and Route tables,
//! * [`processor`] — the router-table processor mapping raw CLI dumps
//!   (mrouted- or IOS-style) onto the local tables,
//! * [`logger`] — the data logger: delta encoding and redundancy
//!   elimination for long-term archives, with lossless reconstruction,
//! * [`archive`] — where those archives live: pluggable backends behind
//!   [`archive::ArchiveBackend`], from the in-memory record list to a
//!   versioned on-disk format with checkpoints and crash recovery,
//! * [`longterm`] — cross-cycle trend analysis: session/participant/route
//!   lifetimes, stability and join patterns,
//! * [`stats`] — the data processor: usage monitoring (sessions,
//!   participants, senders, densities, bandwidth, bandwidth saved) and
//!   route monitoring (counts, stability, consistency),
//! * [`output`] — the output interface: interactive summary tables
//!   (search/sort/column algebra/date conversion) and 2-D graphs
//!   (overlay, rescale, zoom, ASCII rendering),
//! * [`anomaly`] — detectors for the routing problems the paper
//!   debugged, led by the Figure 9 unicast route injection,
//! * [`aggregate`] — the paper's announced next step: concurrent
//!   multi-router collection with aggregated, real-time results
//!   (parallelised with rayon),
//! * [`store`] — interned identifier tables mapping router names, hosts,
//!   groups and route keys to dense ids for the hot path,
//! * [`pipeline`] — the staged cycle: typed Capture → Parse → Enrich →
//!   Log → Analyse stages with per-stage instrumentation,
//! * [`monitor`] — the orchestrator driving the pipeline,
//! * [`fleet`] — the sharded fleet: N monitors over disjoint router
//!   subsets driven concurrently, merged through an exact (integer-sum)
//!   aggregation tier with a global consistency join,
//! * [`web`] — the web presentation layer (static HTML + SVG reports,
//!   standing in for the paper's Java applets).

pub mod aggregate;
pub mod anomaly;
pub mod archive;
pub mod collector;
pub mod fleet;
pub mod logger;
pub mod longterm;
pub mod monitor;
pub mod output;
pub mod pipeline;
pub mod processor;
pub mod stats;
pub mod stats_stream;
pub mod store;
pub mod tables;
pub mod web;

pub use archive::{
    ArchiveBackend, ArchiveDict, ArchiveInfo, ArchiveReader, ArchiveSpec, ArchiveStats,
    BackpressureMode, CacheStats, FileBackend, FileBackendV2, MemoryBackend, OpenMode, QueryCache,
    SyncPolicy, ThreadedBackend, WriterConfig,
};
pub use collector::{CaptureError, CollectStats, Collector, RetryPolicy, RouterAccess};
pub use fleet::FleetMonitor;
pub use monitor::{LifecycleState, Monitor, MonitorConfig, RouterHealth};
pub use pipeline::{PipelineMetrics, Stage, StageKind, StageMetrics};
pub use stats::{ConsistencyMatrix, RouteStats, UsageStats};
pub use stats_stream::{IncrementalStats, StatsTotals};
pub use store::TableStore;
pub use tables::{PairRow, ParticipantRow, RouteRow, SessionRow, Tables};
