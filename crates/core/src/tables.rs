//! Mantra's local data format.
//!
//! The paper defines four table kinds that "provide a standard framework
//! for storing the monitoring information": Pair, Participant, Session and
//! Route. Every raw router dump is normalised into these before anything
//! downstream (logging, statistics, display) touches it.
//!
//! Rows are plain serde-serialisable structs keyed for deterministic
//! ordering, which the delta logger depends on.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use mantra_net::{BitRate, GroupAddr, Ip, Prefix, SimDuration, SimTime};

/// Which protocol a table row was learned from (the Session table records
/// "the protocol that first advertised" each session).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum LearnedFrom {
    /// DVMRP forwarding/routing state.
    Dvmrp,
    /// PIM (dense or sparse) forwarding state.
    Pim,
    /// An MSDP source-active advertisement.
    Msdp,
    /// An MBGP route.
    Mbgp,
    /// IGMP membership.
    Igmp,
}

/// One `(S,G)` pair — a session-participant tuple with its bandwidth.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PairRow {
    /// The sending participant.
    pub source: Ip,
    /// The session group.
    pub group: GroupAddr,
    /// Bandwidth at the last capture.
    pub current_bw: BitRate,
    /// Average bandwidth over the pair's observed lifetime.
    pub avg_bw: BitRate,
    /// Whether the router was actually forwarding (false = pruned entry).
    pub forwarding: bool,
    /// Which protocol the state came from.
    pub learned_from: LearnedFrom,
}

/// One participant host.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ParticipantRow {
    /// The host address.
    pub host: Ip,
    /// Reverse-DNS name when available (never, for simulated hosts —
    /// the field exists because the paper's table has it).
    pub name: Option<String>,
    /// Number of groups the host currently participates in.
    pub group_count: u32,
    /// When Mantra first had state for this host.
    pub first_seen: SimTime,
}

/// One multicast session.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SessionRow {
    /// The group address.
    pub group: GroupAddr,
    /// Advertised name when available.
    pub name: Option<String>,
    /// Current density: number of participants with state at the router.
    pub density: u32,
    /// Aggregate current bandwidth of the session's senders.
    pub bandwidth: BitRate,
    /// The protocol that first advertised the session to Mantra.
    pub first_advertised: LearnedFrom,
    /// When Mantra first saw the session.
    pub first_seen: SimTime,
}

/// One route (DVMRP or MBGP).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RouteRow {
    /// The destination prefix.
    pub prefix: Prefix,
    /// Next-hop gateway; `None` for directly connected.
    pub next_hop: Option<Ip>,
    /// Routing metric.
    pub metric: u32,
    /// Route uptime where the router reports it (IOS does, mrouted
    /// doesn't — Mantra then derives it across snapshots).
    pub uptime: Option<SimDuration>,
    /// False when the router reported the route unreachable/holddown.
    pub reachable: bool,
    /// Which protocol the route belongs to.
    pub learned_from: LearnedFrom,
}

/// Serialises keyed maps as entry lists: JSON object keys must be strings,
/// and these maps are keyed by structured types.
mod map_as_entries {
    use std::collections::BTreeMap;

    use serde::de::Deserializer;
    use serde::ser::Serializer;
    use serde::{Deserialize, Serialize};

    /// Serialise as a `Vec<(K, V)>`.
    pub fn serialize<K, V, S>(map: &BTreeMap<K, V>, s: S) -> Result<S::Ok, S::Error>
    where
        K: Serialize + Ord,
        V: Serialize,
        S: Serializer,
    {
        s.collect_seq(map.iter())
    }

    /// Deserialise from a `Vec<(K, V)>`.
    pub fn deserialize<'de, K, V, D>(d: D) -> Result<BTreeMap<K, V>, D::Error>
    where
        K: Deserialize<'de> + Ord,
        V: Deserialize<'de>,
        D: Deserializer<'de>,
    {
        let entries = Vec::<(K, V)>::deserialize(d)?;
        Ok(entries.into_iter().collect())
    }
}

/// One snapshot of all four local tables for one router.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Tables {
    /// Capture timestamp.
    pub captured_at: SimTime,
    /// Router the tables came from.
    pub router: String,
    /// `(S,G)` pairs keyed by `(group, source)`.
    #[serde(with = "map_as_entries")]
    pub pairs: BTreeMap<(GroupAddr, Ip), PairRow>,
    /// Participants keyed by host address.
    #[serde(with = "map_as_entries")]
    pub participants: BTreeMap<Ip, ParticipantRow>,
    /// Sessions keyed by group.
    #[serde(with = "map_as_entries")]
    pub sessions: BTreeMap<GroupAddr, SessionRow>,
    /// Routes keyed by protocol and prefix (a border router holds both a
    /// DVMRP and an MBGP table; they may carry the same prefix).
    #[serde(with = "map_as_entries")]
    pub routes: BTreeMap<(LearnedFrom, Prefix), RouteRow>,
    /// The MSDP source-active cache: `(group, source) -> first-learned`.
    /// Kept separate from the pair table — SA entries advertise sessions
    /// but say nothing about forwarding state at this router.
    #[serde(with = "map_as_entries")]
    pub sa_cache: BTreeMap<(GroupAddr, Ip), SimTime>,
}

impl Tables {
    /// An empty snapshot.
    pub fn new(router: impl Into<String>, captured_at: SimTime) -> Self {
        Tables {
            captured_at,
            router: router.into(),
            ..Tables::default()
        }
    }

    /// Inserts a pair and folds it into the derived participant and
    /// session tables — the paper's redundancy rule in reverse (pairs are
    /// the primary observation; participants and sessions aggregate them).
    pub fn add_pair(&mut self, row: PairRow) {
        let learned = row.learned_from;
        let at = self.captured_at;
        let (source, group, bw) = (row.source, row.group, row.current_bw);
        self.pairs.insert((group, source), row);
        if !source.is_unspecified() {
            let p = self
                .participants
                .entry(source)
                .or_insert_with(|| ParticipantRow {
                    host: source,
                    name: None,
                    group_count: 0,
                    first_seen: at,
                });
            p.group_count += 1;
        }
        let s = self.sessions.entry(group).or_insert_with(|| SessionRow {
            group,
            name: None,
            density: 0,
            bandwidth: BitRate::ZERO,
            first_advertised: learned,
            first_seen: at,
        });
        if !source.is_unspecified() {
            s.density += 1;
        }
        s.bandwidth += bw;
        // Keep the advertising protocol deterministic regardless of row
        // insertion order (enum order ranks protocol precedence), so that
        // delta-log reconstruction is exact.
        s.first_advertised = s.first_advertised.min(learned);
    }

    /// Inserts a route row.
    pub fn add_route(&mut self, row: RouteRow) {
        self.routes.insert((row.learned_from, row.prefix), row);
    }

    /// Routes of one protocol, in prefix order.
    pub fn routes_of(&self, proto: LearnedFrom) -> impl Iterator<Item = &RouteRow> {
        self.routes
            .range((proto, Prefix::DEFAULT)..)
            .take_while(move |((p, _), _)| *p == proto)
            .map(|(_, r)| r)
    }

    /// Reachable DVMRP routes — the Figures 7–9 series.
    pub fn reachable_dvmrp_routes(&self) -> usize {
        self.routes_of(LearnedFrom::Dvmrp)
            .filter(|r| r.reachable)
            .count()
    }

    /// Participants sending above `threshold` — the paper's *senders*.
    pub fn senders(&self, threshold: BitRate) -> Vec<Ip> {
        let mut out: Vec<Ip> = self
            .pairs
            .values()
            .filter(|p| p.current_bw.is_sender(threshold))
            .map(|p| p.source)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Sessions with at least one sender — the paper's *active sessions*.
    pub fn active_sessions(&self, threshold: BitRate) -> Vec<GroupAddr> {
        let mut out: Vec<GroupAddr> = self
            .pairs
            .values()
            .filter(|p| p.current_bw.is_sender(threshold))
            .map(|p| p.group)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Number of reachable routes (the Figures 7–9 series).
    pub fn reachable_routes(&self) -> usize {
        self.routes.values().filter(|r| r.reachable).count()
    }

    /// Merges another snapshot's rows into this one (multi-router
    /// aggregation). Pair rows collide only if the same `(S,G)` is seen at
    /// both routers; the higher-bandwidth observation wins (closest to the
    /// source).
    pub fn merge(&mut self, other: &Tables) {
        for ((g, s), row) in &other.pairs {
            match self.pairs.get(&(*g, *s)) {
                Some(mine) if mine.current_bw >= row.current_bw => {}
                _ => {
                    self.pairs.insert((*g, *s), row.clone());
                }
            }
        }
        for (h, row) in &other.participants {
            let e = self.participants.entry(*h).or_insert_with(|| row.clone());
            e.group_count = e.group_count.max(row.group_count);
            e.first_seen = e.first_seen.min(row.first_seen);
        }
        for (g, row) in &other.sessions {
            let e = self.sessions.entry(*g).or_insert_with(|| row.clone());
            e.density = e.density.max(row.density);
            e.bandwidth = e.bandwidth.max(row.bandwidth);
            e.first_seen = e.first_seen.min(row.first_seen);
        }
        for (k, row) in &other.routes {
            self.routes.entry(*k).or_insert_with(|| row.clone());
        }
        for (k, t) in &other.sa_cache {
            let e = self.sa_cache.entry(*k).or_insert(*t);
            *e = (*e).min(*t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mantra_net::rate::SENDER_THRESHOLD;

    fn t0() -> SimTime {
        SimTime::from_ymd(1998, 11, 1)
    }

    fn g(i: u32) -> GroupAddr {
        GroupAddr::from_index(i)
    }

    fn pair(src: Ip, group: GroupAddr, kbps: u64) -> PairRow {
        PairRow {
            source: src,
            group,
            current_bw: BitRate::from_kbps(kbps),
            avg_bw: BitRate::from_kbps(kbps),
            forwarding: true,
            learned_from: LearnedFrom::Dvmrp,
        }
    }

    #[test]
    fn pairs_derive_participants_and_sessions() {
        let mut t = Tables::new("fixw", t0());
        let s1 = Ip::new(128, 1, 0, 2);
        let s2 = Ip::new(128, 2, 0, 2);
        t.add_pair(pair(s1, g(0), 64));
        t.add_pair(pair(s2, g(0), 1));
        t.add_pair(pair(s1, g(1), 0));
        assert_eq!(t.pairs.len(), 3);
        assert_eq!(t.participants.len(), 2);
        assert_eq!(t.participants[&s1].group_count, 2);
        assert_eq!(t.sessions.len(), 2);
        assert_eq!(t.sessions[&g(0)].density, 2);
        assert_eq!(t.sessions[&g(0)].bandwidth, BitRate::from_kbps(65));
    }

    #[test]
    fn wildcard_pairs_do_not_create_participants() {
        let mut t = Tables::new("fixw", t0());
        t.add_pair(pair(Ip::UNSPECIFIED, g(0), 0));
        assert_eq!(t.participants.len(), 0);
        assert_eq!(t.sessions[&g(0)].density, 0);
    }

    #[test]
    fn senders_and_active_sessions_use_threshold() {
        let mut t = Tables::new("fixw", t0());
        let s1 = Ip::new(128, 1, 0, 2);
        let s2 = Ip::new(128, 2, 0, 2);
        t.add_pair(pair(s1, g(0), 64));
        t.add_pair(pair(s2, g(0), 2)); // control-level
        t.add_pair(pair(s2, g(1), 3));
        assert_eq!(t.senders(SENDER_THRESHOLD), vec![s1]);
        assert_eq!(t.active_sessions(SENDER_THRESHOLD), vec![g(0)]);
    }

    #[test]
    fn route_counting() {
        let mut t = Tables::new("ucsb", t0());
        t.add_route(RouteRow {
            prefix: "10.0.0.0/8".parse().unwrap(),
            next_hop: Some(Ip::new(10, 128, 0, 2)),
            metric: 3,
            uptime: None,
            reachable: true,
            learned_from: LearnedFrom::Dvmrp,
        });
        t.add_route(RouteRow {
            prefix: "11.0.0.0/8".parse().unwrap(),
            next_hop: None,
            metric: 32,
            uptime: None,
            reachable: false,
            learned_from: LearnedFrom::Dvmrp,
        });
        t.add_route(RouteRow {
            prefix: "10.0.0.0/8".parse().unwrap(),
            next_hop: Some(Ip::new(10, 128, 0, 9)),
            metric: 1,
            uptime: None,
            reachable: true,
            learned_from: LearnedFrom::Mbgp,
        });
        assert_eq!(t.routes.len(), 3, "same prefix, two protocols");
        assert_eq!(t.reachable_routes(), 2);
        assert_eq!(t.reachable_dvmrp_routes(), 1);
        assert_eq!(t.routes_of(LearnedFrom::Mbgp).count(), 1);
    }

    #[test]
    fn merge_prefers_stronger_observation() {
        let s = Ip::new(128, 1, 0, 2);
        let mut a = Tables::new("fixw", t0());
        a.add_pair(pair(s, g(0), 10));
        let mut b = Tables::new("ucsb", t0());
        b.add_pair(pair(s, g(0), 64));
        b.add_pair(pair(s, g(1), 1));
        a.merge(&b);
        assert_eq!(a.pairs[&(g(0), s)].current_bw, BitRate::from_kbps(64));
        assert_eq!(a.pairs.len(), 2);
        assert!(a.sessions.contains_key(&g(1)));
    }

    #[test]
    fn serde_round_trip() {
        let mut t = Tables::new("fixw", t0());
        t.add_pair(pair(Ip::new(1, 2, 3, 4), g(7), 64));
        let json = serde_json::to_string(&t).unwrap();
        let back: Tables = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }
}
