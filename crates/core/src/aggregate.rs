//! Multi-router collection and aggregation.
//!
//! The paper's conclusion announces work "to enhance Mantra such that it
//! can not only collect data from multiple routers concurrently, but also
//! aggregate different data sets and generate combined results in
//! real-time". This module implements that enhancement: captures from all
//! monitored routers fan out across a rayon thread pool, each capture is
//! parsed in parallel, and the per-router snapshots merge into one
//! aggregate view with cross-router consistency checks.

use rayon::prelude::*;

use mantra_net::SimTime;
use mantra_router_cli::TableKind;

use crate::collector::{
    preprocess, CaptureError, CollectStats, Collector, FlakyAccess, RetryPolicy,
};
use crate::monitor::SessionAdapter;
use crate::pipeline::parse_router;
use crate::processor::ParseStats;
use crate::stats::ConsistencyReport;
use crate::tables::Tables;

/// Thread-safe router access for concurrent collection. Unlike
/// [`crate::collector::RouterAccess`], captures take `&self`: real
/// deployments open one session per router in parallel, so the access
/// layer cannot be a single mutable session.
pub trait ParallelAccess: Sync {
    /// Captures the raw text of `table` from the named router.
    fn capture(&self, router: &str, table: TableKind, now: SimTime)
        -> Result<String, CaptureError>;
}

/// Shared references forward, so decorators like [`FlakyAccess`] can wrap
/// a borrowed transport.
impl<P: ParallelAccess + ?Sized> ParallelAccess for &P {
    fn capture(
        &self,
        router: &str,
        table: TableKind,
        now: SimTime,
    ) -> Result<String, CaptureError> {
        (**self).capture(router, table, now)
    }
}

/// The simulator is immutable during capture, so a shared reference is a
/// parallel access.
impl ParallelAccess for mantra_sim::Simulation {
    fn capture(
        &self,
        router: &str,
        table: TableKind,
        now: SimTime,
    ) -> Result<String, CaptureError> {
        let id = self
            .net
            .topo
            .router_by_name(router)
            .map(|r| r.id)
            .ok_or_else(|| CaptureError::UnknownRouter(router.to_string()))?;
        // A departed router refuses the session — transient, like
        // `SimAccess`, so retries/backoff stay sharded/single-identical.
        if !self.net.topo.is_active(id) {
            return Err(CaptureError::LoginFailed(format!(
                "router {router} is offline"
            )));
        }
        Ok(mantra_router_cli::render(&self.net, id, table, now))
    }
}

/// The failure injector is stateless per capture, so it forwards parallel
/// captures whenever its transport does.
impl<A: ParallelAccess> ParallelAccess for FlakyAccess<A> {
    fn capture(
        &self,
        router: &str,
        table: TableKind,
        now: SimTime,
    ) -> Result<String, CaptureError> {
        if self.roll_login_failure(router, table, now) {
            return Err(CaptureError::LoginFailed("connection refused".into()));
        }
        let full = self.inner().capture(router, table, now)?;
        self.maybe_truncate(router, table, now, full)
    }
}

/// One router's outcome within an aggregate cycle.
#[derive(Clone, Debug)]
pub struct RouterCycle {
    /// The router name.
    pub router: String,
    /// Its parsed snapshot (empty tables when every capture failed).
    pub tables: Tables,
    /// Parse accounting.
    pub parse: ParseStats,
    /// Capture failures this cycle.
    pub capture_failures: usize,
    /// Collection health accounting. The plain collectors issue one
    /// attempt per table, so only the resilient path reports retries.
    pub stats: CollectStats,
}

/// The combined result of one aggregate collection cycle.
#[derive(Clone, Debug)]
pub struct AggregateView {
    /// Cycle timestamp.
    pub at: SimTime,
    /// Per-router snapshots, in configuration order.
    pub per_router: Vec<RouterCycle>,
    /// The merged table view across all routers.
    pub merged: Tables,
    /// Pairwise DVMRP consistency among routers that run DVMRP.
    pub consistency: Vec<(String, String, ConsistencyReport)>,
}

/// Builds one router's cycle from single-attempt capture results. The
/// snapshot is stamped through [`parse_router`], so a router that lost
/// every capture still yields an addressed (empty) snapshot.
fn cycle_from_captures(
    router: &str,
    captures: Vec<Result<crate::collector::Capture, CaptureError>>,
    now: SimTime,
) -> RouterCycle {
    let failures = captures.iter().filter(|c| c.is_err()).count();
    let ok: Vec<_> = captures.into_iter().flatten().collect();
    let stats = CollectStats {
        attempts: (ok.len() + failures) as u64,
        successes: ok.len() as u64,
        failures: failures as u64,
        raw_bytes: ok.iter().map(|c| c.raw_bytes as u64).sum(),
        ..CollectStats::default()
    };
    let (tables, parse) = parse_router(router, &ok, now);
    RouterCycle {
        router: router.to_string(),
        tables,
        parse,
        capture_failures: failures,
        stats,
    }
}

/// Merges per-router cycles (already in configuration order) into the
/// final aggregate view: union tables plus pairwise DVMRP consistency.
fn assemble(per_router: Vec<RouterCycle>, now: SimTime) -> AggregateView {
    let mut merged = Tables::new("aggregate", now);
    for rc in &per_router {
        merged.merge(&rc.tables);
    }
    // Pairwise DVMRP consistency through the group-by-key join: each
    // pair of *distinct* reachable-set views is merged once, and router
    // pairs sharing a view read the memoised report (identical to the
    // old per-pair `between_with` sweep — the reports are pure set
    // functions of the two views).
    let mut consistency = Vec::new();
    let views: Vec<&Tables> = per_router.iter().map(|rc| &rc.tables).collect();
    let mut matrix = crate::stats::ConsistencyMatrix::build(&views, 1);
    for i in 0..per_router.len() {
        if !matrix.eligible(i) {
            continue;
        }
        for j in (i + 1)..per_router.len() {
            if let Some(report) = matrix.report(i, j) {
                consistency.push((
                    per_router[i].router.clone(),
                    per_router[j].router.clone(),
                    report,
                ));
            }
        }
    }
    AggregateView {
        at: now,
        per_router,
        merged,
        consistency,
    }
}

/// Collects all tables from all routers concurrently and aggregates.
pub fn collect_aggregate(
    access: &impl ParallelAccess,
    routers: &[String],
    tables: &[TableKind],
    now: SimTime,
) -> AggregateView {
    let per_router: Vec<RouterCycle> = routers
        .par_iter()
        .map(|router| {
            // Within one router the tables also capture in parallel: the
            // real enhancement opened concurrent expect sessions.
            let captures: Vec<_> = tables
                .par_iter()
                .map(|kind| {
                    access
                        .capture(router, *kind, now)
                        .map(|raw| preprocess(router, *kind, &raw, now))
                })
                .collect();
            cycle_from_captures(router, captures, now)
        })
        .collect();
    assemble(per_router, now)
}

/// Collects all routers concurrently through the resilient collector:
/// transient failures retry with deterministic backoff and truncated dumps
/// salvage, per `retry`. Each [`RouterCycle::stats`] carries the full
/// health accounting, so the aggregate view reports collection health
/// alongside the merged tables.
pub fn collect_aggregate_resilient(
    access: &impl ParallelAccess,
    routers: &[String],
    tables: &[TableKind],
    now: SimTime,
    retry: &RetryPolicy,
) -> AggregateView {
    let collector = Collector {
        tables: tables.to_vec(),
        retry: retry.clone(),
        ..Collector::default()
    };
    let per_router: Vec<RouterCycle> = routers
        .par_iter()
        .map(|router| {
            let mut session = SessionAdapter(access);
            let (captures, stats) = collector.collect_with(&mut session, router, now);
            let (tables, parse) = parse_router(router, &captures, now);
            RouterCycle {
                router: router.clone(),
                tables,
                parse,
                capture_failures: stats.failures as usize,
                stats,
            }
        })
        .collect();
    assemble(per_router, now)
}

/// Sequential reference implementation, used by the ablation bench to
/// quantify the parallel speed-up and by tests to validate equivalence.
pub fn collect_aggregate_sequential(
    access: &impl ParallelAccess,
    routers: &[String],
    tables: &[TableKind],
    now: SimTime,
) -> AggregateView {
    let per_router: Vec<RouterCycle> = routers
        .iter()
        .map(|router| {
            let captures: Vec<_> = tables
                .iter()
                .map(|kind| {
                    access
                        .capture(router, *kind, now)
                        .map(|raw| preprocess(router, *kind, &raw, now))
                })
                .collect();
            cycle_from_captures(router, captures, now)
        })
        .collect();
    assemble(per_router, now)
}

/// A streaming collection pipeline: capture workers feed parse workers
/// over channels, and results fold into a shared aggregate as they land —
/// "generate combined results in real-time" rather than batch-at-the-end.
///
/// Built on crossbeam scoped threads + channels with the merged view
/// behind a `parking_lot` mutex. The observer callback fires after each
/// router's tables merge, with the router count folded so far — a UI can
/// paint incrementally.
pub fn collect_streaming<F>(
    access: &impl ParallelAccess,
    routers: &[String],
    tables: &[TableKind],
    now: SimTime,
    mut on_router: F,
) -> AggregateView
where
    F: FnMut(&RouterCycle, usize) + Send,
{
    let (tx, rx) = crossbeam::channel::unbounded::<RouterCycle>();
    let merged = parking_lot::Mutex::new(Tables::new("aggregate", now));
    let mut per_router: Vec<RouterCycle> = Vec::with_capacity(routers.len());

    crossbeam::thread::scope(|scope| {
        // One capture+parse worker per router.
        for router in routers {
            let tx = tx.clone();
            scope.spawn(move |_| {
                let captures: Vec<_> = tables
                    .iter()
                    .map(|kind| {
                        access
                            .capture(router, *kind, now)
                            .map(|raw| preprocess(router, *kind, &raw, now))
                    })
                    .collect();
                let _ = tx.send(cycle_from_captures(router, captures, now));
            });
        }
        drop(tx);
        // The folding side runs on this thread, consuming results in
        // completion order.
        let mut done = 0usize;
        while let Ok(cycle) = rx.recv() {
            merged.lock().merge(&cycle.tables);
            done += 1;
            on_router(&cycle, done);
            per_router.push(cycle);
        }
    })
    .expect("collection worker panicked");

    // Keep configuration order for the per-router list (completion order
    // is nondeterministic).
    per_router.sort_by_key(|rc| routers.iter().position(|r| *r == rc.router));
    // The live fold above merges in completion order, and merge breaks
    // ties (same pair seen by two routers) by first arrival — so the
    // folded view is only for mid-collection observers. `assemble`
    // rebuilds the final view in configuration order, making the returned
    // aggregate deterministic and identical to the batch collectors'.
    drop(merged);
    assemble(per_router, now)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mantra_net::SimDuration;
    use mantra_sim::Scenario;

    #[test]
    fn streaming_matches_batch() {
        let mut sc = Scenario::transition_snapshot(24, 0.5);
        sc.sim.advance_to(sc.sim.clock + SimDuration::hours(6));
        let now = sc.sim.clock;
        let routers = vec!["fixw".to_string(), "ucsb-gw".to_string()];
        let mut seen = Vec::new();
        let streaming = collect_streaming(&sc.sim, &routers, &TableKind::ALL, now, |rc, done| {
            seen.push((rc.router.clone(), done));
        });
        let batch = collect_aggregate(&sc.sim, &routers, &TableKind::ALL, now);
        assert_eq!(streaming.merged.pairs, batch.merged.pairs);
        assert_eq!(streaming.merged.routes, batch.merged.routes);
        assert_eq!(streaming.per_router.len(), 2);
        // Callback fired once per router with a monotone fold counter.
        assert_eq!(seen.len(), 2);
        let counters: Vec<usize> = seen.iter().map(|(_, d)| *d).collect();
        assert_eq!(counters, vec![1, 2]);
        // Per-router list follows configuration order regardless of
        // completion order.
        assert_eq!(streaming.per_router[0].router, "fixw");
        assert_eq!(streaming.per_router[1].router, "ucsb-gw");
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let mut sc = Scenario::transition_snapshot(21, 0.4);
        sc.sim.advance_to(sc.sim.clock + SimDuration::hours(8));
        let now = sc.sim.clock;
        let routers = vec!["fixw".to_string(), "ucsb-gw".to_string()];
        let par = collect_aggregate(&sc.sim, &routers, &TableKind::ALL, now);
        let seq = collect_aggregate_sequential(&sc.sim, &routers, &TableKind::ALL, now);
        assert_eq!(par.merged.pairs, seq.merged.pairs);
        assert_eq!(par.merged.routes, seq.merged.routes);
        assert_eq!(par.consistency.len(), seq.consistency.len());
        assert_eq!(par.per_router.len(), 2);
    }

    #[test]
    fn aggregate_sees_more_than_any_single_router() {
        let mut sc = Scenario::transition_snapshot(22, 0.6);
        sc.sim.advance_to(sc.sim.clock + SimDuration::hours(12));
        let now = sc.sim.clock;
        let routers = vec!["fixw".to_string(), "ucsb-gw".to_string()];
        let view = collect_aggregate(&sc.sim, &routers, &TableKind::ALL, now);
        let merged_sessions = view.merged.sessions.len();
        for rc in &view.per_router {
            assert!(merged_sessions >= rc.tables.sessions.len());
        }
        // The merged view is the union, so it is at least as large as the
        // largest single view; with sparse filtering at FIXW the union is
        // usually strictly larger than FIXW's own.
        assert!(merged_sessions > 0);
    }

    #[test]
    fn resilient_aggregate_recovers_what_single_attempts_lose() {
        let mut sc = Scenario::transition_snapshot(25, 0.4);
        sc.sim.advance_to(sc.sim.clock + SimDuration::hours(5));
        let now = sc.sim.clock;
        let routers = vec!["fixw".to_string(), "ucsb-gw".to_string()];
        let flaky = FlakyAccess::new(&sc.sim, 0.3, 0.3, 42);
        let baseline = collect_aggregate(&flaky, &routers, &TableKind::ALL, now);
        let resilient = collect_aggregate_resilient(
            &flaky,
            &routers,
            &TableKind::ALL,
            now,
            &RetryPolicy::default(),
        );
        let ok = |v: &AggregateView| v.per_router.iter().map(|r| r.stats.successes).sum::<u64>();
        // First attempts share the same deterministic rolls, so retries
        // can only add captures.
        assert!(
            ok(&resilient) > ok(&baseline),
            "{} vs {}",
            ok(&resilient),
            ok(&baseline)
        );
        let recovered: u64 = resilient
            .per_router
            .iter()
            .map(|r| r.stats.retry_successes)
            .sum();
        assert!(recovered > 0);
        // Health accounting reaches the aggregate view.
        assert!(resilient.per_router.iter().all(|r| r.stats.attempts > 0));
    }

    #[test]
    fn unknown_router_counts_as_failures_not_panic() {
        let mut sc = Scenario::transition_snapshot(23, 0.0);
        sc.sim.advance_to(sc.sim.clock + SimDuration::hours(1));
        let routers = vec!["fixw".to_string(), "ghost".to_string()];
        let view = collect_aggregate(&sc.sim, &routers, &TableKind::ALL, sc.sim.clock);
        let ghost = view
            .per_router
            .iter()
            .find(|r| r.router == "ghost")
            .unwrap();
        assert_eq!(ghost.capture_failures, TableKind::ALL.len());
        assert!(ghost.tables.pairs.is_empty());
        let fixw = view.per_router.iter().find(|r| r.router == "fixw").unwrap();
        assert_eq!(fixw.capture_failures, 0);
    }
}
