//! The output interface: interactive tables and graphs.
//!
//! The paper's Mantra shipped two Java-applet front-ends (its Figure 2):
//! summary tables with searching, sorting, algebraic manipulation of
//! numeric columns and date/time conversions; and 2-D line graphs with
//! series overlay and axis rescaling/zooming. This module implements the
//! same operations as a programmatic API with ASCII and CSV rendering —
//! the functionality is what matters for the reproduction, not the applet.

use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

use mantra_net::SimTime;

use crate::stats::Series;

// ---------------------------------------------------------------------
// Interactive tables
// ---------------------------------------------------------------------

/// One table cell.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Cell {
    /// Free text.
    Text(String),
    /// A numeric value.
    Num(f64),
    /// A timestamp (renders per the table's date mode).
    Time(SimTime),
}

impl Cell {
    /// Numeric view of the cell (times convert to Unix seconds).
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Cell::Num(v) => Some(*v),
            Cell::Time(t) => Some(t.as_secs() as f64),
            Cell::Text(_) => None,
        }
    }

    fn render(&self, dates: DateMode) -> String {
        match self {
            Cell::Text(s) => s.clone(),
            Cell::Num(v) => {
                if (v.fract()).abs() < 1e-9 && v.abs() < 1e15 {
                    format!("{}", *v as i64)
                } else {
                    format!("{v:.2}")
                }
            }
            Cell::Time(t) => match dates {
                DateMode::Iso => t.iso8601(),
                DateMode::UnixSeconds => t.as_secs().to_string(),
                DateMode::HourOfDay => format!("{:.2}", t.hour_of_day()),
            },
        }
    }
}

/// How timestamp columns display — the applet's "date and time conversion
/// operations".
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum DateMode {
    /// `1998-12-07 09:05:03`.
    #[default]
    Iso,
    /// Seconds since the epoch.
    UnixSeconds,
    /// Fractional hour of day (Figure 9's x-axis).
    HourOfDay,
}

/// Arithmetic for derived columns.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ColumnOp {
    /// `a + b`.
    Add,
    /// `a - b`.
    Sub,
    /// `a * b`.
    Mul,
    /// `a / b` (0 when `b` is 0).
    Div,
}

impl ColumnOp {
    fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            ColumnOp::Add => a + b,
            ColumnOp::Sub => a - b,
            ColumnOp::Mul => a * b,
            ColumnOp::Div => {
                if b == 0.0 {
                    0.0
                } else {
                    a / b
                }
            }
        }
    }
}

/// An interactive summary table.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Table {
    /// Display title.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Row data; every row has `columns.len()` cells.
    pub rows: Vec<Vec<Cell>>,
    /// Active date display mode.
    pub date_mode: DateMode,
    /// Summary line shown after the rows — set by [`Table::condense`]
    /// when a fleet-scale table collapses to its worst offenders.
    #[serde(default)]
    pub footer: Option<String>,
}

impl Table {
    /// An empty table with the given columns.
    pub fn new(title: impl Into<String>, columns: Vec<&str>) -> Self {
        Table {
            title: title.into(),
            columns: columns.into_iter().map(String::from).collect(),
            rows: Vec::new(),
            date_mode: DateMode::Iso,
            footer: None,
        }
    }

    /// Appends a row; panics when the arity is wrong (programming error).
    pub fn push_row(&mut self, row: Vec<Cell>) {
        assert_eq!(row.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Index of a column by header.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// Sorts rows by a column; numeric and time columns sort numerically,
    /// text lexicographically. Stable, so secondary orderings survive.
    pub fn sort_by(&mut self, column: &str, ascending: bool) {
        let Some(idx) = self.column_index(column) else {
            return;
        };
        self.rows.sort_by(|a, b| {
            let ord = match (a[idx].as_num(), b[idx].as_num()) {
                (Some(x), Some(y)) => x.partial_cmp(&y).unwrap_or(std::cmp::Ordering::Equal),
                _ => {
                    let x = a[idx].render(DateMode::Iso);
                    let y = b[idx].render(DateMode::Iso);
                    x.cmp(&y)
                }
            };
            if ascending {
                ord
            } else {
                ord.reverse()
            }
        });
    }

    /// Rows whose rendered cell in `column` contains `needle`
    /// (case-insensitive) — the applet's search box.
    pub fn search(&self, column: &str, needle: &str) -> Table {
        let needle = needle.to_ascii_lowercase();
        let idx = self.column_index(column);
        Table {
            title: format!("{} [search: {needle}]", self.title),
            columns: self.columns.clone(),
            rows: self
                .rows
                .iter()
                .filter(|r| {
                    idx.map(|i| {
                        r[i].render(self.date_mode)
                            .to_ascii_lowercase()
                            .contains(&needle)
                    })
                    .unwrap_or(false)
                })
                .cloned()
                .collect(),
            date_mode: self.date_mode,
            footer: None,
        }
    }

    /// Adds a derived numeric column `name = a op b` — the applet's
    /// algebraic column manipulation. Non-numeric cells yield 0.
    pub fn add_computed(&mut self, name: &str, a: &str, op: ColumnOp, b: &str) {
        let (Some(ia), Some(ib)) = (self.column_index(a), self.column_index(b)) else {
            return;
        };
        self.columns.push(name.to_string());
        for row in &mut self.rows {
            let va = row[ia].as_num().unwrap_or(0.0);
            let vb = row[ib].as_num().unwrap_or(0.0);
            row.push(Cell::Num(op.apply(va, vb)));
        }
    }

    /// Keeps only the first `n` rows (after a sort: top-N views).
    pub fn truncate(&mut self, n: usize) {
        self.rows.truncate(n);
    }

    /// Removes a column and its cells; unknown names are a no-op.
    pub fn drop_column(&mut self, name: &str) {
        let Some(i) = self.column_index(name) else {
            return;
        };
        self.columns.remove(i);
        for row in &mut self.rows {
            row.remove(i);
        }
    }

    /// Fleet-scale degradation: when the table has more than `keep` rows,
    /// keeps the top `keep` ranked descending by `rank_by` (stable, so
    /// ties stay in insertion order — the worst offenders float up) and
    /// records `summary` as the footer line. Tables at or under the
    /// threshold are left untouched.
    pub fn condense(&mut self, keep: usize, rank_by: &str, summary: impl Into<String>) {
        if self.rows.len() <= keep {
            return;
        }
        self.sort_by(rank_by, false);
        self.rows.truncate(keep);
        self.footer = Some(summary.into());
    }

    /// Renders as aligned ASCII.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                r.iter()
                    .enumerate()
                    .map(|(i, c)| {
                        let s = c.render(self.date_mode);
                        widths[i] = widths[i].max(s.len());
                        s
                    })
                    .collect()
            })
            .collect();
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<w$}", c, w = widths[i]))
            .collect();
        let _ = writeln!(out, "{}", header.join("  "));
        let _ = writeln!(
            out,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for row in rendered {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<w$}", c, w = widths[i]))
                .collect();
            let _ = writeln!(out, "{}", line.join("  "));
        }
        if let Some(footer) = &self.footer {
            let _ = writeln!(out, "-- {footer}");
        }
        out
    }

    /// Renders as CSV (header + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.columns.join(","));
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .map(|c| {
                    let s = c.render(self.date_mode);
                    if s.contains(',') {
                        format!("\"{s}\"")
                    } else {
                        s
                    }
                })
                .collect();
            let _ = writeln!(out, "{}", line.join(","));
        }
        out
    }
}

// ---------------------------------------------------------------------
// Graphs
// ---------------------------------------------------------------------

/// A 2-D line-graph view over one or more series.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Graph {
    /// Display title.
    pub title: String,
    /// Overlaid series (the applet's multi-graph display).
    pub series: Vec<Series>,
    /// Explicit x window; `None` = fit data.
    pub x_range: Option<(SimTime, SimTime)>,
    /// Explicit y window; `None` = fit data.
    pub y_range: Option<(f64, f64)>,
}

impl Graph {
    /// A graph of one series.
    pub fn new(title: impl Into<String>) -> Self {
        Graph {
            title: title.into(),
            ..Graph::default()
        }
    }

    /// Overlays another series (Figure 2's multi-plot feature).
    pub fn overlay(&mut self, series: Series) -> &mut Self {
        self.series.push(series);
        self
    }

    /// Sets the x window (the click-and-drag zoom).
    pub fn zoom_x(&mut self, from: SimTime, to: SimTime) -> &mut Self {
        self.x_range = Some((from, to));
        self
    }

    /// Sets the y window (manual axis rescale).
    pub fn scale_y(&mut self, lo: f64, hi: f64) -> &mut Self {
        self.y_range = Some((lo, hi));
        self
    }

    /// Clears zoom/scale back to auto-fit.
    pub fn reset_view(&mut self) -> &mut Self {
        self.x_range = None;
        self.y_range = None;
        self
    }

    /// The effective data window after zoom.
    fn effective(&self) -> (Vec<Series>, (u64, u64), (f64, f64)) {
        let windowed: Vec<Series> = self
            .series
            .iter()
            .map(|s| match self.x_range {
                Some((a, b)) => s.window(a, b),
                None => s.clone(),
            })
            .collect();
        let xs: Vec<u64> = windowed
            .iter()
            .flat_map(|s| s.points.iter().map(|(t, _)| t.as_secs()))
            .collect();
        let x_lo = xs.iter().copied().min().unwrap_or(0);
        let x_hi = xs.iter().copied().max().unwrap_or(x_lo + 1).max(x_lo + 1);
        let (y_lo, y_hi) = self.y_range.unwrap_or_else(|| {
            let ys: Vec<f64> = windowed
                .iter()
                .flat_map(|s| s.points.iter().map(|(_, v)| *v))
                .collect();
            let lo = ys.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = ys.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            if lo.is_finite() && hi.is_finite() {
                (lo.min(0.0), hi.max(lo + 1.0))
            } else {
                (0.0, 1.0)
            }
        });
        (windowed, (x_lo, x_hi), (y_lo, y_hi))
    }

    /// Renders an ASCII plot `width`×`height` characters, one glyph per
    /// series, with y labels and the time range in the footer.
    pub fn render(&self, width: usize, height: usize) -> String {
        const GLYPHS: [char; 6] = ['*', '+', 'o', 'x', '#', '@'];
        let (series, (x_lo, x_hi), (y_lo, y_hi)) = self.effective();
        let w = width.max(16);
        let h = height.max(4);
        let mut grid = vec![vec![' '; w]; h];
        for (si, s) in series.iter().enumerate() {
            let glyph = GLYPHS[si % GLYPHS.len()];
            for (t, v) in &s.points {
                let x = ((t.as_secs() - x_lo) as f64 / (x_hi - x_lo) as f64 * (w - 1) as f64)
                    .round() as usize;
                let clamped = v.clamp(y_lo, y_hi);
                let y =
                    ((clamped - y_lo) / (y_hi - y_lo).max(1e-12) * (h - 1) as f64).round() as usize;
                grid[h - 1 - y.min(h - 1)][x.min(w - 1)] = glyph;
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        for (i, row) in grid.iter().enumerate() {
            let yv = y_hi - (y_hi - y_lo) * i as f64 / (h - 1) as f64;
            let _ = writeln!(out, "{yv:>10.1} |{}", row.iter().collect::<String>());
        }
        let _ = writeln!(out, "{:>10} +{}", "", "-".repeat(w));
        let _ = writeln!(
            out,
            "{:>12}{}  ..  {}",
            "",
            SimTime(x_lo).iso8601(),
            SimTime(x_hi).iso8601()
        );
        for (si, s) in series.iter().enumerate() {
            let _ = writeln!(out, "  {} {}", GLYPHS[si % GLYPHS.len()], s.name);
        }
        out
    }

    /// All series as CSV columns on a shared time axis (union of times;
    /// missing values blank).
    pub fn to_csv(&self) -> String {
        let mut times: Vec<SimTime> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|(t, _)| *t))
            .collect();
        times.sort_unstable();
        times.dedup();
        let maps: Vec<std::collections::BTreeMap<SimTime, f64>> = self
            .series
            .iter()
            .map(|s| s.points.iter().copied().collect())
            .collect();
        let mut out = String::new();
        let names: Vec<&str> = self.series.iter().map(|s| s.name.as_str()).collect();
        let _ = writeln!(out, "time,{}", names.join(","));
        for t in times {
            let vals: Vec<String> = maps
                .iter()
                .map(|m| m.get(&t).map(|v| format!("{v}")).unwrap_or_default())
                .collect();
            let _ = writeln!(out, "{},{}", t.iso8601(), vals.join(","));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u64) -> SimTime {
        SimTime(SimTime::from_ymd(1998, 11, 1).as_secs() + n * 3600)
    }

    fn sample_table() -> Table {
        let mut table = Table::new(
            "Busiest Sessions",
            vec!["group", "density", "bandwidth", "seen"],
        );
        table.push_row(vec![
            Cell::Text("224.2.0.1".into()),
            Cell::Num(3.0),
            Cell::Num(64.0),
            Cell::Time(t(0)),
        ]);
        table.push_row(vec![
            Cell::Text("224.2.0.2".into()),
            Cell::Num(120.0),
            Cell::Num(256.0),
            Cell::Time(t(5)),
        ]);
        table.push_row(vec![
            Cell::Text("224.9.0.1".into()),
            Cell::Num(1.0),
            Cell::Num(0.8),
            Cell::Time(t(2)),
        ]);
        table
    }

    #[test]
    fn sort_numeric_and_text() {
        let mut table = sample_table();
        table.sort_by("density", false);
        assert_eq!(table.rows[0][1], Cell::Num(120.0));
        table.sort_by("group", true);
        assert_eq!(table.rows[0][0], Cell::Text("224.2.0.1".into()));
        // Sorting by a missing column is a no-op.
        let before = table.clone();
        table.sort_by("nope", true);
        assert_eq!(table, before);
    }

    #[test]
    fn search_is_case_insensitive_substring() {
        let table = sample_table();
        let hits = table.search("group", "224.2");
        assert_eq!(hits.rows.len(), 2);
        let none = table.search("group", "239.");
        assert_eq!(none.rows.len(), 0);
    }

    #[test]
    fn computed_columns() {
        let mut table = sample_table();
        table.add_computed("bw_per_member", "bandwidth", ColumnOp::Div, "density");
        let idx = table.column_index("bw_per_member").unwrap();
        assert!((table.rows[0][idx].as_num().unwrap() - 64.0 / 3.0).abs() < 1e-9);
        // Division by zero yields 0, not a panic.
        table.push_row(vec![
            Cell::Text("g".into()),
            Cell::Num(0.0),
            Cell::Num(9.0),
            Cell::Time(t(1)),
            Cell::Num(0.0),
        ]);
        let mut t2 = table.clone();
        t2.add_computed("x", "bandwidth", ColumnOp::Div, "density");
        let xi = t2.column_index("x").unwrap();
        assert_eq!(t2.rows[3][xi].as_num(), Some(0.0));
    }

    #[test]
    fn date_modes_change_rendering() {
        let mut table = sample_table();
        assert!(table.render().contains("1998-11-01 00:00:00"));
        table.date_mode = DateMode::UnixSeconds;
        assert!(table.render().contains(&t(0).as_secs().to_string()));
        table.date_mode = DateMode::HourOfDay;
        assert!(table.render().contains("5.00"));
    }

    #[test]
    fn csv_export() {
        let table = sample_table();
        let csv = table.to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), "group,density,bandwidth,seen");
        assert_eq!(csv.lines().count(), 4);
    }

    #[test]
    fn graph_overlay_zoom_render() {
        let mut a = Series::new("sessions");
        let mut b = Series::new("active");
        for i in 0..48u64 {
            a.push(t(i), 100.0 + (i % 7) as f64 * 30.0);
            b.push(t(i), 20.0 + (i % 5) as f64);
        }
        let mut graph = Graph::new("Sessions over time");
        graph.overlay(a).overlay(b);
        let art = graph.render(60, 12);
        assert!(art.contains("Sessions over time"));
        assert!(art.contains('*') && art.contains('+'), "{art}");
        assert!(art.contains("sessions") && art.contains("active"));
        // Zoom to a sub-window restricts the x footer.
        graph.zoom_x(t(10), t(20));
        let zoomed = graph.render(60, 12);
        assert!(zoomed.contains(&t(10).iso8601()));
        assert!(zoomed.contains(&t(20).iso8601()));
        graph.reset_view();
        assert_eq!(graph.x_range, None);
    }

    #[test]
    fn graph_y_scale_clamps() {
        let mut s = Series::new("v");
        s.push(t(0), 0.0);
        s.push(t(1), 1_000.0);
        let mut graph = Graph::new("g");
        graph.overlay(s).scale_y(0.0, 10.0);
        // Rendering must not panic and the outlier is clamped to the top row.
        let art = graph.render(30, 6);
        assert!(art.lines().nth(1).unwrap().contains('*'));
    }

    #[test]
    fn graph_csv_union_axis() {
        let mut a = Series::new("a");
        a.push(t(0), 1.0);
        a.push(t(2), 3.0);
        let mut b = Series::new("b");
        b.push(t(1), 5.0);
        let mut graph = Graph::new("g");
        graph.overlay(a).overlay(b);
        let csv = graph.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].ends_with("1,"));
        assert!(lines[2].ends_with(",5"));
    }

    #[test]
    fn empty_graph_renders() {
        let graph = Graph::new("empty");
        let art = graph.render(20, 5);
        assert!(art.contains("empty"));
    }
}
