//! The monitoring orchestrator: Figure 1's pipeline, end to end.
//!
//! One [`Monitor`] owns the collector, the shared interning
//! [`TableStore`], the per-router state (delta logs, statistics
//! histories, anomaly detectors) and the per-stage metrics registry.
//! Each call to [`Monitor::run_cycle`] threads one full monitoring cycle
//! through the typed stages of [`crate::pipeline`]:
//! capture → parse → enrich → log → analyse.

use std::collections::BTreeMap;
use std::io;
use std::path::PathBuf;
use std::sync::Arc;

use mantra_net::{BitRate, GroupAddr, SimDuration, SimTime};

use crate::aggregate::ParallelAccess;
use crate::anomaly::{Anomaly, InconsistencyMonitor};
use crate::archive::{ArchiveReader, ArchiveSpec, QueryCache};
use crate::collector::{CollectStats, Collector, RetryPolicy, RouterAccess};
use crate::logger::TableLog;
use crate::longterm::LongTermTracker;
use crate::output::{Cell, Graph, Table};
use crate::pipeline::{
    AnalyseStage, CaptureStage, EnrichStage, LogStage, ParallelCaptureStage, ParseStage,
    PipelineMetrics, RawCycle, RouterState,
};
use crate::processor::ParseStats;
use crate::stats::{RouteChurn, RouteStats, Series, UsageStats};
use crate::store::TableStore;
use crate::tables::Tables;

/// Monitor configuration.
#[derive(Clone, Debug)]
pub struct MonitorConfig {
    /// Routers to poll each cycle (names resolvable by the access layer).
    pub routers: Vec<String>,
    /// Collection interval (the paper used minutes-scale cycles).
    pub interval: SimDuration,
    /// Sender classification threshold (the paper's 4 kbps).
    pub threshold: BitRate,
    /// Delta log: full snapshot every this many records.
    pub log_full_every: usize,
    /// Where per-router archives live (in memory, or on disk).
    pub archive: ArchiveSpec,
    /// Route-injection detector: minimum new routes in one cycle.
    pub injection_min_new: usize,
    /// Retry policy for transient capture failures.
    pub retry: RetryPolicy,
    /// A router is flagged stale after this many intervals without a
    /// successful capture.
    pub stale_after_intervals: u64,
    /// A router is retired — its archive sealed, its health shown as
    /// `retired` instead of serving the last status forever — after this
    /// many *consecutive* missed cycles. A later successful capture
    /// (rejoin) unseals the archive at the next epoch.
    pub retire_after_intervals: u64,
    /// Whether the Analyse stage runs the cross-router consistency sweep.
    /// A fleet shard turns this off: [`crate::fleet::FleetMonitor`] sweeps
    /// globally so cross-shard pairs are not missed.
    pub cross_router_checks: bool,
    /// Above this many rows, the per-router health and archive tables
    /// condense to the worst offenders plus a totals footer instead of
    /// printing one row per router (fleet-scale readability).
    pub table_detail_limit: usize,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            routers: vec!["fixw".into(), "ucsb-gw".into()],
            interval: SimDuration::mins(15),
            threshold: mantra_net::rate::SENDER_THRESHOLD,
            log_full_every: 96, // one full snapshot per day at 15-min cycles
            archive: ArchiveSpec::Memory,
            injection_min_new: 200,
            retry: RetryPolicy::default(),
            stale_after_intervals: 4,
            retire_after_intervals: 8,
            cross_router_checks: true,
            table_detail_limit: 64,
        }
    }
}

/// Per-router collection health, accumulated across cycles.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RouterHealth {
    /// Tables captured in full.
    pub successes: u64,
    /// Tables whose final attempt failed (even if salvaged).
    pub failures: u64,
    /// Retry attempts issued.
    pub retries: u64,
    /// Tables recovered by a retry.
    pub retry_successes: u64,
    /// Truncated tables salvaged from partials.
    pub salvaged: u64,
    /// Raw bytes captured.
    pub raw_bytes: u64,
    /// Cycles this router participated in.
    pub cycles: u64,
    /// Last cycle with at least one full capture.
    pub last_success: Option<SimTime>,
    /// Last cycle attempted.
    pub last_attempt: Option<SimTime>,
    /// Backoff latency added by retries in the latest cycle.
    pub last_latency: SimDuration,
    /// Whether this router's archive has degraded persistence: the log
    /// fell back to an in-memory backend (e.g. unwritable archive dir)
    /// or has recorded write errors.
    pub archive_degraded: bool,
    /// Consecutive cycles with no usable capture (reset on any success or
    /// salvage). This is what drives the explicit lifecycle below.
    pub missed_cycles: u64,
    /// Whether the router is currently retired: missed cycles crossed
    /// [`MonitorConfig::retire_after_intervals`] and the archive was
    /// sealed. Cleared on rejoin.
    pub retired: bool,
    /// How many times this router has rejoined after a retirement.
    pub rejoins: u64,
}

/// Explicit per-router lifecycle, judged from consecutive missed cycles —
/// the registry never serves the last OK status forever.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LifecycleState {
    /// Captures are arriving.
    Active,
    /// `missed_cycles` consecutive cycles produced nothing usable.
    Stale {
        /// How many cycles in a row have been missed.
        missed_cycles: u64,
    },
    /// Missed cycles crossed the retirement threshold; the archive is
    /// sealed until the router rejoins.
    Retired,
}

impl LifecycleState {
    /// Table/JSON label: `active`, `stale(3)`, `retired`.
    pub fn label(&self) -> String {
        match self {
            LifecycleState::Active => "active".into(),
            LifecycleState::Stale { missed_cycles } => format!("stale({missed_cycles})"),
            LifecycleState::Retired => "retired".into(),
        }
    }
}

impl RouterHealth {
    pub(crate) fn record(&mut self, stats: &CollectStats, now: SimTime) {
        self.successes += stats.successes;
        self.failures += stats.failures;
        self.retries += stats.retries;
        self.retry_successes += stats.retry_successes;
        self.salvaged += stats.salvaged;
        self.raw_bytes += stats.raw_bytes;
        self.cycles += 1;
        self.last_attempt = Some(now);
        if stats.successes > 0 {
            self.last_success = Some(now);
        }
        if stats.successes + stats.salvaged > 0 {
            self.missed_cycles = 0;
        } else {
            self.missed_cycles += 1;
        }
        self.last_latency = stats.backoff;
    }

    /// Whether the router has gone `stale_after` collection intervals (of
    /// length `interval`) without a successful capture, judged at `now`.
    pub fn is_stale(&self, now: SimTime, interval: SimDuration, stale_after: u64) -> bool {
        match self.last_success {
            Some(t) => now.since(t) > interval * stale_after,
            None => self.cycles >= stale_after,
        }
    }

    /// The explicit lifecycle state under a `stale_after` missed-cycle
    /// threshold. Retirement is a recorded transition (the archive gets
    /// sealed when it happens), so it wins over the derived staleness.
    pub fn lifecycle(&self, stale_after: u64) -> LifecycleState {
        if self.retired {
            LifecycleState::Retired
        } else if self.missed_cycles >= stale_after.max(1) {
            LifecycleState::Stale {
                missed_cycles: self.missed_cycles,
            }
        } else {
            LifecycleState::Active
        }
    }
}

/// What one cycle produced.
#[derive(Clone, Debug, PartialEq)]
pub struct CycleReport {
    /// Cycle timestamp.
    pub at: SimTime,
    /// Per-router `(usage, routes)` statistics, in configuration order.
    pub per_router: Vec<(String, UsageStats, RouteStats)>,
    /// Anomalies raised this cycle.
    pub anomalies: Vec<Anomaly>,
}

/// Borrows a [`ParallelAccess`] as a throwaway [`RouterAccess`] session —
/// the parallel cycle opens one per router, mirroring how the real
/// enhancement opened one expect session per router.
pub struct SessionAdapter<'a, P: ?Sized>(pub &'a P);

impl<P: ParallelAccess + ?Sized> RouterAccess for SessionAdapter<'_, P> {
    fn capture(
        &mut self,
        router: &str,
        table: mantra_router_cli::TableKind,
        now: SimTime,
    ) -> Result<String, crate::collector::CaptureError> {
        self.0.capture(router, table, now)
    }
}

/// The Mantra orchestrator: a thin driver over the staged pipeline.
pub struct Monitor {
    /// Configuration.
    pub cfg: MonitorConfig,
    collector: Collector,
    /// Shared interning store; every stage's keys become dense ids here.
    store: TableStore,
    /// Per-router state, indexed by interned router id.
    state: Vec<RouterState>,
    /// Session names learned from an external directory (SAP/sdr); the
    /// paper's Session table carries "the group's name (if available)".
    session_names: BTreeMap<GroupAddr, String>,
    inconsistency: InconsistencyMonitor,
    /// All anomalies raised so far.
    pub anomalies: Vec<Anomaly>,
    /// Cumulative parse accounting.
    pub parse_totals: ParseStats,
    /// Parse accounting of the latest cycle only, for degradation checks.
    pub parse_last: ParseStats,
    metrics: PipelineMetrics,
    /// LRU over archive replay query results, shared with any concurrent
    /// readers (the daemon serves `/replay` through this same cache so
    /// its hit/miss counters land in [`Monitor::health`]).
    query_cache: Arc<QueryCache>,
    cycles: u64,
}

/// A cycle whose malformed lines exceed this percentage of its row-like
/// lines (parsed + malformed) is flagged as degraded parsing — typically a
/// CLI format drift or a router spewing garbage mid-dump.
pub const DEGRADED_PARSE_PCT: f64 = 5.0;

impl Monitor {
    /// A monitor with the given configuration.
    pub fn new(cfg: MonitorConfig) -> Self {
        let collector = Collector::with_retry(cfg.retry.clone());
        Monitor {
            cfg,
            collector,
            store: TableStore::default(),
            state: Vec::new(),
            session_names: BTreeMap::new(),
            inconsistency: InconsistencyMonitor::default(),
            anomalies: Vec::new(),
            parse_totals: ParseStats::default(),
            parse_last: ParseStats::default(),
            metrics: PipelineMetrics::default(),
            query_cache: Arc::new(QueryCache::default()),
            cycles: 0,
        }
    }

    /// Cycles completed.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// The collector's capture failure count.
    pub fn capture_failures(&self) -> u64 {
        self.collector.failures
    }

    /// The state of one router, if it has participated in a cycle (and
    /// was not rebalanced away to another shard).
    fn state_of(&self, router: &str) -> Option<&RouterState> {
        self.store
            .routers
            .get(&router.to_string())
            .map(|id| &self.state[id as usize])
            .filter(|st| !st.evicted)
    }

    /// Removes a router's state for a fleet rebalance, leaving an
    /// evicted tombstone in its interned slot (ids never renumber). The
    /// state carries its open archive with it. `None` when the router
    /// has no state here (never polled, or already evicted).
    pub(crate) fn evict_router(&mut self, router: &str) -> Option<RouterState> {
        let id = self.store.routers.get(&router.to_string())?;
        let st = &mut self.state[id as usize];
        if st.evicted {
            return None;
        }
        Some(std::mem::replace(
            st,
            RouterState::tombstone(router.to_string()),
        ))
    }

    /// Installs a router's state moved in by a fleet rebalance, replacing
    /// the tombstone if this shard held the router before. Per-router
    /// state is store-independent (deltas are address-keyed, the archive
    /// travels as an open log), so adoption is a slot write — no replay,
    /// no re-interning of table keys.
    pub(crate) fn adopt_router(&mut self, st: RouterState) {
        let id = self.store.routers.intern_str(&st.name);
        if id as usize == self.state.len() {
            self.state.push(st);
        } else {
            self.state[id as usize] = st;
        }
    }

    /// Replaces the polling list (a fleet rebalance recomputes each
    /// shard's list so global configuration order is preserved).
    pub(crate) fn set_routers(&mut self, routers: Vec<String>) {
        self.cfg.routers = routers;
    }

    /// One full monitoring cycle at `now`, polling routers serially over a
    /// single access session (the paper's original expect-script shape).
    pub fn run_cycle(&mut self, access: &mut dyn RouterAccess, now: SimTime) -> CycleReport {
        let raw = {
            let mut stage = CaptureStage {
                collector: &self.collector,
                routers: &self.cfg.routers,
                access,
            };
            self.metrics.run(&mut stage, now)
        };
        self.drive(raw, false)
    }

    /// One full monitoring cycle at `now`, fanning the per-router capture
    /// and parse work across the rayon pool — the paper's planned
    /// "collect data from multiple routers concurrently". The stateful
    /// stages run serially in configuration order afterwards, so the
    /// cycle report and the delta logs are byte-identical to
    /// [`Monitor::run_cycle`] over the same access and timestamps.
    pub fn run_cycle_parallel<P: ParallelAccess>(
        &mut self,
        access: &P,
        now: SimTime,
    ) -> CycleReport {
        let raw = {
            let mut stage = ParallelCaptureStage {
                collector: &self.collector,
                routers: &self.cfg.routers,
                access,
            };
            self.metrics.run(&mut stage, now)
        };
        self.drive(raw, true)
    }

    /// Threads one captured cycle through the parse → enrich → log →
    /// analyse stages, folding the totals the artifacts carry. With
    /// `parallel` set, every stage fans its per-router bodies across the
    /// rayon pool (per-router state sharded by interned id); the outputs
    /// are byte-identical to the serial path.
    fn drive(&mut self, raw: RawCycle, parallel: bool) -> CycleReport {
        self.cycles += 1;
        for rc in &raw.routers {
            self.collector.successes += rc.stats.successes;
            self.collector.failures += rc.stats.failures;
        }
        let parsed = self.metrics.run(&mut ParseStage { parallel }, raw);
        self.parse_last = ParseStats::default();
        for pr in &parsed.routers {
            self.parse_totals.merge(pr.parse);
            self.parse_last.merge(pr.parse);
        }
        let enriched = {
            let mut stage = EnrichStage {
                store: &mut self.store,
                state: &mut self.state,
                session_names: &self.session_names,
                log_full_every: self.cfg.log_full_every,
                archive: &self.cfg.archive,
                retire_after: self.cfg.retire_after_intervals,
                parallel,
            };
            self.metrics.run(&mut stage, parsed)
        };
        let logged = {
            let mut stage = LogStage {
                store: &mut self.store,
                state: &mut self.state,
                parallel,
            };
            let logged = self.metrics.run(&mut stage, enriched);
            self.metrics.record_archives(&self.state);
            self.metrics.record_cache(self.query_cache.stats());
            logged
        };
        let report = {
            let mut stage = AnalyseStage {
                state: &mut self.state,
                threshold: self.cfg.threshold,
                injection_min_new: self.cfg.injection_min_new,
                inconsistency: &mut self.inconsistency,
                cross_router: self.cfg.cross_router_checks,
                parallel,
            };
            self.metrics.run(&mut stage, logged)
        };
        self.anomalies.extend(report.anomalies.iter().cloned());
        report
    }

    // ------------------------------------------------------------------
    // Result access
    // ------------------------------------------------------------------

    /// The archive replay query cache. Concurrent readers (the daemon)
    /// share this handle so their hits and misses show up in
    /// [`Monitor::health`] and the HTML report.
    pub fn query_cache(&self) -> Arc<QueryCache> {
        Arc::clone(&self.query_cache)
    }

    /// Where `router`'s on-disk archive lives, if the configured
    /// [`ArchiveSpec`] writes to disk at all.
    pub fn archive_path(&self, router: &str) -> Option<PathBuf> {
        match &self.cfg.archive {
            ArchiveSpec::Memory => None,
            ArchiveSpec::File { dir, .. } | ArchiveSpec::Threaded { dir, .. } => {
                Some(ArchiveSpec::path_for(dir, router))
            }
        }
    }

    /// Replay summary lines for `router`'s archive up to `at` (all of it
    /// when `at` is `None`), through the shared query cache. Opens the
    /// archive read-only via [`ArchiveReader`], so a live writer is never
    /// disturbed; repeated identical queries are served from the cache
    /// (the key embeds the record count, so a fresh append changes the
    /// key and naturally invalidates stale entries).
    pub fn replay_lines_at(
        &self,
        router: &str,
        at: Option<SimTime>,
    ) -> io::Result<Arc<Vec<String>>> {
        let path = self.archive_path(router).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::Unsupported,
                "archives are in-memory (ArchiveSpec::Memory): nothing on disk to replay",
            )
        })?;
        let reader = ArchiveReader::open(&path)?;
        let count = match at {
            Some(t) => reader.records_at_or_before(t),
            None => reader.len(),
        };
        let key = (path, reader.epoch(), (0, count));
        self.query_cache
            .get_or_try_insert(key, || reader.summary_lines(count))
    }

    /// Collection health of one router.
    pub fn router_health(&self, router: &str) -> Option<&RouterHealth> {
        self.state_of(router).map(|s| &s.health)
    }

    /// The per-router collection-health summary, judged at `now`: capture
    /// counts, retry effectiveness, salvage counts, volume, the retry
    /// latency of the latest cycle, last success and staleness.
    pub fn health(&self, now: SimTime) -> Table {
        let mut table = Table::new(
            "Collection health",
            vec![
                "router",
                "ok",
                "failed",
                "retries",
                "recovered",
                "salvaged",
                "kbytes",
                "latency_s",
                "last_success",
                "stale",
                "state",
                "archive",
            ],
        );
        let (mut ok, mut failed, mut retries, mut stale_n, mut retired_n, mut degraded_n) =
            (0u64, 0u64, 0u64, 0usize, 0usize, 0usize);
        for router in &self.cfg.routers {
            let Some(h) = self.router_health(router) else {
                continue;
            };
            let stale = h.is_stale(now, self.cfg.interval, self.cfg.stale_after_intervals);
            let lifecycle = h.lifecycle(self.cfg.stale_after_intervals);
            ok += h.successes;
            failed += h.failures;
            retries += h.retries;
            stale_n += usize::from(stale);
            retired_n += usize::from(lifecycle == LifecycleState::Retired);
            degraded_n += usize::from(h.archive_degraded);
            table.push_row(vec![
                Cell::Text(router.clone()),
                Cell::Num(h.successes as f64),
                Cell::Num(h.failures as f64),
                Cell::Num(h.retries as f64),
                Cell::Num(h.retry_successes as f64),
                Cell::Num(h.salvaged as f64),
                Cell::Num(h.raw_bytes as f64 / 1024.0),
                Cell::Num(h.last_latency.as_secs() as f64),
                Cell::Text(
                    h.last_success
                        .map(|t| t.iso8601())
                        .unwrap_or_else(|| "never".into()),
                ),
                Cell::Text(if stale { "STALE" } else { "ok" }.into()),
                Cell::Text(lifecycle.label()),
                Cell::Text(if h.archive_degraded { "degraded" } else { "ok" }.into()),
            ]);
        }
        let n = table.rows.len();
        table.condense(
            self.cfg.table_detail_limit,
            "failed",
            format!(
                "{} of {n} routers shown (worst by failures); fleet totals: \
                 ok {ok}, failed {failed}, retries {retries}, {stale_n} stale, \
                 {retired_n} retired, {degraded_n} degraded archives",
                self.cfg.table_detail_limit.min(n),
            ),
        );
        table
    }

    /// The explicit lifecycle state of one router (`None` before its first
    /// cycle).
    pub fn lifecycle_of(&self, router: &str) -> Option<LifecycleState> {
        self.router_health(router)
            .map(|h| h.lifecycle(self.cfg.stale_after_intervals))
    }

    /// Whether the latest cycle's parsing is degraded: malformed lines
    /// exceeded [`DEGRADED_PARSE_PCT`] of its row-like lines.
    pub fn parse_degraded(&self) -> bool {
        parse_degraded(&self.parse_last)
    }

    /// The per-table-kind parse accounting summary over all cycles so far.
    pub fn parse_table(&self) -> Table {
        parse_accounting_table(&self.parse_totals, "Parse accounting")
    }

    /// The pipeline's per-stage metrics registry.
    pub fn pipeline(&self) -> &PipelineMetrics {
        &self.metrics
    }

    /// The per-stage pipeline summary table: invocations, items handled,
    /// wall-clock time and accumulated simulated latency per stage.
    pub fn stage_table(&self) -> Table {
        self.metrics.table()
    }

    /// The per-router archive summary: backend, record/checkpoint counts,
    /// stored volume, delta savings and durability accounting.
    pub fn archive_table(&self) -> Table {
        let mut table = Table::new(
            "Archives",
            vec![
                "router",
                "backend",
                "v",
                "epoch",
                "dict",
                "records",
                "checkpoints",
                "kbytes",
                "savings_pct",
                "fsyncs",
                "pending",
                "queue",
                "q_peak",
                "blk_ms",
                "dropped",
                "errors",
                "lifecycle",
                "persistence",
            ],
        );
        let (mut records, mut kbytes, mut fsyncs, mut dropped, mut errors_n, mut degraded_n) =
            (0u64, 0.0f64, 0u64, 0u64, 0u64, 0usize);
        let mut sealed_n = 0usize;
        for router in &self.cfg.routers {
            let Some(st) = self.state_of(router) else {
                continue;
            };
            let stats = st.log.archive_stats();
            let info = st.log.describe();
            let errors = st.log.write_errors.max(stats.write_errors) + st.log.replay_errors();
            let degraded =
                st.log.fell_back || stats.dropped_records > 0 || st.log.replay_errors() > 0;
            records += stats.records;
            kbytes += stats.bytes as f64 / 1024.0;
            fsyncs += stats.fsyncs;
            dropped += stats.dropped_records;
            errors_n += errors;
            degraded_n += usize::from(degraded);
            table.push_row(vec![
                Cell::Text(router.clone()),
                Cell::Text(st.log.backend_kind().into()),
                Cell::Num(info.format_version as f64),
                Cell::Num(info.epoch as f64),
                Cell::Num(info.dict_entries as f64),
                Cell::Num(stats.records as f64),
                Cell::Num(stats.checkpoints as f64),
                Cell::Num(stats.bytes as f64 / 1024.0),
                Cell::Num(100.0 * st.log.savings_ratio()),
                Cell::Num(stats.fsyncs as f64),
                Cell::Num(stats.pending_appends as f64),
                Cell::Num(stats.queue_depth as f64),
                Cell::Num(stats.queue_high_water as f64),
                Cell::Num(stats.blocked_nanos as f64 / 1e6),
                Cell::Num(stats.dropped_records as f64),
                Cell::Num(errors as f64),
                Cell::Text(if st.log.is_sealed() { "sealed" } else { "live" }.into()),
                Cell::Text(if degraded { "degraded" } else { "ok" }.into()),
            ]);
            sealed_n += usize::from(st.log.is_sealed());
        }
        let n = table.rows.len();
        table.condense(
            self.cfg.table_detail_limit,
            "errors",
            format!(
                "{} of {n} archives shown (worst by errors); fleet totals: \
                 {records} records, {kbytes:.0} kbytes, {fsyncs} fsyncs, \
                 {dropped} dropped, {errors_n} errors, {sealed_n} sealed, \
                 {degraded_n} degraded",
                self.cfg.table_detail_limit.min(n),
            ),
        );
        table
    }

    /// Archive growth of one router: `(cycle time, stored bytes)` after
    /// every cycle.
    pub fn archive_growth(&self, router: &str) -> &[(SimTime, u64)] {
        self.state_of(router)
            .map(|s| s.archive_growth.as_slice())
            .unwrap_or(&[])
    }

    /// The shared interning store.
    pub fn store(&self) -> &TableStore {
        &self.store
    }

    /// This monitor's partial sum of every router's streaming integer
    /// accumulators — the shard-level contribution the fleet's
    /// aggregation tier composes by exact integer summation.
    pub fn stream_totals(&self) -> crate::stats_stream::StatsTotals {
        let mut acc = crate::stats_stream::StatsTotals::default();
        for st in &self.state {
            if st.evicted {
                continue;
            }
            acc.absorb(&st.stream.totals());
        }
        acc
    }

    /// Summed route churn across this monitor's routers for the cycle at
    /// `at` (routers without a churn entry for that cycle — e.g. their
    /// first — contribute nothing).
    pub fn cycle_churn(&self, at: SimTime) -> RouteChurn {
        let mut acc = RouteChurn::default();
        for st in &self.state {
            if st.evicted {
                continue;
            }
            if let Some((t, churn)) = st.churn.last() {
                if *t == at {
                    acc.absorb(churn);
                }
            }
        }
        acc
    }

    /// Usage-statistic history of one router.
    pub fn usage_history(&self, router: &str) -> &[UsageStats] {
        self.state_of(router)
            .map(|s| s.usage.as_slice())
            .unwrap_or(&[])
    }

    /// Route-statistic history of one router.
    pub fn route_history(&self, router: &str) -> &[RouteStats] {
        self.state_of(router)
            .map(|s| s.routes.as_slice())
            .unwrap_or(&[])
    }

    /// Route-churn history of one router.
    pub fn churn_history(&self, router: &str) -> &[(SimTime, RouteChurn)] {
        self.state_of(router)
            .map(|s| s.churn.as_slice())
            .unwrap_or(&[])
    }

    /// The delta log of one router.
    pub fn log(&self, router: &str) -> Option<&TableLog> {
        self.state_of(router).map(|s| &s.log)
    }

    /// The long-term trend tracker of one router.
    pub fn longterm(&self, router: &str) -> Option<&LongTermTracker> {
        self.state_of(router).map(|s| &s.longterm)
    }

    /// Feeds session names from an external directory (e.g. a SAP
    /// listener). Later cycles annotate matching sessions.
    pub fn learn_session_names(&mut self, names: impl IntoIterator<Item = (GroupAddr, String)>) {
        for (g, n) in names {
            self.session_names.insert(g, n);
        }
    }

    /// Writes every router's archive to `dir` as `<router>.jsonl`.
    pub fn export_archives(&self, dir: &std::path::Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        for st in &self.state {
            st.log.save(&dir.join(format!("{}.jsonl", st.name)))?;
        }
        Ok(())
    }

    /// The latest snapshot of one router.
    pub fn latest(&self, router: &str) -> Option<&Tables> {
        self.state_of(router).and_then(|s| s.prev.as_ref())
    }

    /// Extracts a usage time series (`f` picks the metric).
    pub fn usage_series(&self, router: &str, name: &str, f: impl Fn(&UsageStats) -> f64) -> Series {
        let mut s = Series::new(name);
        for u in self.usage_history(router) {
            s.push(u.at, f(u));
        }
        s
    }

    /// Extracts a route time series.
    pub fn route_series(&self, router: &str, name: &str, f: impl Fn(&RouteStats) -> f64) -> Series {
        let mut s = Series::new(name);
        for r in self.route_history(router) {
            s.push(r.at, f(r));
        }
        s
    }

    /// The paper's four Figure 3 series for one router, as one overlay
    /// graph: sessions, participants, active sessions, senders.
    pub fn usage_graph(&self, router: &str) -> Graph {
        let mut g = Graph::new(format!("Usage at {router}"));
        g.overlay(self.usage_series(router, "sessions", |u| u.sessions as f64));
        g.overlay(self.usage_series(router, "participants", |u| u.participants as f64));
        g.overlay(self.usage_series(router, "active-sessions", |u| u.active_sessions as f64));
        g.overlay(self.usage_series(router, "senders", |u| u.senders as f64));
        g
    }

    /// The busiest-sessions summary table (top `n` by bandwidth) — one of
    /// the paper's example summary tables.
    pub fn busiest_sessions(&self, router: &str, n: usize) -> Table {
        let mut table = Table::new(
            format!("Busiest sessions at {router}"),
            vec!["group", "name", "density", "bandwidth_kbps", "first_seen"],
        );
        if let Some(t) = self.latest(router) {
            for s in t.sessions.values() {
                table.push_row(vec![
                    Cell::Text(s.group.to_string()),
                    Cell::Text(s.name.clone().unwrap_or_default()),
                    Cell::Num(f64::from(s.density)),
                    Cell::Num(s.bandwidth.kbps()),
                    Cell::Time(s.first_seen),
                ]);
            }
        }
        table.sort_by("bandwidth_kbps", false);
        table.truncate(n);
        table
    }

    /// Top senders by current bandwidth.
    pub fn top_senders(&self, router: &str, n: usize) -> Table {
        let mut table = Table::new(
            format!("Top senders at {router}"),
            vec!["source", "group", "current_kbps", "avg_kbps"],
        );
        if let Some(t) = self.latest(router) {
            for p in t.pairs.values() {
                if p.current_bw.is_sender(self.cfg.threshold) {
                    table.push_row(vec![
                        Cell::Text(p.source.to_string()),
                        Cell::Text(p.group.to_string()),
                        Cell::Num(p.current_bw.kbps()),
                        Cell::Num(p.avg_bw.kbps()),
                    ]);
                }
            }
        }
        table.sort_by("current_kbps", false);
        table.truncate(n);
        table
    }
}

/// Whether a cycle's accounting crosses the [`DEGRADED_PARSE_PCT`]
/// malformed threshold.
pub fn parse_degraded(stats: &ParseStats) -> bool {
    let rows = stats.parsed + stats.malformed;
    rows > 0 && (stats.malformed as f64 / rows as f64) * 100.0 > DEGRADED_PARSE_PCT
}

/// Renders parse accounting as a per-table-kind summary: parsed, malformed
/// and skipped line counts plus the malformed percentage, with a totals
/// row. Shared by the single monitor, the fleet aggregation tier, the CLI
/// and the HTML report.
pub fn parse_accounting_table(stats: &ParseStats, title: impl Into<String>) -> Table {
    let mut table = Table::new(
        title,
        vec!["table", "parsed", "malformed", "skipped", "malformed_pct"],
    );
    let pct = |k: &crate::processor::KindStats| {
        let rows = k.parsed + k.malformed;
        if rows == 0 {
            0.0
        } else {
            (k.malformed as f64 / rows as f64) * 100.0
        }
    };
    for kind in mantra_router_cli::TableKind::ALL {
        let k = stats.kind(kind);
        table.push_row(vec![
            Cell::Text(kind.label().to_string()),
            Cell::Num(k.parsed as f64),
            Cell::Num(k.malformed as f64),
            Cell::Num(k.skipped as f64),
            Cell::Num(pct(&k)),
        ]);
    }
    let total = crate::processor::KindStats {
        parsed: stats.parsed,
        malformed: stats.malformed,
        skipped: stats.skipped,
    };
    table.push_row(vec![
        Cell::Text("(total)".to_string()),
        Cell::Num(total.parsed as f64),
        Cell::Num(total.malformed as f64),
        Cell::Num(total.skipped as f64),
        Cell::Num(pct(&total)),
    ]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archive::SyncPolicy;
    use crate::collector::SimAccess;
    use crate::pipeline::StageKind;
    use mantra_sim::Scenario;

    /// Drives a scenario and the monitor in lock-step.
    fn drive(sc: &mut mantra_sim::Scenario, monitor: &mut Monitor, cycles: usize) {
        for _ in 0..cycles {
            let next = sc.sim.clock + monitor.cfg.interval;
            sc.sim.advance_to(next);
            let mut access = SimAccess::new(&sc.sim);
            monitor.run_cycle(&mut access, next);
        }
    }

    #[test]
    fn full_pipeline_cycle() {
        let mut sc = Scenario::transition_snapshot(31, 0.3);
        let mut monitor = Monitor::new(MonitorConfig::default());
        drive(&mut sc, &mut monitor, 12);
        assert_eq!(monitor.cycles(), 12);
        let usage = monitor.usage_history("fixw");
        assert_eq!(usage.len(), 12);
        assert!(usage.last().unwrap().sessions > 0, "{:?}", usage.last());
        let routes = monitor.route_history("fixw");
        assert!(routes.last().unwrap().dvmrp_reachable > 10);
        // Logs recorded every cycle and reconstruct.
        let log = monitor.log("fixw").unwrap();
        assert_eq!(log.len(), 12);
        let replayed = log.replay();
        assert_eq!(replayed.len(), 12);
        assert_eq!(&replayed[11], monitor.latest("fixw").unwrap());
        // Delta logging saved space.
        assert!(
            log.savings_ratio() > 0.12,
            "saved {:.2}",
            log.savings_ratio()
        );
        // Every stage ran once per cycle and spent visible wall time.
        for kind in StageKind::ALL {
            let m = monitor.pipeline().stage(kind);
            assert_eq!(m.invocations, 12, "{kind:?}");
            assert!(m.wall_nanos > 0, "{kind:?}");
        }
        assert_eq!(monitor.stage_table().rows.len(), StageKind::ALL.len());
    }

    #[test]
    fn avg_bandwidth_converges() {
        let mut sc = Scenario::transition_snapshot(32, 0.0);
        let mut monitor = Monitor::new(MonitorConfig::default());
        drive(&mut sc, &mut monitor, 8);
        let t = monitor.latest("ucsb-gw").unwrap();
        // Some long-lived pair has both averages and currents.
        assert!(t
            .pairs
            .values()
            .any(|p| p.avg_bw.bps() > 0 && p.current_bw.bps() > 0));
    }

    #[test]
    fn series_and_tables_come_out() {
        let mut sc = Scenario::transition_snapshot(33, 0.2);
        let mut monitor = Monitor::new(MonitorConfig::default());
        drive(&mut sc, &mut monitor, 10);
        let s = monitor.usage_series("fixw", "sessions", |u| u.sessions as f64);
        assert_eq!(s.len(), 10);
        assert!(s.mean() > 0.0);
        let graph = monitor.usage_graph("fixw");
        assert_eq!(graph.series.len(), 4);
        let busiest = monitor.busiest_sessions("fixw", 5);
        assert!(busiest.rows.len() <= 5);
        assert!(!busiest.rows.is_empty());
        let senders = monitor.top_senders("fixw", 5);
        // Ordered descending by bandwidth.
        let vals: Vec<f64> = senders
            .rows
            .iter()
            .map(|r| r[2].as_num().unwrap())
            .collect();
        assert!(vals.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn parallel_cycle_reports_match_serial() {
        let mk = || Monitor::new(MonitorConfig::default());
        let run = |parallel: bool| {
            let mut sc = Scenario::transition_snapshot(35, 0.3);
            let mut monitor = mk();
            let mut reports = Vec::new();
            for _ in 0..6 {
                let next = sc.sim.clock + monitor.cfg.interval;
                sc.sim.advance_to(next);
                if parallel {
                    let flaky = crate::collector::FlakyAccess::new(&sc.sim, 0.2, 0.2, 5);
                    reports.push(monitor.run_cycle_parallel(&flaky, next));
                } else {
                    let flaky = crate::collector::FlakyAccess::new(&sc.sim, 0.2, 0.2, 5);
                    let mut session = SessionAdapter(&flaky);
                    reports.push(monitor.run_cycle(&mut session, next));
                }
            }
            (reports, monitor)
        };
        let (serial_reports, serial) = run(false);
        let (parallel_reports, parallel) = run(true);
        assert_eq!(serial_reports, parallel_reports);
        assert_eq!(serial.capture_failures(), parallel.capture_failures());
        for router in ["fixw", "ucsb-gw"] {
            assert_eq!(serial.latest(router), parallel.latest(router));
            assert_eq!(serial.router_health(router), parallel.router_health(router));
            // The fanned-out Log stage stores the same records: the
            // archives replay to identical snapshot sequences.
            assert_eq!(
                serial.log(router).unwrap().replay(),
                parallel.log(router).unwrap().replay()
            );
            assert_eq!(serial.usage_history(router), parallel.usage_history(router));
            assert_eq!(serial.churn_history(router), parallel.churn_history(router));
        }
        // Both paths account the same items per stage (wall time differs).
        for kind in StageKind::ALL {
            let s = serial.pipeline().stage(kind);
            let p = parallel.pipeline().stage(kind);
            assert_eq!(s.invocations, p.invocations, "{kind:?}");
            assert_eq!(s.items, p.items, "{kind:?}");
            assert_eq!(s.sim_latency, p.sim_latency, "{kind:?}");
        }
    }

    #[test]
    fn file_archives_thread_through_the_pipeline() {
        let dir =
            std::env::temp_dir().join(format!("mantra-monitor-archive-{}", std::process::id()));
        let mut sc = Scenario::transition_snapshot(31, 0.3);
        let mut monitor = Monitor::new(MonitorConfig {
            archive: ArchiveSpec::File {
                dir: dir.clone(),
                sync: SyncPolicy::default(),
            },
            ..MonitorConfig::default()
        });
        drive(&mut sc, &mut monitor, 6);
        // Same snapshots as an equivalent memory-archived run.
        let mut sc2 = Scenario::transition_snapshot(31, 0.3);
        let mut mem = Monitor::new(MonitorConfig::default());
        drive(&mut sc2, &mut mem, 6);
        assert_eq!(
            monitor.log("fixw").unwrap().replay(),
            mem.log("fixw").unwrap().replay()
        );
        // Growth recorded per cycle; totals aggregated under "file".
        assert_eq!(monitor.archive_growth("fixw").len(), 6);
        let archives = monitor.pipeline().archives();
        assert_eq!(archives.len(), 1);
        assert_eq!(archives[0].backend, "file");
        assert_eq!(archives[0].routers, 2);
        assert!(archives[0].fsyncs > 0);
        assert_eq!(archives[0].write_errors, 0);
        assert_eq!(monitor.archive_table().rows.len(), 2);
        // The on-disk archive outlives the monitor and replays equally.
        drop(monitor);
        let path = ArchiveSpec::path_for(&dir, "fixw");
        let log = TableLog::load(&path, 96).unwrap();
        assert_eq!(log.replay(), mem.log("fixw").unwrap().replay());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn health_registry_tracks_success_and_staleness() {
        let mut sc = Scenario::transition_snapshot(36, 0.2);
        let mut monitor = Monitor::new(MonitorConfig {
            routers: vec!["fixw".into(), "ghost".into()],
            ..MonitorConfig::default()
        });
        drive(&mut sc, &mut monitor, 6);
        let now = sc.sim.clock;
        let fixw = monitor.router_health("fixw").unwrap();
        assert_eq!(fixw.cycles, 6);
        assert!(fixw.successes > 0);
        assert_eq!(fixw.last_success, Some(now));
        assert!(!fixw.is_stale(now, monitor.cfg.interval, monitor.cfg.stale_after_intervals));
        // The ghost router never succeeds and goes stale.
        let ghost = monitor.router_health("ghost").unwrap();
        assert_eq!(ghost.successes, 0);
        assert_eq!(ghost.last_success, None);
        assert!(ghost.is_stale(now, monitor.cfg.interval, monitor.cfg.stale_after_intervals));
        // The health table renders both, in configuration order.
        let table = monitor.health(now);
        assert_eq!(table.rows.len(), 2);
        assert_eq!(table.rows[0][0], Cell::Text("fixw".into()));
        let stale_col = table.columns.iter().position(|c| c == "stale").unwrap();
        assert_eq!(table.rows[0][stale_col], Cell::Text("ok".into()));
        assert_eq!(table.rows[1][stale_col], Cell::Text("STALE".into()));
    }

    #[test]
    fn unknown_router_yields_empty_but_counted_history() {
        let mut sc = Scenario::transition_snapshot(34, 0.0);
        let mut monitor = Monitor::new(MonitorConfig {
            routers: vec!["ghost".into()],
            ..MonitorConfig::default()
        });
        drive(&mut sc, &mut monitor, 3);
        // A router that never answers produces NO statistics samples —
        // absent cycles are gaps, not phantom all-zero entries — while
        // the failures are still counted in health.
        assert!(monitor.usage_history("ghost").is_empty());
        assert!(monitor.route_history("ghost").is_empty());
        assert!(monitor.latest("ghost").is_none());
        assert_eq!(monitor.capture_failures(), 15);
        let ghost = monitor.router_health("ghost").unwrap();
        assert_eq!(ghost.cycles, 3);
        assert_eq!(ghost.missed_cycles, 3);
    }

    #[test]
    fn missed_cycles_drive_retirement_and_the_state_column() {
        let mut sc = Scenario::transition_snapshot(35, 0.0);
        let mut monitor = Monitor::new(MonitorConfig {
            routers: vec!["fixw".into(), "ghost".into()],
            stale_after_intervals: 2,
            retire_after_intervals: 4,
            ..MonitorConfig::default()
        });
        drive(&mut sc, &mut monitor, 3);
        assert_eq!(
            monitor.lifecycle_of("ghost"),
            Some(LifecycleState::Stale { missed_cycles: 3 })
        );
        drive(&mut sc, &mut monitor, 2);
        assert_eq!(monitor.lifecycle_of("ghost"), Some(LifecycleState::Retired));
        assert_eq!(monitor.lifecycle_of("fixw"), Some(LifecycleState::Active));
        // The health table shows the lifecycle, the archive table shows
        // the sealed log.
        let health = monitor.health(sc.sim.clock);
        let state_col = health.columns.iter().position(|c| c == "state").unwrap();
        assert_eq!(health.rows[0][state_col], Cell::Text("active".into()));
        assert_eq!(health.rows[1][state_col], Cell::Text("retired".into()));
        let archives = monitor.archive_table();
        let lc_col = archives
            .columns
            .iter()
            .position(|c| c == "lifecycle")
            .unwrap();
        assert_eq!(archives.rows[0][lc_col], Cell::Text("live".into()));
        assert_eq!(archives.rows[1][lc_col], Cell::Text("sealed".into()));
    }
}
