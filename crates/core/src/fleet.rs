//! The sharded fleet: N [`Monitor`]s plus an exact aggregation tier.
//!
//! One [`Monitor`] owns the world — collector, interning store, per-router
//! state, archives. That shape is the paper's, and it tops out well short
//! of the 1k–10k-router north star: every stage walks every router, and
//! the cross-router consistency sweep needs every snapshot in one place.
//! [`FleetMonitor`] keeps the `Monitor` exactly as it is and *partitions*
//! the fleet across several of them (the distributed-hybrid-monitoring
//! shape: local collectors, regional aggregators, global composition).
//! Each shard owns its router subset, its own `TableStore` and its own
//! archives, and drives its cycle concurrently with the others; the fleet
//! tier then merges shard outputs into one global view:
//!
//! * **Statistics compose exactly.** Shards expose their integer
//!   accumulator sums ([`Monitor::stream_totals`]); the fleet absorbs
//!   them into one [`StatsTotals`] and assembles global usage/route
//!   figures with every division done once, at the top. Integer addition
//!   is associative and commutative, so any shard count and any
//!   partition produce bit-identical global statistics — proven against
//!   the single-monitor run in `tests/prop_fleet.rs`.
//! * **Consistency joins globally.** Per-shard sweeps are disabled
//!   (`cross_router_checks = false`) and the fleet runs the one
//!   group-by-key join ([`InconsistencyMonitor::sweep`]) over every
//!   router's latest snapshot in configuration order — cross-shard pairs
//!   are not missed, within-shard pairs are not double-reported, and the
//!   anomaly stream is identical to the single-monitor run.
//! * **Reports re-interleave.** Shard partitions preserve relative
//!   configuration order, so the merged [`CycleReport`] lists routers —
//!   and their per-router anomalies — in the same order a single monitor
//!   would.

use mantra_net::SimTime;

use crate::aggregate::ParallelAccess;
use crate::anomaly::{Anomaly, InconsistencyMonitor};
use crate::collector::RouterAccess;
use crate::monitor::{parse_accounting_table, parse_degraded, CycleReport, Monitor, MonitorConfig};
use crate::output::{Cell, Graph, Table};
use crate::processor::ParseStats;
use crate::stats::{ConsistencyMatrix, ConsistencyReport, RouteChurn, RouteStats, UsageStats};
use crate::stats_stream::StatsTotals;
use crate::store::FxHashMap;
use crate::tables::Tables;

/// A fleet of monitor shards with a global aggregation tier.
pub struct FleetMonitor {
    /// The global configuration; `routers` is the whole fleet in
    /// configuration order.
    pub cfg: MonitorConfig,
    shards: Vec<Monitor>,
    /// Shard index per global router index.
    assignment: Vec<usize>,
    inconsistency: InconsistencyMonitor,
    /// All anomalies raised so far, fleet-wide.
    pub anomalies: Vec<Anomaly>,
    /// Global per-cycle statistics, assembled from shard partial sums.
    usage: Vec<UsageStats>,
    routes: Vec<RouteStats>,
    churn: Vec<(SimTime, RouteChurn)>,
    cycles: u64,
}

impl FleetMonitor {
    /// A fleet over `cfg.routers` split into `shards` contiguous,
    /// near-equal shards (configuration order preserved). `shards` is
    /// clamped to at least 1 and at most the router count.
    pub fn new(cfg: MonitorConfig, shards: usize) -> Self {
        let n = cfg.routers.len();
        let shards = shards.clamp(1, n.max(1));
        let chunk = n.div_ceil(shards.max(1)).max(1);
        let assignment: Vec<usize> = (0..n).map(|i| (i / chunk).min(shards - 1)).collect();
        Self::with_assignment(cfg, &assignment)
    }

    /// A fleet with an explicit router→shard assignment (`assignment[i]`
    /// is the shard of `cfg.routers[i]`; shard ids need not be dense —
    /// the fleet uses `max + 1` shards). Each shard's router list keeps
    /// the global relative order, so *any* assignment yields the same
    /// global outputs.
    pub fn with_assignment(cfg: MonitorConfig, assignment: &[usize]) -> Self {
        assert_eq!(
            assignment.len(),
            cfg.routers.len(),
            "one shard id per router"
        );
        let shards_n = assignment.iter().map(|s| s + 1).max().unwrap_or(1);
        let mut routers_of: Vec<Vec<String>> = vec![Vec::new(); shards_n];
        for (router, &s) in cfg.routers.iter().zip(assignment) {
            routers_of[s].push(router.clone());
        }
        let shards = routers_of
            .into_iter()
            .map(|routers| {
                Monitor::new(MonitorConfig {
                    routers,
                    // The fleet tier sweeps consistency globally and
                    // condenses tables globally; shards do neither.
                    cross_router_checks: false,
                    table_detail_limit: usize::MAX,
                    ..cfg.clone()
                })
            })
            .collect();
        FleetMonitor {
            cfg,
            shards,
            assignment: assignment.to_vec(),
            inconsistency: InconsistencyMonitor::default(),
            anomalies: Vec::new(),
            usage: Vec::new(),
            routes: Vec::new(),
            churn: Vec::new(),
            cycles: 0,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Re-partitions the fleet onto a new router→shard assignment
    /// between cycles, moving each reassigned router's state — archive
    /// (as its open log), statistics histories, health, streaming
    /// accumulators — wholesale to its new shard. Per-router state is
    /// store-independent, so the move is exact: the next cycle's global
    /// outputs are bit-identical to a fleet (or single monitor) that had
    /// run with the new assignment all along, which the churn property
    /// tests assert. Routers a shard has never polled have no state to
    /// move; their state is created at first sight as usual.
    pub fn rebalance(&mut self, new_assignment: &[usize]) {
        assert_eq!(
            new_assignment.len(),
            self.cfg.routers.len(),
            "one shard id per router"
        );
        let shards_n = new_assignment.iter().map(|s| s + 1).max().unwrap_or(1);
        while self.shards.len() < shards_n {
            self.shards.push(Monitor::new(MonitorConfig {
                routers: Vec::new(),
                cross_router_checks: false,
                table_detail_limit: usize::MAX,
                ..self.cfg.clone()
            }));
        }
        for (i, router) in self.cfg.routers.iter().enumerate() {
            let (from, to) = (self.assignment[i], new_assignment[i]);
            if from == to {
                continue;
            }
            if let Some(st) = self.shards[from].evict_router(router) {
                self.shards[to].adopt_router(st);
            }
        }
        // Recompute every shard's polling list so each keeps the global
        // relative order — the invariant the report re-interleaving
        // relies on.
        let mut routers_of: Vec<Vec<String>> = vec![Vec::new(); self.shards.len()];
        for (router, &s) in self.cfg.routers.iter().zip(new_assignment) {
            routers_of[s].push(router.clone());
        }
        for (shard, routers) in self.shards.iter_mut().zip(routers_of) {
            shard.set_routers(routers);
        }
        self.assignment = new_assignment.to_vec();
    }

    /// The shards, in shard order.
    pub fn shards(&self) -> &[Monitor] {
        &self.shards
    }

    /// The shard index owning `router`, by configuration.
    pub fn shard_of(&self, router: &str) -> Option<usize> {
        self.cfg
            .routers
            .iter()
            .position(|r| r == router)
            .map(|i| self.assignment[i])
    }

    /// The shard monitor owning `router`.
    pub fn monitor_of(&self, router: &str) -> Option<&Monitor> {
        self.shard_of(router).map(|s| &self.shards[s])
    }

    /// Cycles completed.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Capture failures summed across shards.
    pub fn capture_failures(&self) -> u64 {
        self.shards.iter().map(Monitor::capture_failures).sum()
    }

    /// Parse accounting summed exactly across shards (all-time totals).
    /// Integer sums compose, so the result is shard-count invariant.
    pub fn parse_totals(&self) -> ParseStats {
        let mut total = ParseStats::default();
        for shard in &self.shards {
            total.merge(shard.parse_totals);
        }
        total
    }

    /// Parse accounting for the most recent fleet cycle.
    pub fn parse_last(&self) -> ParseStats {
        let mut total = ParseStats::default();
        for shard in &self.shards {
            total.merge(shard.parse_last);
        }
        total
    }

    /// Whether the last fleet cycle's malformed share crossed
    /// [`crate::monitor::DEGRADED_PARSE_PCT`].
    pub fn parse_degraded(&self) -> bool {
        parse_degraded(&self.parse_last())
    }

    /// The fleet-wide per-table parse accounting table.
    pub fn parse_table(&self) -> Table {
        parse_accounting_table(&self.parse_totals(), "Parse accounting (fleet)")
    }

    /// One fleet cycle at `now`: every shard runs its own (internally
    /// parallel) cycle concurrently, then the aggregation tier merges the
    /// shard reports, sweeps cross-router consistency globally and folds
    /// the global statistics. The merged report is identical to a single
    /// [`Monitor`] over the whole fleet.
    pub fn run_cycle<P: ParallelAccess>(&mut self, access: &P, now: SimTime) -> CycleReport {
        let reports: Vec<CycleReport> = {
            let mut shards: Vec<&mut Monitor> = self.shards.iter_mut().collect();
            rayon::parallel_map_mut(&mut shards, |m| m.run_cycle_parallel(access, now))
        };
        self.merge(reports, now)
    }

    /// One fleet cycle over a single serial access session: shards run
    /// one after another (the paper's expect-script shape, kept for
    /// parity testing). Outputs are identical to [`FleetMonitor::run_cycle`].
    pub fn run_cycle_serial(&mut self, access: &mut dyn RouterAccess, now: SimTime) -> CycleReport {
        let reports: Vec<CycleReport> = self
            .shards
            .iter_mut()
            .map(|m| m.run_cycle(access, now))
            .collect();
        self.merge(reports, now)
    }

    /// The aggregation tier: interleaves shard reports back into global
    /// configuration order, runs the global consistency join and folds
    /// the exact integer-sum statistics.
    fn merge(&mut self, reports: Vec<CycleReport>, now: SimTime) -> CycleReport {
        self.cycles += 1;
        let mut report = CycleReport {
            at: now,
            per_router: Vec::with_capacity(self.cfg.routers.len()),
            anomalies: Vec::new(),
        };
        // Cursors over each shard's per-router entries and anomalies;
        // both lists are in shard configuration order, and a router's
        // anomalies are contiguous, so popping while the names match
        // re-creates the single-monitor interleaving.
        let mut entry_at = vec![0usize; reports.len()];
        let mut anomaly_at = vec![0usize; reports.len()];
        for (router, &s) in self.cfg.routers.iter().zip(&self.assignment) {
            let shard_report = &reports[s];
            if let Some(entry) = shard_report.per_router.get(entry_at[s]) {
                if &entry.0 == router {
                    report.per_router.push(entry.clone());
                    entry_at[s] += 1;
                }
            }
            while let Some(a) = shard_report.anomalies.get(anomaly_at[s]) {
                if &a.router == router {
                    report.anomalies.push(a.clone());
                    anomaly_at[s] += 1;
                } else {
                    break;
                }
            }
        }
        // Global cross-router consistency over every router's latest
        // snapshot, in configuration order — the group-by-key join
        // compares each pair of distinct views once, within and across
        // shards alike. Only snapshots captured *this* cycle
        // participate: a missed router's `latest` is a stale snapshot
        // from before it went dark, and a single monitor would not have
        // had it in the sweep either.
        let views: Vec<&Tables> = self
            .cfg
            .routers
            .iter()
            .zip(&self.assignment)
            .filter_map(|(router, &s)| self.shards[s].latest(router))
            .filter(|t| t.captured_at == now)
            .collect();
        report
            .anomalies
            .extend(self.inconsistency.sweep(&views, now));
        self.anomalies.extend(report.anomalies.iter().cloned());
        // Exact global statistics: absorb each shard's integer partial
        // sums, divide once at assembly.
        let mut totals = StatsTotals::default();
        let mut churn = RouteChurn::default();
        for shard in &self.shards {
            totals.absorb(&shard.stream_totals());
            churn.absorb(&shard.cycle_churn(now));
        }
        self.usage.push(totals.usage());
        self.routes.push(totals.route_stats());
        self.churn.push((now, churn));
        report
    }

    // ------------------------------------------------------------------
    // Global result access
    // ------------------------------------------------------------------

    /// Global usage statistics per cycle.
    pub fn usage_history(&self) -> &[UsageStats] {
        &self.usage
    }

    /// Global route statistics per cycle.
    pub fn route_history(&self) -> &[RouteStats] {
        &self.routes
    }

    /// Global route churn per cycle.
    pub fn churn_history(&self) -> &[(SimTime, RouteChurn)] {
        &self.churn
    }

    /// The divergent router pairs of the latest cycle, joined into one
    /// global view: every eligible pair whose similarity is below the
    /// monitor's floor, with its [`ConsistencyReport`], in configuration
    /// order.
    pub fn consistency_view(&self) -> Vec<(String, String, ConsistencyReport)> {
        let routers: Vec<&String> = self.cfg.routers.iter().collect();
        let views: Vec<&Tables> = routers
            .iter()
            .zip(&self.assignment)
            .filter_map(|(router, &s)| self.shards[s].latest(router))
            .collect();
        let mut matrix = ConsistencyMatrix::build(&views, self.inconsistency.min_routes);
        let mut out = Vec::new();
        for i in 0..views.len() {
            if !matrix.eligible(i) {
                continue;
            }
            for j in (i + 1)..views.len() {
                let Some(r) = matrix.report(i, j) else {
                    continue;
                };
                if r.similarity() < self.inconsistency.min_similarity {
                    out.push((views[i].router.clone(), views[j].router.clone(), r));
                }
            }
        }
        out
    }

    /// The fleet's Figure 3 overlay graph from the global usage history.
    /// The title is deliberately shard-invariant: sharded and unsharded
    /// runs of the same fleet must render byte-identical output.
    pub fn usage_graph(&self) -> Graph {
        let mut g = Graph::new(format!("Fleet usage ({} routers)", self.cfg.routers.len()));
        let series = |name: &str, f: fn(&UsageStats) -> f64| {
            let mut s = crate::stats::Series::new(name);
            for u in &self.usage {
                s.push(u.at, f(u));
            }
            s
        };
        g.overlay(series("sessions", |u| u.sessions as f64));
        g.overlay(series("participants", |u| u.participants as f64));
        g.overlay(series("active-sessions", |u| u.active_sessions as f64));
        g.overlay(series("senders", |u| u.senders as f64));
        g
    }

    /// The fleet health table: every router's health row with its shard,
    /// in configuration order, condensed to the worst offenders plus a
    /// totals footer past the configured limit.
    pub fn health(&self, now: SimTime) -> Table {
        self.stitch("Fleet collection health", |m| m.health(now), "failed")
    }

    /// The fleet archive table, shard column included, condensed like
    /// [`FleetMonitor::health`].
    pub fn archive_table(&self) -> Table {
        self.stitch("Fleet archives", Monitor::archive_table, "errors")
    }

    /// Archive query-cache counters summed across the shards' caches.
    pub fn query_cache_stats(&self) -> crate::archive::CacheStats {
        let mut total = crate::archive::CacheStats::default();
        for m in &self.shards {
            total.absorb(&m.query_cache().stats());
        }
        total
    }

    /// Merges per-shard tables into one global table with a `shard`
    /// column after the router column, re-ordered to configuration
    /// order, then condensed by the global detail limit with a summed
    /// footer.
    fn stitch(&self, title: &str, build: impl Fn(&Monitor) -> Table, rank_by: &str) -> Table {
        let shard_tables: Vec<Table> = self.shards.iter().map(&build).collect();
        let mut columns: Vec<&str> = vec!["router", "shard"];
        let tail: Vec<String> = shard_tables[0].columns[1..].to_vec();
        columns.extend(tail.iter().map(String::as_str));
        let mut table = Table::new(title, columns);
        let mut by_router: FxHashMap<&str, (usize, &Vec<Cell>)> = FxHashMap::default();
        for (s, t) in shard_tables.iter().enumerate() {
            for row in &t.rows {
                if let Cell::Text(name) = &row[0] {
                    by_router.insert(name.as_str(), (s, row));
                }
            }
        }
        for router in &self.cfg.routers {
            let Some((s, row)) = by_router.get(router.as_str()) else {
                continue;
            };
            let mut cells = Vec::with_capacity(row.len() + 1);
            cells.push(row[0].clone());
            cells.push(Cell::Num(*s as f64));
            cells.extend(row[1..].iter().cloned());
            table.push_row(cells);
        }
        let n = table.rows.len();
        if n > self.cfg.table_detail_limit {
            let sum = |col: &str| -> f64 {
                table
                    .column_index(col)
                    .map(|i| table.rows.iter().filter_map(|r| r[i].as_num()).sum::<f64>())
                    .unwrap_or(0.0)
            };
            let count_text = |col: &str, needle: &str| -> usize {
                table
                    .column_index(col)
                    .map(|i| {
                        table
                            .rows
                            .iter()
                            .filter(|r| matches!(&r[i], Cell::Text(s) if s == needle))
                            .count()
                    })
                    .unwrap_or(0)
            };
            let summary = if table.column_index("stale").is_some() {
                format!(
                    "{} of {n} routers shown (worst by failures); fleet totals: \
                     ok {}, failed {}, retries {}, {} stale, {} retired, \
                     {} degraded archives",
                    self.cfg.table_detail_limit,
                    sum("ok") as u64,
                    sum("failed") as u64,
                    sum("retries") as u64,
                    count_text("stale", "STALE"),
                    count_text("state", "retired"),
                    count_text("archive", "degraded"),
                )
            } else {
                format!(
                    "{} of {n} archives shown (worst by errors); fleet totals: \
                     {} records, {:.0} kbytes, {} fsyncs, {} dropped, {} errors, \
                     {} sealed, {} degraded",
                    self.cfg.table_detail_limit,
                    sum("records") as u64,
                    sum("kbytes"),
                    sum("fsyncs") as u64,
                    sum("dropped") as u64,
                    sum("errors") as u64,
                    count_text("lifecycle", "sealed"),
                    count_text("persistence", "degraded"),
                )
            };
            table.condense(self.cfg.table_detail_limit, rank_by, summary);
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::SimAccess;
    use mantra_sim::Scenario;

    fn drive(sc: &mut Scenario, fleet: &mut FleetMonitor, cycles: usize) {
        for _ in 0..cycles {
            let next = sc.sim.clock + fleet.cfg.interval;
            sc.sim.advance_to(next);
            fleet.run_cycle(&sc.sim, next);
        }
    }

    fn fleet_cfg(routers: Vec<String>) -> MonitorConfig {
        MonitorConfig {
            routers,
            ..MonitorConfig::default()
        }
    }

    #[test]
    fn contiguous_partition_covers_fleet_in_order() {
        let routers: Vec<String> = (0..10).map(|i| format!("r{i}")).collect();
        let fleet = FleetMonitor::new(fleet_cfg(routers.clone()), 3);
        assert_eq!(fleet.shard_count(), 3);
        let mut seen = Vec::new();
        for shard in fleet.shards() {
            assert!(!shard.cfg.routers.is_empty());
            assert!(!shard.cfg.cross_router_checks);
            seen.extend(shard.cfg.routers.iter().cloned());
        }
        // Contiguous chunks concatenate back to configuration order.
        assert_eq!(seen, routers);
        for r in &routers {
            assert!(fleet.shard_of(r).is_some());
        }
        // Degenerate shapes clamp instead of panicking.
        assert_eq!(
            FleetMonitor::new(fleet_cfg(vec!["a".into()]), 8).shard_count(),
            1
        );
    }

    #[test]
    fn sharded_cycle_matches_single_monitor() {
        let mut sc_fleet = Scenario::transition_snapshot(41, 0.4);
        let mut sc_single = Scenario::transition_snapshot(41, 0.4);
        let cfg = fleet_cfg(vec!["fixw".into(), "ucsb-gw".into()]);
        let mut fleet = FleetMonitor::new(cfg.clone(), 2);
        let mut single = Monitor::new(cfg);
        for _ in 0..6 {
            let next = sc_fleet.sim.clock + fleet.cfg.interval;
            sc_fleet.sim.advance_to(next);
            let fr = fleet.run_cycle(&sc_fleet.sim, next);
            sc_single.sim.advance_to(next);
            let mut access = SimAccess::new(&sc_single.sim);
            let sr = single.run_cycle(&mut access, next);
            assert_eq!(fr, sr);
            // Global stats equal the single monitor's summed totals.
            assert_eq!(
                fleet.usage_history().last().unwrap(),
                &single.stream_totals().usage()
            );
            assert_eq!(
                fleet.route_history().last().unwrap(),
                &single.stream_totals().route_stats()
            );
            assert_eq!(
                fleet.churn_history().last().unwrap().1,
                single.cycle_churn(next)
            );
        }
        assert_eq!(fleet.anomalies, single.anomalies);
        assert_eq!(fleet.cycles(), 6);
    }

    #[test]
    fn fleet_tables_carry_shard_column_and_condense() {
        let mut sc = Scenario::transition_snapshot(7, 0.3);
        let cfg = MonitorConfig {
            routers: vec!["fixw".into(), "ucsb-gw".into()],
            table_detail_limit: 1,
            ..MonitorConfig::default()
        };
        let mut fleet = FleetMonitor::new(cfg, 2);
        drive(&mut sc, &mut fleet, 2);
        let health = fleet.health(sc.sim.clock);
        assert_eq!(health.columns[0], "router");
        assert_eq!(health.columns[1], "shard");
        // Two routers, limit 1 → condensed with a totals footer.
        assert_eq!(health.rows.len(), 1);
        let footer = health.footer.as_deref().expect("condensed footer");
        assert!(footer.contains("of 2 routers"), "{footer}");
        let archives = fleet.archive_table();
        assert_eq!(archives.columns[1], "shard");
        assert_eq!(archives.rows.len(), 1);
        assert!(archives.footer.is_some());
        // The graph is over global history.
        assert_eq!(fleet.usage_graph().series.len(), 4);
        assert_eq!(fleet.usage_history().len(), 2);
    }
}
