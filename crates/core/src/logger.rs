//! The data logger: space-efficient archival of table snapshots.
//!
//! The paper names two storage-conservation techniques and this module
//! implements both:
//!
//! * **Storing only deltas** — instead of the full table, each cycle
//!   stores what changed since the previous one (with periodic full
//!   snapshots so archives remain seekable and loss-bounded).
//! * **Avoiding redundancy** — tables derivable from other tables are not
//!   stored at all. In this schema the Participant and Session tables are
//!   functions of the Pair table (plus IGMP-only sessions), so a log
//!   record carries only pairs, routes, the SA cache and the handful of
//!   member-only sessions; reconstruction rebuilds the rest.
//!
//! Reconstruction is lossless: replaying a log yields snapshots equal to
//! the originals, which the property tests assert.

use std::cell::{Cell, RefCell};
use std::io;
use std::path::Path;

use serde::{Deserialize, Serialize};

use mantra_net::{GroupAddr, Ip, Prefix, SimTime};

use crate::archive::{
    read_header, unsupported_version, ArchiveBackend, ArchiveInfo, ArchiveSpec, ArchiveStats,
    FileBackend, FileBackendV2, MemoryBackend, RecordIter, SyncPolicy, ThreadedBackend,
    FORMAT_VERSION, FORMAT_VERSION_V2, MAGIC,
};
use crate::store::{in_key_order, in_key_order_cached, Interner, TableStore};
use crate::tables::{LearnedFrom, PairRow, RouteRow, SessionRow, Tables};

/// What one cycle stores.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum LogRecord {
    /// A full (but redundancy-eliminated) snapshot.
    Full(SnapshotParts),
    /// Changes relative to the previous record.
    Delta(TableDelta),
}

/// The non-derivable parts of a snapshot.
#[derive(Clone, Debug, Default)]
pub struct SnapshotParts {
    /// Capture timestamp.
    pub captured_at: SimTime,
    /// Source router.
    pub router: String,
    /// All `(S,G)` pairs.
    pub pairs: Vec<PairRow>,
    /// All routes.
    pub routes: Vec<RouteRow>,
    /// The SA cache.
    pub sa_cache: Vec<(GroupAddr, Ip, SimTime)>,
    /// Sessions not derivable from pairs (IGMP-membership-only).
    pub member_only_sessions: Vec<SessionRow>,
    /// Whether every section above is known to be strictly key-sorted
    /// (true when built from `BTreeMap` iteration or a delta merge).
    /// A construction-time hint only — diffing skips its per-section
    /// sortedness re-verification when set; never serialized, and
    /// ignored by equality.
    pub presorted: bool,
}

impl PartialEq for SnapshotParts {
    fn eq(&self, other: &Self) -> bool {
        // `presorted` is a derived hint, not data.
        self.captured_at == other.captured_at
            && self.router == other.router
            && self.pairs == other.pairs
            && self.routes == other.routes
            && self.sa_cache == other.sa_cache
            && self.member_only_sessions == other.member_only_sessions
    }
}

// Hand-written (not derived) so `presorted` stays out of the archive:
// the serialized form carries exactly the six data fields in declaration
// order, byte-identical to the pre-hint derive output, and archives
// written before the hint existed still load.
impl Serialize for SnapshotParts {
    fn serialize<S: serde::ser::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let m = vec![
            (
                "captured_at".to_string(),
                serde::ser::to_value(&self.captured_at),
            ),
            ("router".to_string(), serde::ser::to_value(&self.router)),
            ("pairs".to_string(), serde::ser::to_value(&self.pairs)),
            ("routes".to_string(), serde::ser::to_value(&self.routes)),
            ("sa_cache".to_string(), serde::ser::to_value(&self.sa_cache)),
            (
                "member_only_sessions".to_string(),
                serde::ser::to_value(&self.member_only_sessions),
            ),
        ];
        s.serialize_value(serde::Value::Map(m))
    }
}

impl<'de> Deserialize<'de> for SnapshotParts {
    fn deserialize<D: serde::de::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let map = match d.take_value()? {
            serde::Value::Map(m) => m,
            other => {
                return Err(D::custom(format!(
                    "expected map for SnapshotParts, got {other:?}"
                )))
            }
        };
        let mut fields: [Option<serde::Value>; 6] = Default::default();
        for (k, v) in map {
            let slot = match k.as_str() {
                "captured_at" => 0,
                "router" => 1,
                "pairs" => 2,
                "routes" => 3,
                "sa_cache" => 4,
                "member_only_sessions" => 5,
                _ => continue,
            };
            fields[slot] = Some(v);
        }
        let mut take = |slot: usize, name: &str| {
            fields[slot]
                .take()
                .ok_or_else(|| D::custom(format!("missing field {name} in SnapshotParts")))
        };
        Ok(SnapshotParts {
            captured_at: serde::de::field::<_, D>(take(0, "captured_at")?)?,
            router: serde::de::field::<_, D>(take(1, "router")?)?,
            pairs: serde::de::field::<_, D>(take(2, "pairs")?)?,
            routes: serde::de::field::<_, D>(take(3, "routes")?)?,
            sa_cache: serde::de::field::<_, D>(take(4, "sa_cache")?)?,
            member_only_sessions: serde::de::field::<_, D>(take(5, "member_only_sessions")?)?,
            // Provenance unknown (archives can be hand-edited), so the
            // verifying path re-establishes sortedness on first use.
            presorted: false,
        })
    }
}

/// A delta between consecutive snapshots.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct TableDelta {
    /// Capture timestamp of the new snapshot.
    pub captured_at: SimTime,
    /// Added or changed pairs.
    pub pair_upserts: Vec<PairRow>,
    /// Removed pairs.
    pub pair_removals: Vec<(GroupAddr, Ip)>,
    /// Added or changed routes.
    pub route_upserts: Vec<RouteRow>,
    /// Removed routes.
    pub route_removals: Vec<(LearnedFrom, Prefix)>,
    /// Added or changed SA entries.
    pub sa_upserts: Vec<(GroupAddr, Ip, SimTime)>,
    /// Removed SA entries.
    pub sa_removals: Vec<(GroupAddr, Ip)>,
    /// Added or changed member-only sessions.
    pub session_upserts: Vec<SessionRow>,
    /// Removed member-only sessions.
    pub session_removals: Vec<GroupAddr>,
}

impl SnapshotParts {
    /// Extracts the non-derivable parts of a snapshot.
    pub fn from_tables(t: &Tables) -> Self {
        SnapshotParts {
            captured_at: t.captured_at,
            router: t.router.clone(),
            pairs: t.pairs.values().cloned().collect(),
            routes: t.routes.values().cloned().collect(),
            sa_cache: t
                .sa_cache
                .iter()
                .map(|((g, s), at)| (*g, *s, *at))
                .collect(),
            member_only_sessions: t
                .sessions
                .values()
                .filter(|s| s.density == 0 && s.first_advertised == LearnedFrom::Igmp)
                .cloned()
                .collect(),
            // Every section above is collected from BTreeMap iteration
            // whose map key equals the section's diff key, so strict
            // sortedness holds by construction.
            presorted: true,
        }
    }

    /// Rebuilds the full four-table snapshot (the redundancy rule run
    /// forward).
    pub fn rebuild(&self) -> Tables {
        let mut t = Tables::new(self.router.clone(), self.captured_at);
        for s in &self.member_only_sessions {
            t.sessions.insert(s.group, s.clone());
        }
        for p in &self.pairs {
            t.add_pair(p.clone());
        }
        for r in &self.routes {
            t.add_route(r.clone());
        }
        for (g, s, at) in &self.sa_cache {
            t.sa_cache.insert((*g, *s), *at);
        }
        t
    }
}

/// Diffs one keyed section through the interner: one marking pass over
/// `prev`, one comparison pass over `next`, no map construction. Upserts
/// come out in `next` key order and removals in `prev` key order —
/// byte-identical to what the `BTreeMap`-based reference emits.
fn diff_section<T, K>(
    interner: &mut Interner<K>,
    (prev, prev_sorted): (&[T], bool),
    (next, next_sorted): (&[T], bool),
    key: impl Fn(&T) -> K,
    upserts: &mut Vec<T>,
    removals: &mut Vec<K>,
) where
    T: Clone + PartialEq,
    K: Ord + Copy + Eq + std::hash::Hash,
{
    let prev_s = in_key_order_cached(prev, &key, prev_sorted);
    let next_s = in_key_order_cached(next, &key, next_sorted);
    interner.begin_pass();
    for (i, row) in prev_s.iter().enumerate() {
        let id = interner.intern(&key(row));
        interner.mark(id, i as u32);
    }
    for row in &next_s {
        let id = interner.intern(&key(row));
        interner.see(id);
        match interner.marked(id) {
            Some(i) if prev_s[i as usize] == *row => {}
            _ => upserts.push((*row).clone()),
        }
    }
    for row in &prev_s {
        let id = interner.get(&key(row)).expect("marked in the prev pass");
        if !interner.seen(id) {
            removals.push(key(row));
        }
    }
}

/// Applies one keyed section as a two-pointer merge of the key-sorted base
/// and upsert lists: upserts win on key collision, removals filter the
/// merged stream, output stays key-sorted. Semantics match the reference
/// exactly, including a key in both upserts and removals ending removed.
fn apply_section<T, K>(
    interner: &mut Interner<K>,
    (base, base_sorted): (&[T], bool),
    upserts: &[T],
    removals: &[K],
    key: impl Fn(&T) -> K,
    out: &mut Vec<T>,
) where
    T: Clone,
    K: Ord + Copy + Eq + std::hash::Hash,
{
    let base_s = in_key_order_cached(base, &key, base_sorted);
    let ups_s = in_key_order(upserts, &key);
    interner.begin_pass();
    for k in removals {
        let id = interner.intern(k);
        interner.see(id);
    }
    let (mut i, mut j) = (0, 0);
    while i < base_s.len() || j < ups_s.len() {
        let take_upsert = match (base_s.get(i), ups_s.get(j)) {
            (Some(b), Some(u)) => key(u) <= key(b),
            (None, Some(_)) => true,
            _ => false,
        };
        let row: &T = if take_upsert {
            if base_s.get(i).is_some_and(|b| key(b) == key(ups_s[j])) {
                i += 1; // upsert overwrites the base row
            }
            let r = ups_s[j];
            j += 1;
            r
        } else {
            let r = base_s[i];
            i += 1;
            r
        };
        let removed = interner.get(&key(row)).is_some_and(|id| interner.seen(id));
        if !removed {
            out.push(row.clone());
        }
    }
}

/// Computes the delta taking `prev` to `next`, interning keys through
/// `store`. Reusing one store across cycles makes every later diff a pure
/// lookup-and-compare pass — the hot path of multi-router monitoring.
/// Output is byte-identical to [`diff_reference`].
pub fn diff_with(store: &mut TableStore, prev: &SnapshotParts, next: &SnapshotParts) -> TableDelta {
    let mut d = TableDelta {
        captured_at: next.captured_at,
        ..TableDelta::default()
    };
    diff_section(
        &mut store.pairs,
        (&prev.pairs, prev.presorted),
        (&next.pairs, next.presorted),
        |p| (p.group, p.source),
        &mut d.pair_upserts,
        &mut d.pair_removals,
    );
    diff_section(
        &mut store.routes,
        (&prev.routes, prev.presorted),
        (&next.routes, next.presorted),
        |r| (r.learned_from, r.prefix),
        &mut d.route_upserts,
        &mut d.route_removals,
    );
    diff_section(
        &mut store.pairs,
        (&prev.sa_cache, prev.presorted),
        (&next.sa_cache, next.presorted),
        |(g, s, _)| (*g, *s),
        &mut d.sa_upserts,
        &mut d.sa_removals,
    );
    diff_section(
        &mut store.groups,
        (&prev.member_only_sessions, prev.presorted),
        (&next.member_only_sessions, next.presorted),
        |s| s.group,
        &mut d.session_upserts,
        &mut d.session_removals,
    );
    d
}

/// Applies a delta to `base` through `store`, producing the next
/// snapshot's parts. Output is byte-identical to [`apply_reference`].
pub fn apply_with(
    store: &mut TableStore,
    base: &SnapshotParts,
    delta: &TableDelta,
) -> SnapshotParts {
    let mut next = SnapshotParts {
        captured_at: delta.captured_at,
        router: base.router.clone(),
        // The merge below emits each section in strictly increasing key
        // order with upserts deduplicated, so the output re-earns the
        // sortedness hint regardless of the base's provenance.
        presorted: true,
        ..SnapshotParts::default()
    };
    apply_section(
        &mut store.pairs,
        (&base.pairs, base.presorted),
        &delta.pair_upserts,
        &delta.pair_removals,
        |p| (p.group, p.source),
        &mut next.pairs,
    );
    apply_section(
        &mut store.routes,
        (&base.routes, base.presorted),
        &delta.route_upserts,
        &delta.route_removals,
        |r| (r.learned_from, r.prefix),
        &mut next.routes,
    );
    apply_section(
        &mut store.pairs,
        (&base.sa_cache, base.presorted),
        &delta.sa_upserts,
        &delta.sa_removals,
        |(g, s, _)| (*g, *s),
        &mut next.sa_cache,
    );
    apply_section(
        &mut store.groups,
        (&base.member_only_sessions, base.presorted),
        &delta.session_upserts,
        &delta.session_removals,
        |s| s.group,
        &mut next.member_only_sessions,
    );
    next
}

/// Computes the delta taking `prev` to `next` (throwaway interner — reuse
/// a [`TableStore`] via [`diff_with`] on hot paths).
pub fn diff(prev: &SnapshotParts, next: &SnapshotParts) -> TableDelta {
    diff_with(&mut TableStore::default(), prev, next)
}

/// Applies a delta to `base` (throwaway interner — reuse a [`TableStore`]
/// via [`apply_with`] on hot paths).
pub fn apply(base: &SnapshotParts, delta: &TableDelta) -> SnapshotParts {
    apply_with(&mut TableStore::default(), base, delta)
}

/// The pre-interning `BTreeMap`-based diff, kept as the behavioural
/// reference: property tests assert [`diff_with`] matches it and the
/// ablation bench measures the interning win against it.
pub fn diff_reference(prev: &SnapshotParts, next: &SnapshotParts) -> TableDelta {
    use std::collections::BTreeMap;
    let mut d = TableDelta {
        captured_at: next.captured_at,
        ..TableDelta::default()
    };
    // Pairs.
    let prev_pairs: BTreeMap<(GroupAddr, Ip), &PairRow> = prev
        .pairs
        .iter()
        .map(|p| ((p.group, p.source), p))
        .collect();
    let next_pairs: BTreeMap<(GroupAddr, Ip), &PairRow> = next
        .pairs
        .iter()
        .map(|p| ((p.group, p.source), p))
        .collect();
    for (k, row) in &next_pairs {
        if prev_pairs.get(k) != Some(row) {
            d.pair_upserts.push((*row).clone());
        }
    }
    for k in prev_pairs.keys() {
        if !next_pairs.contains_key(k) {
            d.pair_removals.push(*k);
        }
    }
    // Routes.
    let prev_routes: BTreeMap<(LearnedFrom, Prefix), &RouteRow> = prev
        .routes
        .iter()
        .map(|r| ((r.learned_from, r.prefix), r))
        .collect();
    let next_routes: BTreeMap<(LearnedFrom, Prefix), &RouteRow> = next
        .routes
        .iter()
        .map(|r| ((r.learned_from, r.prefix), r))
        .collect();
    for (k, row) in &next_routes {
        if prev_routes.get(k) != Some(row) {
            d.route_upserts.push((*row).clone());
        }
    }
    for k in prev_routes.keys() {
        if !next_routes.contains_key(k) {
            d.route_removals.push(*k);
        }
    }
    // SA cache.
    let prev_sa: BTreeMap<(GroupAddr, Ip), SimTime> = prev
        .sa_cache
        .iter()
        .map(|(g, s, t)| ((*g, *s), *t))
        .collect();
    let next_sa: BTreeMap<(GroupAddr, Ip), SimTime> = next
        .sa_cache
        .iter()
        .map(|(g, s, t)| ((*g, *s), *t))
        .collect();
    for (k, t) in &next_sa {
        if prev_sa.get(k) != Some(t) {
            d.sa_upserts.push((k.0, k.1, *t));
        }
    }
    for k in prev_sa.keys() {
        if !next_sa.contains_key(k) {
            d.sa_removals.push(*k);
        }
    }
    // Member-only sessions.
    let prev_s: BTreeMap<GroupAddr, &SessionRow> = prev
        .member_only_sessions
        .iter()
        .map(|s| (s.group, s))
        .collect();
    let next_s: BTreeMap<GroupAddr, &SessionRow> = next
        .member_only_sessions
        .iter()
        .map(|s| (s.group, s))
        .collect();
    for (g, row) in &next_s {
        if prev_s.get(g) != Some(row) {
            d.session_upserts.push((*row).clone());
        }
    }
    for g in prev_s.keys() {
        if !next_s.contains_key(g) {
            d.session_removals.push(*g);
        }
    }
    d
}

/// The pre-interning `BTreeMap`-based apply, kept as the behavioural
/// reference for [`apply_with`].
pub fn apply_reference(base: &SnapshotParts, delta: &TableDelta) -> SnapshotParts {
    use std::collections::BTreeMap;
    let mut pairs: BTreeMap<(GroupAddr, Ip), PairRow> = base
        .pairs
        .iter()
        .map(|p| ((p.group, p.source), p.clone()))
        .collect();
    for p in &delta.pair_upserts {
        pairs.insert((p.group, p.source), p.clone());
    }
    for k in &delta.pair_removals {
        pairs.remove(k);
    }
    let mut routes: BTreeMap<(LearnedFrom, Prefix), RouteRow> = base
        .routes
        .iter()
        .map(|r| ((r.learned_from, r.prefix), r.clone()))
        .collect();
    for r in &delta.route_upserts {
        routes.insert((r.learned_from, r.prefix), r.clone());
    }
    for k in &delta.route_removals {
        routes.remove(k);
    }
    let mut sa: BTreeMap<(GroupAddr, Ip), SimTime> = base
        .sa_cache
        .iter()
        .map(|(g, s, t)| ((*g, *s), *t))
        .collect();
    for (g, s, t) in &delta.sa_upserts {
        sa.insert((*g, *s), *t);
    }
    for k in &delta.sa_removals {
        sa.remove(k);
    }
    let mut sessions: BTreeMap<GroupAddr, SessionRow> = base
        .member_only_sessions
        .iter()
        .map(|s| (s.group, s.clone()))
        .collect();
    for s in &delta.session_upserts {
        sessions.insert(s.group, s.clone());
    }
    for g in &delta.session_removals {
        sessions.remove(g);
    }
    SnapshotParts {
        captured_at: delta.captured_at,
        router: base.router.clone(),
        pairs: pairs.into_values().collect(),
        routes: routes.into_values().collect(),
        sa_cache: sa.into_iter().map(|((g, s), t)| (g, s, t)).collect(),
        member_only_sessions: sessions.into_values().collect(),
        presorted: true, // straight out of BTreeMap iteration
    }
}

/// The append-only log for one router's snapshot stream.
///
/// Where the records live is delegated to an [`ArchiveBackend`]: the
/// default [`MemoryBackend`] keeps them in process (and serialises
/// byte-identically to the pre-backend log), while [`FileBackend`] turns
/// the log into a durable on-disk archive with checkpoints and crash
/// recovery. Appending is infallible either way — a failing backend
/// write is counted in [`TableLog::write_errors`] and surfaced through
/// [`TableLog::backend_error`] rather than panicking mid-cycle.
#[derive(Debug)]
pub struct TableLog {
    backend: Box<dyn ArchiveBackend>,
    tail: Option<SnapshotParts>,
    since_full: usize,
    /// Interner reused across appends when the caller does not share one.
    scratch: TableStore,
    /// A full snapshot is stored every this many records (bounds replay
    /// cost and the blast radius of a corrupt record).
    pub full_every: usize,
    /// Payload bytes the log stored (serialised records, before any
    /// backend framing).
    pub bytes_stored: usize,
    /// Bytes storing every snapshot in full would have cost — the paper's
    /// baseline for the space-conservation claim. Zero for archives
    /// reopened from disk (the baseline is not persisted).
    pub bytes_full_baseline: usize,
    /// Appends the backend failed to persist.
    pub write_errors: u64,
    /// True when the requested backend could not be opened and the log
    /// silently degraded to an in-memory archive — persistence the
    /// operator asked for is *not* happening, so the health registry and
    /// archive metrics surface this rather than leaving it buried in
    /// [`TableLog::backend_error`].
    pub fell_back: bool,
    backend_error: Option<String>,
    /// True once [`TableLog::seal`] ran: the archive is closed to
    /// appends until the router rejoins (see
    /// [`ArchiveSpec::rejoin_log`]). Reads keep working — a sealed
    /// archive is exactly a read-only one.
    sealed: bool,
    /// Archive reads that failed during [`TableLog::replay`]. Interior
    /// mutability because replay takes `&self`; surfaced through
    /// [`TableLog::replay_errors`] and the `archive_degraded` health
    /// flag instead of panicking the monitor.
    replay_errors: Cell<u64>,
    replay_error: RefCell<Option<String>>,
}

impl Default for TableLog {
    fn default() -> Self {
        TableLog {
            backend: Box::<MemoryBackend>::default(),
            tail: None,
            since_full: 0,
            scratch: TableStore::default(),
            full_every: 0,
            bytes_stored: 0,
            bytes_full_baseline: 0,
            write_errors: 0,
            fell_back: false,
            backend_error: None,
            sealed: false,
            replay_errors: Cell::new(0),
            replay_error: RefCell::new(None),
        }
    }
}

impl TableLog {
    /// An in-memory log storing a full snapshot every `full_every`
    /// records.
    pub fn new(full_every: usize) -> Self {
        TableLog {
            full_every: full_every.max(1),
            ..TableLog::default()
        }
    }

    /// A log writing into a caller-supplied (empty) backend.
    pub fn with_backend(backend: Box<dyn ArchiveBackend>, full_every: usize) -> Self {
        TableLog {
            backend,
            full_every: full_every.max(1),
            ..TableLog::default()
        }
    }

    /// Opens (or creates) an on-disk archive at `path` for appending,
    /// dispatching on the header's format version: existing v1 archives
    /// keep appending JSON frames through [`FileBackend`], v2 archives
    /// (and fresh files) go through [`FileBackendV2`], and an unknown
    /// version fails loudly instead of guessing.
    ///
    /// The tail snapshot and delta cadence are rebuilt by replaying only
    /// the records from the last checkpoint — a reopened archive keeps
    /// appending deltas exactly as if the process had never stopped.
    pub fn open_file(path: &Path, full_every: usize) -> io::Result<TableLog> {
        let backend: Box<dyn ArchiveBackend> = if path.exists() {
            let (version, _) = read_header(&mut std::fs::File::open(path)?)?;
            match version {
                FORMAT_VERSION => Box::new(FileBackend::open(path)?),
                FORMAT_VERSION_V2 => Box::new(FileBackendV2::open(path)?),
                v => return Err(unsupported_version(v)),
            }
        } else {
            Box::new(FileBackendV2::create(path)?)
        };
        Self::resume(backend, full_every)
    }

    /// Opens an existing on-disk archive for reading only, dispatching
    /// on the format version like [`TableLog::open_file`]. The file is
    /// never written: a torn or corrupt tail is clamped to the last
    /// intact record in memory instead of being truncated away, so this
    /// is safe against an archive another process is actively appending
    /// to. Appends through the returned log fail (and are counted in
    /// [`TableLog::write_errors`]).
    pub fn open_file_read_only(path: &Path, full_every: usize) -> io::Result<TableLog> {
        let (version, _) = read_header(&mut std::fs::File::open(path)?)?;
        let backend: Box<dyn ArchiveBackend> = match version {
            FORMAT_VERSION => Box::new(FileBackend::open_read_only(path)?),
            FORMAT_VERSION_V2 => Box::new(FileBackendV2::open_read_only(path)?),
            v => return Err(unsupported_version(v)),
        };
        Self::resume(backend, full_every)
    }

    /// Rebuilds the in-memory tail state (last snapshot, delta cadence)
    /// from an already-opened backend by replaying from its last
    /// checkpoint.
    fn resume(backend: Box<dyn ArchiveBackend>, full_every: usize) -> io::Result<TableLog> {
        let start = backend.last_checkpoint().unwrap_or(0);
        let mut store = TableStore::default();
        let mut tail: Option<SnapshotParts> = None;
        let mut since_full = 0usize;
        for rec in backend.records_from(start) {
            match rec? {
                LogRecord::Full(p) => {
                    since_full = 1;
                    tail = Some(p);
                }
                LogRecord::Delta(d) => {
                    let base = tail.as_ref().ok_or_else(|| {
                        io::Error::new(
                            io::ErrorKind::InvalidData,
                            "archive starts with a delta record",
                        )
                    })?;
                    since_full += 1;
                    tail = Some(apply_with(&mut store, base, &d));
                }
            }
        }
        let bytes_stored = backend.stats().bytes as usize;
        Ok(TableLog {
            backend,
            tail,
            since_full,
            scratch: store,
            full_every: full_every.max(1),
            bytes_stored,
            bytes_full_baseline: 0,
            write_errors: 0,
            fell_back: false,
            backend_error: None,
            sealed: false,
            replay_errors: Cell::new(0),
            replay_error: RefCell::new(None),
        })
    }

    /// Seals the archive when its router retires from the fleet.
    ///
    /// Sealing is a **drain barrier**: on threaded backends every queued
    /// append lands on disk before this returns, so the `.marc` file is
    /// byte-stable from this moment until the router rejoins. Further
    /// appends are refused (counted in [`TableLog::write_errors`]);
    /// replay and stats keep working. Idempotent.
    pub fn seal(&mut self) {
        if self.sealed {
            return;
        }
        // `len` is the drain barrier on ThreadedBackend.
        let _ = self.backend.len();
        self.sealed = true;
    }

    /// True once the archive has been sealed by [`TableLog::seal`].
    pub fn is_sealed(&self) -> bool {
        self.sealed
    }

    /// The backend's archive accounting. Non-draining on every backend:
    /// on [`ThreadedBackend`](crate::archive::ThreadedBackend) this reads
    /// the writer's mirror plus a live queue overlay, so health tables
    /// and daemon endpoints never stall behind a slow disk.
    pub fn archive_stats(&self) -> ArchiveStats {
        self.backend.stats()
    }

    /// The backend's format identity (version/epoch/dictionary size).
    /// Non-draining, like [`TableLog::archive_stats`].
    pub fn describe(&self) -> ArchiveInfo {
        self.backend.describe()
    }

    /// The backend's name ("memory", "file").
    pub fn backend_kind(&self) -> &'static str {
        self.backend.kind()
    }

    /// The last backend write failure, if any.
    pub fn backend_error(&self) -> Option<&str> {
        self.backend_error.as_deref()
    }

    /// Appends a snapshot, choosing full or delta representation. A delta
    /// record is used only when it is both due (within the full-snapshot
    /// cadence) and actually smaller than the full record — on tiny tables
    /// the delta framing can cost more than the data.
    ///
    /// Returns the delta taking the previous snapshot to this one whenever
    /// a previous snapshot exists — even on cycles that *store* a full
    /// checkpoint record — so streaming analysers can fold it without
    /// re-diffing. `None` only for the first append of a fresh log.
    pub fn append(&mut self, tables: &Tables) -> Option<TableDelta> {
        let mut store = std::mem::take(&mut self.scratch);
        let delta = self.append_with(&mut store, tables);
        self.scratch = store;
        delta
    }

    /// [`TableLog::append`] interning through a caller-owned store, so one
    /// store can serve every router's log (the monitor shares its
    /// pipeline-wide [`TableStore`] here).
    pub fn append_with(&mut self, store: &mut TableStore, tables: &Tables) -> Option<TableDelta> {
        if self.sealed {
            self.write_errors += 1;
            self.backend_error = Some("archive is sealed (router retired)".into());
            return None;
        }
        let parts = SnapshotParts::from_tables(tables);
        let full_record = LogRecord::Full(parts.clone());
        // The serialised text is kept, not just measured: the backend
        // archives exactly these bytes, so every backend stores the same
        // payload the size decision was made on.
        let full_json = serde_json::to_string(&full_record).unwrap_or_default();
        // The baseline is what storing the snapshot itself would cost.
        self.bytes_full_baseline += serde_json::to_string(&parts).map(|s| s.len()).unwrap_or(0);
        let delta = self
            .tail
            .as_ref()
            .map(|prev| diff_with(store, prev, &parts));
        let mut chosen = None;
        if let (Some(d), false) = (&delta, self.since_full >= self.full_every) {
            let delta_record = LogRecord::Delta(d.clone());
            if let Ok(delta_json) = serde_json::to_string(&delta_record) {
                if delta_json.len() < full_json.len() {
                    self.since_full += 1;
                    chosen = Some((delta_record, delta_json));
                }
            }
        }
        let (record, json) = chosen.unwrap_or_else(|| {
            self.since_full = 1;
            (full_record, full_json)
        });
        self.bytes_stored += json.len();
        if let Err(e) = self.backend.append(&record, &json) {
            self.write_errors += 1;
            self.backend_error = Some(e.to_string());
            // The record never reached the archive; a delta stored after
            // it would replay against a base the archive doesn't have.
            // Exhaust the cadence so the next append stores a full
            // snapshot and re-anchors the chain.
            self.since_full = self.full_every;
        }
        self.tail = Some(parts);
        delta
    }

    /// Number of stored records.
    ///
    /// **Drain barrier** on threaded backends: the count is only exact
    /// once queued appends have landed, so this blocks until the writer
    /// queue is empty. Concurrent observers (the daemon) must use
    /// [`TableLog::archive_stats`] (non-draining, includes queued
    /// records) or a read-only
    /// [`ArchiveReader`](crate::archive::ArchiveReader) instead.
    pub fn len(&self) -> usize {
        self.backend.len()
    }

    /// True when nothing has been appended. A drain barrier on threaded
    /// backends, like [`TableLog::len`].
    pub fn is_empty(&self) -> bool {
        self.backend.is_empty()
    }

    /// Storage saved relative to storing full snapshots, in `[0, 1)`.
    pub fn savings_ratio(&self) -> f64 {
        if self.bytes_full_baseline == 0 {
            0.0
        } else {
            1.0 - self.bytes_stored as f64 / self.bytes_full_baseline as f64
        }
    }

    /// Streams the log's snapshots in order, holding one current
    /// snapshot (plus the record being applied) in memory regardless of
    /// archive length.
    pub fn replay_iter(&self) -> ReplayIter<'_> {
        ReplayIter {
            records: self.backend.records(),
            store: TableStore::default(),
            cur: None,
            done: false,
        }
    }

    /// Replays the log, returning every snapshot in order.
    ///
    /// An unreadable record ends the replay at the last clean snapshot
    /// instead of panicking: the error is counted in
    /// [`TableLog::replay_errors`] (which feeds the `archive_degraded`
    /// health flag) and kept in [`TableLog::last_replay_error`]. Callers
    /// that need the error itself use [`TableLog::try_replay`] or
    /// [`TableLog::replay_iter`].
    pub fn replay(&self) -> Vec<Tables> {
        let mut out = Vec::new();
        for step in self.replay_iter() {
            match step {
                Ok(tables) => out.push(tables),
                Err(e) => {
                    self.note_replay_error(&e);
                    break;
                }
            }
        }
        out
    }

    /// Replays the log, propagating the first archive read error (still
    /// counted in [`TableLog::replay_errors`], so health degrades even
    /// when the caller handles the error).
    pub fn try_replay(&self) -> io::Result<Vec<Tables>> {
        let mut out = Vec::new();
        for step in self.replay_iter() {
            match step {
                Ok(tables) => out.push(tables),
                Err(e) => {
                    self.note_replay_error(&e);
                    return Err(e);
                }
            }
        }
        Ok(out)
    }

    fn note_replay_error(&self, e: &io::Error) {
        self.replay_errors.set(self.replay_errors.get() + 1);
        *self.replay_error.borrow_mut() = Some(e.to_string());
    }

    /// Archive read failures observed by [`TableLog::replay`] /
    /// [`TableLog::try_replay`].
    pub fn replay_errors(&self) -> u64 {
        self.replay_errors.get()
    }

    /// The most recent replay failure, if any.
    pub fn last_replay_error(&self) -> Option<String> {
        self.replay_error.borrow().clone()
    }

    /// Replays only the final snapshot (cheap tail access).
    pub fn last(&self) -> Option<Tables> {
        self.tail.as_ref().map(|p| p.rebuild())
    }

    /// Writes the archive to disk as JSON-lines (one record per line) —
    /// the interchange shape of Mantra's long-term archives, identical
    /// for every backend.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        use std::io::Write as _;
        let file = std::fs::File::create(path)?;
        let mut w = std::io::BufWriter::new(file);
        for rec in self.backend.records() {
            let line = serde_json::to_string(&rec?)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            writeln!(w, "{line}")?;
        }
        w.flush()
    }

    /// Loads an archive from disk, sniffing the format: a `MANTRARC`
    /// header dispatches on its format version ([`FileBackend`] for v1,
    /// [`FileBackendV2`] for v2, a clear unsupported-version error for
    /// anything newer — never a fallback to JSONL sniffing), JSON-lines
    /// loads the legacy [`TableLog::save`] shape into memory, and
    /// anything else is rejected with a clear error instead of a JSON
    /// parse failure.
    pub fn load(path: &Path, full_every: usize) -> io::Result<TableLog> {
        use std::io::Read as _;
        let mut head = Vec::new();
        std::fs::File::open(path)?
            .take(MAGIC.len() as u64)
            .read_to_end(&mut head)?;
        if head == MAGIC {
            return TableLog::open_file(path, full_every);
        }
        match head.iter().find(|b| !b.is_ascii_whitespace()) {
            Some(b'{') | None => TableLog::load_jsonl(path, full_every),
            Some(_) => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "unrecognised archive header in {}: expected a MANTRARC \
                     binary archive or a JSON-lines archive",
                    path.display()
                ),
            )),
        }
    }

    /// [`TableLog::load`] for read paths: MANTRARC archives open through
    /// [`TableLog::open_file_read_only`] (the file is never written),
    /// JSON-lines archives load into memory exactly as before (that
    /// path never mutated the file). `mantra archive info|replay` and
    /// every daemon read goes through here, so inspecting an archive
    /// can never truncate a live writer's in-flight frame.
    pub fn load_read_only(path: &Path, full_every: usize) -> io::Result<TableLog> {
        use std::io::Read as _;
        let mut head = Vec::new();
        std::fs::File::open(path)?
            .take(MAGIC.len() as u64)
            .read_to_end(&mut head)?;
        if head == MAGIC {
            return TableLog::open_file_read_only(path, full_every);
        }
        TableLog::load(path, full_every)
    }

    /// Loads a legacy JSON-lines archive written by [`TableLog::save`].
    /// The reloaded log replays identically; appending continues from
    /// the reloaded tail.
    fn load_jsonl(path: &Path, full_every: usize) -> io::Result<TableLog> {
        use std::io::BufRead as _;
        let file = std::fs::File::open(path)?;
        let mut log = TableLog::new(full_every);
        for line in std::io::BufReader::new(file).lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let rec: LogRecord = serde_json::from_str(&line)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            log.bytes_stored += line.len();
            let parts = match &rec {
                LogRecord::Full(p) => {
                    log.since_full = 1;
                    p.clone()
                }
                LogRecord::Delta(d) => {
                    let base = log.tail.as_ref().ok_or_else(|| {
                        io::Error::new(
                            io::ErrorKind::InvalidData,
                            "archive starts with a delta record",
                        )
                    })?;
                    log.since_full += 1;
                    let mut store = std::mem::take(&mut log.scratch);
                    let parts = apply_with(&mut store, base, d);
                    log.scratch = store;
                    parts
                }
            };
            log.bytes_full_baseline += serde_json::to_string(&parts).map(|s| s.len()).unwrap_or(0);
            log.backend
                .append(&rec, &line)
                .expect("memory append cannot fail");
            log.tail = Some(parts);
        }
        Ok(log)
    }
}

/// The streaming replay over a [`TableLog`]'s archive: full records
/// reset the cursor, delta records advance it, and each step yields the
/// rebuilt four-table snapshot. Memory use is one snapshot regardless of
/// how long the archive is — the property that makes FIXW-scale archives
/// replayable at all.
pub struct ReplayIter<'a> {
    records: RecordIter<'a>,
    store: TableStore,
    cur: Option<SnapshotParts>,
    done: bool,
}

impl Iterator for ReplayIter<'_> {
    type Item = io::Result<Tables>;

    fn next(&mut self) -> Option<io::Result<Tables>> {
        if self.done {
            return None;
        }
        let rec = match self.records.next()? {
            Ok(rec) => rec,
            Err(e) => {
                self.done = true;
                return Some(Err(e));
            }
        };
        let parts = match rec {
            LogRecord::Full(p) => p,
            LogRecord::Delta(d) => match self.cur.as_ref() {
                Some(base) => apply_with(&mut self.store, base, &d),
                None => {
                    self.done = true;
                    return Some(Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "delta record without a base snapshot",
                    )));
                }
            },
        };
        let tables = parts.rebuild();
        self.cur = Some(parts);
        Some(Ok(tables))
    }
}

impl ArchiveSpec {
    /// Opens the log for one router under this spec. File backends that
    /// fail to open (unwritable directory, exhausted disk) fall back to
    /// an in-memory log so a collection cycle never dies on archival —
    /// the failure is visible through [`TableLog::backend_error`].
    pub fn open_log(&self, router: &str, full_every: usize) -> TableLog {
        fn fallback(full_every: usize, e: io::Error) -> TableLog {
            let mut log = TableLog::new(full_every);
            log.write_errors = 1;
            log.fell_back = true;
            log.backend_error = Some(format!("file archive unavailable, logging to memory: {e}"));
            log
        }
        match self {
            ArchiveSpec::Memory => TableLog::new(full_every),
            ArchiveSpec::File { dir, sync } => {
                match FileBackendV2::create(ArchiveSpec::path_for(dir, router)) {
                    Ok(mut backend) => {
                        backend.sync = *sync;
                        TableLog::with_backend(Box::new(backend), full_every)
                    }
                    Err(e) => fallback(full_every, e),
                }
            }
            ArchiveSpec::Threaded { dir, sync, writer } => {
                match FileBackendV2::create(ArchiveSpec::path_for(dir, router)) {
                    Ok(mut backend) => {
                        backend.sync = *sync;
                        let threaded = ThreadedBackend::spawn(Box::new(backend), *writer);
                        TableLog::with_backend(Box::new(threaded), full_every)
                    }
                    Err(e) => fallback(full_every, e),
                }
            }
        }
    }

    /// Reopens a sealed archive when its router rejoins the fleet.
    ///
    /// File-backed archives are rewritten in place at the **next interner
    /// epoch** (via [`compact_archive`] to a sibling temp file, then an
    /// atomic rename) and reopened for appending with the tail resumed —
    /// so payloads salvaged from the pre-retirement file can never be
    /// resolved against the post-rejoin dictionary, while the replayed
    /// history stays snapshot-identical. Memory archives simply unseal
    /// and continue. Any rewrite failure falls back to a fresh in-memory
    /// log with [`TableLog::fell_back`] set, mirroring
    /// [`ArchiveSpec::open_log`]: a rejoin never kills the cycle.
    pub fn rejoin_log(&self, router: &str, full_every: usize, sealed: TableLog) -> TableLog {
        fn fallback(full_every: usize, e: io::Error) -> TableLog {
            let mut log = TableLog::new(full_every);
            log.write_errors = 1;
            log.fell_back = true;
            log.backend_error = Some(format!("archive rejoin failed, logging to memory: {e}"));
            log
        }
        let (dir, sync, writer) = match self {
            ArchiveSpec::Memory => {
                let mut log = sealed;
                log.sealed = false;
                return log;
            }
            ArchiveSpec::File { dir, sync } => (dir, *sync, None),
            ArchiveSpec::Threaded { dir, sync, writer } => (dir, *sync, Some(*writer)),
        };
        let path = ArchiveSpec::path_for(dir, router);
        let tmp = path.with_extension("marc.rejoin");
        let opts = CompactOptions {
            full_every,
            drop_before: None,
            sync,
        };
        let rewritten = compact_archive(&sealed, &tmp, &opts);
        // Close both the sealed source and the rewrite before renaming.
        drop(sealed);
        match rewritten {
            Ok(rewrite) => drop(rewrite),
            Err(e) => {
                std::fs::remove_file(&tmp).ok();
                return fallback(full_every, e);
            }
        }
        let reopen = std::fs::rename(&tmp, &path).and_then(|()| {
            let mut backend = FileBackendV2::open(&path)?;
            backend.sync = sync;
            let boxed: Box<dyn ArchiveBackend> = match writer {
                Some(cfg) => Box::new(ThreadedBackend::spawn(Box::new(backend), cfg)),
                None => Box::new(backend),
            };
            TableLog::resume(boxed, full_every)
        });
        match reopen {
            Ok(log) => log,
            Err(e) => fallback(full_every, e),
        }
    }
}

/// Policies for [`compact_archive`].
#[derive(Clone, Debug)]
pub struct CompactOptions {
    /// Checkpoint cadence of the rewritten archive — compaction is also
    /// a re-checkpointing pass, so replay-entry density can be chosen
    /// independently of what the source archive used.
    pub full_every: usize,
    /// Drop snapshots captured before this time (a retention policy:
    /// fleet-day archives are compacted with the already-summarised
    /// prefix dropped).
    pub drop_before: Option<SimTime>,
    /// Fsync cadence for the rewrite.
    pub sync: SyncPolicy,
}

impl Default for CompactOptions {
    fn default() -> Self {
        CompactOptions {
            full_every: 96,
            drop_before: None,
            sync: SyncPolicy::default(),
        }
    }
}

/// Rewrites `src` as a fresh MANTRARC v2 archive at `out`, returning the
/// rewritten log and how many snapshots the retention policy dropped.
///
/// The rewrite replays the source and re-appends, so it re-checkpoints
/// on the new cadence, re-chooses full-vs-delta per record, and builds a
/// brand-new dictionary containing only keys the surviving records
/// reference — dead entries (routers renamed away, sessions long gone,
/// everything referenced only by dropped snapshots) are garbage
/// collected. The new archive's interner epoch is the source's epoch
/// plus one, so v2 payloads salvaged from the old file can never be
/// resolved against the new dictionary.
pub fn compact_archive(
    src: &TableLog,
    out: &Path,
    opts: &CompactOptions,
) -> io::Result<(TableLog, usize)> {
    let epoch = src.describe().epoch.saturating_add(1);
    let mut backend = FileBackendV2::create_with_epoch(out, epoch)?;
    backend.sync = opts.sync;
    let mut dst = TableLog::with_backend(Box::new(backend), opts.full_every);
    let mut dropped = 0usize;
    for tables in src.replay_iter() {
        let tables = tables?;
        if opts.drop_before.is_some_and(|ts| tables.captured_at < ts) {
            dropped += 1;
            continue;
        }
        dst.append(&tables);
        if let Some(e) = dst.backend_error() {
            return Err(io::Error::other(format!("compaction write failed: {e}")));
        }
    }
    Ok((dst, dropped))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mantra_net::BitRate;

    fn t(n: u64) -> SimTime {
        SimTime(SimTime::from_ymd(1998, 11, 1).as_secs() + n * 900)
    }

    fn g(i: u32) -> GroupAddr {
        GroupAddr::from_index(i)
    }

    fn snapshot(n: u64, pairs: &[(u32, Ip, u64)]) -> Tables {
        let mut tab = Tables::new("fixw", t(n));
        for (gi, src, kbps) in pairs {
            tab.add_pair(PairRow {
                source: *src,
                group: g(*gi),
                current_bw: BitRate::from_kbps(*kbps),
                avg_bw: BitRate::from_kbps(*kbps),
                forwarding: true,
                learned_from: LearnedFrom::Dvmrp,
            });
        }
        tab
    }

    #[test]
    fn replay_reconstructs_exactly() {
        let s1 = Ip::new(1, 1, 1, 1);
        let s2 = Ip::new(2, 2, 2, 2);
        let snaps = vec![
            snapshot(0, &[(0, s1, 64), (1, s2, 2)]),
            snapshot(1, &[(0, s1, 80), (1, s2, 2)]), // rate change
            snapshot(2, &[(0, s1, 80)]),             // s2 left
            snapshot(3, &[(0, s1, 80), (2, s2, 128)]), // new session
        ];
        let mut log = TableLog::new(100);
        for s in &snaps {
            log.append(s);
        }
        let replayed = log.replay();
        assert_eq!(replayed, snaps);
        assert_eq!(log.last().unwrap(), snaps[3]);
    }

    #[test]
    fn interned_diff_apply_match_reference_across_cycles() {
        let s1 = Ip::new(1, 1, 1, 1);
        let s2 = Ip::new(2, 2, 2, 2);
        let snaps = [
            snapshot(0, &[(0, s1, 64), (1, s2, 2)]),
            snapshot(1, &[(0, s1, 80), (1, s2, 2)]),
            snapshot(2, &[(0, s1, 80)]),
            snapshot(3, &[(0, s1, 80), (2, s2, 128)]),
        ];
        let parts: Vec<SnapshotParts> = snaps.iter().map(SnapshotParts::from_tables).collect();
        // One store reused across every cycle, as the monitor does.
        let mut store = TableStore::default();
        for w in parts.windows(2) {
            let fast = diff_with(&mut store, &w[0], &w[1]);
            let slow = diff_reference(&w[0], &w[1]);
            assert_eq!(
                serde_json::to_string(&fast).unwrap(),
                serde_json::to_string(&slow).unwrap()
            );
            let applied = apply_with(&mut store, &w[0], &fast);
            assert_eq!(applied, apply_reference(&w[0], &slow));
            assert_eq!(applied, w[1]);
        }
    }

    #[test]
    fn deltas_save_space_on_stable_tables() {
        // A big, slowly-changing table (the paper's route-table case).
        let mut base = Tables::new("fixw", t(0));
        for i in 0..500u32 {
            base.add_route(RouteRow {
                prefix: Prefix::new(Ip(Ip::new(128, 0, 0, 0).0 + (i << 16)), 16).unwrap(),
                next_hop: Some(Ip::new(10, 128, 0, 2)),
                metric: 3,
                uptime: None,
                reachable: true,
                learned_from: LearnedFrom::Dvmrp,
            });
        }
        let mut log = TableLog::new(1_000);
        for n in 0..50u64 {
            let mut s = base.clone();
            s.captured_at = t(n);
            // One route flaps each cycle.
            let key = (
                LearnedFrom::Dvmrp,
                Prefix::new(Ip(Ip::new(128, 0, 0, 0).0 + ((n as u32 % 500) << 16)), 16).unwrap(),
            );
            s.routes.get_mut(&key).unwrap().reachable = n % 2 == 0;
            log.append(&s);
        }
        assert!(
            log.savings_ratio() > 0.9,
            "delta log should save >90% on stable tables, saved {:.2}",
            log.savings_ratio()
        );
        assert_eq!(log.replay().len(), 50);
    }

    #[test]
    fn periodic_full_snapshots_bound_replay_chains() {
        // A table large enough that deltas genuinely beat full snapshots.
        let pairs: Vec<(u32, Ip, u64)> = (0..40u32).map(|i| (i, Ip(100 + i), 64)).collect();
        let mut log = TableLog::new(5);
        for n in 0..17u64 {
            let mut p = pairs.clone();
            p[0].2 = n; // one rate changes per cycle
            log.append(&snapshot(n, &p));
        }
        assert_eq!(log.archive_stats().checkpoints, 4, "full at 0, 5, 10, 15");
        assert_eq!(log.replay().len(), 17);
    }

    #[test]
    fn tiny_tables_prefer_full_records() {
        // When the delta framing would cost more than the data, the logger
        // stores full records even inside the delta cadence.
        let s1 = Ip::new(1, 1, 1, 1);
        let mut log = TableLog::new(100);
        for n in 0..5u64 {
            log.append(&snapshot(n, &[(0, s1, n)]));
        }
        assert!(
            log.bytes_stored <= log.bytes_full_baseline + 16 * log.len(),
            "stored {} vs baseline {}",
            log.bytes_stored,
            log.bytes_full_baseline
        );
        assert_eq!(log.replay().len(), 5);
    }

    #[test]
    fn member_only_sessions_survive_the_redundancy_rule() {
        let mut tab = Tables::new("fixw", t(0));
        tab.sessions.insert(
            g(9),
            SessionRow {
                group: g(9),
                name: None,
                density: 0,
                bandwidth: BitRate::ZERO,
                first_advertised: LearnedFrom::Igmp,
                first_seen: t(0),
            },
        );
        tab.add_pair(PairRow {
            source: Ip::new(1, 1, 1, 1),
            group: g(0),
            current_bw: BitRate::from_kbps(5),
            avg_bw: BitRate::from_kbps(5),
            forwarding: true,
            learned_from: LearnedFrom::Dvmrp,
        });
        let mut log = TableLog::new(10);
        log.append(&tab);
        let back = log.replay().pop().unwrap();
        assert_eq!(back, tab);
        assert!(back.sessions.contains_key(&g(9)));
    }

    #[test]
    fn save_load_round_trip() {
        let s1 = Ip::new(1, 1, 1, 1);
        let s2 = Ip::new(2, 2, 2, 2);
        let mut log = TableLog::new(3);
        let snaps: Vec<Tables> = (0..9u64)
            .map(|n| snapshot(n, &[(0, s1, 64 + n), (1, s2, 2)]))
            .collect();
        for s in &snaps {
            log.append(s);
        }
        let dir = std::env::temp_dir().join("mantra-logger-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fixw.jsonl");
        log.save(&path).unwrap();
        let loaded = TableLog::load(&path, 3).unwrap();
        assert_eq!(loaded.replay(), snaps);
        assert_eq!(loaded.len(), log.len());
        // Appending to a reloaded archive keeps working.
        let mut loaded = loaded;
        loaded.append(&snapshot(9, &[(0, s1, 99)]));
        assert_eq!(loaded.replay().len(), 10);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_orphan_delta() {
        let dir = std::env::temp_dir().join("mantra-logger-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.jsonl");
        let delta = LogRecord::Delta(TableDelta::default());
        std::fs::write(&path, serde_json::to_string(&delta).unwrap()).unwrap();
        assert!(TableLog::load(&path, 3).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_log_behaviour() {
        let log = TableLog::new(10);
        assert!(log.is_empty());
        assert!(log.last().is_none());
        assert!(log.replay().is_empty());
        assert_eq!(log.savings_ratio(), 0.0);
        assert_eq!(log.backend_kind(), "memory");
        assert!(log.backend_error().is_none());
    }

    fn tmp_dir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("mantra-logger-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn file_backed_log_matches_memory_and_reopens() {
        let s1 = Ip::new(1, 1, 1, 1);
        let s2 = Ip::new(2, 2, 2, 2);
        let snaps: Vec<Tables> = (0..9u64)
            .map(|n| snapshot(n, &[(0, s1, 64 + n), (1, s2, 2)]))
            .collect();
        let dir = tmp_dir();
        let spec = ArchiveSpec::File {
            dir: dir.clone(),
            sync: SyncPolicy::default(),
        };
        let mut file_log = spec.open_log("fixw", 3);
        assert_eq!(file_log.describe().format_version, FORMAT_VERSION_V2);
        let mut mem_log = TableLog::new(3);
        assert_eq!(file_log.backend_kind(), "file");
        for s in &snaps {
            file_log.append(s);
            mem_log.append(s);
        }
        assert!(file_log.backend_error().is_none());
        assert_eq!(file_log.replay(), mem_log.replay());
        assert_eq!(file_log.bytes_stored, mem_log.bytes_stored);
        assert_eq!(
            file_log.archive_stats().checkpoints,
            mem_log.archive_stats().checkpoints
        );
        drop(file_log);
        // `load` sniffs the binary header and resumes from the last
        // checkpoint; appending continues seamlessly.
        let path = ArchiveSpec::path_for(&dir, "fixw");
        let mut reopened = TableLog::load(&path, 3).unwrap();
        assert_eq!(reopened.backend_kind(), "file");
        assert_eq!(reopened.replay(), snaps);
        assert_eq!(reopened.last().unwrap(), snaps[8]);
        reopened.append(&snapshot(9, &[(0, s1, 99)]));
        assert_eq!(reopened.replay().len(), 10);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn replay_iter_streams_the_same_snapshots_as_replay() {
        let s1 = Ip::new(1, 1, 1, 1);
        let mut log = TableLog::new(4);
        for n in 0..11u64 {
            log.append(&snapshot(n, &[(0, s1, 64 + n), (1, Ip(50 + n as u32), 2)]));
        }
        let streamed: Vec<Tables> = log.replay_iter().map(|r| r.unwrap()).collect();
        assert_eq!(streamed, log.replay());
    }

    #[test]
    fn load_rejects_unrecognised_headers() {
        let path = tmp_dir().join("garbage.bin");
        std::fs::write(&path, b"\x7fELF not an archive at all").unwrap();
        let err = TableLog::load(&path, 3).unwrap_err();
        assert!(
            err.to_string().contains("unrecognised archive header"),
            "{err}"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_fails_loudly_on_unknown_mantrarc_versions() {
        // A future v3 archive must be refused with a version error, not
        // fall through to legacy-JSONL sniffing (which would report a
        // bewildering JSON parse failure on binary data).
        let path = tmp_dir().join("future.marc");
        let mut header = Vec::new();
        header.extend_from_slice(&MAGIC);
        header.extend_from_slice(&3u16.to_le_bytes());
        header.resize(24, 0);
        std::fs::write(&path, &header).unwrap();
        let err = TableLog::load(&path, 3).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("unsupported format version 3"), "{msg}");
        assert!(msg.contains("versions 1 and 2"), "{msg}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn compaction_drops_old_snapshots_gcs_the_dictionary_and_bumps_the_epoch() {
        let dir = tmp_dir();
        let spec = ArchiveSpec::File {
            dir: dir.clone(),
            sync: SyncPolicy::default(),
        };
        let mut log = spec.open_log("fixw-compact", 3);
        // Tables big enough that deltas beat full records; early cycles
        // reference hosts that later disappear entirely.
        let base: Vec<(u32, Ip, u64)> = (0..40u32).map(|i| (i, Ip(0x0a00_0000 + i), 64)).collect();
        for n in 0..10u64 {
            let mut pairs = base.clone();
            pairs[0].2 = 64 + n; // one rate changes per cycle
            if n < 4 {
                pairs.push((90 + n as u32, Ip(0x0909_0900 + n as u32), 8));
            }
            log.append(&snapshot(n, &pairs));
        }
        let out = dir.join("fixw-compacted.marc");
        let (compacted, dropped) = compact_archive(
            &log,
            &out,
            &CompactOptions {
                full_every: 4,
                drop_before: Some(t(4)),
                sync: SyncPolicy::default(),
            },
        )
        .unwrap();
        assert_eq!(dropped, 4);
        assert_eq!(compacted.replay(), log.replay()[4..].to_vec());
        assert_eq!(compacted.describe().epoch, log.describe().epoch + 1);
        assert!(
            compacted.describe().dict_entries < log.describe().dict_entries,
            "keys referenced only by dropped snapshots are GC'd \
             ({} vs {})",
            compacted.describe().dict_entries,
            log.describe().dict_entries
        );
        // The rewrite re-checkpoints on its own cadence and reloads.
        assert_eq!(compacted.archive_stats().checkpoints, 2);
        let reloaded = TableLog::load(&out, 4).unwrap();
        assert_eq!(reloaded.replay(), compacted.replay());
        std::fs::remove_file(&out).unwrap();
        std::fs::remove_file(ArchiveSpec::path_for(&dir, "fixw-compact")).unwrap();
    }

    #[test]
    fn unwritable_archive_dir_falls_back_to_memory() {
        let spec = ArchiveSpec::File {
            dir: std::path::PathBuf::from("/proc/no-such-dir/archives"),
            sync: SyncPolicy::default(),
        };
        let mut log = spec.open_log("fixw", 3);
        assert_eq!(log.backend_kind(), "memory");
        assert!(log.backend_error().is_some());
        log.append(&snapshot(0, &[(0, Ip::new(1, 1, 1, 1), 64)]));
        assert_eq!(log.replay().len(), 1, "collection keeps working");
    }
}
