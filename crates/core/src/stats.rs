//! The data processor: per-snapshot statistics and time series.
//!
//! This is where the paper's figures come from. Usage monitoring
//! (Figures 3–6) classifies participants into senders vs passive
//! participants by the 4 kbps threshold and sessions into active vs
//! inactive, and estimates the bandwidth multicast saved. Route
//! monitoring (Figures 7–9) tracks route counts, churn between snapshots
//! and cross-router consistency.

use serde::{Deserialize, Serialize};

use mantra_net::{BitRate, GroupAddr, Prefix, SimTime};

use crate::store::TableStore;
use crate::tables::{LearnedFrom, Tables};

/// Usage-monitoring results for one snapshot.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct UsageStats {
    /// Snapshot timestamp.
    pub at: SimTime,
    /// Sessions with state at the router.
    pub sessions: usize,
    /// Participants (distinct sources) with state at the router.
    pub participants: usize,
    /// Sessions with at least one sender.
    pub active_sessions: usize,
    /// Participants sending above the threshold.
    pub senders: usize,
    /// Mean participants per session.
    pub avg_density: f64,
    /// Fraction of sessions with exactly one participant.
    pub single_member_fraction: f64,
    /// Fraction of sessions with at most two participants.
    pub le2_density_fraction: f64,
    /// Fraction of all participants held by the densest 6 % of sessions.
    pub top6pct_participant_share: f64,
    /// Aggregate bandwidth of multicast traffic through the router.
    pub total_bandwidth: BitRate,
    /// Estimated unicast-equivalent bandwidth divided by actual multicast
    /// bandwidth (the Figure 5 right-plot "bandwidth saved" multiple).
    pub bandwidth_saved_multiple: f64,
    /// MSDP SA-cache entries (0 before MSDP existed at the router).
    pub sa_entries: usize,
}

impl UsageStats {
    /// Computes usage statistics from one snapshot.
    pub fn from_tables(t: &Tables, threshold: BitRate) -> Self {
        let senders = t.senders(threshold).len();
        let active = t.active_sessions(threshold).len();
        Self::assemble(t, threshold, senders, active)
    }

    /// [`UsageStats::from_tables`] counting distinct senders and active
    /// sessions through the interner's presence marks instead of
    /// sort-and-dedup over freshly allocated `Vec`s — the monitor's hot
    /// path. Results are identical to [`UsageStats::from_tables`].
    pub fn from_tables_with(store: &mut TableStore, t: &Tables, threshold: BitRate) -> Self {
        store.hosts.begin_pass();
        store.groups.begin_pass();
        let (mut senders, mut active) = (0usize, 0usize);
        for p in t.pairs.values() {
            if !p.current_bw.is_sender(threshold) {
                continue;
            }
            let hid = store.hosts.intern(&p.source);
            if !store.hosts.seen(hid) {
                store.hosts.see(hid);
                senders += 1;
            }
            let gid = store.groups.intern(&p.group);
            if !store.groups.seen(gid) {
                store.groups.see(gid);
                active += 1;
            }
        }
        Self::assemble(t, threshold, senders, active)
    }

    /// The shared tail of the usage computation, once the distinct sender
    /// and active-session counts are known.
    fn assemble(t: &Tables, threshold: BitRate, senders: usize, active: usize) -> Self {
        let sessions = t.sessions.len();
        let participants = t.participants.len();
        let densities: Vec<u32> = t.sessions.values().map(|s| s.density).collect();
        let total_density: u64 = densities.iter().map(|d| u64::from(*d)).sum();
        let avg_density = if sessions == 0 {
            0.0
        } else {
            total_density as f64 / sessions as f64
        };
        let single = densities.iter().filter(|d| **d == 1).count();
        let le2 = densities.iter().filter(|d| **d <= 2).count();
        let top6 = {
            let mut sorted = densities.clone();
            sorted.sort_unstable_by(|a, b| b.cmp(a));
            let take = (sessions * 6).div_ceil(100).max(usize::from(sessions > 0));
            let top: u64 = sorted.iter().take(take).map(|d| u64::from(*d)).sum();
            if total_density == 0 {
                0.0
            } else {
                top as f64 / total_density as f64
            }
        };
        // Bandwidth through the router: forwarding (S,G) pairs only.
        let total_bw: BitRate = t
            .pairs
            .values()
            .filter(|p| p.forwarding && !p.source.is_unspecified())
            .map(|p| p.current_bw)
            .sum();
        // Unicast-equivalent estimate: every sender's stream delivered
        // point-to-point to each of the session's other participants would
        // cross this router once per receiver (the paper's density × rate
        // model).
        let unicast_bw: u64 = t
            .pairs
            .values()
            .filter(|p| p.current_bw.is_sender(threshold))
            .map(|p| {
                let density = t
                    .sessions
                    .get(&p.group)
                    .map(|s| u64::from(s.density))
                    .unwrap_or(1);
                p.current_bw.bps() * density.saturating_sub(1).max(1)
            })
            .sum();
        let saved = if total_bw.bps() == 0 {
            0.0
        } else {
            unicast_bw as f64 / total_bw.bps() as f64
        };
        UsageStats {
            at: t.captured_at,
            sessions,
            participants,
            active_sessions: active,
            senders,
            avg_density,
            single_member_fraction: frac(single, sessions),
            le2_density_fraction: frac(le2, sessions),
            top6pct_participant_share: top6,
            total_bandwidth: total_bw,
            bandwidth_saved_multiple: saved,
            sa_entries: t.sa_cache.len(),
        }
    }

    /// Percentage of sessions that are active (Figure 6 left).
    pub fn pct_active(&self) -> f64 {
        100.0 * frac(self.active_sessions, self.sessions)
    }

    /// Percentage of participants that are senders (Figure 6 right).
    pub fn pct_senders(&self) -> f64 {
        100.0 * frac(self.senders, self.participants)
    }
}

fn frac(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Route-monitoring results for one snapshot.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RouteStats {
    /// Snapshot timestamp.
    pub at: SimTime,
    /// All DVMRP routes present, holddown included.
    pub dvmrp_total: usize,
    /// Reachable DVMRP routes — the Figures 7–9 series.
    pub dvmrp_reachable: usize,
    /// MBGP routes (the native infrastructure's reach).
    pub mbgp_routes: usize,
    /// Mean reported route uptime, where the dialect reports it.
    pub mean_uptime_secs: Option<f64>,
}

impl RouteStats {
    /// Computes route statistics from one snapshot.
    pub fn from_tables(t: &Tables) -> Self {
        let uptimes: Vec<u64> = t
            .routes
            .values()
            .filter_map(|r| r.uptime.map(|u| u.as_secs()))
            .collect();
        RouteStats {
            at: t.captured_at,
            dvmrp_total: t.routes_of(LearnedFrom::Dvmrp).count(),
            dvmrp_reachable: t.reachable_dvmrp_routes(),
            mbgp_routes: t.routes_of(LearnedFrom::Mbgp).count(),
            mean_uptime_secs: if uptimes.is_empty() {
                None
            } else {
                Some(uptimes.iter().sum::<u64>() as f64 / uptimes.len() as f64)
            },
        }
    }
}

/// Route churn between two consecutive snapshots of the same router.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouteChurn {
    /// Prefixes present now but not before.
    pub added: usize,
    /// Prefixes gone.
    pub removed: usize,
    /// Prefixes whose metric or next hop changed.
    pub changed: usize,
    /// Prefixes that flipped reachable ↔ unreachable.
    pub reachability_flips: usize,
}

impl RouteChurn {
    /// Computes churn between DVMRP tables of two snapshots.
    pub fn between(prev: &Tables, next: &Tables) -> RouteChurn {
        let mut churn = RouteChurn::default();
        for r in next.routes_of(LearnedFrom::Dvmrp) {
            match prev.routes.get(&(LearnedFrom::Dvmrp, r.prefix)) {
                None => churn.added += 1,
                Some(old) => {
                    if old.metric != r.metric || old.next_hop != r.next_hop {
                        churn.changed += 1;
                    }
                    if old.reachable != r.reachable {
                        churn.reachability_flips += 1;
                    }
                }
            }
        }
        for r in prev.routes_of(LearnedFrom::Dvmrp) {
            if !next.routes.contains_key(&(LearnedFrom::Dvmrp, r.prefix)) {
                churn.removed += 1;
            }
        }
        churn
    }

    /// Total change events.
    pub fn total(&self) -> usize {
        self.added + self.removed + self.changed + self.reachability_flips
    }

    /// Adds another churn count into this one — integer sums, so fleet
    /// aggregation across routers and shards is exact and
    /// order-independent.
    pub fn absorb(&mut self, other: &RouteChurn) {
        self.added += other.added;
        self.removed += other.removed;
        self.changed += other.changed;
        self.reachability_flips += other.reachability_flips;
    }
}

/// Cross-router consistency: how much two routers' DVMRP views differ —
/// ideally zero, and the paper's Figure 7 shows it very much was not.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ConsistencyReport {
    /// Reachable prefixes seen only at the first router.
    pub only_first: usize,
    /// Reachable prefixes seen only at the second.
    pub only_second: usize,
    /// Reachable prefixes seen at both.
    pub shared: usize,
}

impl ConsistencyReport {
    /// [`ConsistencyReport::between`] through the interner's presence
    /// marks: one pass over each router's reachable set, no `BTreeSet`
    /// construction. Results are identical to [`ConsistencyReport::between`].
    pub fn between_with(store: &mut TableStore, a: &Tables, b: &Tables) -> ConsistencyReport {
        store.prefixes.begin_pass();
        let mut n_a = 0usize;
        for r in a.routes_of(LearnedFrom::Dvmrp).filter(|r| r.reachable) {
            let id = store.prefixes.intern(&r.prefix);
            store.prefixes.see(id);
            n_a += 1;
        }
        let (mut shared, mut only_second) = (0usize, 0usize);
        for r in b.routes_of(LearnedFrom::Dvmrp).filter(|r| r.reachable) {
            let id = store.prefixes.intern(&r.prefix);
            if store.prefixes.seen(id) {
                shared += 1;
            } else {
                only_second += 1;
            }
        }
        ConsistencyReport {
            only_first: n_a - shared,
            only_second,
            shared,
        }
    }

    /// Compares the reachable DVMRP sets of two snapshots.
    pub fn between(a: &Tables, b: &Tables) -> ConsistencyReport {
        let set_a: std::collections::BTreeSet<Prefix> = a
            .routes_of(LearnedFrom::Dvmrp)
            .filter(|r| r.reachable)
            .map(|r| r.prefix)
            .collect();
        let set_b: std::collections::BTreeSet<Prefix> = b
            .routes_of(LearnedFrom::Dvmrp)
            .filter(|r| r.reachable)
            .map(|r| r.prefix)
            .collect();
        ConsistencyReport {
            only_first: set_a.difference(&set_b).count(),
            only_second: set_b.difference(&set_a).count(),
            shared: set_a.intersection(&set_b).count(),
        }
    }

    /// Jaccard similarity of the two route sets.
    pub fn similarity(&self) -> f64 {
        let union = self.only_first + self.only_second + self.shared;
        if union == 0 {
            1.0
        } else {
            self.shared as f64 / union as f64
        }
    }
}

/// All-pairs consistency over a fleet of snapshots as a group-by-key hash
/// join: the key is each router's reachable DVMRP prefix set, so routers
/// with identical views share one group and every *distinct pair of
/// views* is merged exactly once (memoised sorted-merge), instead of
/// re-walking both route tables for each of the O(n²) router pairs.
///
/// In a consistent fleet most routers agree, so the number of distinct
/// views G stays far below n and the set-comparison cost drops from
/// O(n²·p) to O(n·p + G²·p); a fully divergent fleet (G = n) degrades to
/// the pairwise cost, never worse. Because the key is the view itself,
/// groups built on different shards compose: joining the shards' snapshot
/// lists and rebuilding is exactly the single-fleet join.
pub struct ConsistencyMatrix {
    /// Group id per input snapshot, `None` when the snapshot's reachable
    /// set is below the caller's floor and every pair involving it is
    /// skipped.
    group_of: Vec<Option<u32>>,
    /// Each distinct reachable set, sorted (route-table iteration order).
    group_sets: Vec<Vec<Prefix>>,
    /// Memoised reports per unordered group pair `(lo, hi)`, lo-first.
    cache: crate::store::FxHashMap<(u32, u32), ConsistencyReport>,
}

impl ConsistencyMatrix {
    /// Groups `views` by reachable DVMRP prefix set. Views with fewer
    /// than `min_routes` reachable routes are excluded (tiny tables make
    /// similarity meaningless — the [`crate::anomaly::InconsistencyMonitor`]
    /// floor).
    pub fn build(views: &[&Tables], min_routes: usize) -> Self {
        let mut ids: crate::store::FxHashMap<Vec<Prefix>, u32> = Default::default();
        let mut group_sets: Vec<Vec<Prefix>> = Vec::new();
        let mut group_of = Vec::with_capacity(views.len());
        for t in views {
            let set: Vec<Prefix> = t
                .routes_of(LearnedFrom::Dvmrp)
                .filter(|r| r.reachable)
                .map(|r| r.prefix)
                .collect();
            if set.len() < min_routes {
                group_of.push(None);
                continue;
            }
            let next = group_sets.len() as u32;
            let id = match ids.entry(set) {
                std::collections::hash_map::Entry::Occupied(e) => *e.get(),
                std::collections::hash_map::Entry::Vacant(e) => {
                    group_sets.push(e.key().clone());
                    e.insert(next);
                    next
                }
            };
            group_of.push(Some(id));
        }
        ConsistencyMatrix {
            group_of,
            group_sets,
            cache: Default::default(),
        }
    }

    /// Number of distinct reachable-set views among the eligible inputs.
    pub fn distinct_views(&self) -> usize {
        self.group_sets.len()
    }

    /// Whether input `i` cleared the `min_routes` floor.
    pub fn eligible(&self, i: usize) -> bool {
        self.group_of[i].is_some()
    }

    /// The report for input pair `(i, j)`, oriented `i`-first — identical
    /// to [`ConsistencyReport::between`] on the two snapshots — or `None`
    /// when either side is below the floor.
    pub fn report(&mut self, i: usize, j: usize) -> Option<ConsistencyReport> {
        let (gi, gj) = (self.group_of[i]?, self.group_of[j]?);
        if gi == gj {
            return Some(ConsistencyReport {
                only_first: 0,
                only_second: 0,
                shared: self.group_sets[gi as usize].len(),
            });
        }
        let (lo, hi) = (gi.min(gj), gi.max(gj));
        let sets = &self.group_sets;
        let r = *self
            .cache
            .entry((lo, hi))
            .or_insert_with(|| merge_report(&sets[lo as usize], &sets[hi as usize]));
        Some(if gi == lo {
            r
        } else {
            ConsistencyReport {
                only_first: r.only_second,
                only_second: r.only_first,
                shared: r.shared,
            }
        })
    }
}

/// [`ConsistencyReport`] of two sorted, deduplicated prefix sets by
/// linear merge.
fn merge_report(a: &[Prefix], b: &[Prefix]) -> ConsistencyReport {
    let mut shared = 0usize;
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                shared += 1;
                i += 1;
                j += 1;
            }
        }
    }
    ConsistencyReport {
        only_first: a.len() - shared,
        only_second: b.len() - shared,
        shared,
    }
}

/// A named time series: the raw material for graphs and for the
/// paper-vs-measured comparison in EXPERIMENTS.md.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Display name.
    pub name: String,
    /// `(time, value)` points in time order.
    pub points: Vec<(SimTime, f64)>,
    /// Points that arrived out of time order and had to be sorted in.
    /// `window()`, `median()` and delta plots all assume time order, so a
    /// violation is repaired (sorted insert) and counted rather than left
    /// to silently corrupt them.
    pub out_of_order: u64,
}

impl Series {
    /// An empty series.
    pub fn new(name: impl Into<String>) -> Self {
        Series {
            name: name.into(),
            points: Vec::new(),
            out_of_order: 0,
        }
    }

    /// Appends a point. Times are expected non-decreasing; a point older
    /// than the current tail is sorted into place (after any points with
    /// the same timestamp, preserving arrival order among equals) and
    /// counted in [`Series::out_of_order`]. Returns `true` when the point
    /// was in order, `false` when it had to be repaired.
    pub fn push(&mut self, at: SimTime, value: f64) -> bool {
        match self.points.last() {
            Some((t, _)) if *t > at => {
                self.out_of_order += 1;
                let idx = self.points.partition_point(|(t, _)| *t <= at);
                self.points.insert(idx, (at, value));
                false
            }
            _ => {
                self.points.push((at, value));
                true
            }
        }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the series is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|(_, v)| v).sum::<f64>() / self.points.len() as f64
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        if self.points.len() < 2 {
            return 0.0;
        }
        let m = self.mean();
        let var = self
            .points
            .iter()
            .map(|(_, v)| (v - m) * (v - m))
            .sum::<f64>()
            / self.points.len() as f64;
        var.sqrt()
    }

    /// Median value.
    pub fn median(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        let mut vals: Vec<f64> = self.points.iter().map(|(_, v)| *v).collect();
        vals.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in series"));
        let mid = vals.len() / 2;
        if vals.len().is_multiple_of(2) {
            (vals[mid - 1] + vals[mid]) / 2.0
        } else {
            vals[mid]
        }
    }

    /// Maximum value and its time.
    pub fn max(&self) -> Option<(SimTime, f64)> {
        self.points
            .iter()
            .copied()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN in series"))
    }

    /// Minimum value and its time.
    pub fn min(&self) -> Option<(SimTime, f64)> {
        self.points
            .iter()
            .copied()
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN in series"))
    }

    /// Restricts to points in `[from, to]` (the graph-interface zoom).
    pub fn window(&self, from: SimTime, to: SimTime) -> Series {
        Series {
            name: self.name.clone(),
            points: self
                .points
                .iter()
                .copied()
                .filter(|(t, _)| *t >= from && *t <= to)
                .collect(),
            out_of_order: self.out_of_order,
        }
    }
}

/// Classification of a session by Mantra's observation (mirrors the
/// paper's terminology).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SessionClass {
    /// Has at least one sender above the threshold.
    Active,
    /// All participants passive.
    Inactive,
}

/// Classifies one group in a snapshot.
pub fn classify_session(t: &Tables, group: GroupAddr, threshold: BitRate) -> SessionClass {
    let has_sender = t
        .pairs
        .range((group, mantra_net::Ip(0))..=(group, mantra_net::Ip(u32::MAX)))
        .any(|(_, p)| p.current_bw.is_sender(threshold));
    if has_sender {
        SessionClass::Active
    } else {
        SessionClass::Inactive
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tables::{PairRow, RouteRow};
    use mantra_net::rate::SENDER_THRESHOLD;
    use mantra_net::Ip;

    fn t0() -> SimTime {
        SimTime::from_ymd(1998, 11, 1)
    }

    fn g(i: u32) -> GroupAddr {
        GroupAddr::from_index(i)
    }

    fn pair(t: &mut Tables, gi: u32, src: Ip, kbps: u64, forwarding: bool) {
        t.add_pair(PairRow {
            source: src,
            group: g(gi),
            current_bw: BitRate::from_kbps(kbps),
            avg_bw: BitRate::from_kbps(kbps),
            forwarding,
            learned_from: LearnedFrom::Dvmrp,
        });
    }

    fn sample() -> Tables {
        let mut t = Tables::new("fixw", t0());
        // Session 0: sender at 64k + two passives.
        pair(&mut t, 0, Ip::new(1, 0, 0, 1), 64, true);
        pair(&mut t, 0, Ip::new(1, 0, 0, 2), 1, true);
        pair(&mut t, 0, Ip::new(1, 0, 0, 3), 2, true);
        // Session 1: single passive member.
        pair(&mut t, 1, Ip::new(2, 0, 0, 1), 1, true);
        // Session 2: pruned sender (no traffic through this router).
        pair(&mut t, 2, Ip::new(3, 0, 0, 1), 128, false);
        t
    }

    #[test]
    fn usage_stats_classification() {
        let u = UsageStats::from_tables(&sample(), SENDER_THRESHOLD);
        assert_eq!(u.sessions, 3);
        assert_eq!(u.participants, 5);
        assert_eq!(u.senders, 2, "pruned sender still classifies as sender");
        assert_eq!(u.active_sessions, 2);
        assert!((u.avg_density - 5.0 / 3.0).abs() < 1e-9);
        // Sessions 1 and 2 are single-member.
        assert!((u.single_member_fraction - 2.0 / 3.0).abs() < 1e-9);
        assert!((u.le2_density_fraction - 2.0 / 3.0).abs() < 1e-9);
        // Bandwidth counts only forwarding pairs: 64+1+2+1 = 68 kbps.
        assert_eq!(u.total_bandwidth, BitRate::from_kbps(68));
        assert!((u.pct_active() - 66.666).abs() < 0.01);
        assert!((u.pct_senders() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn bandwidth_saved_uses_density_times_rate() {
        let u = UsageStats::from_tables(&sample(), SENDER_THRESHOLD);
        // Unicast estimate: session-0 sender 64k × (3-1 receivers) +
        // session-2 sender 128k × max(1-1,1)=1 → 128+128 = 256k.
        // Multicast usage: 68k → multiple ≈ 3.76.
        assert!((u.bandwidth_saved_multiple - 256.0 / 68.0).abs() < 1e-6);
    }

    #[test]
    fn empty_tables_are_all_zero() {
        let u = UsageStats::from_tables(&Tables::new("x", t0()), SENDER_THRESHOLD);
        assert_eq!(u.sessions, 0);
        assert_eq!(u.pct_active(), 0.0);
        assert_eq!(u.bandwidth_saved_multiple, 0.0);
    }

    fn route(t: &mut Tables, third: u8, reachable: bool, metric: u32) {
        t.add_route(RouteRow {
            prefix: Prefix::new(Ip::new(128, third, 0, 0), 16).unwrap(),
            next_hop: Some(Ip::new(10, 0, 0, 1)),
            metric,
            uptime: None,
            reachable,
            learned_from: LearnedFrom::Dvmrp,
        });
    }

    #[test]
    fn route_stats_and_churn() {
        let mut a = Tables::new("fixw", t0());
        route(&mut a, 1, true, 3);
        route(&mut a, 2, true, 3);
        route(&mut a, 3, false, 32);
        let rs = RouteStats::from_tables(&a);
        assert_eq!(rs.dvmrp_total, 3);
        assert_eq!(rs.dvmrp_reachable, 2);
        assert_eq!(rs.mean_uptime_secs, None);

        let mut b = Tables::new("fixw", t0());
        route(&mut b, 1, true, 5); // metric change
        route(&mut b, 3, true, 3); // flip to reachable + metric change
        route(&mut b, 4, true, 3); // added
                                   // 128.2 removed.
        let churn = RouteChurn::between(&a, &b);
        assert_eq!(churn.added, 1);
        assert_eq!(churn.removed, 1);
        assert_eq!(churn.changed, 2);
        assert_eq!(churn.reachability_flips, 1);
        assert_eq!(churn.total(), 5);
    }

    #[test]
    fn consistency_report() {
        let mut a = Tables::new("fixw", t0());
        route(&mut a, 1, true, 3);
        route(&mut a, 2, true, 3);
        let mut b = Tables::new("ucsb", t0());
        route(&mut b, 2, true, 3);
        route(&mut b, 3, true, 3);
        let c = ConsistencyReport::between(&a, &b);
        assert_eq!((c.only_first, c.only_second, c.shared), (1, 1, 1));
        assert!((c.similarity() - 1.0 / 3.0).abs() < 1e-9);
        let ident = ConsistencyReport::between(&a, &a);
        assert_eq!(ident.similarity(), 1.0);
    }

    #[test]
    fn interned_stats_match_reference() {
        let mut store = TableStore::default();
        let t = sample();
        // Repeated passes over one store must keep agreeing (marks reset).
        for _ in 0..3 {
            assert_eq!(
                UsageStats::from_tables_with(&mut store, &t, SENDER_THRESHOLD),
                UsageStats::from_tables(&t, SENDER_THRESHOLD)
            );
        }
        let mut a = Tables::new("fixw", t0());
        route(&mut a, 1, true, 3);
        route(&mut a, 2, true, 3);
        route(&mut a, 3, false, 32);
        let mut b = Tables::new("ucsb", t0());
        route(&mut b, 2, true, 3);
        route(&mut b, 3, true, 3);
        for (x, y) in [(&a, &b), (&b, &a), (&a, &a)] {
            assert_eq!(
                ConsistencyReport::between_with(&mut store, x, y),
                ConsistencyReport::between(x, y)
            );
        }
    }

    #[test]
    fn series_statistics() {
        let mut s = Series::new("routes");
        for (i, v) in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0].iter().enumerate() {
            s.push(SimTime(t0().as_secs() + i as u64), *v);
        }
        assert_eq!(s.len(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-9);
        assert!((s.stddev() - 2.0).abs() < 1e-9);
        assert!((s.median() - 4.5).abs() < 1e-9);
        assert_eq!(s.max().unwrap().1, 9.0);
        assert_eq!(s.min().unwrap().1, 2.0);
        let w = s.window(SimTime(t0().as_secs() + 2), SimTime(t0().as_secs() + 4));
        assert_eq!(w.len(), 3);
    }

    #[test]
    fn series_repairs_out_of_order_points() {
        let mut s = Series::new("routes");
        assert!(s.push(SimTime(100), 1.0));
        assert!(s.push(SimTime(300), 3.0));
        // A late point is sorted into place and counted, not appended.
        assert!(!s.push(SimTime(200), 2.0));
        assert_eq!(s.out_of_order, 1);
        let times: Vec<u64> = s.points.iter().map(|(t, _)| t.as_secs()).collect();
        assert_eq!(times, vec![100, 200, 300]);
        // Window and median see the repaired order.
        assert_eq!(s.window(SimTime(150), SimTime(250)).len(), 1);
        assert!((s.median() - 2.0).abs() < 1e-9);
        // Equal timestamps keep arrival order and do not count as
        // violations.
        assert!(s.push(SimTime(300), 4.0));
        assert_eq!(s.out_of_order, 1);
        // A late duplicate timestamp lands after its equals.
        assert!(!s.push(SimTime(200), 2.5));
        assert_eq!(
            s.points
                .iter()
                .map(|(t, v)| (t.as_secs(), *v))
                .collect::<Vec<_>>(),
            vec![(100, 1.0), (200, 2.0), (200, 2.5), (300, 3.0), (300, 4.0)]
        );
    }

    #[test]
    fn classify_individual_sessions() {
        let t = sample();
        assert_eq!(
            classify_session(&t, g(0), SENDER_THRESHOLD),
            SessionClass::Active
        );
        assert_eq!(
            classify_session(&t, g(1), SENDER_THRESHOLD),
            SessionClass::Inactive
        );
        assert_eq!(
            classify_session(&t, g(9), SENDER_THRESHOLD),
            SessionClass::Inactive
        );
    }
}
