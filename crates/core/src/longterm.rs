//! Long-term trend analysis across monitoring cycles.
//!
//! The paper's data logger exists "for detailed off-line analysis and
//! long-term trend analysis", and its route monitoring reports "route
//! lifetimes and individual route stability characteristics"; its
//! participant table tracks "the time period for which Mantra has had
//! state" per host. Those statistics all need memory across snapshots,
//! which per-snapshot [`crate::stats`] cannot provide. [`LongTermTracker`]
//! is that memory: feed it every snapshot (or a whole replayed archive)
//! and ask for lifetime and stability distributions.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use mantra_net::{GroupAddr, Ip, Prefix, SimDuration, SimTime};

use crate::tables::{LearnedFrom, Tables};

/// Presence tracking for one entity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Presence {
    /// First snapshot the entity appeared in.
    pub first_seen: SimTime,
    /// Most recent snapshot it appeared in.
    pub last_seen: SimTime,
    /// Number of distinct appearance intervals (1 = never left;
    /// higher = flapping in and out).
    pub episodes: u32,
    /// Whether it was present in the latest snapshot.
    pub present: bool,
}

impl Presence {
    /// Total observed lifetime (first to last appearance).
    pub fn lifetime(&self) -> SimDuration {
        self.last_seen.since(self.first_seen)
    }
}

/// Closed lifetime records, for distribution statistics.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct LifetimeStats {
    /// Completed lifetimes in seconds.
    pub completed: Vec<u64>,
}

impl LifetimeStats {
    /// Number of completed lifetimes.
    pub fn len(&self) -> usize {
        self.completed.len()
    }

    /// True when nothing completed yet.
    pub fn is_empty(&self) -> bool {
        self.completed.is_empty()
    }

    /// Mean completed lifetime in seconds.
    pub fn mean_secs(&self) -> f64 {
        if self.completed.is_empty() {
            return 0.0;
        }
        self.completed.iter().sum::<u64>() as f64 / self.completed.len() as f64
    }

    /// Median completed lifetime in seconds.
    pub fn median_secs(&self) -> f64 {
        if self.completed.is_empty() {
            return 0.0;
        }
        let mut v = self.completed.clone();
        v.sort_unstable();
        let m = v.len() / 2;
        if v.len().is_multiple_of(2) {
            (v[m - 1] + v[m]) as f64 / 2.0
        } else {
            v[m] as f64
        }
    }

    /// Fraction of lifetimes at or below `secs`.
    pub fn fraction_shorter_than(&self, secs: u64) -> f64 {
        if self.completed.is_empty() {
            return 0.0;
        }
        self.completed.iter().filter(|l| **l <= secs).count() as f64 / self.completed.len() as f64
    }
}

/// Cross-cycle tracker for sessions, participants and routes of one
/// router's snapshot stream.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct LongTermTracker {
    sessions: BTreeMap<GroupAddr, Presence>,
    participants: BTreeMap<Ip, Presence>,
    routes: BTreeMap<Prefix, Presence>,
    /// Completed session lifetimes.
    pub session_lifetimes: LifetimeStats,
    /// Completed participant lifetimes.
    pub participant_lifetimes: LifetimeStats,
    /// Completed route lifetimes — the paper's route-lifetime statistic.
    pub route_lifetimes: LifetimeStats,
    /// Join-pattern histogram: for each snapshot, how many sessions were
    /// brand new (the "membership join pattern" signal).
    pub new_sessions_per_cycle: Vec<(SimTime, usize)>,
    cycles: u64,
}

impl LongTermTracker {
    /// Fresh tracker.
    pub fn new() -> Self {
        LongTermTracker::default()
    }

    /// Cycles observed.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Feeds the next snapshot (must be in time order).
    pub fn observe(&mut self, t: &Tables) {
        self.cycles += 1;
        let now = t.captured_at;
        let new_sessions = update_presences(
            &mut self.sessions,
            t.sessions.keys().copied(),
            now,
            &mut self.session_lifetimes,
        );
        self.new_sessions_per_cycle.push((now, new_sessions));
        update_presences(
            &mut self.participants,
            t.participants.keys().copied(),
            now,
            &mut self.participant_lifetimes,
        );
        update_presences(
            &mut self.routes,
            t.routes_of(LearnedFrom::Dvmrp)
                .filter(|r| r.reachable)
                .map(|r| r.prefix),
            now,
            &mut self.route_lifetimes,
        );
    }

    /// Replays a full archive through the tracker.
    pub fn observe_all<'a>(&mut self, snapshots: impl IntoIterator<Item = &'a Tables>) {
        for s in snapshots {
            self.observe(s);
        }
    }

    /// Presence record for one session.
    pub fn session(&self, g: GroupAddr) -> Option<&Presence> {
        self.sessions.get(&g)
    }

    /// Presence record for one participant — the paper's "time period for
    /// which Mantra has had state for it".
    pub fn participant(&self, host: Ip) -> Option<&Presence> {
        self.participants.get(&host)
    }

    /// Presence record for one route.
    pub fn route(&self, p: Prefix) -> Option<&Presence> {
        self.routes.get(&p)
    }

    /// Routes that flapped (more than one presence episode) — "individual
    /// route stability characteristics".
    pub fn flapping_routes(&self) -> Vec<(Prefix, u32)> {
        self.routes
            .iter()
            .filter(|(_, p)| p.episodes > 1)
            .map(|(r, p)| (*r, p.episodes))
            .collect()
    }

    /// Fraction of tracked routes that never flapped.
    pub fn route_stability(&self) -> f64 {
        if self.routes.is_empty() {
            return 1.0;
        }
        self.routes.values().filter(|p| p.episodes == 1).count() as f64 / self.routes.len() as f64
    }
}

/// Updates a presence map with the current member set; returns how many
/// entities are brand new. Entities that disappeared get their lifetime
/// recorded; entities that reappear start a new episode.
fn update_presences<K: Ord + Copy>(
    map: &mut BTreeMap<K, Presence>,
    current: impl Iterator<Item = K>,
    now: SimTime,
    lifetimes: &mut LifetimeStats,
) -> usize {
    let current: std::collections::BTreeSet<K> = current.collect();
    let mut brand_new = 0;
    for k in &current {
        match map.get_mut(k) {
            None => {
                brand_new += 1;
                map.insert(
                    *k,
                    Presence {
                        first_seen: now,
                        last_seen: now,
                        episodes: 1,
                        present: true,
                    },
                );
            }
            Some(p) => {
                if !p.present {
                    p.episodes += 1;
                    p.present = true;
                }
                p.last_seen = now;
            }
        }
    }
    for (k, p) in map.iter_mut() {
        if p.present && !current.contains(k) {
            p.present = false;
            lifetimes
                .completed
                .push(p.last_seen.since(p.first_seen).as_secs());
        }
    }
    brand_new
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tables::{PairRow, RouteRow};
    use mantra_net::BitRate;

    fn t(n: u64) -> SimTime {
        SimTime(SimTime::from_ymd(1998, 11, 1).as_secs() + n * 900)
    }

    fn g(i: u32) -> GroupAddr {
        GroupAddr::from_index(i)
    }

    fn snapshot(n: u64, groups: &[u32], routes: &[u8]) -> Tables {
        let mut tab = Tables::new("fixw", t(n));
        for gi in groups {
            tab.add_pair(PairRow {
                source: Ip::new(1, 0, 0, *gi as u8 + 1),
                group: g(*gi),
                current_bw: BitRate::from_kbps(8),
                avg_bw: BitRate::from_kbps(8),
                forwarding: true,
                learned_from: LearnedFrom::Dvmrp,
            });
        }
        for third in routes {
            tab.add_route(RouteRow {
                prefix: Prefix::new(Ip::new(128, *third, 0, 0), 16).unwrap(),
                next_hop: Some(Ip::new(10, 0, 0, 1)),
                metric: 3,
                uptime: None,
                reachable: true,
                learned_from: LearnedFrom::Dvmrp,
            });
        }
        tab
    }

    #[test]
    fn lifetimes_recorded_on_disappearance() {
        let mut tr = LongTermTracker::new();
        tr.observe(&snapshot(0, &[0, 1], &[1]));
        tr.observe(&snapshot(1, &[0, 1], &[1]));
        tr.observe(&snapshot(2, &[0], &[1])); // session 1 gone
        assert_eq!(tr.session_lifetimes.len(), 1);
        assert_eq!(tr.session_lifetimes.completed[0], 900);
        let s0 = tr.session(g(0)).unwrap();
        assert!(s0.present);
        assert_eq!(s0.lifetime(), SimDuration::secs(1_800));
        // Participant of session 1 also closed out.
        assert_eq!(tr.participant_lifetimes.len(), 1);
    }

    #[test]
    fn reappearance_counts_episodes() {
        let mut tr = LongTermTracker::new();
        tr.observe(&snapshot(0, &[], &[1, 2]));
        tr.observe(&snapshot(1, &[], &[1])); // route 2 flaps out
        tr.observe(&snapshot(2, &[], &[1, 2])); // and back
        let r2 = tr
            .route(Prefix::new(Ip::new(128, 2, 0, 0), 16).unwrap())
            .unwrap();
        assert_eq!(r2.episodes, 2);
        assert!(r2.present);
        assert_eq!(tr.flapping_routes().len(), 1);
        assert!((tr.route_stability() - 0.5).abs() < 1e-9);
        // One completed lifetime (the first episode of route 2).
        assert_eq!(tr.route_lifetimes.len(), 1);
    }

    #[test]
    fn join_pattern_histogram() {
        let mut tr = LongTermTracker::new();
        tr.observe(&snapshot(0, &[0, 1], &[]));
        tr.observe(&snapshot(1, &[0, 1, 2, 3], &[]));
        tr.observe(&snapshot(2, &[0, 1, 2, 3], &[]));
        let news: Vec<usize> = tr.new_sessions_per_cycle.iter().map(|(_, n)| *n).collect();
        assert_eq!(news, vec![2, 2, 0]);
    }

    #[test]
    fn lifetime_stats_math() {
        let stats = LifetimeStats {
            completed: vec![100, 200, 300, 400],
        };
        assert_eq!(stats.mean_secs(), 250.0);
        assert_eq!(stats.median_secs(), 250.0);
        assert_eq!(stats.fraction_shorter_than(200), 0.5);
        assert_eq!(stats.fraction_shorter_than(1_000), 1.0);
        assert!(LifetimeStats::default().is_empty());
        assert_eq!(LifetimeStats::default().median_secs(), 0.0);
    }
}
