//! Pluggable archive backends for the delta logger.
//!
//! The paper's §5 logging design (delta encoding + redundancy
//! elimination) produces a stream of [`LogRecord`]s per router. Where
//! that stream lives is this module's concern:
//!
//! * [`MemoryBackend`] — the original in-process `Vec<LogRecord>`;
//!   archives serialise byte-identically to the pre-backend `TableLog`.
//! * [`FileBackend`] — an append-only on-disk archive: a versioned
//!   header (magic, format version, interner epoch) followed by
//!   length-prefixed, CRC-checked record frames. Full-snapshot records
//!   double as *checkpoints*: replay can start at the last one instead
//!   of the beginning, and a crash that truncates the tail recovers to
//!   the last intact record instead of refusing the archive.
//!
//! The [`crate::logger::TableLog`] owns one backend behind the
//! [`ArchiveBackend`] trait and never materialises more than one
//! snapshot while replaying (see [`crate::logger::ReplayIter`]).
//!
//! ## On-disk format (version 1)
//!
//! ```text
//! header  (24 bytes):  magic  b"MANTRARC"          [0..8)
//!                      format version  u16 LE = 1  [8..10)
//!                      flags           u16 LE = 0  [10..12)
//!                      interner epoch  u32 LE = 0  [12..16)
//!                      reserved        u64 LE = 0  [16..24)
//! record  (9 + n):     kind   u8  (0 = Full, 1 = Delta)
//!                      len    u32 LE (payload bytes)
//!                      crc    u32 LE (CRC-32/IEEE of the payload)
//!                      payload: the LogRecord as serde_json UTF-8
//! ```
//!
//! The interner epoch is reserved for the planned id-keyed delta records
//! (ids are only meaningful relative to an interner state); version-1
//! archives always write 0. Recovery rule: records are scanned from the
//! header; the first frame that is incomplete, has an unknown kind, or
//! fails its CRC ends the archive, and opening for append truncates the
//! file there.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, BufReader, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::logger::LogRecord;

/// The archive file magic.
pub const MAGIC: [u8; 8] = *b"MANTRARC";
/// The on-disk format version this build reads and writes.
pub const FORMAT_VERSION: u16 = 1;
/// Header length in bytes.
pub const HEADER_LEN: u64 = 24;
/// Record frame header length (kind + len + crc).
const FRAME_LEN: u64 = 9;

// ---------------------------------------------------------------------
// CRC-32 (IEEE), table-driven
// ---------------------------------------------------------------------

const fn make_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut n = 0;
    while n < 256 {
        let mut c = n as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[n] = c;
        n += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = make_crc_table();

/// CRC-32 (IEEE 802.3 polynomial) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------
// Backend trait
// ---------------------------------------------------------------------

/// Accumulated accounting for one archive.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ArchiveStats {
    /// Records archived.
    pub records: u64,
    /// Full-snapshot records (replay entry points / checkpoints).
    pub checkpoints: u64,
    /// Archived bytes: record frames for [`FileBackend`], serialised
    /// payloads for [`MemoryBackend`].
    pub bytes: u64,
    /// `fsync` calls issued (always 0 for the memory backend).
    pub fsyncs: u64,
    /// Bytes of truncated/corrupt tail dropped when the archive was
    /// opened (crash recovery).
    pub recovered_bytes: u64,
}

/// A streaming record iterator borrowed from a backend.
pub type RecordIter<'a> = Box<dyn Iterator<Item = io::Result<LogRecord>> + 'a>;

/// Where a [`crate::logger::TableLog`]'s records live.
///
/// `append` receives both the record and its serde_json rendering — the
/// logger already serialises every candidate record to pick the smaller
/// representation, so backends reuse that work instead of re-encoding,
/// and the two backends archive identical payload bytes by construction.
pub trait ArchiveBackend: fmt::Debug + Send {
    /// Backend name for metrics ("memory", "file").
    fn kind(&self) -> &'static str;

    /// Appends one record; `json` is its serialised payload.
    fn append(&mut self, rec: &LogRecord, json: &str) -> io::Result<()>;

    /// Records archived.
    fn len(&self) -> usize;

    /// True when nothing has been archived.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Streams every record from the start.
    fn records(&self) -> RecordIter<'_>;

    /// Streams records starting at index `start`.
    fn records_from(&self, start: usize) -> RecordIter<'_>;

    /// Index of the last full-snapshot record, if any — the cheapest
    /// replay entry point for tail access.
    fn last_checkpoint(&self) -> Option<usize>;

    /// Accounting snapshot.
    fn stats(&self) -> ArchiveStats;

    /// Forces durability (no-op for memory).
    fn sync(&mut self) -> io::Result<()> {
        Ok(())
    }
}

// ---------------------------------------------------------------------
// MemoryBackend
// ---------------------------------------------------------------------

/// The original in-process archive: a `Vec` of records.
#[derive(Debug, Default)]
pub struct MemoryBackend {
    records: Vec<LogRecord>,
    last_checkpoint: Option<usize>,
    stats: ArchiveStats,
}

impl ArchiveBackend for MemoryBackend {
    fn kind(&self) -> &'static str {
        "memory"
    }

    fn append(&mut self, rec: &LogRecord, json: &str) -> io::Result<()> {
        if matches!(rec, LogRecord::Full(_)) {
            self.last_checkpoint = Some(self.records.len());
            self.stats.checkpoints += 1;
        }
        self.stats.records += 1;
        self.stats.bytes += json.len() as u64;
        self.records.push(rec.clone());
        Ok(())
    }

    fn len(&self) -> usize {
        self.records.len()
    }

    fn records(&self) -> RecordIter<'_> {
        Box::new(self.records.iter().map(|r| Ok(r.clone())))
    }

    fn records_from(&self, start: usize) -> RecordIter<'_> {
        let start = start.min(self.records.len());
        Box::new(self.records[start..].iter().map(|r| Ok(r.clone())))
    }

    fn last_checkpoint(&self) -> Option<usize> {
        self.last_checkpoint
    }

    fn stats(&self) -> ArchiveStats {
        self.stats.clone()
    }
}

// ---------------------------------------------------------------------
// FileBackend
// ---------------------------------------------------------------------

/// An append-only on-disk archive (see the module docs for the format).
#[derive(Debug)]
pub struct FileBackend {
    path: PathBuf,
    file: File,
    /// Byte offset of each record's frame, plus the end offset as a
    /// final sentinel (so `offsets[i + 1] - offsets[i]` is frame size).
    offsets: Vec<u64>,
    checkpoints: Vec<usize>,
    stats: ArchiveStats,
    /// `fsync` after this many non-checkpoint appends (checkpoints
    /// always sync); 0 syncs only on checkpoints.
    pub fsync_every: usize,
    since_sync: usize,
}

fn bad_data(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Reads and validates an archive header, returning
/// `(format_version, interner_epoch)`.
pub fn read_header(r: &mut impl Read) -> io::Result<(u16, u32)> {
    let mut header = [0u8; HEADER_LEN as usize];
    r.read_exact(&mut header)
        .map_err(|_| bad_data("archive too short for a MANTRARC header".into()))?;
    if header[0..8] != MAGIC {
        return Err(bad_data(format!(
            "unrecognised archive header {:?}: expected magic {:?} (MANTRARC)",
            &header[0..8],
            MAGIC
        )));
    }
    let version = u16::from_le_bytes([header[8], header[9]]);
    if version != FORMAT_VERSION {
        return Err(bad_data(format!(
            "archive format version {version}; this build reads version {FORMAT_VERSION}"
        )));
    }
    let epoch = u32::from_le_bytes([header[12], header[13], header[14], header[15]]);
    Ok((version, epoch))
}

fn write_header(w: &mut impl Write) -> io::Result<()> {
    let mut header = [0u8; HEADER_LEN as usize];
    header[0..8].copy_from_slice(&MAGIC);
    header[8..10].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
    // flags, interner epoch and the reserved word are zero in version 1.
    w.write_all(&header)
}

impl FileBackend {
    /// Creates a fresh archive at `path`, truncating any existing file.
    pub fn create(path: impl Into<PathBuf>) -> io::Result<FileBackend> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        write_header(&mut file)?;
        file.sync_all()?;
        Ok(FileBackend {
            path,
            file,
            offsets: vec![HEADER_LEN],
            checkpoints: Vec::new(),
            stats: ArchiveStats {
                fsyncs: 1,
                ..ArchiveStats::default()
            },
            fsync_every: 0,
            since_sync: 0,
        })
    }

    /// Opens an existing archive for append, creating it if absent.
    ///
    /// The record stream is scanned and CRC-validated; a truncated or
    /// corrupt tail is cut back to the last intact record (the file is
    /// physically truncated so later appends start from a valid state)
    /// and accounted in [`ArchiveStats::recovered_bytes`].
    pub fn open(path: impl Into<PathBuf>) -> io::Result<FileBackend> {
        let path = path.into();
        if !path.exists() {
            return Self::create(path);
        }
        let mut file = OpenOptions::new().read(true).write(true).open(&path)?;
        let file_len = file.seek(SeekFrom::End(0))?;
        file.seek(SeekFrom::Start(0))?;
        let mut reader = BufReader::new(&mut file);
        read_header(&mut reader)?;

        let mut offsets = vec![HEADER_LEN];
        let mut checkpoints = Vec::new();
        let mut pos = HEADER_LEN;
        let mut payload = Vec::new();
        loop {
            let mut frame = [0u8; FRAME_LEN as usize];
            match reader.read_exact(&mut frame) {
                Ok(()) => {}
                Err(_) => break, // truncated frame header: end of archive
            }
            let kind = frame[0];
            let len = u64::from(u32::from_le_bytes([frame[1], frame[2], frame[3], frame[4]]));
            let crc = u32::from_le_bytes([frame[5], frame[6], frame[7], frame[8]]);
            if kind > 1 || pos + FRAME_LEN + len > file_len {
                break; // unknown kind or payload runs past EOF
            }
            payload.clear();
            payload.resize(len as usize, 0);
            if reader.read_exact(&mut payload).is_err() || crc32(&payload) != crc {
                break; // torn or corrupt payload
            }
            if kind == 0 {
                checkpoints.push(offsets.len() - 1);
            }
            pos += FRAME_LEN + len;
            offsets.push(pos);
        }
        drop(reader);

        let recovered = file_len - pos;
        if recovered > 0 {
            file.set_len(pos)?;
            file.sync_all()?;
        }
        file.seek(SeekFrom::Start(pos))?;
        let stats = ArchiveStats {
            records: (offsets.len() - 1) as u64,
            checkpoints: checkpoints.len() as u64,
            bytes: pos - HEADER_LEN,
            fsyncs: u64::from(recovered > 0),
            recovered_bytes: recovered,
        };
        Ok(FileBackend {
            path,
            file,
            offsets,
            checkpoints,
            stats,
            fsync_every: 0,
            since_sync: 0,
        })
    }

    /// The archive's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Byte offsets of every record frame plus the end-of-archive
    /// sentinel (exposed for truncation tests and tooling).
    pub fn offsets(&self) -> &[u64] {
        &self.offsets
    }
}

/// Streams records from an archive file, yielding at most `remaining`.
struct FileRecordIter {
    reader: Option<BufReader<File>>,
    remaining: usize,
}

impl FileRecordIter {
    fn read_one(reader: &mut BufReader<File>) -> io::Result<LogRecord> {
        let mut frame = [0u8; FRAME_LEN as usize];
        reader.read_exact(&mut frame)?;
        let len = u32::from_le_bytes([frame[1], frame[2], frame[3], frame[4]]) as usize;
        let crc = u32::from_le_bytes([frame[5], frame[6], frame[7], frame[8]]);
        let mut payload = vec![0u8; len];
        reader.read_exact(&mut payload)?;
        if crc32(&payload) != crc {
            return Err(bad_data("record payload fails its CRC".into()));
        }
        let text = std::str::from_utf8(&payload)
            .map_err(|e| bad_data(format!("record payload is not UTF-8: {e}")))?;
        serde_json::from_str(text).map_err(|e| bad_data(format!("bad record payload: {e}")))
    }
}

impl Iterator for FileRecordIter {
    type Item = io::Result<LogRecord>;

    fn next(&mut self) -> Option<io::Result<LogRecord>> {
        if self.remaining == 0 {
            return None;
        }
        let reader = self.reader.as_mut()?;
        self.remaining -= 1;
        match Self::read_one(reader) {
            Ok(rec) => Some(Ok(rec)),
            Err(e) => {
                self.reader = None; // fuse on error
                Some(Err(e))
            }
        }
    }
}

impl ArchiveBackend for FileBackend {
    fn kind(&self) -> &'static str {
        "file"
    }

    fn append(&mut self, rec: &LogRecord, json: &str) -> io::Result<()> {
        let payload = json.as_bytes();
        let kind: u8 = match rec {
            LogRecord::Full(_) => 0,
            LogRecord::Delta(_) => 1,
        };
        let mut frame = Vec::with_capacity(FRAME_LEN as usize + payload.len());
        frame.push(kind);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.file.write_all(&frame)?;

        let idx = self.offsets.len() - 1;
        let end = self.offsets[idx] + frame.len() as u64;
        self.offsets.push(end);
        self.stats.records += 1;
        self.stats.bytes += frame.len() as u64;
        let checkpoint = kind == 0;
        if checkpoint {
            self.checkpoints.push(idx);
            self.stats.checkpoints += 1;
        }
        self.since_sync += 1;
        if checkpoint || (self.fsync_every > 0 && self.since_sync >= self.fsync_every) {
            self.sync()?;
        }
        Ok(())
    }

    fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    fn records(&self) -> RecordIter<'_> {
        self.records_from(0)
    }

    fn records_from(&self, start: usize) -> RecordIter<'_> {
        let count = self.len();
        let start = start.min(count);
        let reader = File::open(&self.path).and_then(|mut f| {
            f.seek(SeekFrom::Start(self.offsets[start]))?;
            Ok(BufReader::new(f))
        });
        match reader {
            Ok(reader) => Box::new(FileRecordIter {
                reader: Some(reader),
                remaining: count - start,
            }),
            Err(e) => Box::new(std::iter::once(Err(e))),
        }
    }

    fn last_checkpoint(&self) -> Option<usize> {
        self.checkpoints.last().copied()
    }

    fn stats(&self) -> ArchiveStats {
        self.stats.clone()
    }

    fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()?;
        self.stats.fsyncs += 1;
        self.since_sync = 0;
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Backend selection
// ---------------------------------------------------------------------

/// How a monitor's per-router archives should be stored.
#[derive(Clone, Debug, Default, PartialEq)]
pub enum ArchiveSpec {
    /// In-process `Vec` archives (the original behaviour).
    #[default]
    Memory,
    /// On-disk archives, one `<router>.marc` file per router.
    File {
        /// Directory holding the archive files (created on demand).
        dir: PathBuf,
        /// Extra `fsync` cadence between checkpoints (0 = checkpoints
        /// only).
        fsync_every: usize,
    },
}

impl ArchiveSpec {
    /// The archive file path for one router under this spec (file
    /// backends only). Router names are sanitised into file names.
    pub fn path_for(dir: &Path, router: &str) -> PathBuf {
        let safe: String = router
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        dir.join(format!("{safe}.marc"))
    }
}

/// One deterministic line summarising a replayed snapshot — the unit the
/// `mantra archive replay` golden tests diff against.
pub fn replay_summary_line(index: usize, t: &crate::tables::Tables) -> String {
    format!(
        "{index:>4} {} {} sessions={} participants={} pairs={} routes={} sa={}",
        t.captured_at.iso8601(),
        t.router,
        t.sessions.len(),
        t.participants.len(),
        t.pairs.len(),
        t.routes.len(),
        t.sa_cache.len(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logger::{SnapshotParts, TableDelta};

    fn full_record(n: u64) -> (LogRecord, String) {
        let parts = SnapshotParts {
            captured_at: mantra_net::SimTime(n),
            router: "fixw".into(),
            ..SnapshotParts::default()
        };
        let rec = LogRecord::Full(parts);
        let json = serde_json::to_string(&rec).unwrap();
        (rec, json)
    }

    fn delta_record(n: u64) -> (LogRecord, String) {
        let rec = LogRecord::Delta(TableDelta {
            captured_at: mantra_net::SimTime(n),
            ..TableDelta::default()
        });
        let json = serde_json::to_string(&rec).unwrap();
        (rec, json)
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mantra-archive-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn file_backend_round_trips_records() {
        let path = tmp("roundtrip.marc");
        let mut be = FileBackend::create(&path).unwrap();
        let recs = vec![
            full_record(0),
            delta_record(1),
            delta_record(2),
            full_record(3),
        ];
        for (rec, json) in &recs {
            be.append(rec, json).unwrap();
        }
        assert_eq!(be.len(), 4);
        assert_eq!(be.last_checkpoint(), Some(3));
        let back: Vec<LogRecord> = be.records().map(|r| r.unwrap()).collect();
        assert_eq!(back.len(), 4);
        for ((orig, _), got) in recs.iter().zip(&back) {
            assert_eq!(
                serde_json::to_string(orig).unwrap(),
                serde_json::to_string(got).unwrap()
            );
        }
        // Reopen resumes with the same view.
        drop(be);
        let be = FileBackend::open(&path).unwrap();
        assert_eq!(be.len(), 4);
        assert_eq!(be.last_checkpoint(), Some(3));
        assert_eq!(be.stats().recovered_bytes, 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_tail_recovers_to_last_valid_record() {
        let path = tmp("truncated.marc");
        let mut be = FileBackend::create(&path).unwrap();
        for (rec, json) in [full_record(0), delta_record(1), delta_record(2)] {
            be.append(&rec, &json).unwrap();
        }
        let offsets = be.offsets().to_vec();
        drop(be);
        // Cut the file mid-way through the last record.
        let cut = offsets[3] - 3;
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(cut).unwrap();
        drop(f);
        let be = FileBackend::open(&path).unwrap();
        assert_eq!(be.len(), 2, "last record dropped");
        assert_eq!(be.stats().recovered_bytes, cut - offsets[2]);
        // And the file was physically truncated to the valid prefix.
        assert_eq!(std::fs::metadata(&path).unwrap().len(), offsets[2]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_payload_ends_the_archive_at_the_last_valid_record() {
        let path = tmp("corrupt.marc");
        let mut be = FileBackend::create(&path).unwrap();
        for (rec, json) in [full_record(0), delta_record(1), delta_record(2)] {
            be.append(&rec, &json).unwrap();
        }
        let offsets = be.offsets().to_vec();
        drop(be);
        // Flip a byte inside record 1's payload.
        let mut bytes = std::fs::read(&path).unwrap();
        let at = offsets[1] as usize + FRAME_LEN as usize + 2;
        bytes[at] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let be = FileBackend::open(&path).unwrap();
        assert_eq!(be.len(), 1, "records after the corruption are dropped");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn unrecognised_headers_are_rejected_with_a_clear_error() {
        let path = tmp("badmagic.marc");
        std::fs::write(&path, b"NOTANARCHIVE----------------").unwrap();
        let err = FileBackend::open(&path).unwrap_err();
        assert!(err.to_string().contains("MANTRARC"), "{err}");
        // Wrong version is called out explicitly.
        let mut header = Vec::new();
        header.extend_from_slice(&MAGIC);
        header.extend_from_slice(&99u16.to_le_bytes());
        header.resize(HEADER_LEN as usize, 0);
        std::fs::write(&path, &header).unwrap();
        let err = FileBackend::open(&path).unwrap_err();
        assert!(err.to_string().contains("version 99"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fsyncs_happen_on_checkpoints_and_cadence() {
        let path = tmp("fsync.marc");
        let mut be = FileBackend::create(&path).unwrap();
        let base = be.stats().fsyncs;
        let (full, full_json) = full_record(0);
        be.append(&full, &full_json).unwrap();
        assert_eq!(be.stats().fsyncs, base + 1, "checkpoint syncs");
        be.fsync_every = 2;
        for n in 1..=4 {
            let (d, j) = delta_record(n);
            be.append(&d, &j).unwrap();
        }
        assert_eq!(be.stats().fsyncs, base + 3, "every second delta syncs");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn memory_backend_accounts_checkpoints() {
        let mut be = MemoryBackend::default();
        for (rec, json) in [full_record(0), delta_record(1), full_record(2)] {
            be.append(&rec, &json).unwrap();
        }
        assert_eq!(be.len(), 3);
        assert_eq!(be.last_checkpoint(), Some(2));
        let s = be.stats();
        assert_eq!(s.records, 3);
        assert_eq!(s.checkpoints, 2);
        assert_eq!(s.fsyncs, 0);
        assert!(s.bytes > 0);
        assert_eq!(be.records_from(2).count(), 1);
    }
}
