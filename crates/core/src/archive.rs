//! Pluggable archive backends for the delta logger.
//!
//! The paper's §5 logging design (delta encoding + redundancy
//! elimination) produces a stream of [`LogRecord`]s per router. Where
//! that stream lives is this module's concern:
//!
//! * [`MemoryBackend`] — the original in-process `Vec<LogRecord>`;
//!   archives serialise byte-identically to the pre-backend `TableLog`.
//! * [`FileBackend`] — an append-only on-disk archive: a versioned
//!   header (magic, format version, interner epoch) followed by
//!   length-prefixed, CRC-checked record frames. Full-snapshot records
//!   double as *checkpoints*: replay can start at the last one instead
//!   of the beginning, and a crash that truncates the tail recovers to
//!   the last intact record instead of refusing the archive.
//!
//! The [`crate::logger::TableLog`] owns one backend behind the
//! [`ArchiveBackend`] trait and never materialises more than one
//! snapshot while replaying (see [`crate::logger::ReplayIter`]).
//!
//! ## On-disk format (version 1)
//!
//! ```text
//! header  (24 bytes):  magic  b"MANTRARC"          [0..8)
//!                      format version  u16 LE = 1  [8..10)
//!                      flags           u16 LE = 0  [10..12)
//!                      interner epoch  u32 LE = 0  [12..16)
//!                      reserved        u64 LE = 0  [16..24)
//! record  (9 + n):     kind   u8  (0 = Full, 1 = Delta)
//!                      len    u32 LE (payload bytes)
//!                      crc    u32 LE (CRC-32/IEEE of the payload)
//!                      payload: the LogRecord as serde_json UTF-8
//! ```
//!
//! Version-1 archives always write interner epoch 0. Recovery rule:
//! records are scanned from the header; the first frame that is
//! incomplete, has an unknown kind, or fails its CRC ends the archive,
//! and opening for append truncates the file there.
//!
//! ## On-disk format (version 2)
//!
//! Version 2 ([`FileBackendV2`]) keeps the 24-byte header (format
//! version 2, interner epoch ≥ 1) and the 9-byte frame shape, but the
//! payloads change from JSON to an id-keyed binary encoding:
//!
//! ```text
//! frame   (9 + n):     kind   u8  (0 = Full, 1 = Delta, 2 = Dict)
//!                      len    u32 LE (payload bytes)
//!                      crc    u32 LE (CRC-32/IEEE of kind ‖ payload)
//!                      payload (binary, LEB128 varints)
//! ```
//!
//! Strings, addresses, groups and prefixes are interned into an
//! archive-local [`ArchiveDict`] (built on [`crate::store::Interner`],
//! ids dense and first-seen ordered); record payloads carry the u32 ids.
//! Whenever an append interns new keys, the new dictionary entries are
//! persisted *before* the record in a kind-2 dictionary segment, so the
//! archive is always self-describing — replay never needs the live
//! `TableStore`. Each segment is stamped with the archive's interner
//! epoch and the per-table id watermark it extends; a segment whose
//! epoch or watermark does not match the reader's state ends the
//! archive (compaction bumps the epoch precisely so stale v2 payloads
//! can never be resolved against the wrong dictionary). Record payloads
//! begin with a varint sequence number checked against the record
//! index, so spliced, duplicated or dropped frames are detected even
//! when their CRCs are individually intact. The v2 CRC also covers the
//! frame's kind byte, so a Full/Delta flip cannot survive validation.
//! Recovery matches v1: the first bad frame ends the archive.

use std::collections::VecDeque;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, BufReader, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Instant;

use mantra_net::{BitRate, GroupAddr, Ip, Prefix, SimDuration, SimTime};

use crate::logger::{apply_with, LogRecord, SnapshotParts, TableDelta};
use crate::store::{Interner, TableStore};
use crate::tables::{LearnedFrom, PairRow, RouteRow, SessionRow, Tables};

/// The archive file magic.
pub const MAGIC: [u8; 8] = *b"MANTRARC";
/// The original JSON-payload on-disk format version.
pub const FORMAT_VERSION: u16 = 1;
/// The id-keyed binary on-disk format version.
pub const FORMAT_VERSION_V2: u16 = 2;
/// Header length in bytes.
pub const HEADER_LEN: u64 = 24;
/// Record frame header length (kind + len + crc).
const FRAME_LEN: u64 = 9;
/// Frame kinds shared by both formats; `KIND_DICT` is v2-only.
const KIND_FULL: u8 = 0;
const KIND_DELTA: u8 = 1;
const KIND_DICT: u8 = 2;

// ---------------------------------------------------------------------
// CRC-32 (IEEE), table-driven
// ---------------------------------------------------------------------

const fn make_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut n = 0;
    while n < 256 {
        let mut c = n as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[n] = c;
        n += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = make_crc_table();

fn crc32_update(mut c: u32, bytes: &[u8]) -> u32 {
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c
}

/// CRC-32 (IEEE 802.3 polynomial) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    crc32_update(0xFFFF_FFFF, bytes) ^ 0xFFFF_FFFF
}

/// The v2 frame CRC: covers the kind byte as well as the payload, so a
/// bit flip that turns a Delta frame into a Full frame (or vice versa)
/// fails validation instead of silently re-basing replay.
fn crc32_v2(kind: u8, payload: &[u8]) -> u32 {
    crc32_update(crc32_update(0xFFFF_FFFF, &[kind]), payload) ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------
// Backend trait
// ---------------------------------------------------------------------

/// Accumulated accounting for one archive.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ArchiveStats {
    /// Records archived.
    pub records: u64,
    /// Full-snapshot records (replay entry points / checkpoints).
    pub checkpoints: u64,
    /// Archived bytes: record frames for [`FileBackend`], serialised
    /// payloads for [`MemoryBackend`].
    pub bytes: u64,
    /// `fsync` calls issued (always 0 for the memory backend).
    pub fsyncs: u64,
    /// Bytes of truncated/corrupt tail dropped when the archive was
    /// opened (crash recovery).
    pub recovered_bytes: u64,
    /// Appends accepted since the last `fsync` — the records a power
    /// loss right now could cost. Always 0 for the memory backend
    /// (nothing is durable either way) and immediately after a sync.
    /// For a [`ThreadedBackend`] this also counts records still queued
    /// for the writer thread: they are exposure exactly like unsynced
    /// frames.
    pub pending_appends: u64,
    /// Appends the backend itself failed to persist (failed frame
    /// writes, failed torn-tail heals). The logger-level
    /// [`crate::logger::TableLog::write_errors`] counts the errors *it*
    /// observed; this counts them where they happened, which for a
    /// threaded writer includes failures the logger only learns about a
    /// cycle later.
    pub write_errors: u64,
    /// Records currently queued for a writer thread (buffered plus
    /// in-flight). Always 0 for synchronous backends.
    pub queue_depth: u64,
    /// The deepest the writer queue has ever been (buffered plus
    /// in-flight). Always 0 for synchronous backends.
    pub queue_high_water: u64,
    /// Wall-clock nanoseconds the *collection path* spent blocked on a
    /// full writer queue ([`BackpressureMode::Block`]).
    pub blocked_nanos: u64,
    /// Records dropped instead of written: shed on a full queue
    /// ([`BackpressureMode::Shed`]) or skipped by the writer thread to
    /// keep the delta chain replayable after an append failure.
    pub dropped_records: u64,
}

/// Identity of an archive's on-disk format, from [`ArchiveBackend::describe`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArchiveInfo {
    /// MANTRARC format version; 0 for in-memory (no on-disk format).
    pub format_version: u16,
    /// The interner epoch stamped in the header (v2; v1 writes 0).
    /// Compaction bumps it so stale id-keyed payloads cannot be
    /// resolved against the rewritten dictionary.
    pub epoch: u32,
    /// Entries in the embedded dictionary (v2 only).
    pub dict_entries: u64,
}

/// When a file backend issues `fsync`. Checkpoints mark replay entry
/// points, so syncing there bounds loss to one delta chain; the record
/// and byte cadences trade durability for throughput on high-router-count
/// deployments where per-append syncing would serialise the fleet on the
/// disk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SyncPolicy {
    /// Sync whenever a full-snapshot (checkpoint) record is appended.
    pub on_checkpoint: bool,
    /// Also sync after this many appends since the last sync (0 = off).
    pub every_records: usize,
    /// Also sync once this many bytes accumulate since the last sync
    /// (0 = off).
    pub every_bytes: u64,
}

impl Default for SyncPolicy {
    fn default() -> Self {
        SyncPolicy {
            on_checkpoint: true,
            every_records: 0,
            every_bytes: 0,
        }
    }
}

impl SyncPolicy {
    /// A record-cadence policy (checkpoints still sync).
    pub fn every_records(n: usize) -> Self {
        SyncPolicy {
            every_records: n,
            ..SyncPolicy::default()
        }
    }

    fn due(&self, checkpoint: bool, since_records: usize, since_bytes: u64) -> bool {
        (checkpoint && self.on_checkpoint)
            || (self.every_records > 0 && since_records >= self.every_records)
            || (self.every_bytes > 0 && since_bytes >= self.every_bytes)
    }
}

/// A streaming record iterator borrowed from a backend.
pub type RecordIter<'a> = Box<dyn Iterator<Item = io::Result<LogRecord>> + 'a>;

/// Where a [`crate::logger::TableLog`]'s records live.
///
/// `append` receives both the record and its serde_json rendering — the
/// logger already serialises every candidate record to pick the smaller
/// representation, so backends reuse that work instead of re-encoding,
/// and the two backends archive identical payload bytes by construction.
pub trait ArchiveBackend: fmt::Debug + Send {
    /// Backend name for metrics ("memory", "file").
    fn kind(&self) -> &'static str;

    /// Appends one record; `json` is its serialised payload.
    fn append(&mut self, rec: &LogRecord, json: &str) -> io::Result<()>;

    /// Records archived.
    fn len(&self) -> usize;

    /// True when nothing has been archived.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Streams every record from the start.
    fn records(&self) -> RecordIter<'_>;

    /// Streams records starting at index `start`.
    fn records_from(&self, start: usize) -> RecordIter<'_>;

    /// Index of the last full-snapshot record, if any — the cheapest
    /// replay entry point for tail access.
    fn last_checkpoint(&self) -> Option<usize>;

    /// Accounting snapshot.
    fn stats(&self) -> ArchiveStats;

    /// Format identity (version/epoch/dictionary size). The default
    /// covers backends with no on-disk format (memory).
    fn describe(&self) -> ArchiveInfo {
        ArchiveInfo::default()
    }

    /// Forces durability (no-op for memory).
    fn sync(&mut self) -> io::Result<()> {
        Ok(())
    }
}

// ---------------------------------------------------------------------
// MemoryBackend
// ---------------------------------------------------------------------

/// The original in-process archive: a `Vec` of records.
#[derive(Debug, Default)]
pub struct MemoryBackend {
    records: Vec<LogRecord>,
    last_checkpoint: Option<usize>,
    stats: ArchiveStats,
}

impl ArchiveBackend for MemoryBackend {
    fn kind(&self) -> &'static str {
        "memory"
    }

    fn append(&mut self, rec: &LogRecord, json: &str) -> io::Result<()> {
        if matches!(rec, LogRecord::Full(_)) {
            self.last_checkpoint = Some(self.records.len());
            self.stats.checkpoints += 1;
        }
        self.stats.records += 1;
        self.stats.bytes += json.len() as u64;
        self.records.push(rec.clone());
        Ok(())
    }

    fn len(&self) -> usize {
        self.records.len()
    }

    fn records(&self) -> RecordIter<'_> {
        Box::new(self.records.iter().map(|r| Ok(r.clone())))
    }

    fn records_from(&self, start: usize) -> RecordIter<'_> {
        let start = start.min(self.records.len());
        Box::new(self.records[start..].iter().map(|r| Ok(r.clone())))
    }

    fn last_checkpoint(&self) -> Option<usize> {
        self.last_checkpoint
    }

    fn stats(&self) -> ArchiveStats {
        self.stats.clone()
    }
}

// ---------------------------------------------------------------------
// FileBackend
// ---------------------------------------------------------------------

/// An append-only on-disk archive (see the module docs for the format).
#[derive(Debug)]
pub struct FileBackend {
    path: PathBuf,
    file: File,
    /// Byte offset of each record's frame, plus the end offset as a
    /// final sentinel (so `offsets[i + 1] - offsets[i]` is frame size).
    offsets: Vec<u64>,
    checkpoints: Vec<usize>,
    stats: ArchiveStats,
    /// When this backend fsyncs.
    pub sync: SyncPolicy,
    since_sync: usize,
    bytes_since_sync: u64,
    /// A frame write failed mid-way: bytes past the logical end may be
    /// on disk, and the OS cursor is wherever the failure left it. The
    /// next append or sync re-truncates to the logical end before doing
    /// anything else, so a transient failure never corrupts the stream
    /// or silently drops the records written after it.
    torn: bool,
    /// Fault injection: the next append writes only this many bytes of
    /// its frame, then fails (see [`FileBackend::inject_torn_write`]).
    fail_next: Option<usize>,
    /// Opened through [`OpenMode::ReadOnly`]: appends fail and sync is a
    /// no-op, so the file is never written through this handle.
    read_only: bool,
}

fn bad_data(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn read_only_error() -> io::Error {
    io::Error::new(
        io::ErrorKind::PermissionDenied,
        "archive opened read-only (OpenMode::ReadOnly): appends are not allowed",
    )
}

/// The error an unsupported (future) format version produces — raised by
/// whatever opens the archive, never silently degraded to legacy-JSONL
/// sniffing.
pub fn unsupported_version(version: u16) -> io::Error {
    bad_data(format!(
        "MANTRARC archive with unsupported format version {version}; this \
         build reads versions {FORMAT_VERSION} and {FORMAT_VERSION_V2} \
         (is the archive from a newer build?)"
    ))
}

/// Reads and validates an archive header's magic, returning
/// `(format_version, interner_epoch)` for the caller to dispatch on.
pub fn read_header(r: &mut impl Read) -> io::Result<(u16, u32)> {
    let mut header = [0u8; HEADER_LEN as usize];
    r.read_exact(&mut header)
        .map_err(|_| bad_data("archive too short for a MANTRARC header".into()))?;
    if header[0..8] != MAGIC {
        return Err(bad_data(format!(
            "unrecognised archive header {:?}: expected magic {:?} (MANTRARC)",
            &header[0..8],
            MAGIC
        )));
    }
    let version = u16::from_le_bytes([header[8], header[9]]);
    let epoch = u32::from_le_bytes([header[12], header[13], header[14], header[15]]);
    Ok((version, epoch))
}

fn write_header(w: &mut impl Write, version: u16, epoch: u32) -> io::Result<()> {
    let mut header = [0u8; HEADER_LEN as usize];
    header[0..8].copy_from_slice(&MAGIC);
    header[8..10].copy_from_slice(&version.to_le_bytes());
    // flags and the reserved word are zero in both versions.
    header[12..16].copy_from_slice(&epoch.to_le_bytes());
    w.write_all(&header)
}

/// How a file-backed archive is opened.
///
/// The distinction matters because open-time crash recovery *writes*:
/// the owning writer heals a torn tail by physically truncating the
/// file back to the last intact frame. A concurrent observer (the
/// daemon's query path, `mantra archive info|replay`) must never do
/// that — what looks like a torn tail to a reader is often a live
/// writer's in-flight frame, and truncating it corrupts the archive
/// out from under its owner.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OpenMode {
    /// Exclusive owner: heals a torn or corrupt tail by truncating the
    /// file so later appends start from a valid state.
    #[default]
    ReadWrite,
    /// Observer: clamps to the last intact frame *in memory* and never
    /// writes — the file is byte-identical before and after the open,
    /// and appends through the backend fail.
    ReadOnly,
}

impl FileBackend {
    /// Creates a fresh archive at `path`, truncating any existing file.
    pub fn create(path: impl Into<PathBuf>) -> io::Result<FileBackend> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        write_header(&mut file, FORMAT_VERSION, 0)?;
        file.sync_all()?;
        Ok(FileBackend {
            path,
            file,
            offsets: vec![HEADER_LEN],
            checkpoints: Vec::new(),
            stats: ArchiveStats {
                fsyncs: 1,
                ..ArchiveStats::default()
            },
            sync: SyncPolicy::default(),
            since_sync: 0,
            bytes_since_sync: 0,
            torn: false,
            fail_next: None,
            read_only: false,
        })
    }

    /// Opens an existing archive for append, creating it if absent.
    ///
    /// The record stream is scanned and CRC-validated; a truncated or
    /// corrupt tail is cut back to the last intact record (the file is
    /// physically truncated so later appends start from a valid state)
    /// and accounted in [`ArchiveStats::recovered_bytes`].
    pub fn open(path: impl Into<PathBuf>) -> io::Result<FileBackend> {
        Self::open_with(path, OpenMode::ReadWrite)
    }

    /// Opens an existing archive without ever writing to it: a torn or
    /// corrupt tail is clamped to the last intact record in memory
    /// (still accounted in [`ArchiveStats::recovered_bytes`]) and the
    /// file stays byte-identical. Appends fail. Safe to run against an
    /// archive another process is actively writing.
    pub fn open_read_only(path: impl Into<PathBuf>) -> io::Result<FileBackend> {
        Self::open_with(path, OpenMode::ReadOnly)
    }

    /// Opens an existing archive in the given [`OpenMode`], creating it
    /// if absent (read-write mode only).
    pub fn open_with(path: impl Into<PathBuf>, mode: OpenMode) -> io::Result<FileBackend> {
        let path = path.into();
        if !path.exists() {
            if mode == OpenMode::ReadOnly {
                return Err(io::Error::new(
                    io::ErrorKind::NotFound,
                    format!("no archive at {}", path.display()),
                ));
            }
            return Self::create(path);
        }
        let mut file = OpenOptions::new()
            .read(true)
            .write(mode == OpenMode::ReadWrite)
            .open(&path)?;
        let file_len = file.seek(SeekFrom::End(0))?;
        file.seek(SeekFrom::Start(0))?;
        let mut reader = BufReader::new(&mut file);
        let (version, _) = read_header(&mut reader)?;
        if version != FORMAT_VERSION {
            return Err(if version == FORMAT_VERSION_V2 {
                bad_data(format!(
                    "archive is MANTRARC v{version}; open it through FileBackendV2"
                ))
            } else {
                unsupported_version(version)
            });
        }

        let mut offsets = vec![HEADER_LEN];
        let mut checkpoints = Vec::new();
        let mut pos = HEADER_LEN;
        let mut payload = Vec::new();
        loop {
            let mut frame = [0u8; FRAME_LEN as usize];
            match reader.read_exact(&mut frame) {
                Ok(()) => {}
                Err(_) => break, // truncated frame header: end of archive
            }
            let kind = frame[0];
            let len = u64::from(u32::from_le_bytes([frame[1], frame[2], frame[3], frame[4]]));
            let crc = u32::from_le_bytes([frame[5], frame[6], frame[7], frame[8]]);
            if kind > 1 || pos + FRAME_LEN + len > file_len {
                break; // unknown kind or payload runs past EOF
            }
            payload.clear();
            payload.resize(len as usize, 0);
            if reader.read_exact(&mut payload).is_err() || crc32(&payload) != crc {
                break; // torn or corrupt payload
            }
            if kind == 0 {
                checkpoints.push(offsets.len() - 1);
            }
            pos += FRAME_LEN + len;
            offsets.push(pos);
        }
        drop(reader);

        let recovered = file_len - pos;
        let healed = recovered > 0 && mode == OpenMode::ReadWrite;
        if healed {
            file.set_len(pos)?;
            file.sync_all()?;
        }
        file.seek(SeekFrom::Start(pos))?;
        let stats = ArchiveStats {
            records: (offsets.len() - 1) as u64,
            checkpoints: checkpoints.len() as u64,
            bytes: pos - HEADER_LEN,
            fsyncs: u64::from(healed),
            recovered_bytes: recovered,
            ..ArchiveStats::default()
        };
        Ok(FileBackend {
            path,
            file,
            offsets,
            checkpoints,
            stats,
            sync: SyncPolicy::default(),
            since_sync: 0,
            bytes_since_sync: 0,
            torn: false,
            fail_next: None,
            read_only: mode == OpenMode::ReadOnly,
        })
    }

    /// The archive's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Byte offsets of every record frame plus the end-of-archive
    /// sentinel (exposed for truncation tests and tooling).
    pub fn offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// Fault injection for tests: the next `append` writes only
    /// `partial` bytes of its frame, then fails as a torn write. The
    /// backend must heal (re-truncate to the logical end) on the append
    /// or sync after that.
    #[doc(hidden)]
    pub fn inject_torn_write(&mut self, partial: usize) {
        self.fail_next = Some(partial);
    }

    /// Cuts a torn tail back to the logical end of the record stream
    /// and repositions the cursor there, so the next frame lands where
    /// bookkeeping says it will.
    fn heal(&mut self) -> io::Result<()> {
        if !self.torn {
            return Ok(());
        }
        let end = *self.offsets.last().expect("offsets sentinel");
        self.file.set_len(end)?;
        self.file.seek(SeekFrom::Start(end))?;
        self.torn = false;
        Ok(())
    }
}

/// Streams records from an archive file, yielding at most `remaining`.
struct FileRecordIter {
    reader: Option<BufReader<File>>,
    remaining: usize,
}

impl FileRecordIter {
    fn read_one(reader: &mut BufReader<File>) -> io::Result<LogRecord> {
        let mut frame = [0u8; FRAME_LEN as usize];
        reader.read_exact(&mut frame)?;
        let len = u32::from_le_bytes([frame[1], frame[2], frame[3], frame[4]]) as usize;
        let crc = u32::from_le_bytes([frame[5], frame[6], frame[7], frame[8]]);
        let mut payload = vec![0u8; len];
        reader.read_exact(&mut payload)?;
        if crc32(&payload) != crc {
            return Err(bad_data("record payload fails its CRC".into()));
        }
        let text = std::str::from_utf8(&payload)
            .map_err(|e| bad_data(format!("record payload is not UTF-8: {e}")))?;
        serde_json::from_str(text).map_err(|e| bad_data(format!("bad record payload: {e}")))
    }
}

impl Iterator for FileRecordIter {
    type Item = io::Result<LogRecord>;

    fn next(&mut self) -> Option<io::Result<LogRecord>> {
        if self.remaining == 0 {
            return None;
        }
        let reader = self.reader.as_mut()?;
        self.remaining -= 1;
        match Self::read_one(reader) {
            Ok(rec) => Some(Ok(rec)),
            Err(e) => {
                self.reader = None; // fuse on error
                Some(Err(e))
            }
        }
    }
}

impl ArchiveBackend for FileBackend {
    fn kind(&self) -> &'static str {
        "file"
    }

    fn append(&mut self, rec: &LogRecord, json: &str) -> io::Result<()> {
        if self.read_only {
            self.stats.write_errors += 1;
            return Err(read_only_error());
        }
        if let Err(e) = self.heal() {
            self.stats.write_errors += 1;
            return Err(e);
        }
        let payload = json.as_bytes();
        let kind: u8 = match rec {
            LogRecord::Full(_) => KIND_FULL,
            LogRecord::Delta(_) => KIND_DELTA,
        };
        let mut frame = Vec::with_capacity(FRAME_LEN as usize + payload.len());
        frame.push(kind);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        if let Some(partial) = self.fail_next.take() {
            let partial = partial.min(frame.len());
            let _ = self.file.write_all(&frame[..partial]);
            self.torn = partial > 0;
            self.stats.write_errors += 1;
            return Err(io::Error::other("injected write failure (torn frame)"));
        }
        if let Err(e) = self.file.write_all(&frame) {
            // Some unknown prefix of the frame may be on disk; mark the
            // tail torn so the next append/sync re-truncates before
            // writing. Bookkeeping stays at the last good record, so
            // pending_appends never claims the lost bytes were synced.
            self.torn = true;
            self.stats.write_errors += 1;
            return Err(e);
        }

        let idx = self.offsets.len() - 1;
        let end = self.offsets[idx] + frame.len() as u64;
        self.offsets.push(end);
        self.stats.records += 1;
        self.stats.bytes += frame.len() as u64;
        let checkpoint = kind == KIND_FULL;
        if checkpoint {
            self.checkpoints.push(idx);
            self.stats.checkpoints += 1;
        }
        self.since_sync += 1;
        self.bytes_since_sync += frame.len() as u64;
        self.stats.pending_appends = self.since_sync as u64;
        if self
            .sync
            .due(checkpoint, self.since_sync, self.bytes_since_sync)
        {
            self.sync()?;
        }
        Ok(())
    }

    fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    fn records(&self) -> RecordIter<'_> {
        self.records_from(0)
    }

    fn records_from(&self, start: usize) -> RecordIter<'_> {
        let count = self.len();
        let start = start.min(count);
        let reader = File::open(&self.path).and_then(|mut f| {
            f.seek(SeekFrom::Start(self.offsets[start]))?;
            Ok(BufReader::new(f))
        });
        match reader {
            Ok(reader) => Box::new(FileRecordIter {
                reader: Some(reader),
                remaining: count - start,
            }),
            Err(e) => Box::new(std::iter::once(Err(e))),
        }
    }

    fn last_checkpoint(&self) -> Option<usize> {
        self.checkpoints.last().copied()
    }

    fn stats(&self) -> ArchiveStats {
        self.stats.clone()
    }

    fn describe(&self) -> ArchiveInfo {
        ArchiveInfo {
            format_version: FORMAT_VERSION,
            epoch: 0,
            dict_entries: 0,
        }
    }

    fn sync(&mut self) -> io::Result<()> {
        if self.read_only {
            // Nothing this handle wrote can be pending; never touch the
            // file (sync_data on another process's live archive is
            // harmless but pointless).
            return Ok(());
        }
        if let Err(e) = self.heal() {
            self.stats.write_errors += 1;
            return Err(e);
        }
        self.file.sync_data()?;
        self.stats.fsyncs += 1;
        self.since_sync = 0;
        self.bytes_since_sync = 0;
        self.stats.pending_appends = 0;
        Ok(())
    }
}

// ---------------------------------------------------------------------
// MANTRARC v2: varint primitives
// ---------------------------------------------------------------------

fn put_uv(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

/// A bounds-checked cursor over one untrusted payload. Every read can
/// fail cleanly — decode paths must never panic, whatever the bytes.
struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cur { buf, pos: 0 }
    }

    fn u8(&mut self) -> io::Result<u8> {
        let b = *self
            .buf
            .get(self.pos)
            .ok_or_else(|| bad_data("payload truncated".into()))?;
        self.pos += 1;
        Ok(b)
    }

    fn bytes(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| bad_data("payload truncated".into()))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn uv(&mut self) -> io::Result<u64> {
        let mut v = 0u64;
        for shift in (0..64).step_by(7) {
            let b = self.u8()?;
            let low = u64::from(b & 0x7F);
            if shift == 63 && low > 1 {
                break; // would overflow u64
            }
            v |= low << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(bad_data("varint overflows u64".into()))
    }

    fn uv32(&mut self) -> io::Result<u32> {
        u32::try_from(self.uv()?).map_err(|_| bad_data("varint overflows u32".into()))
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn expect_done(&self) -> io::Result<()> {
        if self.done() {
            Ok(())
        } else {
            Err(bad_data("trailing bytes after payload".into()))
        }
    }
}

// ---------------------------------------------------------------------
// MANTRARC v2: the embedded dictionary
// ---------------------------------------------------------------------

/// The archive-local interning dictionary for one v2 archive: router
/// names and session names, host addresses, group addresses and route
/// prefixes, each with dense first-seen-ordered u32 ids (the same
/// [`Interner`] the live [`crate::store::TableStore`] uses — but owned by
/// the archive, so replaying needs nothing but the file).
///
/// The writer persists new entries incrementally: whenever an append
/// interns keys the archive has not seen, a kind-2 dictionary segment
/// carrying exactly `keys()[watermark..]` is framed ahead of the record.
/// Readers rebuild the dictionary by applying segments in file order,
/// validating that each segment's epoch matches the header and that its
/// per-table base equals the current table length.
#[derive(Clone, Debug, Default)]
pub struct ArchiveDict {
    /// The archive's interner epoch (also stamped in the file header and
    /// in every segment). Compaction writes a fresh dictionary under a
    /// bumped epoch.
    pub epoch: u32,
    strings: Interner<String>,
    ips: Interner<Ip>,
    groups: Interner<GroupAddr>,
    prefixes: Interner<Prefix>,
}

/// Per-table id watermarks: entries below these are already on disk.
type DictMark = [usize; 4];

impl ArchiveDict {
    fn with_epoch(epoch: u32) -> Self {
        ArchiveDict {
            epoch,
            ..ArchiveDict::default()
        }
    }

    /// Total interned entries across all tables.
    pub fn len(&self) -> usize {
        self.strings.len() + self.ips.len() + self.groups.len() + self.prefixes.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn watermark(&self) -> DictMark {
        [
            self.strings.len(),
            self.ips.len(),
            self.groups.len(),
            self.prefixes.len(),
        ]
    }

    /// Encodes the entries interned since `since` as one dictionary
    /// segment payload, or `None` when there are none.
    fn encode_new_entries(&self, since: DictMark) -> Option<Vec<u8>> {
        if self.watermark() == since {
            return None;
        }
        let [s, i, g, p] = since;
        let mut out = Vec::new();
        put_uv(&mut out, u64::from(self.epoch));
        let strings = &self.strings.keys()[s..];
        put_uv(&mut out, s as u64);
        put_uv(&mut out, strings.len() as u64);
        for st in strings {
            put_uv(&mut out, st.len() as u64);
            out.extend_from_slice(st.as_bytes());
        }
        let ips = &self.ips.keys()[i..];
        put_uv(&mut out, i as u64);
        put_uv(&mut out, ips.len() as u64);
        for ip in ips {
            put_uv(&mut out, u64::from(ip.0));
        }
        let groups = &self.groups.keys()[g..];
        put_uv(&mut out, g as u64);
        put_uv(&mut out, groups.len() as u64);
        for gr in groups {
            put_uv(&mut out, u64::from(gr.ip().0));
        }
        let prefixes = &self.prefixes.keys()[p..];
        put_uv(&mut out, p as u64);
        put_uv(&mut out, prefixes.len() as u64);
        for pf in prefixes {
            put_uv(&mut out, u64::from(pf.network().0));
            out.push(pf.len());
        }
        Some(out)
    }

    /// Applies one dictionary segment, validating its epoch stamp and
    /// that each table extends exactly from its current length.
    fn apply_segment(&mut self, payload: &[u8]) -> io::Result<()> {
        let mut c = Cur::new(payload);
        let epoch = c.uv32()?;
        if epoch != self.epoch {
            return Err(bad_data(format!(
                "dictionary segment epoch {epoch} does not match archive epoch {}",
                self.epoch
            )));
        }
        fn check_base<K: Eq + std::hash::Hash + Clone>(
            interner: &Interner<K>,
            base: u64,
        ) -> io::Result<()> {
            if base != interner.len() as u64 {
                return Err(bad_data(format!(
                    "dictionary segment base {base} does not extend table of {}",
                    interner.len()
                )));
            }
            Ok(())
        }
        fn fresh<K: Eq + std::hash::Hash + Clone>(
            interner: &mut Interner<K>,
            key: &K,
        ) -> io::Result<()> {
            let expect = interner.len() as u32;
            if interner.intern(key) != expect {
                return Err(bad_data("duplicate dictionary entry".into()));
            }
            Ok(())
        }
        check_base(&self.strings, c.uv()?)?;
        for _ in 0..c.uv()? {
            let len = c.uv()? as usize;
            let s = std::str::from_utf8(c.bytes(len)?)
                .map_err(|e| bad_data(format!("dictionary string is not UTF-8: {e}")))?;
            fresh(&mut self.strings, &s.to_string())?;
        }
        check_base(&self.ips, c.uv()?)?;
        for _ in 0..c.uv()? {
            fresh(&mut self.ips, &Ip(c.uv32()?))?;
        }
        check_base(&self.groups, c.uv()?)?;
        for _ in 0..c.uv()? {
            let g = GroupAddr::new(Ip(c.uv32()?))
                .map_err(|e| bad_data(format!("dictionary group is not multicast: {e:?}")))?;
            fresh(&mut self.groups, &g)?;
        }
        check_base(&self.prefixes, c.uv()?)?;
        for _ in 0..c.uv()? {
            let net = Ip(c.uv32()?);
            let len = c.u8()?;
            let p = Prefix::new(net, len)
                .map_err(|e| bad_data(format!("dictionary prefix invalid: {e:?}")))?;
            fresh(&mut self.prefixes, &p)?;
        }
        c.expect_done()
    }

    fn str_at(&self, id: u32) -> io::Result<&String> {
        self.strings
            .keys()
            .get(id as usize)
            .ok_or_else(|| bad_data(format!("string id {id} not in dictionary")))
    }

    fn ip_at(&self, id: u32) -> io::Result<Ip> {
        self.ips
            .keys()
            .get(id as usize)
            .copied()
            .ok_or_else(|| bad_data(format!("address id {id} not in dictionary")))
    }

    fn group_at(&self, id: u32) -> io::Result<GroupAddr> {
        self.groups
            .keys()
            .get(id as usize)
            .copied()
            .ok_or_else(|| bad_data(format!("group id {id} not in dictionary")))
    }

    fn prefix_at(&self, id: u32) -> io::Result<Prefix> {
        self.prefixes
            .keys()
            .get(id as usize)
            .copied()
            .ok_or_else(|| bad_data(format!("prefix id {id} not in dictionary")))
    }
}

// ---------------------------------------------------------------------
// MANTRARC v2: record codec
// ---------------------------------------------------------------------

fn lf_code(lf: LearnedFrom) -> u8 {
    match lf {
        LearnedFrom::Dvmrp => 0,
        LearnedFrom::Pim => 1,
        LearnedFrom::Msdp => 2,
        LearnedFrom::Mbgp => 3,
        LearnedFrom::Igmp => 4,
    }
}

fn lf_from(code: u8) -> io::Result<LearnedFrom> {
    Ok(match code {
        0 => LearnedFrom::Dvmrp,
        1 => LearnedFrom::Pim,
        2 => LearnedFrom::Msdp,
        3 => LearnedFrom::Mbgp,
        4 => LearnedFrom::Igmp,
        c => return Err(bad_data(format!("unknown protocol code {c}"))),
    })
}

const PAIR_FORWARDING: u8 = 0x80;
const ROUTE_NEXT_HOP: u8 = 0x20;
const ROUTE_UPTIME: u8 = 0x40;
const ROUTE_REACHABLE: u8 = 0x80;
const SESSION_NAMED: u8 = 0x80;
const LF_MASK: u8 = 0x07;

fn flags_lf(flags: u8, allowed: u8) -> io::Result<LearnedFrom> {
    if flags & !(LF_MASK | allowed) != 0 {
        return Err(bad_data(format!("unknown flag bits 0x{flags:02x}")));
    }
    lf_from(flags & LF_MASK)
}

fn enc_pair(out: &mut Vec<u8>, d: &mut ArchiveDict, p: &PairRow) {
    put_uv(out, u64::from(d.ips.intern(&p.source)));
    put_uv(out, u64::from(d.groups.intern(&p.group)));
    put_uv(out, p.current_bw.bps());
    put_uv(out, p.avg_bw.bps());
    out.push(lf_code(p.learned_from) | if p.forwarding { PAIR_FORWARDING } else { 0 });
}

fn dec_pair(c: &mut Cur, d: &ArchiveDict) -> io::Result<PairRow> {
    let source = d.ip_at(c.uv32()?)?;
    let group = d.group_at(c.uv32()?)?;
    let current_bw = BitRate::from_bps(c.uv()?);
    let avg_bw = BitRate::from_bps(c.uv()?);
    let flags = c.u8()?;
    Ok(PairRow {
        source,
        group,
        current_bw,
        avg_bw,
        forwarding: flags & PAIR_FORWARDING != 0,
        learned_from: flags_lf(flags, PAIR_FORWARDING)?,
    })
}

fn enc_route(out: &mut Vec<u8>, d: &mut ArchiveDict, r: &RouteRow) {
    let mut flags = lf_code(r.learned_from);
    if r.next_hop.is_some() {
        flags |= ROUTE_NEXT_HOP;
    }
    if r.uptime.is_some() {
        flags |= ROUTE_UPTIME;
    }
    if r.reachable {
        flags |= ROUTE_REACHABLE;
    }
    put_uv(out, u64::from(d.prefixes.intern(&r.prefix)));
    out.push(flags);
    if let Some(nh) = r.next_hop {
        put_uv(out, u64::from(d.ips.intern(&nh)));
    }
    put_uv(out, u64::from(r.metric));
    if let Some(up) = r.uptime {
        put_uv(out, up.as_secs());
    }
}

fn dec_route(c: &mut Cur, d: &ArchiveDict) -> io::Result<RouteRow> {
    let prefix = d.prefix_at(c.uv32()?)?;
    let flags = c.u8()?;
    let learned_from = flags_lf(flags, ROUTE_NEXT_HOP | ROUTE_UPTIME | ROUTE_REACHABLE)?;
    let next_hop = if flags & ROUTE_NEXT_HOP != 0 {
        Some(d.ip_at(c.uv32()?)?)
    } else {
        None
    };
    let metric = c.uv32()?;
    let uptime = if flags & ROUTE_UPTIME != 0 {
        Some(SimDuration::secs(c.uv()?))
    } else {
        None
    };
    Ok(RouteRow {
        prefix,
        next_hop,
        metric,
        uptime,
        reachable: flags & ROUTE_REACHABLE != 0,
        learned_from,
    })
}

fn enc_session(out: &mut Vec<u8>, d: &mut ArchiveDict, s: &SessionRow) {
    let mut flags = lf_code(s.first_advertised);
    if s.name.is_some() {
        flags |= SESSION_NAMED;
    }
    put_uv(out, u64::from(d.groups.intern(&s.group)));
    out.push(flags);
    if let Some(name) = &s.name {
        put_uv(out, u64::from(d.strings.intern(name)));
    }
    put_uv(out, u64::from(s.density));
    put_uv(out, s.bandwidth.bps());
    put_uv(out, s.first_seen.as_secs());
}

fn dec_session(c: &mut Cur, d: &ArchiveDict) -> io::Result<SessionRow> {
    let group = d.group_at(c.uv32()?)?;
    let flags = c.u8()?;
    let first_advertised = flags_lf(flags, SESSION_NAMED)?;
    let name = if flags & SESSION_NAMED != 0 {
        Some(d.str_at(c.uv32()?)?.clone())
    } else {
        None
    };
    Ok(SessionRow {
        group,
        name,
        density: c.uv32()?,
        bandwidth: BitRate::from_bps(c.uv()?),
        first_advertised,
        first_seen: SimTime(c.uv()?),
    })
}

fn enc_sa(out: &mut Vec<u8>, d: &mut ArchiveDict, (g, s, at): &(GroupAddr, Ip, SimTime)) {
    put_uv(out, u64::from(d.groups.intern(g)));
    put_uv(out, u64::from(d.ips.intern(s)));
    put_uv(out, at.as_secs());
}

fn dec_sa(c: &mut Cur, d: &ArchiveDict) -> io::Result<(GroupAddr, Ip, SimTime)> {
    Ok((
        d.group_at(c.uv32()?)?,
        d.ip_at(c.uv32()?)?,
        SimTime(c.uv()?),
    ))
}

fn enc_section<T>(
    out: &mut Vec<u8>,
    d: &mut ArchiveDict,
    items: &[T],
    enc: impl Fn(&mut Vec<u8>, &mut ArchiveDict, &T),
) {
    put_uv(out, items.len() as u64);
    for item in items {
        enc(out, d, item);
    }
}

fn dec_section<T>(
    c: &mut Cur,
    d: &ArchiveDict,
    dec: impl Fn(&mut Cur, &ArchiveDict) -> io::Result<T>,
) -> io::Result<Vec<T>> {
    let n = c.uv()?;
    // No `with_capacity(n)`: a corrupt count must not drive allocation;
    // the cursor runs out of bytes long before a hostile count completes.
    let mut out = Vec::new();
    for _ in 0..n {
        out.push(dec(c, d)?);
    }
    Ok(out)
}

/// Encodes one record as its v2 payload, interning keys into `dict`.
/// `seq` is the record's index in the archive, embedded (and CRC'd) so
/// readers can detect spliced or duplicated frames.
fn encode_record_v2(rec: &LogRecord, dict: &mut ArchiveDict, seq: u64) -> (u8, Vec<u8>) {
    let mut out = Vec::new();
    put_uv(&mut out, seq);
    match rec {
        LogRecord::Full(p) => {
            put_uv(&mut out, p.captured_at.as_secs());
            put_uv(&mut out, u64::from(dict.strings.intern(&p.router)));
            enc_section(&mut out, dict, &p.pairs, enc_pair);
            enc_section(&mut out, dict, &p.routes, enc_route);
            enc_section(&mut out, dict, &p.sa_cache, enc_sa);
            enc_section(&mut out, dict, &p.member_only_sessions, enc_session);
            (KIND_FULL, out)
        }
        LogRecord::Delta(del) => {
            put_uv(&mut out, del.captured_at.as_secs());
            enc_section(&mut out, dict, &del.pair_upserts, enc_pair);
            enc_section(&mut out, dict, &del.pair_removals, |o, d, (g, s)| {
                put_uv(o, u64::from(d.groups.intern(g)));
                put_uv(o, u64::from(d.ips.intern(s)));
            });
            enc_section(&mut out, dict, &del.route_upserts, enc_route);
            enc_section(&mut out, dict, &del.route_removals, |o, d, (lf, p)| {
                o.push(lf_code(*lf));
                put_uv(o, u64::from(d.prefixes.intern(p)));
            });
            enc_section(&mut out, dict, &del.sa_upserts, enc_sa);
            enc_section(&mut out, dict, &del.sa_removals, |o, d, (g, s)| {
                put_uv(o, u64::from(d.groups.intern(g)));
                put_uv(o, u64::from(d.ips.intern(s)));
            });
            enc_section(&mut out, dict, &del.session_upserts, enc_session);
            enc_section(&mut out, dict, &del.session_removals, |o, d, g| {
                put_uv(o, u64::from(d.groups.intern(g)));
            });
            (KIND_DELTA, out)
        }
    }
}

/// Decodes one v2 record payload, validating its embedded sequence
/// number against `expect_seq`.
fn decode_record_v2(
    kind: u8,
    payload: &[u8],
    dict: &ArchiveDict,
    expect_seq: u64,
) -> io::Result<LogRecord> {
    let mut c = Cur::new(payload);
    let seq = c.uv()?;
    if seq != expect_seq {
        return Err(bad_data(format!(
            "record sequence {seq} where {expect_seq} was expected \
             (spliced or duplicated frame)"
        )));
    }
    let rec = match kind {
        KIND_FULL => LogRecord::Full(SnapshotParts {
            captured_at: SimTime(c.uv()?),
            router: dict.str_at(c.uv32()?)?.clone(),
            pairs: dec_section(&mut c, dict, dec_pair)?,
            routes: dec_section(&mut c, dict, dec_route)?,
            sa_cache: dec_section(&mut c, dict, dec_sa)?,
            member_only_sessions: dec_section(&mut c, dict, dec_session)?,
            // Provenance is the file, not construction: let the first
            // use re-verify sortedness, exactly like the JSON decoder.
            presorted: false,
        }),
        KIND_DELTA => LogRecord::Delta(TableDelta {
            captured_at: SimTime(c.uv()?),
            pair_upserts: dec_section(&mut c, dict, dec_pair)?,
            pair_removals: dec_section(&mut c, dict, |c, d| {
                Ok((d.group_at(c.uv32()?)?, d.ip_at(c.uv32()?)?))
            })?,
            route_upserts: dec_section(&mut c, dict, dec_route)?,
            route_removals: dec_section(&mut c, dict, |c, d| {
                Ok((lf_from(c.u8()?)?, d.prefix_at(c.uv32()?)?))
            })?,
            sa_upserts: dec_section(&mut c, dict, dec_sa)?,
            sa_removals: dec_section(&mut c, dict, |c, d| {
                Ok((d.group_at(c.uv32()?)?, d.ip_at(c.uv32()?)?))
            })?,
            session_upserts: dec_section(&mut c, dict, dec_session)?,
            session_removals: dec_section(&mut c, dict, |c, d| d.group_at(c.uv32()?))?,
        }),
        k => return Err(bad_data(format!("unknown record kind {k}"))),
    };
    c.expect_done()?;
    Ok(rec)
}

// ---------------------------------------------------------------------
// FileBackendV2
// ---------------------------------------------------------------------

/// The id-keyed v2 on-disk archive (see the module docs for the format).
///
/// Same durability model as [`FileBackend`] — append-only frames, CRC
/// validation, torn-tail truncation on open — with record payloads
/// binary-encoded against an embedded [`ArchiveDict`] instead of JSON.
#[derive(Debug)]
pub struct FileBackendV2 {
    path: PathBuf,
    file: File,
    /// Byte offset of each *record* frame (dictionary frames sit between
    /// them), plus the end-of-archive offset as a final sentinel.
    offsets: Vec<u64>,
    /// `(start, end)` offsets of dictionary frames, in file order.
    dict_frames: Vec<(u64, u64)>,
    checkpoints: Vec<usize>,
    dict: ArchiveDict,
    /// Dictionary entries already persisted in segments.
    persisted: DictMark,
    end: u64,
    stats: ArchiveStats,
    /// When this backend fsyncs.
    pub sync: SyncPolicy,
    since_sync: usize,
    bytes_since_sync: u64,
    /// A frame write failed mid-way; see [`FileBackend`]'s field of the
    /// same name. Healed (re-truncated to `end`) on the next append or
    /// sync.
    torn: bool,
    /// Fault injection: the next append writes only this many bytes,
    /// then fails (see [`FileBackendV2::inject_torn_write`]).
    fail_next: Option<usize>,
    /// Opened through [`OpenMode::ReadOnly`]: appends fail and sync is a
    /// no-op, so the file is never written through this handle.
    read_only: bool,
}

fn frame_bytes(kind: u8, payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(FRAME_LEN as usize + payload.len());
    frame.push(kind);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32_v2(kind, payload).to_le_bytes());
    frame.extend_from_slice(payload);
    frame
}

impl FileBackendV2 {
    /// Creates a fresh v2 archive at `path` (epoch 1), truncating any
    /// existing file.
    pub fn create(path: impl Into<PathBuf>) -> io::Result<FileBackendV2> {
        Self::create_with_epoch(path, 1)
    }

    /// Creates a fresh v2 archive under a caller-chosen interner epoch —
    /// compaction writes the rewrite under `source epoch + 1` so records
    /// from the old archive can never be resolved against the new
    /// dictionary.
    pub fn create_with_epoch(path: impl Into<PathBuf>, epoch: u32) -> io::Result<FileBackendV2> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        write_header(&mut file, FORMAT_VERSION_V2, epoch)?;
        file.sync_all()?;
        Ok(FileBackendV2 {
            path,
            file,
            offsets: vec![HEADER_LEN],
            dict_frames: Vec::new(),
            checkpoints: Vec::new(),
            dict: ArchiveDict::with_epoch(epoch),
            persisted: [0; 4],
            end: HEADER_LEN,
            stats: ArchiveStats {
                fsyncs: 1,
                ..ArchiveStats::default()
            },
            sync: SyncPolicy::default(),
            since_sync: 0,
            bytes_since_sync: 0,
            torn: false,
            fail_next: None,
            read_only: false,
        })
    }

    /// Opens an existing v2 archive for append, creating it if absent.
    ///
    /// Scanning validates each frame's CRC, rebuilds the dictionary from
    /// its segments (epoch- and watermark-checked) and verifies every
    /// record's sequence number; the first bad frame ends the archive
    /// and the file is truncated there
    /// ([`ArchiveStats::recovered_bytes`]).
    pub fn open(path: impl Into<PathBuf>) -> io::Result<FileBackendV2> {
        Self::open_with(path, OpenMode::ReadWrite)
    }

    /// Opens an existing v2 archive without ever writing to it: a torn
    /// or corrupt tail is clamped to the last intact record in memory
    /// (still accounted in [`ArchiveStats::recovered_bytes`]) and the
    /// file stays byte-identical. Appends fail. Safe to run against an
    /// archive another process is actively writing.
    pub fn open_read_only(path: impl Into<PathBuf>) -> io::Result<FileBackendV2> {
        Self::open_with(path, OpenMode::ReadOnly)
    }

    /// Opens an existing v2 archive in the given [`OpenMode`], creating
    /// it if absent (read-write mode only).
    pub fn open_with(path: impl Into<PathBuf>, mode: OpenMode) -> io::Result<FileBackendV2> {
        let path = path.into();
        if !path.exists() {
            if mode == OpenMode::ReadOnly {
                return Err(io::Error::new(
                    io::ErrorKind::NotFound,
                    format!("no archive at {}", path.display()),
                ));
            }
            return Self::create(path);
        }
        let mut file = OpenOptions::new()
            .read(true)
            .write(mode == OpenMode::ReadWrite)
            .open(&path)?;
        let file_len = file.seek(SeekFrom::End(0))?;
        file.seek(SeekFrom::Start(0))?;
        let mut reader = BufReader::new(&mut file);
        let (version, epoch) = read_header(&mut reader)?;
        if version != FORMAT_VERSION_V2 {
            return Err(if version == FORMAT_VERSION {
                bad_data(format!(
                    "archive is MANTRARC v{version}; open it through FileBackend"
                ))
            } else {
                unsupported_version(version)
            });
        }

        let mut offsets = vec![HEADER_LEN];
        let mut dict_frames = Vec::new();
        let mut checkpoints = Vec::new();
        let mut dict = ArchiveDict::with_epoch(epoch);
        let mut persisted = [0; 4];
        let mut pos = HEADER_LEN;
        let mut payload = Vec::new();
        loop {
            let mut frame = [0u8; FRAME_LEN as usize];
            if reader.read_exact(&mut frame).is_err() {
                break; // truncated frame header: end of archive
            }
            let kind = frame[0];
            let len = u64::from(u32::from_le_bytes([frame[1], frame[2], frame[3], frame[4]]));
            let crc = u32::from_le_bytes([frame[5], frame[6], frame[7], frame[8]]);
            if kind > KIND_DICT || pos + FRAME_LEN + len > file_len {
                break; // unknown kind or payload runs past EOF
            }
            payload.clear();
            payload.resize(len as usize, 0);
            if reader.read_exact(&mut payload).is_err() || crc32_v2(kind, &payload) != crc {
                break; // torn or corrupt payload
            }
            if kind == KIND_DICT {
                if dict.apply_segment(&payload).is_err() {
                    break; // stale epoch / out-of-order segment
                }
                persisted = dict.watermark();
                dict_frames.push((pos, pos + FRAME_LEN + len));
                pos += FRAME_LEN + len;
                continue;
            }
            // Validate the embedded sequence number without decoding the
            // whole record.
            let expect = (offsets.len() - 1) as u64;
            match Cur::new(&payload).uv() {
                Ok(seq) if seq == expect => {}
                _ => break, // spliced/duplicated frame
            }
            if kind == KIND_FULL {
                checkpoints.push(offsets.len() - 1);
            }
            pos += FRAME_LEN + len;
            offsets.push(pos);
        }
        drop(reader);

        let recovered = file_len - pos;
        let healed = recovered > 0 && mode == OpenMode::ReadWrite;
        if healed {
            file.set_len(pos)?;
            file.sync_all()?;
        }
        file.seek(SeekFrom::Start(pos))?;
        let stats = ArchiveStats {
            records: (offsets.len() - 1) as u64,
            checkpoints: checkpoints.len() as u64,
            bytes: pos - HEADER_LEN,
            fsyncs: u64::from(healed),
            recovered_bytes: recovered,
            ..ArchiveStats::default()
        };
        Ok(FileBackendV2 {
            path,
            file,
            offsets,
            dict_frames,
            checkpoints,
            dict,
            persisted,
            end: pos,
            stats,
            sync: SyncPolicy::default(),
            since_sync: 0,
            bytes_since_sync: 0,
            torn: false,
            fail_next: None,
            read_only: mode == OpenMode::ReadOnly,
        })
    }

    /// The archive's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Byte offsets of every record frame plus the end-of-archive
    /// sentinel. Dictionary frames occupy the gaps (see
    /// [`FileBackendV2::dict_frames`]), so consecutive offsets are not
    /// necessarily adjacent.
    pub fn offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// `(start, end)` byte spans of the dictionary frames, in file order
    /// (exposed for corruption/crash tests and tooling).
    pub fn dict_frames(&self) -> &[(u64, u64)] {
        &self.dict_frames
    }

    /// The embedded dictionary (exposed for `archive info` and tests).
    pub fn dict(&self) -> &ArchiveDict {
        &self.dict
    }

    /// Fault injection for tests: the next `append` writes only
    /// `partial` bytes of its combined dict+record buffer, then fails
    /// as a torn write.
    #[doc(hidden)]
    pub fn inject_torn_write(&mut self, partial: usize) {
        self.fail_next = Some(partial);
    }

    /// Cuts a torn tail back to the logical end (`self.end`) and
    /// repositions the cursor there.
    fn heal(&mut self) -> io::Result<()> {
        if !self.torn {
            return Ok(());
        }
        self.file.set_len(self.end)?;
        self.file.seek(SeekFrom::Start(self.end))?;
        self.torn = false;
        Ok(())
    }
}

impl ArchiveBackend for FileBackendV2 {
    fn kind(&self) -> &'static str {
        "file"
    }

    fn append(&mut self, rec: &LogRecord, _json: &str) -> io::Result<()> {
        if self.read_only {
            self.stats.write_errors += 1;
            return Err(read_only_error());
        }
        if let Err(e) = self.heal() {
            self.stats.write_errors += 1;
            return Err(e);
        }
        let seq = (self.offsets.len() - 1) as u64;
        let (kind, payload) = encode_record_v2(rec, &mut self.dict, seq);
        // New dictionary entries ride ahead of the record that needs
        // them, in the same write. `persisted` only advances after the
        // write succeeds, so entries lost to a torn frame are re-emitted
        // with the next record.
        let mut buf = Vec::new();
        if let Some(seg) = self.dict.encode_new_entries(self.persisted) {
            buf = frame_bytes(KIND_DICT, &seg);
        }
        let dict_len = buf.len() as u64;
        buf.extend_from_slice(&frame_bytes(kind, &payload));
        // A failed earlier write leaves the cursor wherever the OS
        // stopped; re-seek so a retried append lands at the logical end.
        if let Err(e) = self.file.seek(SeekFrom::Start(self.end)) {
            self.stats.write_errors += 1;
            return Err(e);
        }
        if let Some(partial) = self.fail_next.take() {
            let partial = partial.min(buf.len());
            let _ = self.file.write_all(&buf[..partial]);
            self.torn = partial > 0;
            self.stats.write_errors += 1;
            return Err(io::Error::other("injected write failure (torn frame)"));
        }
        if let Err(e) = self.file.write_all(&buf) {
            self.torn = true;
            self.stats.write_errors += 1;
            return Err(e);
        }

        if dict_len > 0 {
            self.dict_frames.push((self.end, self.end + dict_len));
            self.persisted = self.dict.watermark();
        }
        let idx = self.offsets.len() - 1;
        self.end += buf.len() as u64;
        self.offsets.push(self.end);
        self.stats.records += 1;
        self.stats.bytes += buf.len() as u64;
        let checkpoint = kind == KIND_FULL;
        if checkpoint {
            self.checkpoints.push(idx);
            self.stats.checkpoints += 1;
        }
        self.since_sync += 1;
        self.bytes_since_sync += buf.len() as u64;
        self.stats.pending_appends = self.since_sync as u64;
        if self
            .sync
            .due(checkpoint, self.since_sync, self.bytes_since_sync)
        {
            self.sync()?;
        }
        Ok(())
    }

    fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    fn records(&self) -> RecordIter<'_> {
        self.records_from(0)
    }

    fn records_from(&self, start: usize) -> RecordIter<'_> {
        let count = self.len();
        let start = start.min(count);
        let start_off = self.offsets[start];
        let made = File::open(&self.path).and_then(|mut f| {
            // Preload the dictionary segments written before the start
            // offset — mid-archive entry points (checkpoint resume) need
            // every id interned so far.
            let mut dict = ArchiveDict::with_epoch(self.dict.epoch);
            let mut payload = Vec::new();
            for &(s, e) in self.dict_frames.iter().filter(|(s, _)| *s < start_off) {
                f.seek(SeekFrom::Start(s))?;
                let mut frame = [0u8; FRAME_LEN as usize];
                f.read_exact(&mut frame)?;
                let len = u32::from_le_bytes([frame[1], frame[2], frame[3], frame[4]]) as usize;
                let crc = u32::from_le_bytes([frame[5], frame[6], frame[7], frame[8]]);
                if s + FRAME_LEN + len as u64 != e {
                    return Err(bad_data("dictionary frame span changed on disk".into()));
                }
                payload.clear();
                payload.resize(len, 0);
                f.read_exact(&mut payload)?;
                if crc32_v2(KIND_DICT, &payload) != crc {
                    return Err(bad_data("dictionary segment fails its CRC".into()));
                }
                dict.apply_segment(&payload)?;
            }
            f.seek(SeekFrom::Start(start_off))?;
            Ok(FileRecordIterV2 {
                reader: Some(BufReader::new(f)),
                remaining: count - start,
                next_seq: start as u64,
                dict,
                file_end: self.end,
                pos: start_off,
            })
        });
        match made {
            Ok(iter) => Box::new(iter),
            Err(e) => Box::new(std::iter::once(Err(e))),
        }
    }

    fn last_checkpoint(&self) -> Option<usize> {
        self.checkpoints.last().copied()
    }

    fn stats(&self) -> ArchiveStats {
        self.stats.clone()
    }

    fn describe(&self) -> ArchiveInfo {
        ArchiveInfo {
            format_version: FORMAT_VERSION_V2,
            epoch: self.dict.epoch,
            dict_entries: self.dict.len() as u64,
        }
    }

    fn sync(&mut self) -> io::Result<()> {
        if self.read_only {
            // Nothing this handle wrote can be pending; never touch the
            // file.
            return Ok(());
        }
        if let Err(e) = self.heal() {
            self.stats.write_errors += 1;
            return Err(e);
        }
        self.file.sync_data()?;
        self.stats.fsyncs += 1;
        self.since_sync = 0;
        self.bytes_since_sync = 0;
        self.stats.pending_appends = 0;
        Ok(())
    }
}

/// Streams records from a v2 archive, applying inline dictionary
/// segments and validating CRCs and sequence numbers as it goes.
struct FileRecordIterV2 {
    reader: Option<BufReader<File>>,
    remaining: usize,
    next_seq: u64,
    dict: ArchiveDict,
    /// Logical end of the archive when the iterator was created; frames
    /// are bounded against it so a corrupt length cannot drive reads or
    /// allocation past the archive.
    file_end: u64,
    pos: u64,
}

impl FileRecordIterV2 {
    fn read_one(&mut self) -> io::Result<LogRecord> {
        let reader = self.reader.as_mut().expect("checked by next()");
        loop {
            let mut frame = [0u8; FRAME_LEN as usize];
            reader.read_exact(&mut frame)?;
            let kind = frame[0];
            let len = u64::from(u32::from_le_bytes([frame[1], frame[2], frame[3], frame[4]]));
            let crc = u32::from_le_bytes([frame[5], frame[6], frame[7], frame[8]]);
            if kind > KIND_DICT {
                return Err(bad_data(format!("unknown record kind {kind}")));
            }
            if self.pos + FRAME_LEN + len > self.file_end {
                return Err(bad_data("record frame runs past the archive".into()));
            }
            let mut payload = vec![0u8; len as usize];
            reader.read_exact(&mut payload)?;
            if crc32_v2(kind, &payload) != crc {
                return Err(bad_data("record payload fails its CRC".into()));
            }
            self.pos += FRAME_LEN + len;
            if kind == KIND_DICT {
                self.dict.apply_segment(&payload)?;
                continue;
            }
            let rec = decode_record_v2(kind, &payload, &self.dict, self.next_seq)?;
            self.next_seq += 1;
            return Ok(rec);
        }
    }
}

impl Iterator for FileRecordIterV2 {
    type Item = io::Result<LogRecord>;

    fn next(&mut self) -> Option<io::Result<LogRecord>> {
        if self.remaining == 0 || self.reader.is_none() {
            return None;
        }
        self.remaining -= 1;
        match self.read_one() {
            Ok(rec) => Some(Ok(rec)),
            Err(e) => {
                self.reader = None; // fuse on error
                Some(Err(e))
            }
        }
    }
}

// ---------------------------------------------------------------------
// ThreadedBackend: per-router writer thread with bounded backpressure
// ---------------------------------------------------------------------

/// What an append does when the writer queue is full.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BackpressureMode {
    /// Wait for the writer to free a slot; the wait is accounted in
    /// [`ArchiveStats::blocked_nanos`]. Collection slows but no record
    /// is ever lost. The default.
    #[default]
    Block,
    /// Fail the append immediately ([`ArchiveStats::dropped_records`]).
    /// Collection keeps its cadence; the logger records the error and
    /// health reports `archive_degraded` — loss is loud, never silent.
    Shed,
}

/// Configuration for a [`ThreadedBackend`] writer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WriterConfig {
    /// Maximum records outstanding (queued plus in-flight) before
    /// backpressure applies.
    pub capacity: usize,
    /// What a full queue does to the appender.
    pub mode: BackpressureMode,
}

impl Default for WriterConfig {
    fn default() -> Self {
        WriterConfig {
            capacity: 64,
            mode: BackpressureMode::Block,
        }
    }
}

/// std mutexes poison on panic; the writer protocol has no partially-
/// updated invariants worth preserving across one, so clear it —
/// matching the vendored parking_lot semantics used elsewhere.
fn lock_clean<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

fn wait_clean<'a, T>(c: &Condvar, g: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    c.wait(g).unwrap_or_else(|p| p.into_inner())
}

/// The bounded queue between the collection path and the writer thread.
#[derive(Debug)]
struct WriterQueue {
    buf: VecDeque<(LogRecord, String)>,
    /// Records drained from `buf` that the writer is currently applying.
    /// They still count against capacity and `queue_depth`.
    in_flight: usize,
    shutdown: bool,
    /// A writer-side failure waiting to be reported: surfaced by the
    /// *next* `append` (or `sync`), since the append that queued the
    /// failing record already returned `Ok`.
    deferred_error: Option<String>,
}

/// Snapshot of the inner backend's observable state, refreshed by the
/// writer thread after each batch so `stats()`/`describe()` never block
/// behind a slow disk.
#[derive(Debug)]
struct WriterMirror {
    stats: ArchiveStats,
    info: ArchiveInfo,
}

#[derive(Debug)]
struct WriterShared {
    q: Mutex<WriterQueue>,
    /// Signalled when capacity frees up (blocking appenders wait here).
    not_full: Condvar,
    /// Signalled when records are queued or shutdown is requested.
    not_empty: Condvar,
    /// Signalled when the queue is fully drained (barriers wait here).
    idle: Condvar,
    backend: Mutex<Box<dyn ArchiveBackend>>,
    mirror: Mutex<WriterMirror>,
    high_water: AtomicU64,
    blocked_nanos: AtomicU64,
    dropped: AtomicU64,
    /// Append failures the writer observed. The inner backend may also
    /// count them in its own stats ([`ArchiveStats::write_errors`]);
    /// `stats()` reports the max of the two so backends that predate the
    /// field still surface their failures.
    write_errors: AtomicU64,
}

/// Wraps any [`ArchiveBackend`] behind a dedicated writer thread and a
/// bounded queue: `append` on the collection path becomes an enqueue,
/// and frame writes plus fsync batching happen off-path.
///
/// Ordering and content are preserved — the queue drains FIFO into the
/// inner backend, so after a drain barrier the archive is byte-identical
/// to what the inner backend would have produced synchronously. Reads
/// (`len`, `records`, `last_checkpoint`, `sync`) drain first and are
/// therefore barriers; `stats`/`describe` read a writer-maintained
/// mirror and never block behind the disk.
///
/// When an apply fails inside the writer, the error is *deferred*: the
/// next `append`/`sync` returns it (the logger then counts it and
/// forces a full snapshot). Until the next Full record arrives, queued
/// Deltas are skipped and counted in
/// [`ArchiveStats::dropped_records`] — they would replay against a base
/// the archive never stored, so dropping them keeps the stream a valid,
/// replayable prefix-plus-resume rather than a corrupt chain.
pub struct ThreadedBackend {
    shared: Arc<WriterShared>,
    cfg: WriterConfig,
    kind: &'static str,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl fmt::Debug for ThreadedBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThreadedBackend")
            .field("kind", &self.kind)
            .field("cfg", &self.cfg)
            .finish_non_exhaustive()
    }
}

impl ThreadedBackend {
    /// Moves `inner` onto a new writer thread behind a bounded queue.
    pub fn spawn(inner: Box<dyn ArchiveBackend>, cfg: WriterConfig) -> ThreadedBackend {
        let kind = match inner.kind() {
            "memory" => "memory+writer",
            "file" => "file+writer",
            "failing" => "failing+writer",
            _ => "threaded",
        };
        let mirror = WriterMirror {
            stats: inner.stats(),
            info: inner.describe(),
        };
        let shared = Arc::new(WriterShared {
            q: Mutex::new(WriterQueue {
                buf: VecDeque::new(),
                in_flight: 0,
                shutdown: false,
                deferred_error: None,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            idle: Condvar::new(),
            backend: Mutex::new(inner),
            mirror: Mutex::new(mirror),
            high_water: AtomicU64::new(0),
            blocked_nanos: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            write_errors: AtomicU64::new(0),
        });
        let worker = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("mantra-archive-writer".into())
            .spawn(move || Self::writer_loop(&worker))
            .expect("spawn archive writer thread");
        ThreadedBackend {
            shared,
            cfg: WriterConfig {
                capacity: cfg.capacity.max(1),
                mode: cfg.mode,
            },
            kind,
            handle: Some(handle),
        }
    }

    fn writer_loop(shared: &WriterShared) {
        // After a failed apply the archive is missing that record; any
        // queued Delta would replay against the wrong base, so skip (and
        // count) Deltas until the logger's forced Full re-anchors the
        // chain.
        let mut skipping = false;
        loop {
            let batch: Vec<(LogRecord, String)> = {
                let mut q = lock_clean(&shared.q);
                while q.buf.is_empty() && !q.shutdown {
                    q = wait_clean(&shared.not_empty, q);
                }
                if q.buf.is_empty() {
                    return; // shutdown with everything drained
                }
                let batch: Vec<_> = q.buf.drain(..).collect();
                q.in_flight = batch.len();
                batch
            };
            let mut backend = lock_clean(&shared.backend);
            for (rec, json) in &batch {
                if skipping {
                    if matches!(rec, LogRecord::Full(_)) {
                        skipping = false;
                    } else {
                        shared.dropped.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                }
                if let Err(e) = backend.append(rec, json) {
                    shared.write_errors.fetch_add(1, Ordering::Relaxed);
                    skipping = true;
                    let mut q = lock_clean(&shared.q);
                    q.deferred_error = Some(e.to_string());
                }
            }
            {
                let mut m = lock_clean(&shared.mirror);
                m.stats = backend.stats();
                m.info = backend.describe();
            }
            drop(backend);
            let mut q = lock_clean(&shared.q);
            q.in_flight = 0;
            shared.not_full.notify_all();
            if q.buf.is_empty() {
                shared.idle.notify_all();
            }
        }
    }

    /// Blocks until every queued record has been applied to the inner
    /// backend — the drain barrier behind reads, `sync` and shutdown.
    fn drain(&self) {
        let mut q = lock_clean(&self.shared.q);
        while !q.buf.is_empty() || q.in_flight > 0 {
            q = wait_clean(&self.shared.idle, q);
        }
    }

    /// Runs `f` against the (drained, quiescent) inner backend and
    /// refreshes the stats mirror afterwards.
    fn with_drained<R>(&self, f: impl FnOnce(&mut dyn ArchiveBackend) -> R) -> R {
        self.drain();
        let mut backend = lock_clean(&self.shared.backend);
        let out = f(backend.as_mut());
        let mut m = lock_clean(&self.shared.mirror);
        m.stats = backend.stats();
        m.info = backend.describe();
        out
    }

    /// Records shed or skipped so far (exposed for tests and tooling).
    pub fn dropped_records(&self) -> u64 {
        self.shared.dropped.load(Ordering::Relaxed)
    }

    /// Wall-clock nanoseconds appends spent blocked on a full queue.
    pub fn blocked_nanos(&self) -> u64 {
        self.shared.blocked_nanos.load(Ordering::Relaxed)
    }
}

impl ArchiveBackend for ThreadedBackend {
    fn kind(&self) -> &'static str {
        self.kind
    }

    fn append(&mut self, rec: &LogRecord, json: &str) -> io::Result<()> {
        let shared = &self.shared;
        let mut q = lock_clean(&shared.q);
        if let Some(msg) = q.deferred_error.take() {
            // Report the writer-side failure where the logger can see
            // it. This record is not enqueued — the logger treats the
            // Err as "not persisted" and forces the next record Full,
            // which re-anchors the delta chain.
            shared.dropped.fetch_add(1, Ordering::Relaxed);
            return Err(io::Error::other(format!("archive writer: {msg}")));
        }
        while q.buf.len() + q.in_flight >= self.cfg.capacity {
            match self.cfg.mode {
                BackpressureMode::Shed => {
                    shared.dropped.fetch_add(1, Ordering::Relaxed);
                    return Err(io::Error::other(format!(
                        "archive writer queue full ({} records); record shed",
                        self.cfg.capacity
                    )));
                }
                BackpressureMode::Block => {
                    let start = Instant::now();
                    q = wait_clean(&shared.not_full, q);
                    shared
                        .blocked_nanos
                        .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
                }
            }
        }
        q.buf.push_back((rec.clone(), json.to_owned()));
        let depth = (q.buf.len() + q.in_flight) as u64;
        shared.high_water.fetch_max(depth, Ordering::Relaxed);
        drop(q);
        shared.not_empty.notify_one();
        Ok(())
    }

    fn len(&self) -> usize {
        self.with_drained(|b| b.len())
    }

    fn records(&self) -> RecordIter<'_> {
        self.records_from(0)
    }

    fn records_from(&self, start: usize) -> RecordIter<'_> {
        // Drain, then materialise under the backend lock: the iterator
        // must not hold the lock (or borrow the backend) while the
        // caller consumes it.
        let items: Vec<io::Result<LogRecord>> =
            self.with_drained(|b| b.records_from(start).collect());
        Box::new(items.into_iter())
    }

    fn last_checkpoint(&self) -> Option<usize> {
        self.with_drained(|b| b.last_checkpoint())
    }

    fn stats(&self) -> ArchiveStats {
        // Non-draining: the mirror (refreshed after every batch) plus a
        // live queue overlay. Monitoring must never stall behind a slow
        // disk — that is the point of the writer thread.
        let mut stats = lock_clean(&self.shared.mirror).stats.clone();
        let q = lock_clean(&self.shared.q);
        let depth = (q.buf.len() + q.in_flight) as u64;
        drop(q);
        stats.queue_depth = depth;
        stats.queue_high_water = self.shared.high_water.load(Ordering::Relaxed);
        stats.blocked_nanos = self.shared.blocked_nanos.load(Ordering::Relaxed);
        stats.dropped_records = self.shared.dropped.load(Ordering::Relaxed);
        stats.write_errors = stats
            .write_errors
            .max(self.shared.write_errors.load(Ordering::Relaxed));
        // Queued records are not on disk, let alone synced: they are
        // power-loss exposure and count as pending.
        stats.pending_appends += depth;
        stats
    }

    fn describe(&self) -> ArchiveInfo {
        lock_clean(&self.shared.mirror).info
    }

    fn sync(&mut self) -> io::Result<()> {
        let r = self.with_drained(|b| b.sync());
        let deferred = lock_clean(&self.shared.q).deferred_error.take();
        match deferred {
            Some(msg) => Err(io::Error::other(format!("archive writer: {msg}"))),
            None => r,
        }
    }
}

impl Drop for ThreadedBackend {
    fn drop(&mut self) {
        {
            let mut q = lock_clean(&self.shared.q);
            q.shutdown = true;
        }
        self.shared.not_empty.notify_all();
        if let Some(handle) = self.handle.take() {
            // The writer drains everything still queued before exiting,
            // so dropping the backend is a durability barrier, not a
            // data loss event.
            let _ = handle.join();
        }
    }
}

// ---------------------------------------------------------------------
// Backend selection
// ---------------------------------------------------------------------

/// How a monitor's per-router archives should be stored.
#[derive(Clone, Debug, Default, PartialEq)]
pub enum ArchiveSpec {
    /// In-process `Vec` archives (the original behaviour).
    #[default]
    Memory,
    /// On-disk archives (MANTRARC v2), one `<router>.marc` file per
    /// router.
    File {
        /// Directory holding the archive files (created on demand).
        dir: PathBuf,
        /// When the backends fsync (checkpoints, record cadence, byte
        /// cadence).
        sync: SyncPolicy,
    },
    /// On-disk archives behind a per-router writer thread
    /// ([`ThreadedBackend`]): `append` on the collection path becomes a
    /// bounded enqueue and frame writes + fsync batching happen
    /// off-path.
    Threaded {
        /// Directory holding the archive files (created on demand).
        dir: PathBuf,
        /// When the backends fsync (checkpoints, record cadence, byte
        /// cadence) — applied by the writer thread, off-path.
        sync: SyncPolicy,
        /// Queue capacity and full-queue policy.
        writer: WriterConfig,
    },
}

impl ArchiveSpec {
    /// The archive file path for one router under this spec (file
    /// backends only). Router names are sanitised into file names.
    pub fn path_for(dir: &Path, router: &str) -> PathBuf {
        let safe: String = router
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        dir.join(format!("{safe}.marc"))
    }
}

// ---------------------------------------------------------------------
// ArchiveReader: concurrent read-only replay over a live v2 archive
// ---------------------------------------------------------------------

/// A read-only scanner over a v2 `.marc` that tolerates a concurrent
/// writer.
///
/// On open (and on every [`ArchiveReader::refresh`]) it snapshots the
/// *logical end*: the last intact frame at or before the file length
/// observed at the start of the scan. Everything before that point is
/// immutable — the format is append-only and every record payload
/// embeds its sequence number, so a frame that validates at index `i`
/// can only ever be record `i` — which makes replaying the snapshot
/// prefix consistent even while the writer keeps appending past it. A
/// torn tail (usually the writer's in-flight frame) simply ends the
/// prefix; the next refresh picks the frame up once it completes. The
/// file is never written, and no state is shared with the owning
/// backend: the reader works entirely from the bytes on disk.
///
/// The scan also indexes `captured_at` per record (both record kinds
/// embed it right after the sequence number, so no full decode is
/// needed) and the checkpoint positions, which is what makes
/// time-travel queries ([`ArchiveReader::state_at`]) O(records since
/// checkpoint) instead of O(archive).
#[derive(Debug)]
pub struct ArchiveReader {
    path: PathBuf,
    epoch: u32,
    dict: ArchiveDict,
    /// Byte offset of each intact record frame, plus the logical end as
    /// a final sentinel. Dictionary frames occupy the gaps.
    offsets: Vec<u64>,
    /// Record indices of Full records — the checkpoint index.
    checkpoints: Vec<usize>,
    /// `captured_at` of each record, in record order.
    times: Vec<SimTime>,
    /// Logical end: one past the last intact frame.
    end: u64,
}

impl ArchiveReader {
    /// Opens `path` read-only and scans the intact prefix. Fails on v1
    /// archives (open those through [`FileBackend::open_read_only`];
    /// only v2's embedded sequence numbers make concurrent reads safe
    /// against frame splices).
    pub fn open(path: impl Into<PathBuf>) -> io::Result<ArchiveReader> {
        let path = path.into();
        let mut file = File::open(&path)?;
        let (version, epoch) = read_header(&mut file)?;
        if version != FORMAT_VERSION_V2 {
            return Err(if version == FORMAT_VERSION {
                bad_data(
                    "archive is MANTRARC v1; concurrent reads need v2 \
                     (open it through FileBackend::open_read_only instead)"
                        .into(),
                )
            } else {
                unsupported_version(version)
            });
        }
        let mut rd = ArchiveReader {
            path,
            epoch,
            dict: ArchiveDict::with_epoch(epoch),
            offsets: vec![HEADER_LEN],
            checkpoints: Vec::new(),
            times: Vec::new(),
            end: HEADER_LEN,
        };
        rd.refresh()?;
        Ok(rd)
    }

    /// Re-snapshots the logical end, scanning only the bytes appended
    /// since the last refresh. Returns how many new records became
    /// visible. If the archive was rewritten underneath (the interner
    /// epoch changed, or the file shrank — compaction does both), the
    /// reader starts over from the header.
    pub fn refresh(&mut self) -> io::Result<usize> {
        let mut file = File::open(&self.path)?;
        let file_len = file.seek(SeekFrom::End(0))?;
        file.seek(SeekFrom::Start(0))?;
        let (version, epoch) = read_header(&mut file)?;
        if version != FORMAT_VERSION_V2 {
            return Err(unsupported_version(version));
        }
        if epoch != self.epoch || file_len < self.end {
            self.epoch = epoch;
            self.dict = ArchiveDict::with_epoch(epoch);
            self.offsets = vec![HEADER_LEN];
            self.checkpoints.clear();
            self.times.clear();
            self.end = HEADER_LEN;
        }
        let before = self.len();
        let mut pos = self.end;
        file.seek(SeekFrom::Start(pos))?;
        let mut reader = BufReader::new(file);
        let mut payload = Vec::new();
        loop {
            let mut frame = [0u8; FRAME_LEN as usize];
            if reader.read_exact(&mut frame).is_err() {
                break; // truncated frame header: end of snapshot
            }
            let kind = frame[0];
            let len = u64::from(u32::from_le_bytes([frame[1], frame[2], frame[3], frame[4]]));
            let crc = u32::from_le_bytes([frame[5], frame[6], frame[7], frame[8]]);
            if kind > KIND_DICT || pos + FRAME_LEN + len > file_len {
                break; // unknown kind, or frame past the length snapshot
            }
            payload.clear();
            payload.resize(len as usize, 0);
            if reader.read_exact(&mut payload).is_err() || crc32_v2(kind, &payload) != crc {
                break; // torn or corrupt payload (often a write in flight)
            }
            if kind == KIND_DICT {
                if self.dict.apply_segment(&payload).is_err() {
                    break; // stale epoch / out-of-order segment
                }
                pos += FRAME_LEN + len;
                self.end = pos;
                continue;
            }
            // Both record kinds lead with `seq, captured_at` varints:
            // validate the sequence number and index the timestamp
            // without decoding the body.
            let mut c = Cur::new(&payload);
            let expect = (self.offsets.len() - 1) as u64;
            match c.uv() {
                Ok(seq) if seq == expect => {}
                _ => break, // spliced/duplicated frame
            }
            let at = match c.uv() {
                Ok(secs) => SimTime(secs),
                Err(_) => break,
            };
            if kind == KIND_FULL {
                self.checkpoints.push(self.offsets.len() - 1);
            }
            self.times.push(at);
            pos += FRAME_LEN + len;
            self.offsets.push(pos);
            self.end = pos;
        }
        Ok(self.len() - before)
    }

    /// The archive's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The archive's interner epoch (changes when the file is rewritten
    /// by compaction — cache keys include it for exactly that reason).
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Records in the current snapshot prefix.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether the snapshot prefix holds no records yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `captured_at` of every record in the snapshot, in record order.
    pub fn times(&self) -> &[SimTime] {
        &self.times
    }

    /// Record indices of the Full (checkpoint) records.
    pub fn checkpoints(&self) -> &[usize] {
        &self.checkpoints
    }

    /// How many leading records were captured at or before `at`.
    /// Capture times are non-decreasing in record order, so this is the
    /// prefix length a time-travel query replays.
    pub fn records_at_or_before(&self, at: SimTime) -> usize {
        self.times.partition_point(|t| *t <= at)
    }

    /// Streams decoded records `start..start + limit` from the
    /// snapshot. Dictionary frames are skipped — the reader's dictionary
    /// already contains every entry in the prefix, and within an epoch
    /// the dictionary is append-only, so decoding an early record
    /// against the full dictionary resolves identically.
    fn records_range(&self, start: usize, limit: usize) -> ReaderRecords<'_> {
        let start = start.min(self.len());
        let limit = limit.min(self.len() - start);
        let pos = self.offsets[start];
        let reader = File::open(&self.path).and_then(|mut f| {
            f.seek(SeekFrom::Start(pos))?;
            Ok(BufReader::new(f))
        });
        ReaderRecords {
            rd: self,
            reader: reader.ok(),
            next: start as u64,
            remaining: limit,
            pos,
        }
    }

    /// Replays the first `count` records into full table snapshots —
    /// `count` capped to the snapshot prefix. The daemon's time-travel
    /// endpoint replays `records_at_or_before(at)` records.
    pub fn replay_prefix(&self, count: usize) -> ReaderReplay<'_> {
        ReaderReplay {
            records: self.records_range(0, count),
            store: TableStore::default(),
            tail: None,
            done: false,
        }
    }

    /// Replays every record in the snapshot prefix.
    pub fn replay(&self) -> ReaderReplay<'_> {
        self.replay_prefix(self.len())
    }

    /// The deterministic [`replay_summary_line`] for the first `count`
    /// records — the unit daemon `/replay` responses are built from,
    /// byte-identical to `mantra archive replay` over the same prefix.
    pub fn summary_lines(&self, count: usize) -> io::Result<Vec<String>> {
        let mut lines = Vec::new();
        for (i, t) in self.replay_prefix(count).enumerate() {
            lines.push(replay_summary_line(i, &t?));
        }
        Ok(lines)
    }

    /// The table state as of `at`: the last snapshot captured at or
    /// before it, or `None` if the archive starts later. Replay starts
    /// at the last checkpoint not after `at` (the checkpoint index),
    /// not at the beginning.
    pub fn state_at(&self, at: SimTime) -> io::Result<Option<Tables>> {
        let count = self.records_at_or_before(at);
        if count == 0 {
            return Ok(None);
        }
        let start = self
            .checkpoints
            .iter()
            .rev()
            .find(|&&c| c < count)
            .copied()
            .unwrap_or(0);
        let mut store = TableStore::default();
        let mut tail: Option<SnapshotParts> = None;
        for rec in self.records_range(start, count - start) {
            match rec? {
                LogRecord::Full(p) => tail = Some(p),
                LogRecord::Delta(d) => match tail.as_ref() {
                    Some(base) => tail = Some(apply_with(&mut store, base, &d)),
                    None => {
                        return Err(bad_data(
                            "replay starts with a delta record (no checkpoint before it)".into(),
                        ))
                    }
                },
            }
        }
        Ok(tail.map(|p| p.rebuild()))
    }
}

/// Streams decoded records from an [`ArchiveReader`]'s snapshot prefix.
struct ReaderRecords<'a> {
    rd: &'a ArchiveReader,
    reader: Option<BufReader<File>>,
    next: u64,
    remaining: usize,
    pos: u64,
}

impl ReaderRecords<'_> {
    fn read_one(&mut self) -> io::Result<LogRecord> {
        let reader = self.reader.as_mut().expect("checked by next()");
        loop {
            let mut frame = [0u8; FRAME_LEN as usize];
            reader.read_exact(&mut frame)?;
            let kind = frame[0];
            let len = u64::from(u32::from_le_bytes([frame[1], frame[2], frame[3], frame[4]]));
            let crc = u32::from_le_bytes([frame[5], frame[6], frame[7], frame[8]]);
            if kind > KIND_DICT {
                return Err(bad_data(format!("unknown record kind {kind}")));
            }
            if self.pos + FRAME_LEN + len > self.rd.end {
                return Err(bad_data(
                    "record frame runs past the snapshot's logical end \
                     (file changed under the reader; refresh and retry)"
                        .into(),
                ));
            }
            let mut payload = vec![0u8; len as usize];
            reader.read_exact(&mut payload)?;
            if crc32_v2(kind, &payload) != crc {
                return Err(bad_data("record payload fails its CRC".into()));
            }
            self.pos += FRAME_LEN + len;
            if kind == KIND_DICT {
                // Already folded into `rd.dict` during the scan.
                continue;
            }
            let rec = decode_record_v2(kind, &payload, &self.rd.dict, self.next)?;
            self.next += 1;
            return Ok(rec);
        }
    }
}

impl Iterator for ReaderRecords<'_> {
    type Item = io::Result<LogRecord>;

    fn next(&mut self) -> Option<io::Result<LogRecord>> {
        if self.remaining == 0 {
            return None;
        }
        if self.reader.is_none() {
            self.remaining = 0;
            return Some(Err(io::Error::new(
                io::ErrorKind::NotFound,
                "archive file disappeared under the reader",
            )));
        }
        self.remaining -= 1;
        match self.read_one() {
            Ok(rec) => Some(Ok(rec)),
            Err(e) => {
                self.reader = None; // fuse on error
                self.remaining = 0;
                Some(Err(e))
            }
        }
    }
}

/// Replays an [`ArchiveReader`] record stream into full table
/// snapshots, one per record (the reader-side analogue of
/// [`crate::logger::ReplayIter`]).
pub struct ReaderReplay<'a> {
    records: ReaderRecords<'a>,
    store: TableStore,
    tail: Option<SnapshotParts>,
    done: bool,
}

impl Iterator for ReaderReplay<'_> {
    type Item = io::Result<Tables>;

    fn next(&mut self) -> Option<io::Result<Tables>> {
        if self.done {
            return None;
        }
        let rec = match self.records.next()? {
            Ok(rec) => rec,
            Err(e) => {
                self.done = true;
                return Some(Err(e));
            }
        };
        match rec {
            LogRecord::Full(p) => self.tail = Some(p),
            LogRecord::Delta(d) => match self.tail.as_ref() {
                Some(base) => self.tail = Some(apply_with(&mut self.store, base, &d)),
                None => {
                    self.done = true;
                    return Some(Err(bad_data("archive starts with a delta record".into())));
                }
            },
        }
        Some(Ok(self.tail.as_ref().expect("just set").rebuild()))
    }
}

// ---------------------------------------------------------------------
// QueryCache: LRU over replay query results
// ---------------------------------------------------------------------

/// Key identifying one cached replay result: the archive path, the
/// interner epoch it was read under, and the replayed record range.
///
/// The key carries invalidation with it: a seq advance (new records)
/// changes the range a fresh query computes, and compaction changes the
/// epoch — either way the stale entry stops being addressed and ages
/// out of the LRU.
pub type QueryKey = (PathBuf, u32, (usize, usize));

/// Hit/miss/eviction accounting for a [`QueryCache`], surfaced through
/// `mantra health` and the HTML report.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Queries answered from the cache.
    pub hits: u64,
    /// Queries that had to replay the archive.
    pub misses: u64,
    /// Entries displaced by the capacity bound.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: u64,
}

impl CacheStats {
    /// Folds another cache's counters into this one (fleet aggregation).
    pub fn absorb(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.entries += other.entries;
    }
}

/// A small LRU over replay query results, shared between the daemon's
/// HTTP workers. Entries are `Arc`ed so a hit is a clone, not a copy of
/// the replayed lines.
#[derive(Debug, Default)]
pub struct QueryCache {
    inner: Mutex<CacheInner>,
}

#[derive(Debug)]
struct CacheInner {
    /// Most-recently-used last; linear scans are fine at this capacity.
    entries: VecDeque<(QueryKey, Arc<Vec<String>>)>,
    capacity: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl Default for CacheInner {
    fn default() -> Self {
        CacheInner {
            entries: VecDeque::new(),
            capacity: QueryCache::DEFAULT_CAPACITY,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }
}

impl QueryCache {
    /// Default entry bound — replay results are a few KB each, so this
    /// keeps the cache well under a MB while covering a dashboard's
    /// worth of distinct queries.
    pub const DEFAULT_CAPACITY: usize = 64;

    /// A cache bounded to `capacity` entries.
    pub fn with_capacity(capacity: usize) -> QueryCache {
        QueryCache {
            inner: Mutex::new(CacheInner {
                capacity: capacity.max(1),
                ..CacheInner::default()
            }),
        }
    }

    /// Looks up `key`, or computes, caches and returns the result.
    pub fn get_or_try_insert(
        &self,
        key: QueryKey,
        compute: impl FnOnce() -> io::Result<Vec<String>>,
    ) -> io::Result<Arc<Vec<String>>> {
        {
            let mut inner = lock_clean(&self.inner);
            if let Some(i) = inner.entries.iter().position(|(k, _)| *k == key) {
                let hit = inner.entries.remove(i).expect("position just found");
                let val = hit.1.clone();
                inner.entries.push_back(hit);
                inner.hits += 1;
                return Ok(val);
            }
            inner.misses += 1;
        }
        // Replay outside the lock: a slow archive scan must not block
        // other workers' cache hits.
        let val = Arc::new(compute()?);
        let mut inner = lock_clean(&self.inner);
        if !inner.entries.iter().any(|(k, _)| *k == key) {
            if inner.entries.len() >= inner.capacity {
                inner.entries.pop_front();
                inner.evictions += 1;
            }
            inner.entries.push_back((key, val.clone()));
        }
        Ok(val)
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        let inner = lock_clean(&self.inner);
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            entries: inner.entries.len() as u64,
        }
    }
}

/// One deterministic line summarising a replayed snapshot — the unit the
/// `mantra archive replay` golden tests diff against.
pub fn replay_summary_line(index: usize, t: &crate::tables::Tables) -> String {
    format!(
        "{index:>4} {} {} sessions={} participants={} pairs={} routes={} sa={}",
        t.captured_at.iso8601(),
        t.router,
        t.sessions.len(),
        t.participants.len(),
        t.pairs.len(),
        t.routes.len(),
        t.sa_cache.len(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logger::{SnapshotParts, TableDelta};

    fn full_record(n: u64) -> (LogRecord, String) {
        let parts = SnapshotParts {
            captured_at: mantra_net::SimTime(n),
            router: "fixw".into(),
            ..SnapshotParts::default()
        };
        let rec = LogRecord::Full(parts);
        let json = serde_json::to_string(&rec).unwrap();
        (rec, json)
    }

    fn delta_record(n: u64) -> (LogRecord, String) {
        let rec = LogRecord::Delta(TableDelta {
            captured_at: mantra_net::SimTime(n),
            ..TableDelta::default()
        });
        let json = serde_json::to_string(&rec).unwrap();
        (rec, json)
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mantra-archive-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn file_backend_round_trips_records() {
        let path = tmp("roundtrip.marc");
        let mut be = FileBackend::create(&path).unwrap();
        let recs = vec![
            full_record(0),
            delta_record(1),
            delta_record(2),
            full_record(3),
        ];
        for (rec, json) in &recs {
            be.append(rec, json).unwrap();
        }
        assert_eq!(be.len(), 4);
        assert_eq!(be.last_checkpoint(), Some(3));
        let back: Vec<LogRecord> = be.records().map(|r| r.unwrap()).collect();
        assert_eq!(back.len(), 4);
        for ((orig, _), got) in recs.iter().zip(&back) {
            assert_eq!(
                serde_json::to_string(orig).unwrap(),
                serde_json::to_string(got).unwrap()
            );
        }
        // Reopen resumes with the same view.
        drop(be);
        let be = FileBackend::open(&path).unwrap();
        assert_eq!(be.len(), 4);
        assert_eq!(be.last_checkpoint(), Some(3));
        assert_eq!(be.stats().recovered_bytes, 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_tail_recovers_to_last_valid_record() {
        let path = tmp("truncated.marc");
        let mut be = FileBackend::create(&path).unwrap();
        for (rec, json) in [full_record(0), delta_record(1), delta_record(2)] {
            be.append(&rec, &json).unwrap();
        }
        let offsets = be.offsets().to_vec();
        drop(be);
        // Cut the file mid-way through the last record.
        let cut = offsets[3] - 3;
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(cut).unwrap();
        drop(f);
        let be = FileBackend::open(&path).unwrap();
        assert_eq!(be.len(), 2, "last record dropped");
        assert_eq!(be.stats().recovered_bytes, cut - offsets[2]);
        // And the file was physically truncated to the valid prefix.
        assert_eq!(std::fs::metadata(&path).unwrap().len(), offsets[2]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_payload_ends_the_archive_at_the_last_valid_record() {
        let path = tmp("corrupt.marc");
        let mut be = FileBackend::create(&path).unwrap();
        for (rec, json) in [full_record(0), delta_record(1), delta_record(2)] {
            be.append(&rec, &json).unwrap();
        }
        let offsets = be.offsets().to_vec();
        drop(be);
        // Flip a byte inside record 1's payload.
        let mut bytes = std::fs::read(&path).unwrap();
        let at = offsets[1] as usize + FRAME_LEN as usize + 2;
        bytes[at] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let be = FileBackend::open(&path).unwrap();
        assert_eq!(be.len(), 1, "records after the corruption are dropped");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn unrecognised_headers_are_rejected_with_a_clear_error() {
        let path = tmp("badmagic.marc");
        std::fs::write(&path, b"NOTANARCHIVE----------------").unwrap();
        let err = FileBackend::open(&path).unwrap_err();
        assert!(err.to_string().contains("MANTRARC"), "{err}");
        // An unknown (future) version is called out explicitly, by both
        // readers.
        let mut header = Vec::new();
        header.extend_from_slice(&MAGIC);
        header.extend_from_slice(&99u16.to_le_bytes());
        header.resize(HEADER_LEN as usize, 0);
        std::fs::write(&path, &header).unwrap();
        let err = FileBackend::open(&path).unwrap_err();
        assert!(err.to_string().contains("version 99"), "{err}");
        let err = FileBackendV2::open(&path).unwrap_err();
        assert!(err.to_string().contains("version 99"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fsyncs_happen_on_checkpoints_and_cadence() {
        let path = tmp("fsync.marc");
        let mut be = FileBackend::create(&path).unwrap();
        let base = be.stats().fsyncs;
        let (full, full_json) = full_record(0);
        be.append(&full, &full_json).unwrap();
        assert_eq!(be.stats().fsyncs, base + 1, "checkpoint syncs");
        assert_eq!(be.stats().pending_appends, 0);
        be.sync = SyncPolicy::every_records(2);
        for n in 1..=4 {
            let (d, j) = delta_record(n);
            be.append(&d, &j).unwrap();
        }
        assert_eq!(be.stats().fsyncs, base + 3, "every second delta syncs");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn byte_cadence_and_pending_appends_account_durability() {
        let path = tmp("fsync-bytes.marc");
        let mut be = FileBackendV2::create(&path).unwrap();
        be.sync = SyncPolicy {
            on_checkpoint: false,
            every_records: 0,
            every_bytes: 1, // every append crosses the byte threshold
        };
        let (full, j) = full_record(0);
        be.append(&full, &j).unwrap();
        assert_eq!(be.stats().fsyncs, 2, "create + byte-cadence sync");
        assert_eq!(be.stats().pending_appends, 0);
        be.sync = SyncPolicy {
            on_checkpoint: false,
            every_records: 0,
            every_bytes: 0,
        };
        for n in 1..=3 {
            let (d, j) = delta_record(n);
            be.append(&d, &j).unwrap();
        }
        assert_eq!(be.stats().fsyncs, 2, "no further syncs");
        assert_eq!(be.stats().pending_appends, 3, "three records at risk");
        std::fs::remove_file(&path).unwrap();
    }

    fn rich_full(n: u64) -> (LogRecord, String) {
        use crate::tables::{PairRow, RouteRow, SessionRow};
        let g = GroupAddr::from_index;
        let parts = SnapshotParts {
            captured_at: SimTime(n),
            router: "fixw".into(),
            pairs: vec![PairRow {
                source: Ip::new(10, 0, 0, 1),
                group: g(1),
                current_bw: BitRate::from_kbps(64 + n),
                avg_bw: BitRate::from_kbps(60),
                forwarding: n.is_multiple_of(2),
                learned_from: LearnedFrom::Pim,
            }],
            routes: vec![
                RouteRow {
                    prefix: Prefix::new(Ip::new(128, 9, 0, 0), 16).unwrap(),
                    next_hop: Some(Ip::new(10, 0, 0, 2)),
                    metric: 3,
                    uptime: Some(SimDuration::secs(900 * n)),
                    reachable: true,
                    learned_from: LearnedFrom::Dvmrp,
                },
                RouteRow {
                    prefix: Prefix::new(Ip::new(192, 168, 0, 0), 24).unwrap(),
                    next_hop: None,
                    metric: 1,
                    uptime: None,
                    reachable: false,
                    learned_from: LearnedFrom::Mbgp,
                },
            ],
            sa_cache: vec![(g(1), Ip::new(10, 0, 0, 1), SimTime(n))],
            member_only_sessions: vec![SessionRow {
                group: g(2),
                name: Some("sap announce".into()),
                density: 4,
                bandwidth: BitRate::from_kbps(2),
                first_advertised: LearnedFrom::Igmp,
                first_seen: SimTime(n),
            }],
            presorted: false,
        };
        let rec = LogRecord::Full(parts);
        let json = serde_json::to_string(&rec).unwrap();
        (rec, json)
    }

    fn rich_delta(n: u64) -> (LogRecord, String) {
        let g = GroupAddr::from_index;
        let rec = LogRecord::Delta(TableDelta {
            captured_at: SimTime(n),
            pair_upserts: Vec::new(),
            pair_removals: vec![(g(1), Ip::new(10, 0, 0, 1))],
            route_upserts: Vec::new(),
            route_removals: vec![(
                LearnedFrom::Mbgp,
                Prefix::new(Ip::new(192, 168, 0, 0), 24).unwrap(),
            )],
            sa_upserts: vec![(g(3), Ip::new(10, 0, 9, 9), SimTime(n))],
            sa_removals: vec![(g(1), Ip::new(10, 0, 0, 1))],
            session_upserts: Vec::new(),
            session_removals: vec![g(2)],
        });
        let json = serde_json::to_string(&rec).unwrap();
        (rec, json)
    }

    fn json_of(rec: &LogRecord) -> String {
        serde_json::to_string(rec).unwrap()
    }

    /// Start of record `i`'s own frame: append batches may lead with a
    /// dictionary frame, so skip it when one sits at the batch offset.
    fn rec_frame_start(be: &FileBackendV2, i: usize) -> u64 {
        let s = be.offsets()[i];
        be.dict_frames()
            .iter()
            .find(|&&(ds, _)| ds == s)
            .map_or(s, |&(_, e)| e)
    }

    #[test]
    fn v2_backend_round_trips_records_and_reopens() {
        let path = tmp("v2-roundtrip.marc");
        let mut be = FileBackendV2::create(&path).unwrap();
        let recs = vec![rich_full(0), rich_delta(1), rich_delta(2), rich_full(3)];
        for (rec, json) in &recs {
            be.append(rec, json).unwrap();
        }
        assert_eq!(be.len(), 4);
        assert_eq!(be.last_checkpoint(), Some(3));
        assert!(
            !be.dict_frames().is_empty(),
            "new keys force dictionary segments"
        );
        let back: Vec<LogRecord> = be.records().map(|r| r.unwrap()).collect();
        for ((orig, _), got) in recs.iter().zip(&back) {
            assert_eq!(json_of(orig), json_of(got));
        }
        // Mid-archive entry (checkpoint resume) preloads the dictionary.
        let tail: Vec<LogRecord> = be.records_from(3).map(|r| r.unwrap()).collect();
        assert_eq!(tail.len(), 1);
        assert_eq!(json_of(&tail[0]), json_of(&recs[3].0));
        let info = be.describe();
        assert_eq!(info.format_version, FORMAT_VERSION_V2);
        assert_eq!(info.epoch, 1);
        assert!(info.dict_entries > 0);
        drop(be);
        let be = FileBackendV2::open(&path).unwrap();
        assert_eq!(be.len(), 4);
        assert_eq!(be.last_checkpoint(), Some(3));
        assert_eq!(be.stats().recovered_bytes, 0);
        let back: Vec<LogRecord> = be.records().map(|r| r.unwrap()).collect();
        assert_eq!(json_of(&back[2]), json_of(&recs[2].0));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn v2_truncated_tail_recovers_to_last_valid_record() {
        let path = tmp("v2-truncated.marc");
        let mut be = FileBackendV2::create(&path).unwrap();
        for (rec, json) in [rich_full(0), rich_delta(1), rich_delta(2)] {
            be.append(&rec, &json).unwrap();
        }
        let offsets = be.offsets().to_vec();
        drop(be);
        let cut = offsets[3] - 3;
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(cut).unwrap();
        drop(f);
        let be = FileBackendV2::open(&path).unwrap();
        assert_eq!(be.len(), 2, "last record dropped");
        assert!(be.stats().recovered_bytes > 0);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), offsets[2]);
        // Appending after recovery keeps the archive self-consistent.
        let mut be = be;
        let (rec, json) = rich_delta(9);
        be.append(&rec, &json).unwrap();
        let back: Vec<LogRecord> = be.records().map(|r| r.unwrap()).collect();
        assert_eq!(back.len(), 3);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn v2_kind_flip_is_caught_by_the_frame_crc() {
        let path = tmp("v2-kindflip.marc");
        let mut be = FileBackendV2::create(&path).unwrap();
        for (rec, json) in [rich_full(0), rich_delta(1), rich_delta(2)] {
            be.append(&rec, &json).unwrap();
        }
        let at = rec_frame_start(&be, 1) as usize;
        drop(be);
        // Flip record 1's kind byte from Delta to Full; the payload CRC
        // alone would still pass, but the v2 CRC covers the kind.
        let mut bytes = std::fs::read(&path).unwrap();
        assert_eq!(bytes[at], KIND_DELTA);
        bytes[at] = KIND_FULL;
        std::fs::write(&path, &bytes).unwrap();
        let be = FileBackendV2::open(&path).unwrap();
        assert_eq!(be.len(), 1, "the flipped frame ends the archive");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn v2_duplicated_record_frame_is_caught_by_its_sequence_number() {
        let path = tmp("v2-dup.marc");
        let mut be = FileBackendV2::create(&path).unwrap();
        for (rec, json) in [rich_full(0), rich_delta(1)] {
            be.append(&rec, &json).unwrap();
        }
        let span = (rec_frame_start(&be, 1) as usize, be.offsets()[2] as usize);
        drop(be);
        // Append a byte-exact copy of the last record frame (without its
        // dictionary frame): CRC-valid, but its sequence number repeats.
        let mut bytes = std::fs::read(&path).unwrap();
        let dup = bytes[span.0..span.1].to_vec();
        bytes.extend_from_slice(&dup);
        std::fs::write(&path, &bytes).unwrap();
        let be = FileBackendV2::open(&path).unwrap();
        assert_eq!(be.len(), 2, "the duplicated frame is dropped");
        assert!(be.stats().recovered_bytes > 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn v2_epoch_mismatched_dictionary_segment_ends_the_archive() {
        let path = tmp("v2-epoch.marc");
        let mut be = FileBackendV2::create_with_epoch(&path, 7).unwrap();
        let (rec, json) = rich_full(0);
        be.append(&rec, &json).unwrap();
        assert_eq!(be.describe().epoch, 7);
        drop(be);
        // Rewrite the header epoch: every dictionary segment is now
        // stamped with the wrong epoch and replay must refuse the ids.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[12..16].copy_from_slice(&8u32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let be = FileBackendV2::open(&path).unwrap();
        assert_eq!(be.len(), 0, "stale-epoch ids are never resolved");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn v2_payloads_are_smaller_than_v1_for_the_same_records() {
        let p1 = tmp("size-v1.marc");
        let p2 = tmp("size-v2.marc");
        let mut v1 = FileBackend::create(&p1).unwrap();
        let mut v2 = FileBackendV2::create(&p2).unwrap();
        for n in 0..8 {
            let (rec, json) = if n == 0 { rich_full(n) } else { rich_delta(n) };
            v1.append(&rec, &json).unwrap();
            v2.append(&rec, &json).unwrap();
        }
        assert!(
            v2.stats().bytes < v1.stats().bytes,
            "v2 {} bytes should undercut v1 {} bytes",
            v2.stats().bytes,
            v1.stats().bytes
        );
        std::fs::remove_file(&p1).unwrap();
        std::fs::remove_file(&p2).unwrap();
    }

    #[test]
    fn memory_backend_accounts_checkpoints() {
        let mut be = MemoryBackend::default();
        for (rec, json) in [full_record(0), delta_record(1), full_record(2)] {
            be.append(&rec, &json).unwrap();
        }
        assert_eq!(be.len(), 3);
        assert_eq!(be.last_checkpoint(), Some(2));
        let s = be.stats();
        assert_eq!(s.records, 3);
        assert_eq!(s.checkpoints, 2);
        assert_eq!(s.fsyncs, 0);
        assert!(s.bytes > 0);
        assert_eq!(be.records_from(2).count(), 1);
    }

    #[test]
    fn torn_write_heals_on_next_append_v1() {
        let path = tmp("torn-heal-v1.marc");
        let mut be = FileBackend::create(&path).unwrap();
        be.sync = SyncPolicy::every_records(1);
        let (rec0, json0) = full_record(0);
        be.append(&rec0, &json0).unwrap();
        let good_len = std::fs::metadata(&path).unwrap().len();

        // ENOSPC-style failure: 5 bytes of the frame land, then the
        // write fails.
        be.inject_torn_write(5);
        let (rec1, json1) = delta_record(1);
        let err = be.append(&rec1, &json1).unwrap_err();
        assert!(err.to_string().contains("torn frame"), "{err}");
        let s = be.stats();
        assert_eq!(s.write_errors, 1);
        assert_eq!(s.records, 1, "failed record must not be counted");
        // The torn bytes are on disk but bookkeeping never claims them:
        // the record they belonged to is lost, and pending_appends only
        // covers records the backend actually framed.
        assert_eq!(std::fs::metadata(&path).unwrap().len(), good_len + 5);
        assert_eq!(s.pending_appends, 0);

        // Next append heals: tail re-truncated, new frame lands at the
        // logical end, stream replays cleanly.
        let (rec2, json2) = full_record(2);
        be.append(&rec2, &json2).unwrap();
        assert_eq!(be.len(), 2);
        let back: Vec<LogRecord> = be.records().map(|r| r.unwrap()).collect();
        assert_eq!(back.len(), 2);
        drop(be);
        let be = FileBackend::open(&path).unwrap();
        assert_eq!(be.len(), 2);
        assert_eq!(be.stats().recovered_bytes, 0, "heal already cut the tail");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_write_heals_on_sync_v2() {
        let path = tmp("torn-heal-v2.marc");
        let mut be = FileBackendV2::create(&path).unwrap();
        let (rec0, json0) = rich_full(0);
        be.append(&rec0, &json0).unwrap();
        let good_len = std::fs::metadata(&path).unwrap().len();

        be.inject_torn_write(7);
        let (rec1, json1) = rich_delta(1);
        assert!(be.append(&rec1, &json1).is_err());
        assert_eq!(be.stats().write_errors, 1);
        assert!(std::fs::metadata(&path).unwrap().len() > good_len);

        // Sync heals the tail even with no intervening append.
        be.sync().unwrap();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), good_len);
        assert_eq!(be.stats().pending_appends, 0);

        // And appends keep working; sequence numbers stay dense.
        let (rec2, json2) = rich_full(2);
        be.append(&rec2, &json2).unwrap();
        let back: Vec<LogRecord> = be.records().map(|r| r.unwrap()).collect();
        assert_eq!(back.len(), 2);
        drop(be);
        let be = FileBackendV2::open(&path).unwrap();
        assert_eq!(be.len(), 2);
        assert_eq!(be.stats().recovered_bytes, 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn threaded_backend_matches_serial_and_drains_on_drop() {
        let serial_path = tmp("threaded-serial.marc");
        let threaded_path = tmp("threaded-writer.marc");
        let recs: Vec<_> = (0..10)
            .map(|n| {
                if n % 4 == 0 {
                    rich_full(n)
                } else {
                    rich_delta(n)
                }
            })
            .collect();

        let mut serial = FileBackendV2::create(&serial_path).unwrap();
        for (rec, json) in &recs {
            serial.append(rec, json).unwrap();
        }
        serial.sync().unwrap();
        drop(serial);

        let inner = Box::new(FileBackendV2::create(&threaded_path).unwrap());
        let mut be = ThreadedBackend::spawn(inner, WriterConfig::default());
        assert_eq!(be.kind(), "file+writer");
        for (rec, json) in &recs {
            be.append(rec, json).unwrap();
        }
        // len() is a drain barrier: all 10 records are applied after it.
        assert_eq!(be.len(), 10);
        assert_eq!(be.last_checkpoint(), Some(8));
        be.sync().unwrap();
        let s = be.stats();
        assert_eq!(s.records, 10);
        assert_eq!(s.queue_depth, 0);
        assert!(s.queue_high_water >= 1);
        assert_eq!(s.dropped_records, 0);
        assert_eq!(s.pending_appends, 0);
        drop(be);

        assert_eq!(
            std::fs::read(&serial_path).unwrap(),
            std::fs::read(&threaded_path).unwrap(),
            "threaded archive must be byte-identical to serial"
        );
        std::fs::remove_file(&serial_path).unwrap();
        std::fs::remove_file(&threaded_path).unwrap();
    }

    #[test]
    fn threaded_backend_defers_writer_errors_to_next_append() {
        let path = tmp("threaded-defer.marc");
        let mut inner = Box::new(FileBackendV2::create(&path).unwrap());
        inner.inject_torn_write(3);
        let mut be = ThreadedBackend::spawn(inner, WriterConfig::default());

        // This append enqueues fine; the failure happens on the writer
        // thread when the frame is applied.
        let (rec0, json0) = rich_full(0);
        be.append(&rec0, &json0).unwrap();
        be.drain();

        // The next append surfaces the deferred error.
        let (rec1, json1) = rich_delta(1);
        let err = be.append(&rec1, &json1).unwrap_err();
        assert!(err.to_string().contains("archive writer"), "{err}");
        let s = be.stats();
        assert!(s.write_errors >= 1);
        assert!(
            s.dropped_records >= 1,
            "the erroring append sheds its record"
        );

        // A Full record re-anchors the chain and lands cleanly.
        let (rec2, json2) = rich_full(2);
        be.append(&rec2, &json2).unwrap();
        assert_eq!(be.len(), 1, "only the re-anchoring full survives");
        drop(be);
        std::fs::remove_file(&path).unwrap();
    }
}
