//! The staged monitoring pipeline.
//!
//! Figure 1's data path, made explicit: each cycle flows through five
//! typed stages —
//!
//! ```text
//! Capture ─► Parse ─► Enrich ─► Log ─► Analyse
//! RawCycle   ParsedCycle  EnrichedCycle  LoggedCycle  CycleReport
//! ```
//!
//! A [`Stage`] consumes one artifact type and produces the next; the
//! [`Monitor`](crate::monitor::Monitor) is a thin driver that threads a
//! cycle through the stages via [`PipelineMetrics::run`], which accounts
//! per-stage invocations, item counts, wall-clock time and simulated-time
//! latency. The stages share one [`TableStore`] so router names, hosts,
//! groups and route keys are interned once and handled as dense `u32` ids
//! everywhere downstream.

use std::collections::BTreeMap;

use mantra_net::{BitRate, GroupAddr, Ip, SimDuration, SimTime};

use crate::aggregate::ParallelAccess;
use crate::anomaly::{detect_injection, Anomaly, InconsistencyMonitor, SpikeDetector};
use crate::archive::{ArchiveSpec, CacheStats};
use crate::collector::{Capture, CollectStats, Collector, RouterAccess};
use crate::logger::{TableDelta, TableLog};
use crate::longterm::LongTermTracker;
use crate::monitor::{CycleReport, RouterHealth, SessionAdapter};
use crate::output::{Cell, Table};
use crate::processor::{process, ParseStats};
use crate::stats::{RouteChurn, RouteStats, UsageStats};
use crate::stats_stream::IncrementalStats;
use crate::store::{FxHashMap, TableStore};
use crate::tables::Tables;

// ----------------------------------------------------------------------
// Artifacts
// ----------------------------------------------------------------------

/// One router's raw capture batch for a cycle.
#[derive(Clone, Debug)]
pub struct RouterCapture {
    /// Router polled.
    pub router: String,
    /// Pre-processed captures (one per table kind that survived).
    pub captures: Vec<Capture>,
    /// Collection accounting for this router's batch.
    pub stats: CollectStats,
}

/// Capture-stage output: every router's raw batch for one cycle.
#[derive(Clone, Debug)]
pub struct RawCycle {
    /// Cycle timestamp.
    pub at: SimTime,
    /// Per-router batches, in configuration order.
    pub routers: Vec<RouterCapture>,
}

/// One router's parsed snapshot.
#[derive(Clone, Debug)]
pub struct ParsedRouter {
    /// Router polled.
    pub router: String,
    /// The parsed (not yet enriched) table snapshot.
    pub tables: Tables,
    /// Parse accounting for the batch.
    pub parse: ParseStats,
    /// Collection accounting, carried through for the health registry.
    pub stats: CollectStats,
}

/// Parse-stage output.
#[derive(Clone, Debug)]
pub struct ParsedCycle {
    /// Cycle timestamp.
    pub at: SimTime,
    /// Per-router snapshots, in configuration order.
    pub routers: Vec<ParsedRouter>,
}

/// One router's enriched snapshot, addressed by its interned id.
#[derive(Clone, Debug)]
pub struct EnrichedRouter {
    /// Dense router id in the shared [`TableStore`].
    pub id: u32,
    /// The enriched snapshot (running averages, session names).
    pub tables: Tables,
}

/// Enrich-stage output.
#[derive(Clone, Debug)]
pub struct EnrichedCycle {
    /// Cycle timestamp.
    pub at: SimTime,
    /// Per-router snapshots, in configuration order.
    pub routers: Vec<EnrichedRouter>,
}

/// One router's archived snapshot, carrying the delta the log computed.
#[derive(Clone, Debug)]
pub struct LoggedRouter {
    /// Dense router id in the shared [`TableStore`].
    pub id: u32,
    /// The archived snapshot.
    pub tables: Tables,
    /// The delta from the router's previous archived snapshot to this
    /// one, as computed while appending — `None` only for a log's very
    /// first record. The Analyse stage folds this instead of re-deriving
    /// per-cycle change from two full snapshots.
    pub delta: Option<TableDelta>,
}

/// Log-stage output: the enriched snapshots, now archived.
#[derive(Clone, Debug)]
pub struct LoggedCycle {
    /// Cycle timestamp.
    pub at: SimTime,
    /// Per-router snapshots, in configuration order.
    pub routers: Vec<LoggedRouter>,
}

// ----------------------------------------------------------------------
// Stage abstraction and metrics
// ----------------------------------------------------------------------

/// The five pipeline stages, in data-path order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StageKind {
    /// Log in, dump tables, pre-process.
    Capture = 0,
    /// Text to table snapshots.
    Parse = 1,
    /// Running averages, session names, health accounting.
    Enrich = 2,
    /// Delta archive and long-term trackers.
    Log = 3,
    /// Statistics, anomaly detectors, the cycle report.
    Analyse = 4,
}

impl StageKind {
    /// All stages, in pipeline order.
    pub const ALL: [StageKind; 5] = [
        StageKind::Capture,
        StageKind::Parse,
        StageKind::Enrich,
        StageKind::Log,
        StageKind::Analyse,
    ];

    /// Display name.
    pub fn as_str(self) -> &'static str {
        match self {
            StageKind::Capture => "capture",
            StageKind::Parse => "parse",
            StageKind::Enrich => "enrich",
            StageKind::Log => "log",
            StageKind::Analyse => "analyse",
        }
    }
}

/// One pipeline step: consumes its input artifact, produces the next.
pub trait Stage {
    /// Artifact consumed.
    type Input;
    /// Artifact produced.
    type Output;

    /// Which of the five stages this is.
    fn kind(&self) -> StageKind;

    /// Runs the stage.
    fn run(&mut self, input: Self::Input) -> Self::Output;

    /// How many items the run handled, for throughput accounting. What an
    /// "item" is depends on the stage: captured tables for Capture, parse
    /// records for Parse, router snapshots downstream.
    fn items(&self, out: &Self::Output) -> u64;

    /// Simulated-time latency the run added (e.g. retry backoff).
    fn sim_latency(&self, _out: &Self::Output) -> SimDuration {
        SimDuration::ZERO
    }

    /// Whether this run fans its per-router bodies across the thread
    /// pool. Metrics account parallel runs separately so the serial and
    /// fanned-out costs of a stage stay comparable.
    fn parallel(&self) -> bool {
        false
    }
}

/// Accumulated accounting for one stage.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageMetrics {
    /// Times the stage ran (one per cycle under the monitor).
    pub invocations: u64,
    /// Items handled across all runs.
    pub items: u64,
    /// Wall-clock time spent, in nanoseconds. Always at least one per
    /// invocation, so "this stage ran" is visible even below timer
    /// resolution.
    pub wall_nanos: u64,
    /// Invocations that fanned per-router work across the thread pool.
    pub par_invocations: u64,
    /// Wall-clock nanoseconds spent in those fanned-out invocations — a
    /// subset of [`StageMetrics::wall_nanos`], so serial and parallel
    /// cost per stage can be compared directly.
    pub par_wall_nanos: u64,
    /// Simulated-time latency accumulated (retry backoff, for Capture).
    pub sim_latency: SimDuration,
}

/// Archive accounting aggregated per backend kind, refreshed after each
/// Log stage from the routers' logs (absolute totals, not increments).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ArchiveMetrics {
    /// Backend name ("memory", "file").
    pub backend: &'static str,
    /// Routers archiving through this backend.
    pub routers: u64,
    /// Records archived.
    pub records: u64,
    /// Full-snapshot checkpoints among them.
    pub checkpoints: u64,
    /// Archived bytes (frames for file archives, payloads for memory).
    pub bytes: u64,
    /// `fsync` calls issued.
    pub fsyncs: u64,
    /// Appends accepted since the last `fsync` across this backend's
    /// routers — with batched fsync cadences this is the fleet's current
    /// power-loss exposure in records.
    pub pending_appends: u64,
    /// Embedded dictionary entries across this backend's archives
    /// (MANTRARC v2).
    pub dict_entries: u64,
    /// Appends the backend failed to persist.
    pub write_errors: u64,
    /// Routers whose requested backend could not be opened and whose log
    /// silently degraded to an in-memory archive — persistence the
    /// operator configured is not happening for these.
    pub fallbacks: u64,
    /// Records currently sitting in writer-thread queues (threaded
    /// backends only) — part of the fleet's power-loss exposure.
    pub queue_depth: u64,
    /// The deepest any single router's writer queue has been.
    pub queue_high_water: u64,
    /// Wall-clock nanoseconds collection spent blocked on full writer
    /// queues (backpressure in `Block` mode).
    pub blocked_nanos: u64,
    /// Records shed on full queues or skipped to keep delta chains
    /// replayable after a writer-side failure — loud loss, never silent.
    pub dropped_records: u64,
    /// Archive read failures observed while replaying these routers'
    /// logs.
    pub replay_errors: u64,
}

/// The per-stage metrics registry: one [`StageMetrics`] per [`StageKind`],
/// plus per-backend archive totals.
#[derive(Clone, Debug, Default)]
pub struct PipelineMetrics {
    stages: [StageMetrics; 5],
    archives: Vec<ArchiveMetrics>,
    query_cache: CacheStats,
}

impl PipelineMetrics {
    /// Runs `stage` on `input`, accounting the run under its kind.
    pub fn run<S: Stage>(&mut self, stage: &mut S, input: S::Input) -> S::Output {
        let t = std::time::Instant::now();
        let out = stage.run(input);
        let elapsed = (t.elapsed().as_nanos() as u64).max(1);
        let m = &mut self.stages[stage.kind() as usize];
        m.invocations += 1;
        m.items += stage.items(&out);
        m.wall_nanos += elapsed;
        if stage.parallel() {
            m.par_invocations += 1;
            m.par_wall_nanos += elapsed;
        }
        m.sim_latency += stage.sim_latency(&out);
        out
    }

    /// The accumulated metrics of one stage.
    pub fn stage(&self, kind: StageKind) -> &StageMetrics {
        &self.stages[kind as usize]
    }

    /// Refreshes the per-backend archive totals from the routers' logs.
    /// The monitor calls this after every Log stage; values are absolute,
    /// so repeated refreshes never double-count.
    pub fn record_archives(&mut self, state: &[RouterState]) {
        let mut agg: Vec<ArchiveMetrics> = Vec::new();
        for st in state {
            if st.evicted {
                continue;
            }
            let stats = st.log.archive_stats();
            let kind = st.log.backend_kind();
            let m = match agg.iter_mut().find(|m| m.backend == kind) {
                Some(m) => m,
                None => {
                    agg.push(ArchiveMetrics {
                        backend: kind,
                        ..ArchiveMetrics::default()
                    });
                    agg.last_mut().expect("just pushed")
                }
            };
            m.routers += 1;
            m.records += stats.records;
            m.checkpoints += stats.checkpoints;
            m.bytes += stats.bytes;
            m.fsyncs += stats.fsyncs;
            m.pending_appends += stats.pending_appends;
            m.dict_entries += st.log.describe().dict_entries;
            // The log counts errors it observed; the backend counts
            // errors where they happened (a threaded writer's failures
            // reach the log a cycle late, if at all). Take the max so
            // neither view under-reports.
            m.write_errors += st.log.write_errors.max(stats.write_errors);
            m.fallbacks += u64::from(st.log.fell_back);
            m.queue_depth += stats.queue_depth;
            m.queue_high_water = m.queue_high_water.max(stats.queue_high_water);
            m.blocked_nanos += stats.blocked_nanos;
            m.dropped_records += stats.dropped_records;
            m.replay_errors += st.log.replay_errors();
        }
        self.archives = agg;
    }

    /// The per-backend archive totals, in first-seen backend order.
    pub fn archives(&self) -> &[ArchiveMetrics] {
        &self.archives
    }

    /// Refreshes the archive query-cache counters (absolute totals from
    /// the monitor's [`QueryCache`](crate::archive::QueryCache), so
    /// repeated refreshes never double-count).
    pub fn record_cache(&mut self, stats: CacheStats) {
        self.query_cache = stats;
    }

    /// Counters for the archive replay query cache serving concurrent
    /// readers (the daemon's `/replay` endpoint and friends).
    pub fn query_cache(&self) -> CacheStats {
        self.query_cache
    }

    /// The per-stage summary table.
    pub fn table(&self) -> Table {
        let mut table = Table::new(
            "Pipeline stages",
            vec![
                "stage",
                "invocations",
                "par_runs",
                "items",
                "wall_ms",
                "par_ms",
                "sim_latency_s",
            ],
        );
        for kind in StageKind::ALL {
            let m = self.stage(kind);
            table.push_row(vec![
                Cell::Text(kind.as_str().into()),
                Cell::Num(m.invocations as f64),
                Cell::Num(m.par_invocations as f64),
                Cell::Num(m.items as f64),
                Cell::Num(m.wall_nanos as f64 / 1e6),
                Cell::Num(m.par_wall_nanos as f64 / 1e6),
                Cell::Num(m.sim_latency.as_secs() as f64),
            ]);
        }
        table
    }
}

// ----------------------------------------------------------------------
// Per-router state
// ----------------------------------------------------------------------

/// Everything the pipeline keeps per router, indexed by the router's
/// dense id in the shared store — plain `Vec` access on the hot path
/// instead of a name-keyed map lookup per field per cycle.
#[derive(Debug)]
pub struct RouterState {
    /// Router name (the store's `routers` interner resolves ids too; kept
    /// here so state can render without a store reference).
    pub name: String,
    /// Delta archive.
    pub log: TableLog,
    /// Usage-statistics history, one entry per cycle.
    pub usage: Vec<UsageStats>,
    /// Route-statistics history, one entry per cycle.
    pub routes: Vec<RouteStats>,
    /// Route-churn history (starts at the second cycle).
    pub churn: Vec<(SimTime, RouteChurn)>,
    /// Latest snapshot, for delta analysis next cycle.
    pub prev: Option<Tables>,
    /// Long-term trend tracker.
    pub longterm: LongTermTracker,
    /// Collection health registry entry.
    pub health: RouterHealth,
    /// Route-count spike detector.
    pub detector: SpikeDetector,
    /// Streaming statistics accumulators, advanced by each cycle's delta
    /// — the O(churn) replacement for per-cycle full-snapshot passes.
    pub stream: IncrementalStats,
    /// Running `(sum_bps, samples)` per `(group, source)` pair, for the
    /// Pair table's average-bandwidth column. Keyed by address rather
    /// than interned id so the enrich fan-out never touches the shared
    /// (serial) interner.
    pub avg_bw: FxHashMap<(GroupAddr, Ip), (u64, u64)>,
    /// Archive size after each cycle, `(cycle time, stored bytes)` — the
    /// growth curve the HTML report charts.
    pub archive_growth: Vec<(SimTime, u64)>,
    /// True for the tombstone left behind when a fleet rebalance moved
    /// this router's state to another shard. Interned ids are dense and
    /// never renumber, so the vacated slot stays — but every aggregation
    /// over the state vector skips it, and [`RouterState`] lookups treat
    /// it as absent.
    pub evicted: bool,
}

impl RouterState {
    /// Fresh state for a router, with its archive opened per `archive`.
    pub fn new(name: String, log_full_every: usize, archive: &ArchiveSpec) -> Self {
        let log = archive.open_log(&name, log_full_every);
        RouterState {
            name,
            log,
            usage: Vec::new(),
            routes: Vec::new(),
            churn: Vec::new(),
            prev: None,
            longterm: LongTermTracker::default(),
            health: RouterHealth::default(),
            detector: SpikeDetector::new(32, 8.0, 100.0),
            stream: IncrementalStats::default(),
            avg_bw: FxHashMap::default(),
            archive_growth: Vec::new(),
            evicted: false,
        }
    }

    /// The slot left behind by a rebalance eviction. Deliberately does
    /// NOT open an archive — the moved state carried its open log with
    /// it, and opening here would truncate the file it still writes.
    pub fn tombstone(name: String) -> Self {
        RouterState {
            name,
            log: TableLog::default(),
            usage: Vec::new(),
            routes: Vec::new(),
            churn: Vec::new(),
            prev: None,
            longterm: LongTermTracker::default(),
            health: RouterHealth::default(),
            detector: SpikeDetector::new(32, 8.0, 100.0),
            stream: IncrementalStats::default(),
            avg_bw: FxHashMap::default(),
            archive_growth: Vec::new(),
            evicted: true,
        }
    }
}

/// Whether every id is in-bounds for `len` states and distinct — the
/// precondition for handing out one exclusive state reference per cycle
/// router. Duplicates can only arise from a degenerate configuration
/// (the same router listed twice in one cycle); those cycles fall back
/// to the serial path, where aliasing is naturally sequential.
fn ids_are_distinct(len: usize, ids: impl Iterator<Item = u32>) -> bool {
    let mut seen = vec![false; len];
    for id in ids {
        match seen.get_mut(id as usize) {
            Some(s) if !*s => *s = true,
            _ => return false,
        }
    }
    true
}

/// Exclusive references to the cycle routers' states, aligned with
/// `ids`. Callers must have checked [`ids_are_distinct`] first.
fn state_refs<'a>(
    state: &'a mut [RouterState],
    ids: impl Iterator<Item = u32>,
) -> Vec<&'a mut RouterState> {
    let mut slots: Vec<Option<&'a mut RouterState>> = state.iter_mut().map(Some).collect();
    ids.map(|id| {
        slots[id as usize]
            .take()
            .expect("ids checked distinct and in bounds")
    })
    .collect()
}

/// Runs `body` once per work item against that item's router state — the
/// per-router fan-out shape shared by the Enrich and Analyse stages.
/// When `parallel` is set and every item maps to a distinct state slot,
/// the bodies run concurrently on the thread pool (each state is visited
/// by exactly one worker, sharded behind its interned id); otherwise
/// they run serially. Either way results come back in item order and
/// every state mutation is identical, so the two paths are
/// byte-equivalent.
fn run_sharded<W, R>(
    parallel: bool,
    state: &mut [RouterState],
    work: &mut [W],
    id_of: impl Fn(&W) -> u32,
    body: impl Fn(&mut RouterState, &mut W) -> R + Sync,
) -> Vec<R>
where
    W: Send,
    R: Send,
{
    if parallel && ids_are_distinct(state.len(), work.iter().map(&id_of)) {
        let refs = state_refs(state, work.iter().map(&id_of));
        let mut items: Vec<(&mut RouterState, &mut W)> =
            refs.into_iter().zip(work.iter_mut()).collect();
        rayon::parallel_map_mut(&mut items, |item| body(&mut *item.0, &mut *item.1))
    } else {
        work.iter_mut()
            .map(|w| body(&mut state[id_of(w) as usize], w))
            .collect()
    }
}

// ----------------------------------------------------------------------
// Stages
// ----------------------------------------------------------------------

/// Parses one router's capture batch, stamping empty snapshots (all
/// captures lost) with the router and cycle timestamp so downstream
/// consumers always see an addressed snapshot.
pub fn parse_router(router: &str, captures: &[Capture], at: SimTime) -> (Tables, ParseStats) {
    let (mut tables, stats) = process(captures);
    if tables.router.is_empty() {
        tables.router = router.to_string();
        tables.captured_at = at;
    }
    (tables, stats)
}

fn capture_items(out: &RawCycle) -> u64 {
    out.routers
        .iter()
        .map(|r| r.stats.successes + r.stats.failures)
        .sum()
}

fn capture_latency(out: &RawCycle) -> SimDuration {
    out.routers
        .iter()
        .fold(SimDuration::ZERO, |acc, r| acc + r.stats.backoff)
}

/// Capture over a single serial access session (the paper's original
/// expect-script shape: one login walks every router).
pub struct CaptureStage<'a> {
    /// The collector (retry policy, table set).
    pub collector: &'a Collector,
    /// Routers to poll, in order.
    pub routers: &'a [String],
    /// The transport.
    pub access: &'a mut dyn RouterAccess,
}

impl Stage for CaptureStage<'_> {
    type Input = SimTime;
    type Output = RawCycle;

    fn kind(&self) -> StageKind {
        StageKind::Capture
    }

    fn run(&mut self, now: SimTime) -> RawCycle {
        let routers = self
            .routers
            .iter()
            .map(|router| {
                let (captures, stats) = self.collector.collect_with(self.access, router, now);
                RouterCapture {
                    router: router.clone(),
                    captures,
                    stats,
                }
            })
            .collect();
        RawCycle { at: now, routers }
    }

    fn items(&self, out: &RawCycle) -> u64 {
        capture_items(out)
    }

    fn sim_latency(&self, out: &RawCycle) -> SimDuration {
        capture_latency(out)
    }
}

/// Capture fanned across the rayon pool, one throwaway session per router
/// — the paper's planned "collect data from multiple routers
/// concurrently". Produces the same [`RawCycle`] as [`CaptureStage`] over
/// the same access and timestamps.
pub struct ParallelCaptureStage<'a, P> {
    /// The collector (retry policy, table set).
    pub collector: &'a Collector,
    /// Routers to poll, in order.
    pub routers: &'a [String],
    /// The shared transport; each router borrows a session.
    pub access: &'a P,
}

impl<P: ParallelAccess> Stage for ParallelCaptureStage<'_, P> {
    type Input = SimTime;
    type Output = RawCycle;

    fn kind(&self) -> StageKind {
        StageKind::Capture
    }

    fn run(&mut self, now: SimTime) -> RawCycle {
        use rayon::prelude::*;
        let collector = self.collector;
        let access = self.access;
        let routers = self
            .routers
            .par_iter()
            .map(|router| {
                let mut session = SessionAdapter(access);
                let (captures, stats) = collector.collect_with(&mut session, router, now);
                RouterCapture {
                    router: router.clone(),
                    captures,
                    stats,
                }
            })
            .collect();
        RawCycle { at: now, routers }
    }

    fn items(&self, out: &RawCycle) -> u64 {
        capture_items(out)
    }

    fn sim_latency(&self, out: &RawCycle) -> SimDuration {
        capture_latency(out)
    }

    fn parallel(&self) -> bool {
        true
    }
}

/// Text to table snapshots. Pure per router, so the parallel monitor path
/// fans it across the rayon pool with identical output.
pub struct ParseStage {
    /// Whether to parse routers on the rayon pool.
    pub parallel: bool,
}

impl Stage for ParseStage {
    type Input = RawCycle;
    type Output = ParsedCycle;

    fn kind(&self) -> StageKind {
        StageKind::Parse
    }

    fn run(&mut self, raw: RawCycle) -> ParsedCycle {
        let at = raw.at;
        let parse_one = |rc: &RouterCapture| {
            let (tables, parse) = parse_router(&rc.router, &rc.captures, at);
            ParsedRouter {
                router: rc.router.clone(),
                tables,
                parse,
                stats: rc.stats,
            }
        };
        let routers = if self.parallel {
            use rayon::prelude::*;
            raw.routers.par_iter().map(parse_one).collect()
        } else {
            raw.routers.iter().map(parse_one).collect()
        };
        ParsedCycle { at, routers }
    }

    fn items(&self, out: &ParsedCycle) -> u64 {
        out.routers
            .iter()
            .map(|r| {
                (r.parse.parsed + r.parse.malformed + r.parse.skipped + r.parse.rejected_mixed)
                    as u64
            })
            .sum()
    }

    fn parallel(&self) -> bool {
        self.parallel
    }
}

/// One router's enrichment body: folds per-pair running bandwidth
/// averages into the router's state and overlays externally learned
/// session names. Touches only this router's state, so the stage can
/// fan bodies out per router.
fn enrich_router(st: &mut RouterState, tables: &mut Tables, names: &BTreeMap<GroupAddr, String>) {
    for ((g, s), pair) in tables.pairs.iter_mut() {
        let e = st.avg_bw.entry((*g, *s)).or_insert((0, 0));
        e.0 += pair.current_bw.bps();
        e.1 += 1;
        pair.avg_bw = BitRate(e.0 / e.1);
    }
    for (g, s) in tables.sessions.iter_mut() {
        if let Some(name) = names.get(g) {
            s.name = Some(name.clone());
        }
    }
}

/// Stateful enrichment: interns the router, records collection health,
/// folds per-pair running bandwidth averages and overlays externally
/// learned session names. Interning and state creation are a short
/// serial prologue; the per-router fold fans out.
///
/// The prologue is also where dynamic membership lives. A router whose
/// batch produced nothing usable (no success, no salvaged partial) is a
/// **missed** router: its health is recorded — that's how staleness
/// accrues — but it is dropped from the cycle's work, so no phantom
/// empty snapshot is enriched, archived or pushed into its statistics
/// series. A router missed [`EnrichStage::retire_after`] cycles in a row
/// is retired and its archive sealed; the first usable batch afterwards
/// rejoins it, reopening the archive at the next interner epoch.
pub struct EnrichStage<'a> {
    /// The shared interning store.
    pub store: &'a mut TableStore,
    /// Per-router state, indexed by interned router id.
    pub state: &'a mut Vec<RouterState>,
    /// Session names learned from an external directory (SAP/sdr).
    pub session_names: &'a BTreeMap<GroupAddr, String>,
    /// Delta log configuration for freshly seen routers.
    pub log_full_every: usize,
    /// Archive backend selection for freshly seen routers.
    pub archive: &'a ArchiveSpec,
    /// Consecutive missed cycles after which a router is retired and its
    /// archive sealed.
    pub retire_after: u64,
    /// Whether to fan the per-router bodies across the thread pool.
    pub parallel: bool,
}

impl Stage for EnrichStage<'_> {
    type Input = ParsedCycle;
    type Output = EnrichedCycle;

    fn kind(&self) -> StageKind {
        StageKind::Enrich
    }

    fn run(&mut self, parsed: ParsedCycle) -> EnrichedCycle {
        let at = parsed.at;
        // Serial prologue: the router interner and the state vector are
        // shared across routers, so ids and fresh state slots are
        // assigned in configuration order before any fan-out.
        let mut work: Vec<(u32, Tables)> = Vec::with_capacity(parsed.routers.len());
        for pr in parsed.routers {
            let ParsedRouter {
                router,
                tables,
                stats,
                ..
            } = pr;
            let id = self.store.routers.intern_str(&router);
            if id as usize == self.state.len() {
                self.state
                    .push(RouterState::new(router, self.log_full_every, self.archive));
            }
            let st = &mut self.state[id as usize];
            let missed = stats.successes + stats.salvaged == 0;
            st.health.record(&stats, at);
            if missed {
                if !st.health.retired && st.health.missed_cycles >= self.retire_after.max(1) {
                    st.health.retired = true;
                    st.log.seal();
                }
                // Nothing usable came back: record the miss in health
                // (above) but keep the router out of this cycle's work —
                // an absent router must not produce phantom snapshots,
                // archive records or zero statistics samples.
                continue;
            }
            if st.health.retired {
                st.health.retired = false;
                st.health.rejoins += 1;
                let sealed = std::mem::take(&mut st.log);
                st.log = self
                    .archive
                    .rejoin_log(&st.name, self.log_full_every, sealed);
            }
            work.push((id, tables));
        }
        let names = self.session_names;
        let routers = run_sharded(
            self.parallel,
            self.state,
            &mut work,
            |w| w.0,
            |st, (id, tables)| {
                enrich_router(st, tables, names);
                EnrichedRouter {
                    id: *id,
                    tables: std::mem::take(tables),
                }
            },
        );
        EnrichedCycle { at, routers }
    }

    fn items(&self, out: &EnrichedCycle) -> u64 {
        out.routers.len() as u64
    }

    fn parallel(&self) -> bool {
        self.parallel
    }
}

/// The post-append tail of one router's Log body: growth curve,
/// long-term trackers and the persistence-degradation health flag.
fn finish_log(st: &mut RouterState, at: SimTime, tables: &Tables) {
    // Chart what's actually on disk (frame + header bytes), not the
    // logger's JSON accounting — for v2 archives the two diverge, and
    // the growth curve should reflect real storage cost. Memory
    // backends report the same number either way.
    st.archive_growth.push((at, st.log.archive_stats().bytes));
    st.longterm.observe(tables);
    // Surface silent archive degradation (memory fallback, failed
    // appends, shed records, unreadable replays) where operators look:
    // the health registry.
    let stats = st.log.archive_stats();
    st.health.archive_degraded = st.log.fell_back
        || st.log.write_errors > 0
        || stats.write_errors > 0
        || stats.dropped_records > 0
        || st.log.replay_errors() > 0;
}

/// Archival: appends each snapshot to its router's delta log (before any
/// analysis, so archives store exactly what was observed) and feeds the
/// long-term trackers. The computed delta rides along on the output for
/// the Analyse stage to fold.
pub struct LogStage<'a> {
    /// The shared interning store (serial-path delta diffing runs
    /// through it).
    pub store: &'a mut TableStore,
    /// Per-router state, indexed by interned router id.
    pub state: &'a mut Vec<RouterState>,
    /// Whether to fan the per-router bodies across the thread pool.
    pub parallel: bool,
}

impl Stage for LogStage<'_> {
    type Input = EnrichedCycle;
    type Output = LoggedCycle;

    fn kind(&self) -> StageKind {
        StageKind::Log
    }

    fn run(&mut self, cycle: EnrichedCycle) -> LoggedCycle {
        let at = cycle.at;
        let mut work = cycle.routers;
        let fan_out =
            self.parallel && ids_are_distinct(self.state.len(), work.iter().map(|er| er.id));
        let routers: Vec<LoggedRouter> = if fan_out {
            let refs = state_refs(self.state, work.iter().map(|er| er.id));
            let mut items: Vec<(&mut RouterState, &mut EnrichedRouter)> =
                refs.into_iter().zip(work.iter_mut()).collect();
            rayon::parallel_map_mut(&mut items, |item| {
                let (st, er) = (&mut *item.0, &mut *item.1);
                // Each log diffs through its own scratch interner here:
                // the shared store is a serial resource, and deltas are
                // store-independent (property-tested), so the archived
                // bytes are identical to the serial path's.
                let delta = st.log.append(&er.tables);
                finish_log(st, at, &er.tables);
                LoggedRouter {
                    id: er.id,
                    tables: std::mem::take(&mut er.tables),
                    delta,
                }
            })
        } else {
            work.into_iter()
                .map(|er| {
                    let st = &mut self.state[er.id as usize];
                    let delta = st.log.append_with(self.store, &er.tables);
                    finish_log(st, at, &er.tables);
                    LoggedRouter {
                        id: er.id,
                        tables: er.tables,
                        delta,
                    }
                })
                .collect()
        };
        LoggedCycle { at, routers }
    }

    fn items(&self, out: &LoggedCycle) -> u64 {
        out.routers.len() as u64
    }

    fn parallel(&self) -> bool {
        self.parallel
    }
}

/// One router's analysis body: advance the streaming accumulators (fold
/// the logged delta, or reseed from the full snapshot on first sight),
/// assemble this cycle's statistics and run the single-router anomaly
/// detectors. Touches only this router's state, so the stage fans bodies
/// out per router.
fn analyse_router(
    st: &mut RouterState,
    lr: &LoggedRouter,
    now: SimTime,
    threshold: BitRate,
    injection_min_new: usize,
) -> (String, UsageStats, RouteStats, Vec<Anomaly>) {
    // O(delta) path: fold the delta the Log stage already computed. A
    // router's first cycle (or a delta-less append, e.g. an archive
    // reopened from disk) reseeds from the full snapshot — the O(table)
    // fallback, after which folding resumes.
    let changes = match (&lr.delta, st.stream.is_seeded()) {
        (Some(d), true) => Some(st.stream.fold(d)),
        _ => {
            st.stream.reseed(&lr.tables, threshold);
            None
        }
    };
    let usage = st.stream.usage();
    let routes = st.stream.route_stats();
    let mut anomalies = Vec::new();
    if let Some(kind) = st.detector.observe(routes.dvmrp_reachable as f64) {
        anomalies.push(Anomaly {
            at: now,
            router: st.name.clone(),
            peer: None,
            kind,
        });
    }
    if let Some(prev) = &st.prev {
        let (churn, injection) = match &changes {
            Some(c) => (c.churn, c.injection(injection_min_new)),
            None => (
                RouteChurn::between(prev, &lr.tables),
                detect_injection(prev, &lr.tables, injection_min_new),
            ),
        };
        st.churn.push((now, churn));
        if let Some(kind) = injection {
            anomalies.push(Anomaly {
                at: now,
                router: st.name.clone(),
                peer: None,
                kind,
            });
        }
    }
    st.usage.push(usage.clone());
    st.routes.push(routes.clone());
    (st.name.clone(), usage, routes, anomalies)
}

/// Analysis: per-router statistics and anomaly detectors (fanned out per
/// router), then cross-router consistency checks as a serial barrier
/// after the join, producing the cycle report. Consumes the snapshots
/// into each router's `prev` slot.
pub struct AnalyseStage<'a> {
    /// Per-router state, indexed by interned router id.
    pub state: &'a mut Vec<RouterState>,
    /// Sender classification threshold.
    pub threshold: BitRate,
    /// Route-injection detector: minimum new routes in one cycle.
    pub injection_min_new: usize,
    /// Cross-router consistency monitor.
    pub inconsistency: &'a mut InconsistencyMonitor,
    /// Whether to run the cross-router consistency sweep. A fleet shard
    /// disables it — the fleet tier sweeps globally so cross-shard pairs
    /// are not missed (and within-shard pairs not double-reported).
    pub cross_router: bool,
    /// Whether to fan the per-router bodies across the thread pool.
    pub parallel: bool,
}

impl Stage for AnalyseStage<'_> {
    type Input = LoggedCycle;
    type Output = CycleReport;

    fn kind(&self) -> StageKind {
        StageKind::Analyse
    }

    fn run(&mut self, cycle: LoggedCycle) -> CycleReport {
        let now = cycle.at;
        let threshold = self.threshold;
        let injection_min_new = self.injection_min_new;
        let mut work = cycle.routers;
        let per = run_sharded(
            self.parallel,
            self.state,
            &mut work,
            |lr| lr.id,
            |st, lr| analyse_router(st, lr, now, threshold, injection_min_new),
        );
        let mut report = CycleReport {
            at: now,
            per_router: Vec::with_capacity(per.len()),
            anomalies: Vec::new(),
        };
        for (name, usage, routes, anomalies) in per {
            report.anomalies.extend(anomalies);
            report.per_router.push((name, usage, routes));
        }
        // Cross-router consistency — a serial barrier after the join,
        // since the sweep needs every snapshot at once. The group-by-key
        // join compares each pair of *distinct* reachable-set views once
        // (property-tested identical to the O(n²) pairwise reference).
        // Both routers are named: the anomaly attributes to the first and
        // records the second as the peer, instead of blaming whichever
        // router happened to come first in configuration order without
        // saying who it diverged from.
        if self.cross_router {
            let views: Vec<&Tables> = work.iter().map(|lr| &lr.tables).collect();
            report
                .anomalies
                .extend(self.inconsistency.sweep(&views, now));
        }
        // The snapshots become next cycle's baselines — moved, not cloned.
        for lr in work {
            self.state[lr.id as usize].prev = Some(lr.tables);
        }
        report
    }

    fn items(&self, out: &CycleReport) -> u64 {
        out.per_router.len() as u64
    }

    fn parallel(&self) -> bool {
        self.parallel
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_kinds_are_dense_and_ordered() {
        for (i, kind) in StageKind::ALL.iter().enumerate() {
            assert_eq!(*kind as usize, i);
            assert!(!kind.as_str().is_empty());
        }
    }

    #[test]
    fn metrics_run_accounts_every_channel() {
        struct Doubler;
        impl Stage for Doubler {
            type Input = u64;
            type Output = u64;
            fn kind(&self) -> StageKind {
                StageKind::Parse
            }
            fn run(&mut self, input: u64) -> u64 {
                input * 2
            }
            fn items(&self, out: &u64) -> u64 {
                *out
            }
            fn sim_latency(&self, _out: &u64) -> SimDuration {
                SimDuration::secs(3)
            }
        }
        struct ParDoubler;
        impl Stage for ParDoubler {
            type Input = u64;
            type Output = u64;
            fn kind(&self) -> StageKind {
                StageKind::Parse
            }
            fn run(&mut self, input: u64) -> u64 {
                input * 2
            }
            fn items(&self, out: &u64) -> u64 {
                *out
            }
            fn parallel(&self) -> bool {
                true
            }
        }
        let mut metrics = PipelineMetrics::default();
        assert_eq!(metrics.run(&mut Doubler, 5), 10);
        assert_eq!(metrics.run(&mut Doubler, 1), 2);
        let m = metrics.stage(StageKind::Parse);
        assert_eq!(m.invocations, 2);
        assert_eq!(m.items, 12);
        assert!(m.wall_nanos >= 2, "at least one nano per invocation");
        assert_eq!(m.sim_latency, SimDuration::secs(6));
        // Serial stages leave the parallel counters untouched…
        assert_eq!(m.par_invocations, 0);
        assert_eq!(m.par_wall_nanos, 0);
        assert_eq!(*metrics.stage(StageKind::Capture), StageMetrics::default());
        // …while a fanned-out run books its wall time in both channels.
        assert_eq!(metrics.run(&mut ParDoubler, 3), 6);
        let m = metrics.stage(StageKind::Parse);
        assert_eq!(m.invocations, 3);
        assert_eq!(m.par_invocations, 1);
        assert!(m.par_wall_nanos >= 1 && m.par_wall_nanos <= m.wall_nanos);
        // And the table renders one row per stage.
        assert_eq!(metrics.table().rows.len(), StageKind::ALL.len());
    }

    #[test]
    fn parse_router_stamps_empty_snapshots() {
        let at = SimTime::from_ymd(1999, 2, 1);
        let (tables, stats) = parse_router("ghost", &[], at);
        assert_eq!(tables.router, "ghost");
        assert_eq!(tables.captured_at, at);
        assert_eq!(stats, ParseStats::default());
    }
}
