//! The staged monitoring pipeline.
//!
//! Figure 1's data path, made explicit: each cycle flows through five
//! typed stages —
//!
//! ```text
//! Capture ─► Parse ─► Enrich ─► Log ─► Analyse
//! RawCycle   ParsedCycle  EnrichedCycle  LoggedCycle  CycleReport
//! ```
//!
//! A [`Stage`] consumes one artifact type and produces the next; the
//! [`Monitor`](crate::monitor::Monitor) is a thin driver that threads a
//! cycle through the stages via [`PipelineMetrics::run`], which accounts
//! per-stage invocations, item counts, wall-clock time and simulated-time
//! latency. The stages share one [`TableStore`] so router names, hosts,
//! groups and route keys are interned once and handled as dense `u32` ids
//! everywhere downstream.

use std::collections::{BTreeMap, HashMap};

use mantra_net::{BitRate, GroupAddr, SimDuration, SimTime};

use crate::aggregate::ParallelAccess;
use crate::anomaly::{detect_injection, Anomaly, InconsistencyMonitor, SpikeDetector};
use crate::archive::ArchiveSpec;
use crate::collector::{Capture, CollectStats, Collector, RouterAccess};
use crate::logger::TableLog;
use crate::longterm::LongTermTracker;
use crate::monitor::{CycleReport, RouterHealth, SessionAdapter};
use crate::output::{Cell, Table};
use crate::processor::{process, ParseStats};
use crate::stats::{RouteChurn, RouteStats, UsageStats};
use crate::store::TableStore;
use crate::tables::Tables;

// ----------------------------------------------------------------------
// Artifacts
// ----------------------------------------------------------------------

/// One router's raw capture batch for a cycle.
#[derive(Clone, Debug)]
pub struct RouterCapture {
    /// Router polled.
    pub router: String,
    /// Pre-processed captures (one per table kind that survived).
    pub captures: Vec<Capture>,
    /// Collection accounting for this router's batch.
    pub stats: CollectStats,
}

/// Capture-stage output: every router's raw batch for one cycle.
#[derive(Clone, Debug)]
pub struct RawCycle {
    /// Cycle timestamp.
    pub at: SimTime,
    /// Per-router batches, in configuration order.
    pub routers: Vec<RouterCapture>,
}

/// One router's parsed snapshot.
#[derive(Clone, Debug)]
pub struct ParsedRouter {
    /// Router polled.
    pub router: String,
    /// The parsed (not yet enriched) table snapshot.
    pub tables: Tables,
    /// Parse accounting for the batch.
    pub parse: ParseStats,
    /// Collection accounting, carried through for the health registry.
    pub stats: CollectStats,
}

/// Parse-stage output.
#[derive(Clone, Debug)]
pub struct ParsedCycle {
    /// Cycle timestamp.
    pub at: SimTime,
    /// Per-router snapshots, in configuration order.
    pub routers: Vec<ParsedRouter>,
}

/// One router's enriched snapshot, addressed by its interned id.
#[derive(Clone, Debug)]
pub struct EnrichedRouter {
    /// Dense router id in the shared [`TableStore`].
    pub id: u32,
    /// The enriched snapshot (running averages, session names).
    pub tables: Tables,
}

/// Enrich-stage output.
#[derive(Clone, Debug)]
pub struct EnrichedCycle {
    /// Cycle timestamp.
    pub at: SimTime,
    /// Per-router snapshots, in configuration order.
    pub routers: Vec<EnrichedRouter>,
}

/// Log-stage output: the enriched snapshots, now archived.
#[derive(Clone, Debug)]
pub struct LoggedCycle {
    /// Cycle timestamp.
    pub at: SimTime,
    /// Per-router snapshots, in configuration order.
    pub routers: Vec<EnrichedRouter>,
}

// ----------------------------------------------------------------------
// Stage abstraction and metrics
// ----------------------------------------------------------------------

/// The five pipeline stages, in data-path order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StageKind {
    /// Log in, dump tables, pre-process.
    Capture = 0,
    /// Text to table snapshots.
    Parse = 1,
    /// Running averages, session names, health accounting.
    Enrich = 2,
    /// Delta archive and long-term trackers.
    Log = 3,
    /// Statistics, anomaly detectors, the cycle report.
    Analyse = 4,
}

impl StageKind {
    /// All stages, in pipeline order.
    pub const ALL: [StageKind; 5] = [
        StageKind::Capture,
        StageKind::Parse,
        StageKind::Enrich,
        StageKind::Log,
        StageKind::Analyse,
    ];

    /// Display name.
    pub fn as_str(self) -> &'static str {
        match self {
            StageKind::Capture => "capture",
            StageKind::Parse => "parse",
            StageKind::Enrich => "enrich",
            StageKind::Log => "log",
            StageKind::Analyse => "analyse",
        }
    }
}

/// One pipeline step: consumes its input artifact, produces the next.
pub trait Stage {
    /// Artifact consumed.
    type Input;
    /// Artifact produced.
    type Output;

    /// Which of the five stages this is.
    fn kind(&self) -> StageKind;

    /// Runs the stage.
    fn run(&mut self, input: Self::Input) -> Self::Output;

    /// How many items the run handled, for throughput accounting. What an
    /// "item" is depends on the stage: captured tables for Capture, parse
    /// records for Parse, router snapshots downstream.
    fn items(&self, out: &Self::Output) -> u64;

    /// Simulated-time latency the run added (e.g. retry backoff).
    fn sim_latency(&self, _out: &Self::Output) -> SimDuration {
        SimDuration::ZERO
    }
}

/// Accumulated accounting for one stage.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageMetrics {
    /// Times the stage ran (one per cycle under the monitor).
    pub invocations: u64,
    /// Items handled across all runs.
    pub items: u64,
    /// Wall-clock time spent, in nanoseconds. Always at least one per
    /// invocation, so "this stage ran" is visible even below timer
    /// resolution.
    pub wall_nanos: u64,
    /// Simulated-time latency accumulated (retry backoff, for Capture).
    pub sim_latency: SimDuration,
}

/// Archive accounting aggregated per backend kind, refreshed after each
/// Log stage from the routers' logs (absolute totals, not increments).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ArchiveMetrics {
    /// Backend name ("memory", "file").
    pub backend: &'static str,
    /// Routers archiving through this backend.
    pub routers: u64,
    /// Records archived.
    pub records: u64,
    /// Full-snapshot checkpoints among them.
    pub checkpoints: u64,
    /// Archived bytes (frames for file archives, payloads for memory).
    pub bytes: u64,
    /// `fsync` calls issued.
    pub fsyncs: u64,
    /// Appends the backend failed to persist.
    pub write_errors: u64,
}

/// The per-stage metrics registry: one [`StageMetrics`] per [`StageKind`],
/// plus per-backend archive totals.
#[derive(Clone, Debug, Default)]
pub struct PipelineMetrics {
    stages: [StageMetrics; 5],
    archives: Vec<ArchiveMetrics>,
}

impl PipelineMetrics {
    /// Runs `stage` on `input`, accounting the run under its kind.
    pub fn run<S: Stage>(&mut self, stage: &mut S, input: S::Input) -> S::Output {
        let t = std::time::Instant::now();
        let out = stage.run(input);
        let m = &mut self.stages[stage.kind() as usize];
        m.invocations += 1;
        m.items += stage.items(&out);
        m.wall_nanos += (t.elapsed().as_nanos() as u64).max(1);
        m.sim_latency += stage.sim_latency(&out);
        out
    }

    /// The accumulated metrics of one stage.
    pub fn stage(&self, kind: StageKind) -> &StageMetrics {
        &self.stages[kind as usize]
    }

    /// Refreshes the per-backend archive totals from the routers' logs.
    /// The monitor calls this after every Log stage; values are absolute,
    /// so repeated refreshes never double-count.
    pub fn record_archives(&mut self, state: &[RouterState]) {
        let mut agg: Vec<ArchiveMetrics> = Vec::new();
        for st in state {
            let stats = st.log.archive_stats();
            let kind = st.log.backend_kind();
            let m = match agg.iter_mut().find(|m| m.backend == kind) {
                Some(m) => m,
                None => {
                    agg.push(ArchiveMetrics {
                        backend: kind,
                        ..ArchiveMetrics::default()
                    });
                    agg.last_mut().expect("just pushed")
                }
            };
            m.routers += 1;
            m.records += stats.records;
            m.checkpoints += stats.checkpoints;
            m.bytes += stats.bytes;
            m.fsyncs += stats.fsyncs;
            m.write_errors += st.log.write_errors;
        }
        self.archives = agg;
    }

    /// The per-backend archive totals, in first-seen backend order.
    pub fn archives(&self) -> &[ArchiveMetrics] {
        &self.archives
    }

    /// The per-stage summary table.
    pub fn table(&self) -> Table {
        let mut table = Table::new(
            "Pipeline stages",
            vec!["stage", "invocations", "items", "wall_ms", "sim_latency_s"],
        );
        for kind in StageKind::ALL {
            let m = self.stage(kind);
            table.push_row(vec![
                Cell::Text(kind.as_str().into()),
                Cell::Num(m.invocations as f64),
                Cell::Num(m.items as f64),
                Cell::Num(m.wall_nanos as f64 / 1e6),
                Cell::Num(m.sim_latency.as_secs() as f64),
            ]);
        }
        table
    }
}

// ----------------------------------------------------------------------
// Per-router state
// ----------------------------------------------------------------------

/// Everything the pipeline keeps per router, indexed by the router's
/// dense id in the shared store — plain `Vec` access on the hot path
/// instead of a name-keyed map lookup per field per cycle.
#[derive(Debug)]
pub struct RouterState {
    /// Router name (the store's `routers` interner resolves ids too; kept
    /// here so state can render without a store reference).
    pub name: String,
    /// Delta archive.
    pub log: TableLog,
    /// Usage-statistics history, one entry per cycle.
    pub usage: Vec<UsageStats>,
    /// Route-statistics history, one entry per cycle.
    pub routes: Vec<RouteStats>,
    /// Route-churn history (starts at the second cycle).
    pub churn: Vec<(SimTime, RouteChurn)>,
    /// Latest snapshot, for delta analysis next cycle.
    pub prev: Option<Tables>,
    /// Long-term trend tracker.
    pub longterm: LongTermTracker,
    /// Collection health registry entry.
    pub health: RouterHealth,
    /// Route-count spike detector.
    pub detector: SpikeDetector,
    /// Running `(sum_bps, samples)` per interned `(group, source)` pair,
    /// for the Pair table's average-bandwidth column.
    pub avg_bw: HashMap<u32, (u64, u64)>,
    /// Archive size after each cycle, `(cycle time, stored bytes)` — the
    /// growth curve the HTML report charts.
    pub archive_growth: Vec<(SimTime, u64)>,
}

impl RouterState {
    /// Fresh state for a router, with its archive opened per `archive`.
    pub fn new(name: String, log_full_every: usize, archive: &ArchiveSpec) -> Self {
        let log = archive.open_log(&name, log_full_every);
        RouterState {
            name,
            log,
            usage: Vec::new(),
            routes: Vec::new(),
            churn: Vec::new(),
            prev: None,
            longterm: LongTermTracker::default(),
            health: RouterHealth::default(),
            detector: SpikeDetector::new(32, 8.0, 100.0),
            avg_bw: HashMap::new(),
            archive_growth: Vec::new(),
        }
    }
}

// ----------------------------------------------------------------------
// Stages
// ----------------------------------------------------------------------

/// Parses one router's capture batch, stamping empty snapshots (all
/// captures lost) with the router and cycle timestamp so downstream
/// consumers always see an addressed snapshot.
pub fn parse_router(router: &str, captures: &[Capture], at: SimTime) -> (Tables, ParseStats) {
    let (mut tables, stats) = process(captures);
    if tables.router.is_empty() {
        tables.router = router.to_string();
        tables.captured_at = at;
    }
    (tables, stats)
}

fn capture_items(out: &RawCycle) -> u64 {
    out.routers
        .iter()
        .map(|r| r.stats.successes + r.stats.failures)
        .sum()
}

fn capture_latency(out: &RawCycle) -> SimDuration {
    out.routers
        .iter()
        .fold(SimDuration::ZERO, |acc, r| acc + r.stats.backoff)
}

/// Capture over a single serial access session (the paper's original
/// expect-script shape: one login walks every router).
pub struct CaptureStage<'a> {
    /// The collector (retry policy, table set).
    pub collector: &'a Collector,
    /// Routers to poll, in order.
    pub routers: &'a [String],
    /// The transport.
    pub access: &'a mut dyn RouterAccess,
}

impl Stage for CaptureStage<'_> {
    type Input = SimTime;
    type Output = RawCycle;

    fn kind(&self) -> StageKind {
        StageKind::Capture
    }

    fn run(&mut self, now: SimTime) -> RawCycle {
        let routers = self
            .routers
            .iter()
            .map(|router| {
                let (captures, stats) = self.collector.collect_with(self.access, router, now);
                RouterCapture {
                    router: router.clone(),
                    captures,
                    stats,
                }
            })
            .collect();
        RawCycle { at: now, routers }
    }

    fn items(&self, out: &RawCycle) -> u64 {
        capture_items(out)
    }

    fn sim_latency(&self, out: &RawCycle) -> SimDuration {
        capture_latency(out)
    }
}

/// Capture fanned across the rayon pool, one throwaway session per router
/// — the paper's planned "collect data from multiple routers
/// concurrently". Produces the same [`RawCycle`] as [`CaptureStage`] over
/// the same access and timestamps.
pub struct ParallelCaptureStage<'a, P> {
    /// The collector (retry policy, table set).
    pub collector: &'a Collector,
    /// Routers to poll, in order.
    pub routers: &'a [String],
    /// The shared transport; each router borrows a session.
    pub access: &'a P,
}

impl<P: ParallelAccess> Stage for ParallelCaptureStage<'_, P> {
    type Input = SimTime;
    type Output = RawCycle;

    fn kind(&self) -> StageKind {
        StageKind::Capture
    }

    fn run(&mut self, now: SimTime) -> RawCycle {
        use rayon::prelude::*;
        let collector = self.collector;
        let access = self.access;
        let routers = self
            .routers
            .par_iter()
            .map(|router| {
                let mut session = SessionAdapter(access);
                let (captures, stats) = collector.collect_with(&mut session, router, now);
                RouterCapture {
                    router: router.clone(),
                    captures,
                    stats,
                }
            })
            .collect();
        RawCycle { at: now, routers }
    }

    fn items(&self, out: &RawCycle) -> u64 {
        capture_items(out)
    }

    fn sim_latency(&self, out: &RawCycle) -> SimDuration {
        capture_latency(out)
    }
}

/// Text to table snapshots. Pure per router, so the parallel monitor path
/// fans it across the rayon pool with identical output.
pub struct ParseStage {
    /// Whether to parse routers on the rayon pool.
    pub parallel: bool,
}

impl Stage for ParseStage {
    type Input = RawCycle;
    type Output = ParsedCycle;

    fn kind(&self) -> StageKind {
        StageKind::Parse
    }

    fn run(&mut self, raw: RawCycle) -> ParsedCycle {
        let at = raw.at;
        let parse_one = |rc: &RouterCapture| {
            let (tables, parse) = parse_router(&rc.router, &rc.captures, at);
            ParsedRouter {
                router: rc.router.clone(),
                tables,
                parse,
                stats: rc.stats,
            }
        };
        let routers = if self.parallel {
            use rayon::prelude::*;
            raw.routers.par_iter().map(parse_one).collect()
        } else {
            raw.routers.iter().map(parse_one).collect()
        };
        ParsedCycle { at, routers }
    }

    fn items(&self, out: &ParsedCycle) -> u64 {
        out.routers
            .iter()
            .map(|r| {
                (r.parse.parsed + r.parse.malformed + r.parse.skipped + r.parse.rejected_mixed)
                    as u64
            })
            .sum()
    }
}

/// Stateful enrichment: interns the router, records collection health,
/// folds per-pair running bandwidth averages and overlays externally
/// learned session names.
pub struct EnrichStage<'a> {
    /// The shared interning store.
    pub store: &'a mut TableStore,
    /// Per-router state, indexed by interned router id.
    pub state: &'a mut Vec<RouterState>,
    /// Session names learned from an external directory (SAP/sdr).
    pub session_names: &'a BTreeMap<GroupAddr, String>,
    /// Delta log configuration for freshly seen routers.
    pub log_full_every: usize,
    /// Archive backend selection for freshly seen routers.
    pub archive: &'a ArchiveSpec,
}

impl Stage for EnrichStage<'_> {
    type Input = ParsedCycle;
    type Output = EnrichedCycle;

    fn kind(&self) -> StageKind {
        StageKind::Enrich
    }

    fn run(&mut self, parsed: ParsedCycle) -> EnrichedCycle {
        let at = parsed.at;
        let routers = parsed
            .routers
            .into_iter()
            .map(|pr| {
                let ParsedRouter {
                    router,
                    mut tables,
                    stats,
                    ..
                } = pr;
                let id = self.store.routers.intern(&router);
                if id as usize == self.state.len() {
                    self.state
                        .push(RouterState::new(router, self.log_full_every, self.archive));
                }
                let st = &mut self.state[id as usize];
                st.health.record(&stats, at);
                for ((g, s), pair) in tables.pairs.iter_mut() {
                    let pid = self.store.pairs.intern(&(*g, *s));
                    let e = st.avg_bw.entry(pid).or_insert((0, 0));
                    e.0 += pair.current_bw.bps();
                    e.1 += 1;
                    pair.avg_bw = BitRate(e.0 / e.1);
                }
                for (g, s) in tables.sessions.iter_mut() {
                    if let Some(name) = self.session_names.get(g) {
                        s.name = Some(name.clone());
                    }
                }
                EnrichedRouter { id, tables }
            })
            .collect();
        EnrichedCycle { at, routers }
    }

    fn items(&self, out: &EnrichedCycle) -> u64 {
        out.routers.len() as u64
    }
}

/// Archival: appends each snapshot to its router's delta log (before any
/// analysis, so archives store exactly what was observed) and feeds the
/// long-term trackers.
pub struct LogStage<'a> {
    /// The shared interning store (delta diffing runs through it).
    pub store: &'a mut TableStore,
    /// Per-router state, indexed by interned router id.
    pub state: &'a mut Vec<RouterState>,
}

impl Stage for LogStage<'_> {
    type Input = EnrichedCycle;
    type Output = LoggedCycle;

    fn kind(&self) -> StageKind {
        StageKind::Log
    }

    fn run(&mut self, cycle: EnrichedCycle) -> LoggedCycle {
        for er in &cycle.routers {
            let st = &mut self.state[er.id as usize];
            st.log.append_with(self.store, &er.tables);
            st.archive_growth
                .push((cycle.at, st.log.bytes_stored as u64));
            st.longterm.observe(&er.tables);
        }
        LoggedCycle {
            at: cycle.at,
            routers: cycle.routers,
        }
    }

    fn items(&self, out: &LoggedCycle) -> u64 {
        out.routers.len() as u64
    }
}

/// Analysis: per-router statistics and anomaly detectors in configuration
/// order, then cross-router consistency checks, producing the cycle
/// report. Consumes the snapshots into each router's `prev` slot.
pub struct AnalyseStage<'a> {
    /// The shared interning store (distinct counting runs through it).
    pub store: &'a mut TableStore,
    /// Per-router state, indexed by interned router id.
    pub state: &'a mut Vec<RouterState>,
    /// Sender classification threshold.
    pub threshold: BitRate,
    /// Route-injection detector: minimum new routes in one cycle.
    pub injection_min_new: usize,
    /// Cross-router consistency monitor.
    pub inconsistency: &'a mut InconsistencyMonitor,
}

impl Stage for AnalyseStage<'_> {
    type Input = LoggedCycle;
    type Output = CycleReport;

    fn kind(&self) -> StageKind {
        StageKind::Analyse
    }

    fn run(&mut self, cycle: LoggedCycle) -> CycleReport {
        let now = cycle.at;
        let mut report = CycleReport {
            at: now,
            per_router: Vec::new(),
            anomalies: Vec::new(),
        };
        for er in &cycle.routers {
            let usage = UsageStats::from_tables_with(self.store, &er.tables, self.threshold);
            let routes = RouteStats::from_tables(&er.tables);
            let st = &mut self.state[er.id as usize];
            if let Some(kind) = st.detector.observe(routes.dvmrp_reachable as f64) {
                report.anomalies.push(Anomaly {
                    at: now,
                    router: st.name.clone(),
                    kind,
                });
            }
            if let Some(prev) = &st.prev {
                st.churn.push((now, RouteChurn::between(prev, &er.tables)));
                if let Some(kind) = detect_injection(prev, &er.tables, self.injection_min_new) {
                    report.anomalies.push(Anomaly {
                        at: now,
                        router: st.name.clone(),
                        kind,
                    });
                }
            }
            st.usage.push(usage.clone());
            st.routes.push(routes.clone());
            report.per_router.push((st.name.clone(), usage, routes));
        }
        // Cross-router consistency, every pair once.
        for i in 0..cycle.routers.len() {
            for j in (i + 1)..cycle.routers.len() {
                if let Some((_, kind)) = self
                    .inconsistency
                    .check(&cycle.routers[i].tables, &cycle.routers[j].tables)
                {
                    report.anomalies.push(Anomaly {
                        at: now,
                        router: cycle.routers[i].tables.router.clone(),
                        kind,
                    });
                }
            }
        }
        // The snapshots become next cycle's baselines — moved, not cloned.
        for er in cycle.routers {
            self.state[er.id as usize].prev = Some(er.tables);
        }
        report
    }

    fn items(&self, out: &CycleReport) -> u64 {
        out.per_router.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_kinds_are_dense_and_ordered() {
        for (i, kind) in StageKind::ALL.iter().enumerate() {
            assert_eq!(*kind as usize, i);
            assert!(!kind.as_str().is_empty());
        }
    }

    #[test]
    fn metrics_run_accounts_every_channel() {
        struct Doubler;
        impl Stage for Doubler {
            type Input = u64;
            type Output = u64;
            fn kind(&self) -> StageKind {
                StageKind::Parse
            }
            fn run(&mut self, input: u64) -> u64 {
                input * 2
            }
            fn items(&self, out: &u64) -> u64 {
                *out
            }
            fn sim_latency(&self, _out: &u64) -> SimDuration {
                SimDuration::secs(3)
            }
        }
        let mut metrics = PipelineMetrics::default();
        assert_eq!(metrics.run(&mut Doubler, 5), 10);
        assert_eq!(metrics.run(&mut Doubler, 1), 2);
        let m = metrics.stage(StageKind::Parse);
        assert_eq!(m.invocations, 2);
        assert_eq!(m.items, 12);
        assert!(m.wall_nanos >= 2, "at least one nano per invocation");
        assert_eq!(m.sim_latency, SimDuration::secs(6));
        assert_eq!(*metrics.stage(StageKind::Capture), StageMetrics::default());
        // And the table renders one row per stage.
        assert_eq!(metrics.table().rows.len(), StageKind::ALL.len());
    }

    #[test]
    fn parse_router_stamps_empty_snapshots() {
        let at = SimTime::from_ymd(1999, 2, 1);
        let (tables, stats) = parse_router("ghost", &[], at);
        assert_eq!(tables.router, "ghost");
        assert_eq!(tables.captured_at, at);
        assert_eq!(stats, ParseStats::default());
    }
}
