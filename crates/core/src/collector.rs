//! The data collector.
//!
//! The paper's Mantra launched expect scripts at frequent intervals to log
//! into each router, dump its tables and ship the text home, then
//! pre-processed the capture (stripping login noise, pagination artifacts,
//! excess whitespace and delimiters). Here the transport is abstracted
//! behind [`RouterAccess`]; the production implementation in this
//! reproduction is [`SimAccess`], which "logs into" simulated routers and
//! returns byte-identical CLI text, and [`FlakyAccess`] wraps any access
//! with the failure modes real collection suffered (login refusals,
//! truncated captures).

use mantra_net::{RouterId, SimTime};
use mantra_router_cli::TableKind;
use mantra_sim::Simulation;

/// Why a capture failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CaptureError {
    /// Could not log in (wrong password, connection refused, router down).
    LoginFailed(String),
    /// The session died mid-dump; a partial capture may still be usable.
    Truncated {
        /// What was captured before the cut.
        partial: String,
    },
    /// The router does not expose this table.
    Unsupported,
    /// The named router is unknown to the access layer.
    UnknownRouter(String),
}

impl std::fmt::Display for CaptureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CaptureError::LoginFailed(r) => write!(f, "login failed: {r}"),
            CaptureError::Truncated { .. } => write!(f, "capture truncated"),
            CaptureError::Unsupported => write!(f, "table not supported by router"),
            CaptureError::UnknownRouter(n) => write!(f, "unknown router {n}"),
        }
    }
}

impl std::error::Error for CaptureError {}

/// Anything Mantra can collect router tables through.
pub trait RouterAccess {
    /// Captures the raw text of `table` from the named router.
    fn capture(
        &mut self,
        router: &str,
        table: TableKind,
        now: SimTime,
    ) -> Result<String, CaptureError>;
}

/// A cleaned capture ready for the table processor.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Capture {
    /// The router the capture came from.
    pub router: String,
    /// Which table was dumped.
    pub kind: TableKind,
    /// Capture timestamp.
    pub captured_at: SimTime,
    /// Pre-processed lines: no banners, prompts, pagination, blank lines
    /// or repeated whitespace.
    pub lines: Vec<String>,
    /// Size of the raw capture, for storage accounting.
    pub raw_bytes: usize,
}

/// Pre-processes a raw capture: the paper's "removing unwanted
/// information, excess white-spaces and delimiters".
pub fn preprocess(router: &str, kind: TableKind, raw: &str, now: SimTime) -> Capture {
    let mut lines = Vec::new();
    for physical in raw.split('\n') {
        // Terminal pagination rewrites the line with carriage returns;
        // the last CR-segment is what remains on screen.
        let mut effective = "";
        for seg in physical.split('\r') {
            if seg.trim_start().starts_with("--More--") {
                continue;
            }
            if !seg.trim().is_empty() {
                effective = seg;
            }
        }
        let trimmed = effective.trim();
        if trimmed.is_empty() {
            continue;
        }
        // Telnet/session noise.
        if trimmed.starts_with("Trying ")
            || trimmed.starts_with("Connected to")
            || trimmed.starts_with("Escape character")
        {
            continue;
        }
        // Prompt lines: `name> ` or `name#command`.
        if trimmed == format!("{router}>") || trimmed.starts_with(&format!("{router}#")) {
            continue;
        }
        // Collapse internal whitespace runs.
        let collapsed = trimmed.split_whitespace().collect::<Vec<_>>().join(" ");
        lines.push(collapsed);
    }
    Capture {
        router: router.to_string(),
        kind,
        captured_at: now,
        lines,
        raw_bytes: raw.len(),
    }
}

/// The simulator-backed access: resolves router names against the
/// simulation's topology and renders the live CLI text.
pub struct SimAccess<'a> {
    sim: &'a Simulation,
}

impl<'a> SimAccess<'a> {
    /// Wraps a simulation.
    pub fn new(sim: &'a Simulation) -> Self {
        SimAccess { sim }
    }

    fn resolve(&self, name: &str) -> Option<RouterId> {
        self.sim.net.topo.router_by_name(name).map(|r| r.id)
    }
}

impl RouterAccess for SimAccess<'_> {
    fn capture(
        &mut self,
        router: &str,
        table: TableKind,
        now: SimTime,
    ) -> Result<String, CaptureError> {
        let id = self
            .resolve(router)
            .ok_or_else(|| CaptureError::UnknownRouter(router.to_string()))?;
        Ok(mantra_router_cli::render(&self.sim.net, id, table, now))
    }
}

/// Failure-injection decorator: with deterministic pseudo-randomness (keyed
/// on router, table and timestamp), captures fail to log in or come back
/// truncated.
pub struct FlakyAccess<A> {
    inner: A,
    /// Probability of a login failure per capture.
    pub login_failure_prob: f64,
    /// Probability of a truncated capture per capture.
    pub truncation_prob: f64,
    salt: u64,
}

impl<A> FlakyAccess<A> {
    /// Wraps `inner` with the given failure rates.
    pub fn new(inner: A, login_failure_prob: f64, truncation_prob: f64, salt: u64) -> Self {
        FlakyAccess {
            inner,
            login_failure_prob,
            truncation_prob,
            salt,
        }
    }

    fn hash01(&self, router: &str, table: TableKind, now: SimTime, stream: u64) -> f64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.salt.hash(&mut h);
        router.hash(&mut h);
        table.hash(&mut h);
        now.as_secs().hash(&mut h);
        stream.hash(&mut h);
        (h.finish() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl<A: RouterAccess> RouterAccess for FlakyAccess<A> {
    fn capture(
        &mut self,
        router: &str,
        table: TableKind,
        now: SimTime,
    ) -> Result<String, CaptureError> {
        if self.hash01(router, table, now, 1) < self.login_failure_prob {
            return Err(CaptureError::LoginFailed("connection refused".into()));
        }
        let full = self.inner.capture(router, table, now)?;
        let r = self.hash01(router, table, now, 2);
        if r < self.truncation_prob {
            let keep = (full.len() as f64 * (0.1 + 0.8 * r / self.truncation_prob)) as usize;
            let cut = full
                .char_indices()
                .map(|(i, _)| i)
                .take_while(|i| *i <= keep)
                .last()
                .unwrap_or(0);
            return Err(CaptureError::Truncated {
                partial: full[..cut].to_string(),
            });
        }
        Ok(full)
    }
}

/// The collector: captures and pre-processes a configured set of tables,
/// tolerating per-table failures.
pub struct Collector {
    /// Tables to capture each cycle.
    pub tables: Vec<TableKind>,
    /// Running count of failed captures (exposed for health monitoring).
    pub failures: u64,
    /// Running count of successful captures.
    pub successes: u64,
}

impl Default for Collector {
    fn default() -> Self {
        Collector {
            tables: TableKind::ALL.to_vec(),
            failures: 0,
            successes: 0,
        }
    }
}

impl Collector {
    /// A collector for the full table set.
    pub fn new() -> Self {
        Collector::default()
    }

    /// Captures every configured table from `router`. Failed captures are
    /// skipped (counted in [`Collector::failures`]); truncated captures
    /// are salvaged by pre-processing the partial text, as the real tool
    /// did with half-transferred dumps.
    pub fn collect(
        &mut self,
        access: &mut dyn RouterAccess,
        router: &str,
        now: SimTime,
    ) -> Vec<Capture> {
        let mut out = Vec::with_capacity(self.tables.len());
        for kind in self.tables.clone() {
            match access.capture(router, kind, now) {
                Ok(raw) => {
                    self.successes += 1;
                    out.push(preprocess(router, kind, &raw, now));
                }
                Err(CaptureError::Truncated { partial }) => {
                    self.failures += 1;
                    let mut cap = preprocess(router, kind, &partial, now);
                    // Drop the last (probably half-transferred) line.
                    cap.lines.pop();
                    if !cap.lines.is_empty() {
                        out.push(cap);
                    }
                }
                Err(_) => {
                    self.failures += 1;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mantra_net::SimDuration;
    use mantra_sim::Scenario;

    fn t0() -> SimTime {
        SimTime::from_ymd(1998, 11, 1)
    }

    #[test]
    fn preprocess_strips_noise() {
        let raw = "Trying 1.2.3.4...\r\nConnected to ucsb-gw.\r\nEscape character is '^]'.\r\n\r\nDVMRP Routing Table (2 entries)\n Origin-Subnet      From-Gateway\n 10.0.0.0/8     \t  10.1.2.3\n --More-- \r        \r 11.0.0.0/8       direct\n\r\nucsb-gw> ";
        let cap = preprocess("ucsb-gw", TableKind::DvmrpRoutes, raw, t0());
        assert_eq!(
            cap.lines,
            vec![
                "DVMRP Routing Table (2 entries)",
                "Origin-Subnet From-Gateway",
                "10.0.0.0/8 10.1.2.3",
                "11.0.0.0/8 direct",
            ]
        );
        assert_eq!(cap.raw_bytes, raw.len());
    }

    #[test]
    fn preprocess_strips_ios_command_echo() {
        let raw = "fixw#show ip mroute count\nIP Multicast Statistics\n3 routes using 456 bytes of memory\nfixw> ";
        let cap = preprocess("fixw", TableKind::ForwardingCache, raw, t0());
        assert_eq!(cap.lines[0], "IP Multicast Statistics");
        assert_eq!(cap.lines.len(), 2);
    }

    #[test]
    fn sim_access_round_trip() {
        let mut sc = Scenario::transition_snapshot(6, 0.5);
        sc.sim.advance_to(sc.sim.clock + SimDuration::hours(3));
        let now = sc.sim.clock;
        let mut access = SimAccess::new(&sc.sim);
        let raw = access.capture("fixw", TableKind::DvmrpRoutes, now).unwrap();
        assert!(raw.contains("DVMRP"));
        assert!(matches!(
            access.capture("nosuch", TableKind::DvmrpRoutes, now),
            Err(CaptureError::UnknownRouter(_))
        ));
    }

    #[test]
    fn collector_counts_and_salvages() {
        let mut sc = Scenario::transition_snapshot(8, 0.5);
        sc.sim.advance_to(sc.sim.clock + SimDuration::hours(3));
        let now = sc.sim.clock;
        // Heavy failure injection.
        let mut access = FlakyAccess::new(SimAccess::new(&sc.sim), 0.4, 0.4, 7);
        let mut collector = Collector::new();
        let mut captures = Vec::new();
        for i in 0..20 {
            captures.extend(collector.collect(
                &mut access,
                "fixw",
                now + SimDuration::mins(i),
            ));
        }
        assert!(collector.failures > 0, "failures injected");
        assert!(collector.successes > 0, "some captures survive");
        // Salvaged truncations still produced clean lines.
        assert!(captures.iter().all(|c| !c.lines.is_empty()));
    }

    #[test]
    fn flaky_access_is_deterministic() {
        let mut sc = Scenario::transition_snapshot(9, 0.0);
        sc.sim.advance_to(sc.sim.clock + SimDuration::hours(1));
        let now = sc.sim.clock;
        let run = |salt: u64| {
            let mut access = FlakyAccess::new(SimAccess::new(&sc.sim), 0.5, 0.0, salt);
            (0..10)
                .map(|i| {
                    access
                        .capture("fixw", TableKind::DvmrpRoutes, now + SimDuration::mins(i))
                        .is_ok()
                })
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }
}
