//! The data collector.
//!
//! The paper's Mantra launched expect scripts at frequent intervals to log
//! into each router, dump its tables and ship the text home, then
//! pre-processed the capture (stripping login noise, pagination artifacts,
//! excess whitespace and delimiters). Here the transport is abstracted
//! behind [`RouterAccess`]; the production implementation in this
//! reproduction is [`SimAccess`], which "logs into" simulated routers and
//! returns byte-identical CLI text, and [`FlakyAccess`] wraps any access
//! with the failure modes real collection suffered (login refusals,
//! truncated captures).

use mantra_net::{RouterId, SimDuration, SimTime};
use mantra_router_cli::TableKind;
use mantra_sim::Simulation;

/// Why a capture failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CaptureError {
    /// Could not log in (wrong password, connection refused, router down).
    LoginFailed(String),
    /// The session died mid-dump; a partial capture may still be usable.
    Truncated {
        /// What was captured before the cut — raw bytes, because a
        /// truncation can land mid-way through a multi-byte sequence
        /// (or mid-escape in line noise) and the zero-copy parser
        /// handles such captures byte-exactly; re-encoding through
        /// `String` would lossily rewrite what the wire delivered.
        partial: Vec<u8>,
    },
    /// The router does not expose this table.
    Unsupported,
    /// The named router is unknown to the access layer.
    UnknownRouter(String),
}

impl std::fmt::Display for CaptureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CaptureError::LoginFailed(r) => write!(f, "login failed: {r}"),
            CaptureError::Truncated { .. } => write!(f, "capture truncated"),
            CaptureError::Unsupported => write!(f, "table not supported by router"),
            CaptureError::UnknownRouter(n) => write!(f, "unknown router {n}"),
        }
    }
}

impl std::error::Error for CaptureError {}

/// Anything Mantra can collect router tables through.
pub trait RouterAccess {
    /// Captures the raw text of `table` from the named router.
    fn capture(
        &mut self,
        router: &str,
        table: TableKind,
        now: SimTime,
    ) -> Result<String, CaptureError>;
}

/// One effective line of a capture: a byte range into either the raw
/// capture buffer or the rewrite arena.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct LineSpan {
    start: u32,
    end: u32,
    /// Whether the range indexes the arena (a line that had to be
    /// rewritten, e.g. CR-pagination overwrite) instead of the raw buffer.
    arena: bool,
}

/// A cleaned capture ready for the table processor.
///
/// The raw capture is kept as a single buffer; pre-processing selects the
/// effective lines as byte *spans* into it instead of copying each line
/// into an owned `String`. The rare line that cannot be represented as a
/// contiguous slice of the raw bytes — a carriage-return pagination
/// overwrite that leaves residue from the overwritten text — is composed
/// once into a small per-capture arena and its span points there.
#[derive(Clone, Debug)]
pub struct Capture {
    /// The router the capture came from.
    pub router: String,
    /// Which table was dumped.
    pub kind: TableKind,
    /// Capture timestamp.
    pub captured_at: SimTime,
    /// The raw capture, unmodified.
    raw: Box<[u8]>,
    /// Rewritten lines (CR-overwrite residue), appended back to back.
    arena: Vec<u8>,
    /// Effective lines in capture order: no banners, prompts, pagination
    /// artifacts or blank lines. Leading/trailing ASCII whitespace is
    /// trimmed; interior runs are preserved (the field scanner tolerates
    /// them).
    spans: Vec<LineSpan>,
    /// Size of the raw capture, for storage accounting.
    pub raw_bytes: usize,
}

impl Capture {
    /// The bytes of effective line `i`.
    pub fn line(&self, i: usize) -> &[u8] {
        let s = self.spans[i];
        let buf: &[u8] = if s.arena { &self.arena } else { &self.raw };
        &buf[s.start as usize..s.end as usize]
    }

    /// Iterates the effective lines as byte slices, in capture order.
    pub fn lines(&self) -> impl Iterator<Item = &[u8]> {
        self.spans.iter().map(move |s| {
            let buf: &[u8] = if s.arena { &self.arena } else { &self.raw };
            &buf[s.start as usize..s.end as usize]
        })
    }

    /// Number of effective lines.
    pub fn line_count(&self) -> usize {
        self.spans.len()
    }

    /// True when pre-processing kept no lines.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Drops the final effective line (the salvage path uses this to shed
    /// a torn tail line). The underlying bytes stay in the buffer; only
    /// the span is forgotten.
    pub fn pop_line(&mut self) {
        self.spans.pop();
    }

    /// The effective lines as owned text, lossily decoded — for tests,
    /// debugging and the kept reference parser; the hot path stays on
    /// [`Capture::lines`].
    pub fn text_lines(&self) -> Vec<String> {
        self.lines()
            .map(|l| String::from_utf8_lossy(l).into_owned())
            .collect()
    }
}

/// Captures compare by what the processor sees: origin, timestamp, size
/// accounting and effective line bytes — not by how the spans happen to
/// partition between the raw buffer and the arena.
impl PartialEq for Capture {
    fn eq(&self, other: &Self) -> bool {
        self.router == other.router
            && self.kind == other.kind
            && self.captured_at == other.captured_at
            && self.raw_bytes == other.raw_bytes
            && self.line_count() == other.line_count()
            && self.lines().eq(other.lines())
    }
}

impl Eq for Capture {}

/// Pre-processes a raw capture: the paper's "removing unwanted
/// information, excess white-spaces and delimiters". Delegates to
/// [`preprocess_bytes`]; text callers pay one buffer copy, nothing
/// per line.
pub fn preprocess(router: &str, kind: TableKind, raw: &str, now: SimTime) -> Capture {
    preprocess_bytes(router, kind, raw.as_bytes().to_vec(), now)
}

/// ASCII whitespace as the capture scanner sees it (plus vertical tab,
/// which terminals treat as blank).
#[inline]
fn is_ws(b: u8) -> bool {
    b.is_ascii_whitespace() || b == 0x0b
}

/// Trims ASCII whitespace from both ends of a range into `buf`.
#[inline]
fn trim_range(buf: &[u8], mut start: usize, mut end: usize) -> (usize, usize) {
    while start < end && is_ws(buf[start]) {
        start += 1;
    }
    while end > start && is_ws(buf[end - 1]) {
        end -= 1;
    }
    (start, end)
}

/// Pre-processes a raw capture in a single pass over its bytes, selecting
/// effective lines as spans into the buffer.
///
/// Per physical line (split on `\n`), carriage returns replay as a
/// terminal would: a `--More--` pagination segment is never printed, a
/// CR-segment at least as long as what is on screen replaces it wholly
/// (still a span into the raw buffer — the common case), and a *shorter*
/// segment overwrites only a prefix, leaving residue from the overwritten
/// text; that composed line is the one escape into the per-capture arena.
/// Surviving lines are ASCII-trimmed, then telnet/session noise
/// (`Trying `/`Connected to`/`Escape character`) and prompt echoes
/// (`name>` / `name#`) drop. Interior whitespace runs are preserved; the
/// parsers' field scanners tolerate them.
pub fn preprocess_bytes(router: &str, kind: TableKind, raw: Vec<u8>, now: SimTime) -> Capture {
    enum Buf {
        /// A contiguous range of the raw buffer.
        Span(usize, usize),
        /// A line composed by a partial CR overwrite.
        Owned(Vec<u8>),
    }
    let raw: Box<[u8]> = raw.into_boxed_slice();
    let rbytes = raw.len();
    let mut spans: Vec<LineSpan> = Vec::new();
    let mut arena: Vec<u8> = Vec::new();
    let prompt = router.as_bytes();

    let mut line_start = 0usize;
    loop {
        let line_end = raw[line_start..]
            .iter()
            .position(|&b| b == b'\n')
            .map_or(rbytes, |p| line_start + p);

        // Replay carriage returns within the physical line.
        let mut cur = Buf::Span(line_start, line_start);
        let mut seg_start = line_start;
        loop {
            let seg_end = raw[seg_start..line_end]
                .iter()
                .position(|&b| b == b'\r')
                .map_or(line_end, |p| seg_start + p);
            let seg = &raw[seg_start..seg_end];
            let shown = seg.iter().position(|&b| !is_ws(b)).unwrap_or(seg.len());
            if seg[shown..].starts_with(b"--More--") {
                // The pager's own marker: erased before anything else
                // prints, so it never reaches the screen.
            } else {
                let cur_len = match &cur {
                    Buf::Span(s, e) => e - s,
                    Buf::Owned(v) => v.len(),
                };
                if seg.len() >= cur_len {
                    cur = Buf::Span(seg_start, seg_end);
                } else if !seg.is_empty() {
                    // Partial overwrite: compose the residue line.
                    let mut v = match cur {
                        Buf::Span(s, e) => raw[s..e].to_vec(),
                        Buf::Owned(v) => v,
                    };
                    v[..seg.len()].copy_from_slice(seg);
                    cur = Buf::Owned(v);
                }
            }
            if seg_end == line_end {
                break;
            }
            seg_start = seg_end + 1;
        }

        // Trim, then filter session noise and prompt echoes.
        let kept = match cur {
            Buf::Span(s, e) => {
                let (s, e) = trim_range(&raw, s, e);
                let line = &raw[s..e];
                keep_line(line, prompt).then_some(LineSpan {
                    start: s as u32,
                    end: e as u32,
                    arena: false,
                })
            }
            Buf::Owned(v) => {
                let (s, e) = trim_range(&v, 0, v.len());
                let line = &v[s..e];
                keep_line(line, prompt).then(|| {
                    let start = arena.len() as u32;
                    arena.extend_from_slice(line);
                    LineSpan {
                        start,
                        end: arena.len() as u32,
                        arena: true,
                    }
                })
            }
        };
        spans.extend(kept);

        if line_end == rbytes {
            break;
        }
        line_start = line_end + 1;
    }

    Capture {
        router: router.to_string(),
        kind,
        captured_at: now,
        raw,
        arena,
        spans,
        raw_bytes: rbytes,
    }
}

/// Whether a trimmed effective line survives pre-processing: drops blank
/// lines, telnet/session noise and prompt/command echoes in both the
/// user-exec (`name>`) and privileged (`name#`) forms.
fn keep_line(line: &[u8], prompt: &[u8]) -> bool {
    if line.is_empty() {
        return false;
    }
    if line.starts_with(b"Trying ")
        || line.starts_with(b"Connected to")
        || line.starts_with(b"Escape character")
    {
        return false;
    }
    if line.len() > prompt.len()
        && line.starts_with(prompt)
        && matches!(line[prompt.len()], b'>' | b'#')
    {
        return false;
    }
    true
}

/// The simulator-backed access: resolves router names against the
/// simulation's topology and renders the live CLI text.
pub struct SimAccess<'a> {
    sim: &'a Simulation,
}

impl<'a> SimAccess<'a> {
    /// Wraps a simulation.
    pub fn new(sim: &'a Simulation) -> Self {
        SimAccess { sim }
    }

    fn resolve(&self, name: &str) -> Option<RouterId> {
        self.sim.net.topo.router_by_name(name).map(|r| r.id)
    }
}

impl RouterAccess for SimAccess<'_> {
    fn capture(
        &mut self,
        router: &str,
        table: TableKind,
        now: SimTime,
    ) -> Result<String, CaptureError> {
        let id = self
            .resolve(router)
            .ok_or_else(|| CaptureError::UnknownRouter(router.to_string()))?;
        if !self.sim.net.topo.is_active(id) {
            // A churned-out router answers like one that is powered off:
            // the login never succeeds. Transient, so the retry policy
            // still runs (deterministically) and the cycle records a
            // missed router rather than an unknown one.
            return Err(CaptureError::LoginFailed(format!(
                "router {router} is offline"
            )));
        }
        Ok(mantra_router_cli::render(&self.sim.net, id, table, now))
    }
}

/// Failure-injection decorator: with deterministic pseudo-randomness (keyed
/// on router, table and timestamp), captures fail to log in or come back
/// truncated.
pub struct FlakyAccess<A> {
    inner: A,
    /// Probability of a login failure per capture.
    pub login_failure_prob: f64,
    /// Probability of a truncated capture per capture.
    pub truncation_prob: f64,
    salt: u64,
}

impl<A> FlakyAccess<A> {
    /// Wraps `inner` with the given failure rates.
    pub fn new(inner: A, login_failure_prob: f64, truncation_prob: f64, salt: u64) -> Self {
        FlakyAccess {
            inner,
            login_failure_prob,
            truncation_prob,
            salt,
        }
    }

    fn hash01(&self, router: &str, table: TableKind, now: SimTime, stream: u64) -> f64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.salt.hash(&mut h);
        router.hash(&mut h);
        table.hash(&mut h);
        now.as_secs().hash(&mut h);
        stream.hash(&mut h);
        (h.finish() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Whether the capture at `now` fails to log in.
    pub(crate) fn roll_login_failure(&self, router: &str, table: TableKind, now: SimTime) -> bool {
        self.hash01(router, table, now, 1) < self.login_failure_prob
    }

    /// Applies the truncation roll to a successfully fetched dump. The cut
    /// always drops at least the final character, so a "partial" capture is
    /// never silently the full text.
    pub(crate) fn maybe_truncate(
        &self,
        router: &str,
        table: TableKind,
        now: SimTime,
        full: String,
    ) -> Result<String, CaptureError> {
        let r = self.hash01(router, table, now, 2);
        if r < self.truncation_prob {
            let keep = (full.len() as f64 * (0.1 + 0.8 * r / self.truncation_prob)) as usize;
            // A session dying mid-transfer cuts at an arbitrary *byte* —
            // it has no idea where UTF-8 sequences end. The partial is
            // carried as bytes, so no boundary adjustment is needed (or
            // wanted: snapping to a char boundary would misrepresent
            // what the wire delivered). ASCII dumps cut identically to
            // the old char-boundary logic.
            let cut = keep.min(full.len().saturating_sub(1));
            let mut partial = full.into_bytes();
            partial.truncate(cut);
            return Err(CaptureError::Truncated { partial });
        }
        Ok(full)
    }

    /// Read access to the wrapped transport.
    pub(crate) fn inner(&self) -> &A {
        &self.inner
    }
}

impl<A: RouterAccess> RouterAccess for FlakyAccess<A> {
    fn capture(
        &mut self,
        router: &str,
        table: TableKind,
        now: SimTime,
    ) -> Result<String, CaptureError> {
        if self.roll_login_failure(router, table, now) {
            return Err(CaptureError::LoginFailed("connection refused".into()));
        }
        let full = self.inner.capture(router, table, now)?;
        self.maybe_truncate(router, table, now, full)
    }
}

/// Bounded-retry policy for transient capture failures.
///
/// The paper's cron-driven expect scripts simply lost a cycle when a login
/// was refused or a dump died mid-transfer; the resilient collector retries
/// such captures a bounded number of times with exponential backoff. The
/// jitter is deterministic — keyed on `(salt, router, table, cycle, attempt)`
/// exactly like [`FlakyAccess`] keys its failure rolls — so any scenario
/// replays bit-for-bit.
#[derive(Clone, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Total capture attempts per table per cycle (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per subsequent retry.
    pub base_backoff: SimDuration,
    /// Upper bound on any single backoff.
    pub max_backoff: SimDuration,
    /// Fraction of each backoff randomised away (0.0 = fixed backoff,
    /// 0.5 = uniform over the upper half of the exponential schedule).
    pub jitter: f64,
    /// Jitter hash salt.
    pub salt: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: SimDuration::secs(2),
            max_backoff: SimDuration::secs(60),
            jitter: 0.5,
            salt: 0x4d414e545241, // "MANTRA"
        }
    }
}

impl RetryPolicy {
    /// The seed behaviour: one attempt, no retries.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// The backoff to wait after failed attempt number `attempt` (1-based)
    /// of capturing `table` from `router` in the cycle that started at
    /// `cycle`. Always at least one second, so a retried capture lands on
    /// a fresh timestamp (and [`FlakyAccess`] re-rolls its failures).
    pub fn backoff(
        &self,
        router: &str,
        table: TableKind,
        cycle: SimTime,
        attempt: u32,
    ) -> SimDuration {
        use std::hash::{Hash, Hasher};
        let exp = self
            .base_backoff
            .as_secs()
            .saturating_mul(1u64 << (attempt.min(32) - 1).min(62))
            .min(self.max_backoff.as_secs());
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.salt.hash(&mut h);
        router.hash(&mut h);
        table.hash(&mut h);
        cycle.as_secs().hash(&mut h);
        attempt.hash(&mut h);
        let r = (h.finish() >> 11) as f64 / (1u64 << 53) as f64;
        let jittered = exp as f64 * (1.0 - self.jitter.clamp(0.0, 1.0) * r);
        SimDuration::secs((jittered as u64).max(1))
    }
}

/// Per-call collection accounting, the raw material for the monitor's
/// health registry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CollectStats {
    /// Capture attempts issued (including retries).
    pub attempts: u64,
    /// Tables captured in full.
    pub successes: u64,
    /// Tables whose final attempt still failed (salvaged or not).
    pub failures: u64,
    /// Retry attempts issued (attempts beyond the first per table).
    pub retries: u64,
    /// Tables that failed at least once and then captured in full.
    pub retry_successes: u64,
    /// Tables recovered from a truncated partial.
    pub salvaged: u64,
    /// Raw bytes captured (full and salvaged partials).
    pub raw_bytes: u64,
    /// Total backoff waited — the collection latency added by retries.
    pub backoff: SimDuration,
}

impl CollectStats {
    /// Folds another call's accounting into this one.
    pub fn absorb(&mut self, other: &CollectStats) {
        self.attempts += other.attempts;
        self.successes += other.successes;
        self.failures += other.failures;
        self.retries += other.retries;
        self.retry_successes += other.retry_successes;
        self.salvaged += other.salvaged;
        self.raw_bytes += other.raw_bytes;
        self.backoff += other.backoff;
    }
}

/// The collector: captures and pre-processes a configured set of tables,
/// tolerating per-table failures.
pub struct Collector {
    /// Tables to capture each cycle.
    pub tables: Vec<TableKind>,
    /// Retry policy applied to transient capture failures.
    pub retry: RetryPolicy,
    /// Running count of failed captures (exposed for health monitoring).
    pub failures: u64,
    /// Running count of successful captures.
    pub successes: u64,
}

impl Default for Collector {
    fn default() -> Self {
        Collector {
            tables: TableKind::ALL.to_vec(),
            retry: RetryPolicy::default(),
            failures: 0,
            successes: 0,
        }
    }
}

impl Collector {
    /// A collector for the full table set with the default retry policy.
    pub fn new() -> Self {
        Collector::default()
    }

    /// A collector with the given retry policy.
    pub fn with_retry(retry: RetryPolicy) -> Self {
        Collector {
            retry,
            ..Collector::default()
        }
    }

    /// Captures every configured table from `router`, retrying transient
    /// failures per [`Collector::retry`]. Stateless (`&self`) so cycles
    /// over different routers can run concurrently; the caller folds the
    /// returned [`CollectStats`] wherever it keeps running counters.
    ///
    /// Transient errors ([`CaptureError::LoginFailed`],
    /// [`CaptureError::Truncated`]) are retried with backoff; permanent
    /// ones ([`CaptureError::Unsupported`],
    /// [`CaptureError::UnknownRouter`]) fail immediately. A table whose
    /// final attempt is still truncated is salvaged from the longest
    /// partial seen across attempts, as the real tool did with
    /// half-transferred dumps.
    pub fn collect_with(
        &self,
        access: &mut dyn RouterAccess,
        router: &str,
        now: SimTime,
    ) -> (Vec<Capture>, CollectStats) {
        let mut out = Vec::with_capacity(self.tables.len());
        let mut stats = CollectStats::default();
        let max_attempts = self.retry.max_attempts.max(1);
        for kind in &self.tables {
            let kind = *kind;
            let mut best_partial: Option<Vec<u8>> = None;
            let mut full: Option<String> = None;
            let mut waited = SimDuration::ZERO;
            for attempt in 1..=max_attempts {
                stats.attempts += 1;
                if attempt > 1 {
                    stats.retries += 1;
                }
                match access.capture(router, kind, now + waited) {
                    Ok(raw) => {
                        if attempt > 1 {
                            stats.retry_successes += 1;
                        }
                        full = Some(raw);
                        break;
                    }
                    Err(CaptureError::Truncated { partial }) => {
                        if best_partial
                            .as_ref()
                            .is_none_or(|b| partial.len() > b.len())
                        {
                            best_partial = Some(partial);
                        }
                    }
                    Err(CaptureError::LoginFailed(_)) => {}
                    // Permanent: retrying cannot help.
                    Err(CaptureError::Unsupported) | Err(CaptureError::UnknownRouter(_)) => break,
                }
                if attempt < max_attempts {
                    waited += self.retry.backoff(router, kind, now, attempt);
                }
            }
            stats.backoff += waited;
            match (full, best_partial) {
                (Some(raw), _) => {
                    stats.successes += 1;
                    stats.raw_bytes += raw.len() as u64;
                    out.push(preprocess(router, kind, &raw, now));
                }
                (None, Some(partial)) => {
                    stats.failures += 1;
                    let torn_tail = partial.last() != Some(&b'\n');
                    let plen = partial.len() as u64;
                    // Straight into the byte pre-processor: the partial
                    // never detours through `String`, so a cut that lands
                    // mid-way through a multi-byte sequence reaches the
                    // parser byte-exact.
                    let mut cap = preprocess_bytes(router, kind, partial, now);
                    // The tail line is half-transferred only when the cut
                    // fell mid-line; a partial ending in a newline lost
                    // whole lines, not half of one.
                    if torn_tail {
                        cap.pop_line();
                    }
                    if !cap.is_empty() {
                        stats.salvaged += 1;
                        stats.raw_bytes += plen;
                        out.push(cap);
                    }
                }
                (None, None) => {
                    stats.failures += 1;
                }
            }
        }
        (out, stats)
    }

    /// Captures every configured table from `router`, folding the
    /// accounting into [`Collector::successes`] / [`Collector::failures`].
    pub fn collect(
        &mut self,
        access: &mut dyn RouterAccess,
        router: &str,
        now: SimTime,
    ) -> Vec<Capture> {
        let (out, stats) = self.collect_with(access, router, now);
        self.successes += stats.successes;
        self.failures += stats.failures;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mantra_net::SimDuration;
    use mantra_sim::Scenario;

    fn t0() -> SimTime {
        SimTime::from_ymd(1998, 11, 1)
    }

    #[test]
    fn preprocess_strips_noise() {
        let raw = "Trying 1.2.3.4...\r\nConnected to ucsb-gw.\r\nEscape character is '^]'.\r\n\r\nDVMRP Routing Table (2 entries)\n Origin-Subnet      From-Gateway\n 10.0.0.0/8     \t  10.1.2.3\n --More-- \r        \r 11.0.0.0/8       direct\n\r\nucsb-gw> ";
        let cap = preprocess("ucsb-gw", TableKind::DvmrpRoutes, raw, t0());
        assert_eq!(
            cap.text_lines(),
            vec![
                "DVMRP Routing Table (2 entries)",
                "Origin-Subnet      From-Gateway",
                "10.0.0.0/8     \t  10.1.2.3",
                "11.0.0.0/8       direct",
            ]
        );
        assert_eq!(cap.raw_bytes, raw.len());
    }

    #[test]
    fn preprocess_composes_cr_overwrite_residue() {
        // A shorter CR segment overwrites only a prefix of what is on
        // screen, leaving residue from the longer text — the one case the
        // span representation must materialise into the arena.
        let raw = "524288 bytes\rHello\ntail line\n";
        let cap = preprocess("r", TableKind::DvmrpRoutes, raw, t0());
        assert_eq!(cap.text_lines(), vec!["Hello8 bytes", "tail line"]);
        // An equal-or-longer rewrite stays a pure span (wholesale replace).
        let raw = "--More-- \r        \rfresh text\n";
        let cap = preprocess("r", TableKind::DvmrpRoutes, raw, t0());
        assert_eq!(cap.text_lines(), vec!["fresh text"]);
    }

    #[test]
    fn preprocess_strips_ios_command_echo() {
        let raw = "fixw#show ip mroute count\nIP Multicast Statistics\n3 routes using 456 bytes of memory\nfixw> ";
        let cap = preprocess("fixw", TableKind::ForwardingCache, raw, t0());
        assert_eq!(cap.line(0), b"IP Multicast Statistics");
        assert_eq!(cap.line_count(), 2);
    }

    #[test]
    fn sim_access_round_trip() {
        let mut sc = Scenario::transition_snapshot(6, 0.5);
        sc.sim.advance_to(sc.sim.clock + SimDuration::hours(3));
        let now = sc.sim.clock;
        let mut access = SimAccess::new(&sc.sim);
        let raw = access.capture("fixw", TableKind::DvmrpRoutes, now).unwrap();
        assert!(raw.contains("DVMRP"));
        assert!(matches!(
            access.capture("nosuch", TableKind::DvmrpRoutes, now),
            Err(CaptureError::UnknownRouter(_))
        ));
    }

    #[test]
    fn collector_counts_and_salvages() {
        let mut sc = Scenario::transition_snapshot(8, 0.5);
        sc.sim.advance_to(sc.sim.clock + SimDuration::hours(3));
        let now = sc.sim.clock;
        // Heavy failure injection.
        let mut access = FlakyAccess::new(SimAccess::new(&sc.sim), 0.4, 0.4, 7);
        let mut collector = Collector::new();
        let mut captures = Vec::new();
        for i in 0..20 {
            captures.extend(collector.collect(&mut access, "fixw", now + SimDuration::mins(i)));
        }
        assert!(collector.failures > 0, "failures injected");
        assert!(collector.successes > 0, "some captures survive");
        // Salvaged truncations still produced clean lines.
        assert!(captures.iter().all(|c| !c.is_empty()));
    }

    #[test]
    fn preprocess_strips_user_exec_command_echo() {
        // Echoes in the user-exec form (`name> command`) must strip like
        // the privileged form (`name#command`) already did.
        let raw = "fixw> show ip dvmrp route\nDVMRP Routing Table\nfixw> ";
        let cap = preprocess("fixw", TableKind::DvmrpRoutes, raw, t0());
        assert_eq!(cap.text_lines(), vec!["DVMRP Routing Table"]);
    }

    /// Fails every capture with a login refusal until `fail_first` calls
    /// have been made for a table, then delegates.
    struct FailFirst<A> {
        inner: A,
        fail_first: u32,
        calls: std::collections::HashMap<TableKind, u32>,
    }

    impl<A: RouterAccess> RouterAccess for FailFirst<A> {
        fn capture(
            &mut self,
            router: &str,
            table: TableKind,
            now: SimTime,
        ) -> Result<String, CaptureError> {
            let c = self.calls.entry(table).or_insert(0);
            *c += 1;
            if *c <= self.fail_first {
                return Err(CaptureError::LoginFailed("refused".into()));
            }
            self.inner.capture(router, table, now)
        }
    }

    #[test]
    fn retry_recovers_transient_failures() {
        let mut sc = Scenario::transition_snapshot(11, 0.3);
        sc.sim.advance_to(sc.sim.clock + SimDuration::hours(2));
        let now = sc.sim.clock;
        let n = TableKind::ALL.len() as u64;

        // Two refusals per table: a 3-attempt policy recovers everything.
        let mut access = FailFirst {
            inner: SimAccess::new(&sc.sim),
            fail_first: 2,
            calls: Default::default(),
        };
        let collector = Collector::new();
        let (caps, stats) = collector.collect_with(&mut access, "fixw", now);
        assert_eq!(caps.len() as u64, n);
        assert_eq!(stats.successes, n);
        assert_eq!(stats.failures, 0);
        assert_eq!(stats.retries, 2 * n);
        assert_eq!(stats.retry_successes, n);
        assert!(stats.backoff > SimDuration::ZERO);

        // The same access without retries loses every capture.
        let mut access = FailFirst {
            inner: SimAccess::new(&sc.sim),
            fail_first: 2,
            calls: Default::default(),
        };
        let collector = Collector::with_retry(RetryPolicy::none());
        let (caps, stats) = collector.collect_with(&mut access, "fixw", now);
        assert!(caps.is_empty());
        assert_eq!(stats.failures, n);
        assert_eq!(stats.retries, 0);
    }

    #[test]
    fn unknown_router_is_not_retried() {
        let sc = Scenario::transition_snapshot(12, 0.0);
        let now = sc.sim.clock;
        let collector = Collector::new();
        let mut access = SimAccess::new(&sc.sim);
        let (caps, stats) = collector.collect_with(&mut access, "ghost", now);
        assert!(caps.is_empty());
        assert_eq!(stats.failures, TableKind::ALL.len() as u64);
        // One attempt per table: permanent errors short-circuit the retry
        // loop.
        assert_eq!(stats.attempts, TableKind::ALL.len() as u64);
        assert_eq!(stats.retries, 0);
    }

    /// Always returns the same truncated partial.
    struct AlwaysTruncated(Vec<u8>);

    impl RouterAccess for AlwaysTruncated {
        fn capture(
            &mut self,
            _router: &str,
            _table: TableKind,
            _now: SimTime,
        ) -> Result<String, CaptureError> {
            Err(CaptureError::Truncated {
                partial: self.0.clone(),
            })
        }
    }

    #[test]
    fn salvage_drops_tail_line_only_when_torn() {
        let collector = Collector::with_retry(RetryPolicy::none());

        // Cut mid-line: the torn tail line goes.
        let mut access = AlwaysTruncated(b"alpha one\nbeta tw".to_vec());
        let (caps, stats) = collector.collect_with(&mut access, "fixw", t0());
        assert_eq!(stats.salvaged, TableKind::ALL.len() as u64);
        for cap in &caps {
            assert_eq!(cap.text_lines(), vec!["alpha one"]);
        }

        // Cut on a line boundary: every captured line is whole and kept.
        let mut access = AlwaysTruncated(b"alpha one\nbeta two\n".to_vec());
        let (caps, _) = collector.collect_with(&mut access, "fixw", t0());
        for cap in &caps {
            assert_eq!(cap.text_lines(), vec!["alpha one", "beta two"]);
        }
    }

    #[test]
    fn salvage_preserves_non_utf8_partials_byte_exactly() {
        // A truncation that lands mid-way through a multi-byte UTF-8
        // sequence (here: a Latin-1 0xA0 splice followed by a cut
        // 2-byte sequence) must reach the parser byte-exact. The old
        // String-carrying path lossily re-encoded these bytes as
        // U+FFFD, so the salvaged line bytes differed from what the
        // wire delivered.
        let collector = Collector::with_retry(RetryPolicy::none());
        let raw: Vec<u8> = b"alpha\xA0one\nbeta two\ngamma \xC3".to_vec();
        let mut access = AlwaysTruncated(raw.clone());
        let (caps, stats) = collector.collect_with(&mut access, "fixw", t0());
        assert_eq!(stats.salvaged, TableKind::ALL.len() as u64);
        for cap in &caps {
            // The torn tail line ("gamma \xC3") drops; the kept lines
            // carry the raw bytes, 0xA0 splice included.
            assert_eq!(cap.line_count(), 2);
            assert_eq!(cap.line(0), b"alpha\xA0one".as_slice());
            assert_eq!(cap.line(1), b"beta two".as_slice());
        }
        // And the accounting charges the bytes actually captured.
        let (_, stats2) = collector.collect_with(&mut AlwaysTruncated(raw.clone()), "fixw", t0());
        assert_eq!(
            stats2.raw_bytes,
            raw.len() as u64 * TableKind::ALL.len() as u64
        );
    }

    #[test]
    fn truncation_never_returns_full_text() {
        let mut sc = Scenario::transition_snapshot(13, 0.4);
        sc.sim.advance_to(sc.sim.clock + SimDuration::hours(4));
        let now = sc.sim.clock;
        let mut flaky = FlakyAccess::new(SimAccess::new(&sc.sim), 0.0, 1.0, 5);
        for i in 0..30 {
            let t = now + SimDuration::mins(i);
            let full = SimAccess::new(&sc.sim)
                .capture("fixw", TableKind::DvmrpRoutes, t)
                .unwrap();
            match flaky.capture("fixw", TableKind::DvmrpRoutes, t) {
                Err(CaptureError::Truncated { partial }) => {
                    assert!(
                        partial.len() < full.len(),
                        "partial must be a strict prefix"
                    );
                }
                other => panic!("expected truncation, got {other:?}"),
            }
        }
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let p = RetryPolicy::default();
        let q = RetryPolicy {
            salt: 1,
            ..RetryPolicy::default()
        };
        let mut differs = false;
        for attempt in 1..=8 {
            let b = p.backoff("fixw", TableKind::DvmrpRoutes, t0(), attempt);
            assert_eq!(b, p.backoff("fixw", TableKind::DvmrpRoutes, t0(), attempt));
            assert!(b.as_secs() >= 1);
            assert!(b <= p.max_backoff);
            differs |= b != q.backoff("fixw", TableKind::DvmrpRoutes, t0(), attempt);
        }
        assert!(differs, "different salts give different jitter");
    }

    #[test]
    fn flaky_access_is_deterministic() {
        let mut sc = Scenario::transition_snapshot(9, 0.0);
        sc.sim.advance_to(sc.sim.clock + SimDuration::hours(1));
        let now = sc.sim.clock;
        let run = |salt: u64| {
            let mut access = FlakyAccess::new(SimAccess::new(&sc.sim), 0.5, 0.0, salt);
            (0..10)
                .map(|i| {
                    access
                        .capture("fixw", TableKind::DvmrpRoutes, now + SimDuration::mins(i))
                        .is_ok()
                })
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }
}
